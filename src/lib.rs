//! # BlueDBM-RS
//!
//! A full-system, software-simulated reproduction of *"BlueDBM: An Appliance
//! for Big Data Analytics"* (ISCA 2015).
//!
//! This facade crate re-exports every sub-crate of the workspace under one
//! namespace so that examples and downstream users can write
//! `use bluedbm::core::Cluster;` instead of depending on each crate
//! individually.
//!
//! ## Quickstart
//!
//! ```rust
//! use bluedbm::core::{Cluster, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 4-node appliance with the paper's device parameters, scaled-down
//! // flash capacity for test speed.
//! let config = SystemConfig::scaled_down();
//! let mut cluster = Cluster::ring(4, &config)?;
//!
//! // Write a page to node 0, read it back from node 2 over the integrated
//! // storage network (global address space).
//! let page = vec![0xAB; config.flash.geometry.page_bytes];
//! let addr = cluster.write_page_local(0.into(), &page)?;
//! let read = cluster.read_page_remote(2.into(), addr)?;
//! assert_eq!(read.data, page);
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for domain scenarios (LSH image search,
//! distributed graph traversal, in-store grep) and `bluedbm-bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use bluedbm_core as core;
pub use bluedbm_flash as flash;
pub use bluedbm_ftl as ftl;
pub use bluedbm_host as host;
pub use bluedbm_isp as isp;
pub use bluedbm_net as net;
pub use bluedbm_sim as sim;
pub use bluedbm_trace as trace;
pub use bluedbm_workloads as workloads;
