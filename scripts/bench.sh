#!/usr/bin/env bash
# Run the event-kernel criterion benches and record the results as JSON
# lines in BENCH_engine.json, so successive PRs accumulate a perf
# trajectory for the simulator itself.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_engine.json}"
# cargo runs bench binaries with the package dir as cwd; hand the shim an
# absolute path so results land at the workspace root.
case "$out" in
  /*) ;;
  *) out="$(pwd)/$out" ;;
esac

# Keep the previous trajectory around as the baseline for the trace
# overhead comparison before truncating for the fresh run.
baseline=""
if [ -f "$out" ]; then
  baseline="$(mktemp)"
  cp "$out" "$baseline"
fi

# Fresh file per run; the criterion shim appends one JSON object per line.
mkdir -p "$(dirname "$out")"
: > "$out"

export BLUEDBM_BENCH_JSON="$out"

echo "== layout sizes: Msg / queue entries (fails if Msg > 64 bytes) =="
cargo run -p bluedbm-bench --release --quiet --bin sizes

# The shard-scaling rows (sim_throughput/mesh8x8_scatter_sharded{1,2,4},
# the optimistic lanes mesh8x8_scatter_optimistic{2,4} and the KV rows
# kv_million_{seq,sharded{2,4},optimistic{2,4}}) only show real parallel
# speedup when the host has cores to run the shards on; record the core
# count so the curve is interpretable, and flag outright when the widest
# sharded row (4 shards) is oversubscribed — on such hosts the sharded
# rows measure the sync protocol's overhead floor, not parallel scaling,
# and must not be read as a speedup curve.
cpus="$(nproc)"
echo "{\"id\":\"meta/host_cpus\",\"value\":$cpus}" >> "$out"
if [ "$cpus" -lt 4 ]; then overhead_floor=1; else overhead_floor=0; fi
echo "{\"id\":\"meta/sharded_rows_are_overhead_floor\",\"value\":$overhead_floor}" >> "$out"
if [ "$overhead_floor" = 1 ]; then
  echo "NOTE: host has $cpus CPU(s) < 4 shards; sharded rows record the sync-overhead floor, not parallel speedup."
fi

echo "== sim_throughput: typed kernel vs boxed baseline, cluster events/sec =="
cargo bench -p bluedbm-bench --bench sim_throughput

echo "== engines: ISP functional core throughput =="
cargo bench -p bluedbm-bench --bench engines

echo "== gc_cliff: flash-lifecycle tail latency and write amplification =="
cargo run -p bluedbm-bench --release --quiet --bin gc_cliff

echo "== trace: disabled-path overhead on the KV workload =="
# shellcheck disable=SC2086
cargo run -p bluedbm-bench --release --quiet --bin trace_overhead -- ${baseline:+"$baseline"}
if [ -n "$baseline" ]; then rm -f "$baseline"; fi

echo
echo "results written to $out:"
cat "$out"
