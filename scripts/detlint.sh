#!/usr/bin/env bash
# Run the workspace determinism-and-hot-path lint pass (crates/detlint).
# Usage: scripts/detlint.sh [--rule <id>]... [--list-rules] [ROOT]
# Exits 0 on a clean tree, 1 on findings, 2 on usage/I-O error.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -p bluedbm_detlint --release --quiet -- "$@"
