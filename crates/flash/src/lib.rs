//! # bluedbm-flash
//!
//! The BlueDBM flash card: a functional NAND array that stores real bytes
//! with real program/erase semantics, a SECDED ECC codec, and the paper's
//! controller stack — the raw tag-based flash controller (Section 3.1.1),
//! the Flash Interface Splitter with tag renaming (Section 3.1.2), and the
//! Flash Server with its Address Translation Unit (Figure 3).
//!
//! The paper implements these on an Artix-7 FPGA per flash board; here the
//! same interfaces are modelled as discrete-event components over the
//! [`bluedbm_sim`] kernel, with timing taken from the paper (50 µs reads,
//! 1.2 GB/s per card across 8 buses).
//!
//! ## Layered design
//!
//! * [`array::FlashArray`] — synchronous, functional NAND: what the chips
//!   *store*. Used directly by the FTL/filesystem correctness layer.
//! * [`controller::FlashController`] — DES component adding *when*: chip
//!   and bus contention, tag-limited parallelism, out-of-order completion.
//! * [`splitter::FlashSplitter`] — shares one controller among several
//!   agents (host DMA, local ISP, network) by renaming tags.
//! * [`server::FlashServer`] — in-order page interface + file-handle
//!   address translation for easy in-store processor development.
//!
//! ## Example: functional layer
//!
//! ```rust
//! use bluedbm_flash::array::FlashArray;
//! use bluedbm_flash::geometry::{FlashGeometry, Ppa};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let geom = FlashGeometry::tiny();
//! let mut array = FlashArray::new(geom, 12345);
//! let ppa = Ppa::new(0, 0, 0, 0);
//! let page = vec![7u8; geom.page_bytes];
//! array.program(ppa, &page)?;
//! assert_eq!(array.read(ppa)?.data, page);
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod controller;
pub mod msg;
pub mod ecc;
pub mod error;
pub mod geometry;
pub mod server;
pub mod splitter;
pub mod timing;

pub use array::FlashArray;
pub use controller::{CtrlCmd, CtrlResp, FlashController, Tag};
pub use error::FlashError;
pub use msg::{FlashMsg, FlashProtocol};
pub use geometry::{FlashGeometry, Ppa};
pub use server::FlashServer;
pub use splitter::FlashSplitter;
pub use timing::FlashTiming;
