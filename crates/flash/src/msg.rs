//! The flash subsystem's typed message protocol.
//!
//! Every component in this crate speaks [`FlashMsg`]; simulations that
//! compose flash with other subsystems implement [`FlashProtocol`] on
//! their own message enum (see `bluedbm_core::Msg`), which lets the
//! components here stay generic without boxing a single payload.

use bluedbm_sim::Message;

use crate::controller::{CtrlCmd, CtrlResp, Finish};
use crate::server::{ServerReq, ServerResp};

/// Union of every message a flash-stack component sends or receives.
#[derive(Debug)]
pub enum FlashMsg {
    /// Raw controller command ([`crate::FlashController`] /
    /// [`crate::FlashSplitter`] ingress).
    Cmd(CtrlCmd),
    /// Controller completion (egress to whoever `reply_to` names).
    Resp(CtrlResp),
    /// Controller-internal delayed completion (self-send only).
    Finish(Finish),
    /// Flash Server request ([`crate::FlashServer`] ingress).
    ServerReq(ServerReq),
    /// Flash Server in-order response (egress to the requesting client).
    ServerResp(ServerResp),
}

impl From<CtrlCmd> for FlashMsg {
    #[inline]
    fn from(m: CtrlCmd) -> Self {
        FlashMsg::Cmd(m)
    }
}

impl From<CtrlResp> for FlashMsg {
    #[inline]
    fn from(m: CtrlResp) -> Self {
        FlashMsg::Resp(m)
    }
}

impl From<Finish> for FlashMsg {
    #[inline]
    fn from(m: Finish) -> Self {
        FlashMsg::Finish(m)
    }
}

impl From<ServerReq> for FlashMsg {
    #[inline]
    fn from(m: ServerReq) -> Self {
        FlashMsg::ServerReq(m)
    }
}

impl From<ServerResp> for FlashMsg {
    #[inline]
    fn from(m: ServerResp) -> Self {
        FlashMsg::ServerResp(m)
    }
}

/// Implemented by any simulation message type that embeds the flash
/// protocol. The flash components are generic over this trait, so they
/// run unchanged inside a flash-only simulation (`M = FlashMsg`) or the
/// full workspace composition.
pub trait FlashProtocol: Message + From<FlashMsg> {
    /// Extract the flash view of this message.
    ///
    /// # Panics
    ///
    /// Implementations panic when the message is not a flash message —
    /// delivery of a foreign protocol to a flash component is a wiring
    /// bug.
    fn into_flash(self) -> FlashMsg;
}

impl FlashProtocol for FlashMsg {
    #[inline]
    fn into_flash(self) -> FlashMsg {
        self
    }
}
