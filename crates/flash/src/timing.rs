//! NAND timing parameters.
//!
//! All defaults trace to the paper: 8 KiB reads take "50 µs or more"
//! (Section 3.1.1), a card sustains 1.2 GB/s across its 8 buses
//! (Section 6.5), and program/erase times are typical for the MLC NAND of
//! that generation.

use bluedbm_sim::time::{Bandwidth, SimTime};

/// Latency/bandwidth model of one flash card.
///
/// # Examples
///
/// ```rust
/// use bluedbm_flash::timing::FlashTiming;
/// use bluedbm_sim::time::SimTime;
///
/// let t = FlashTiming::paper();
/// assert_eq!(t.read_cell, SimTime::us(50));
/// // 8 KiB over one of 8 buses at 150 MB/s each.
/// assert!(t.transfer_time(8192) > SimTime::us(50));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashTiming {
    /// Cell-to-register read time (tR).
    pub read_cell: SimTime,
    /// Register-program time (tPROG).
    pub program_cell: SimTime,
    /// Block erase time (tBERS).
    pub erase_block: SimTime,
    /// Per-bus transfer bandwidth between NAND register and controller.
    pub bus_bandwidth: Bandwidth,
    /// Fixed command issue/decode overhead per operation in the
    /// controller.
    pub command_overhead: SimTime,
}

impl FlashTiming {
    /// Paper-calibrated timing: tR = 50 µs; 8 buses sharing 1.2 GB/s of
    /// card bandwidth gives 150 MB/s per bus; tPROG = 300 µs and
    /// tBERS = 3 ms are era-typical MLC values.
    pub fn paper() -> Self {
        FlashTiming {
            read_cell: SimTime::us(50),
            program_cell: SimTime::us(300),
            erase_block: SimTime::ms(3),
            bus_bandwidth: Bandwidth::mb(150.0),
            command_overhead: SimTime::ns(200),
        }
    }

    /// Fast timing for unit tests (microsecond-scale events).
    pub fn test_fast() -> Self {
        FlashTiming {
            read_cell: SimTime::us(5),
            program_cell: SimTime::us(20),
            erase_block: SimTime::us(100),
            bus_bandwidth: Bandwidth::gb(1.0),
            command_overhead: SimTime::ns(10),
        }
    }

    /// Time to move `bytes` across one bus.
    pub fn transfer_time(&self, bytes: usize) -> SimTime {
        self.bus_bandwidth.time_for(bytes as u64)
    }

    /// A copy with every bus throttled by `factor` (used by the Figure
    /// 16/19 throttled-BlueDBM experiments, which cap the device at
    /// 600 MB/s to match the off-the-shelf SSD).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn throttled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "bad throttle factor {factor}");
        FlashTiming {
            bus_bandwidth: self.bus_bandwidth.scale(factor),
            ..*self
        }
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_card_aggregate_bandwidth() {
        let t = FlashTiming::paper();
        // 8 buses x 150 MB/s = 1.2 GB/s, the paper's per-card figure.
        let aggregate = t.bus_bandwidth.as_bytes_per_sec() * 8.0;
        assert!((aggregate - 1.2e9).abs() < 1.0);
    }

    /// Picosecond-rounding tolerant equality.
    fn close(a: SimTime, b: SimTime) -> bool {
        a.saturating_sub(b).max(b.saturating_sub(a)) <= SimTime::ps(2)
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let t = FlashTiming::paper();
        let one = t.transfer_time(8192);
        let two = t.transfer_time(16384);
        assert!(close(one * 2, two), "{one} * 2 vs {two}");
    }

    #[test]
    fn throttle_scales_bandwidth_only() {
        let t = FlashTiming::paper();
        let half = t.throttled(0.5);
        assert_eq!(half.read_cell, t.read_cell);
        assert!(close(half.transfer_time(8192), t.transfer_time(8192) * 2));
    }

    #[test]
    #[should_panic(expected = "bad throttle factor")]
    fn throttle_validates() {
        FlashTiming::paper().throttled(0.0);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(FlashTiming::default(), FlashTiming::paper());
    }
}
