//! Flash card geometry and physical addressing.
//!
//! The paper's custom flash board holds 512 GB of NAND behind 8 buses; two
//! boards per node give 1 TB and 1.2 GB/s per board. The geometry here is
//! parameterized so tests can run on tiny arrays while the bench harness
//! uses paper-scale bus/chip counts (capacity itself is scaled down — the
//! simulator stores pages sparsely, so only *touched* capacity costs RAM).

use std::fmt;

/// Shape of one flash card.
///
/// # Examples
///
/// ```rust
/// use bluedbm_flash::geometry::FlashGeometry;
///
/// let g = FlashGeometry::paper_card();
/// assert_eq!(g.buses, 8);
/// assert_eq!(g.page_bytes, 8192);
/// assert!(g.total_pages() > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Independent channels ("buses") that can transfer in parallel.
    pub buses: usize,
    /// NAND dies per bus; dies on one bus share the bus for transfers but
    /// perform cell reads/programs concurrently.
    pub chips_per_bus: usize,
    /// Erase blocks per chip.
    pub blocks_per_chip: usize,
    /// Pages per erase block.
    pub pages_per_block: usize,
    /// User-visible bytes per page (the paper uses 8 KiB pages).
    pub page_bytes: usize,
}

impl FlashGeometry {
    /// The paper's flash board shape: 8 buses, 8 chips per bus, 8 KiB
    /// pages. Block/page counts are scaled to keep per-card capacity at a
    /// simulation-friendly 4 GiB (the store is sparse, so unwritten pages
    /// cost nothing).
    pub const fn paper_card() -> Self {
        FlashGeometry {
            buses: 8,
            chips_per_bus: 8,
            blocks_per_chip: 32,
            pages_per_block: 256,
            page_bytes: 8192,
        }
    }

    /// A minimal geometry for unit tests: 2 buses x 2 chips x 8 blocks x
    /// 16 pages of 512 B.
    pub const fn tiny() -> Self {
        FlashGeometry {
            buses: 2,
            chips_per_bus: 2,
            blocks_per_chip: 8,
            pages_per_block: 16,
            page_bytes: 512,
        }
    }

    /// A middle-sized geometry for integration tests and the FTL/GC
    /// stress suites.
    pub const fn small() -> Self {
        FlashGeometry {
            buses: 4,
            chips_per_bus: 2,
            blocks_per_chip: 16,
            pages_per_block: 32,
            page_bytes: 2048,
        }
    }

    /// Total chips on the card.
    pub const fn total_chips(&self) -> usize {
        self.buses * self.chips_per_bus
    }

    /// Total erase blocks on the card.
    pub const fn total_blocks(&self) -> usize {
        self.total_chips() * self.blocks_per_chip
    }

    /// Total pages on the card.
    pub const fn total_pages(&self) -> usize {
        self.total_blocks() * self.pages_per_block
    }

    /// Total user-visible capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        self.total_pages() as u64 * self.page_bytes as u64
    }

    /// Out-of-band bytes per page reserved for ECC parity: one SECDED
    /// parity byte per 64-bit data word.
    pub const fn oob_bytes(&self) -> usize {
        self.page_bytes / 8
    }

    /// `true` if `ppa` addresses a page inside this geometry.
    pub const fn contains(&self, ppa: Ppa) -> bool {
        (ppa.bus as usize) < self.buses
            && (ppa.chip as usize) < self.chips_per_bus
            && (ppa.block as usize) < self.blocks_per_chip
            && (ppa.page as usize) < self.pages_per_block
    }

    /// Map a physical address to a dense linear page index in
    /// `[0, total_pages)`. Inverse of [`FlashGeometry::ppa_of`].
    pub fn linear_of(&self, ppa: Ppa) -> usize {
        debug_assert!(self.contains(ppa));
        ((ppa.bus as usize * self.chips_per_bus + ppa.chip as usize) * self.blocks_per_chip
            + ppa.block as usize)
            * self.pages_per_block
            + ppa.page as usize
    }

    /// Map a dense linear page index back to a physical address.
    ///
    /// # Panics
    ///
    /// Panics if `linear >= total_pages()`.
    pub fn ppa_of(&self, linear: usize) -> Ppa {
        assert!(linear < self.total_pages(), "linear index out of range");
        let page = linear % self.pages_per_block;
        let rest = linear / self.pages_per_block;
        let block = rest % self.blocks_per_chip;
        let rest = rest / self.blocks_per_chip;
        let chip = rest % self.chips_per_bus;
        let bus = rest / self.chips_per_bus;
        Ppa::new(bus as u16, chip as u16, block as u32, page as u32)
    }

    /// Iterate all block addresses `(bus, chip, block)` as a `Ppa` with
    /// `page == 0`, in linear order.
    pub fn blocks(&self) -> impl Iterator<Item = Ppa> + '_ {
        let g = *self;
        (0..g.total_blocks()).map(move |i| {
            let block = i % g.blocks_per_chip;
            let rest = i / g.blocks_per_chip;
            let chip = rest % g.chips_per_bus;
            let bus = rest / g.chips_per_bus;
            Ppa::new(bus as u16, chip as u16, block as u32, 0)
        })
    }
}

/// Physical page address: (bus, chip, block, page).
///
/// This is the address format BlueDBM exposes all the way up to
/// applications — the file system hands streams of `Ppa`s to in-store
/// processors (paper Figure 8).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppa {
    /// Channel index.
    pub bus: u16,
    /// Die index within the channel.
    pub chip: u16,
    /// Erase-block index within the die.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Construct from components.
    pub const fn new(bus: u16, chip: u16, block: u32, page: u32) -> Self {
        Ppa {
            bus,
            chip,
            block,
            page,
        }
    }

    /// The same block with `page` replaced.
    pub const fn with_page(self, page: u32) -> Self {
        Ppa { page, ..self }
    }

    /// The containing block (page forced to 0).
    pub const fn block_addr(self) -> Self {
        self.with_page(0)
    }
}

impl fmt::Debug for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ppa(b{}.c{}.blk{}.p{})",
            self.bus, self.chip, self.block, self.page
        )
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bus{}/chip{}/block{}/page{}",
            self.bus, self.chip, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_card_shape() {
        let g = FlashGeometry::paper_card();
        assert_eq!(g.total_chips(), 64);
        assert_eq!(g.oob_bytes(), 1024);
        assert_eq!(g.capacity_bytes(), 4 * 1024 * 1024 * 1024);
    }

    #[test]
    fn linear_round_trip_covers_all_pages() {
        let g = FlashGeometry::tiny();
        for i in 0..g.total_pages() {
            let ppa = g.ppa_of(i);
            assert!(g.contains(ppa));
            assert_eq!(g.linear_of(ppa), i);
        }
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = FlashGeometry::tiny();
        assert!(!g.contains(Ppa::new(2, 0, 0, 0)));
        assert!(!g.contains(Ppa::new(0, 2, 0, 0)));
        assert!(!g.contains(Ppa::new(0, 0, 8, 0)));
        assert!(!g.contains(Ppa::new(0, 0, 0, 16)));
        assert!(g.contains(Ppa::new(1, 1, 7, 15)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ppa_of_validates() {
        let g = FlashGeometry::tiny();
        let _ = g.ppa_of(g.total_pages());
    }

    #[test]
    fn blocks_iterator_is_dense_and_unique() {
        let g = FlashGeometry::tiny();
        let blocks: Vec<Ppa> = g.blocks().collect();
        assert_eq!(blocks.len(), g.total_blocks());
        let mut dedup = blocks.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), blocks.len());
        assert!(blocks.iter().all(|b| b.page == 0 && g.contains(*b)));
    }

    #[test]
    fn ppa_helpers() {
        let p = Ppa::new(1, 2, 3, 4);
        assert_eq!(p.with_page(9).page, 9);
        assert_eq!(p.block_addr().page, 0);
        assert_eq!(p.block_addr().block, 3);
        assert_eq!(p.to_string(), "bus1/chip2/block3/page4");
        assert_eq!(format!("{p:?}"), "Ppa(b1.c2.blk3.p4)");
    }
}
