//! The Flash Interface Splitter (paper Section 3.1.2, Figure 3).
//!
//! Several hardware endpoints need shared access to one flash controller:
//! the local in-store processor, host software over PCIe DMA, and remote
//! in-store processors arriving over the integrated network. The splitter
//! multiplexes them by **tag renaming**: each client keeps its private tag
//! space; the splitter maps (client, client-tag) onto a free controller
//! tag on the way down and restores the client's tag on the way back up.

use std::collections::VecDeque;

use bluedbm_sim::engine::{Component, ComponentId, Ctx};
use bluedbm_sim::time::SimTime;

use crate::controller::{CtrlCmd, CtrlResp, Tag};
use crate::msg::{FlashMsg, FlashProtocol};

/// Per-rename bookkeeping.
#[derive(Clone, Copy, Debug)]
struct Rename {
    client: ComponentId,
    client_tag: Tag,
}

/// Cumulative splitter statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitterStats {
    /// Commands forwarded to the controller.
    pub forwarded: u64,
    /// Completions returned to clients.
    pub returned: u64,
    /// Commands that had to wait for a free rename tag.
    pub rename_stalls: u64,
}

/// Tag-renaming multiplexer in front of a [`crate::FlashController`].
///
/// Clients address their [`CtrlCmd`]s to the splitter exactly as they
/// would address the controller; `reply_to` should name the *client*, and
/// the splitter substitutes itself before forwarding.
#[derive(Clone)]
pub struct FlashSplitter {
    controller: ComponentId,
    free_tags: Vec<u16>,
    renames: Vec<Option<Rename>>,
    waiting: VecDeque<CtrlCmd>,
    stats: SplitterStats,
}

impl FlashSplitter {
    /// Create a splitter feeding `controller`, with `tag_count` rename
    /// slots (the controller's own tag budget is the natural choice).
    ///
    /// # Panics
    ///
    /// Panics if `tag_count` is zero or exceeds `u16::MAX`.
    pub fn new(controller: ComponentId, tag_count: usize) -> Self {
        assert!(tag_count > 0 && tag_count <= u16::MAX as usize);
        FlashSplitter {
            controller,
            free_tags: (0..tag_count as u16).rev().collect(),
            renames: vec![None; tag_count],
            waiting: VecDeque::new(),
            stats: SplitterStats::default(),
        }
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> SplitterStats {
        self.stats
    }

    /// Outstanding renamed commands.
    pub fn in_flight(&self) -> usize {
        self.renames.iter().filter(|r| r.is_some()).count()
    }

    fn forward<M: FlashProtocol>(&mut self, ctx: &mut Ctx<'_, M>, cmd: CtrlCmd) {
        let Some(renamed) = self.free_tags.pop() else {
            self.stats.rename_stalls += 1;
            self.waiting.push_back(cmd);
            return;
        };
        self.renames[renamed as usize] = Some(Rename {
            client: cmd.reply_to(),
            client_tag: cmd.tag(),
        });
        let me = ctx.self_id();
        let out = match cmd {
            CtrlCmd::Read { ppa, .. } => CtrlCmd::Read {
                tag: Tag(renamed),
                ppa,
                reply_to: me,
            },
            CtrlCmd::Write { ppa, data, .. } => CtrlCmd::Write {
                tag: Tag(renamed),
                ppa,
                data,
                reply_to: me,
            },
            CtrlCmd::Erase { ppa, .. } => CtrlCmd::Erase {
                tag: Tag(renamed),
                ppa,
                reply_to: me,
            },
        };
        self.stats.forwarded += 1;
        ctx.send(self.controller, SimTime::ZERO, FlashMsg::Cmd(out));
    }

    fn unrename<M: FlashProtocol>(&mut self, ctx: &mut Ctx<'_, M>, resp: CtrlResp) {
        let renamed = resp.tag().0;
        let rename = self.renames[renamed as usize]
            .take()
            .expect("completion for a tag the splitter never issued");
        self.free_tags.push(renamed);
        let restored = match resp {
            CtrlResp::ReadDone {
                result, issued_at, ..
            } => CtrlResp::ReadDone {
                tag: rename.client_tag,
                result,
                issued_at,
            },
            CtrlResp::WriteDone { result, .. } => CtrlResp::WriteDone {
                tag: rename.client_tag,
                result,
            },
            CtrlResp::EraseDone { result, .. } => CtrlResp::EraseDone {
                tag: rename.client_tag,
                result,
            },
        };
        self.stats.returned += 1;
        ctx.send(rename.client, SimTime::ZERO, FlashMsg::Resp(restored));
        if let Some(queued) = self.waiting.pop_front() {
            self.forward(ctx, queued);
        }
    }
}

impl<M: FlashProtocol> Component<M> for FlashSplitter {
    bluedbm_sim::clone_snapshot!();

    fn handle(&mut self, ctx: &mut Ctx<'_, M>, msg: M) {
        match msg.into_flash() {
            FlashMsg::Cmd(cmd) => self.forward(ctx, cmd),
            FlashMsg::Resp(resp) => self.unrename(ctx, resp),
            other => panic!("flash splitter got an unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FlashArray;
    use crate::controller::FlashController;
    use crate::geometry::{FlashGeometry, Ppa};
    use crate::timing::FlashTiming;
    use bluedbm_sim::engine::Simulator;

    /// Records read completions with their tags.
    struct Client {
        done: Vec<Tag>,
    }

    impl Component<FlashMsg> for Client {
        fn handle(&mut self, _ctx: &mut Ctx<'_, FlashMsg>, msg: FlashMsg) {
            let FlashMsg::Resp(resp) = msg else {
                panic!("CtrlResp expected")
            };
            self.done.push(resp.tag());
        }
    }

    fn world(
        tag_count: usize,
    ) -> (Simulator<FlashMsg>, ComponentId, ComponentId, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        let mut array = FlashArray::new(FlashGeometry::tiny(), 3);
        let data = vec![6u8; FlashGeometry::tiny().page_bytes];
        for p in 0..8 {
            array.program(Ppa::new(0, 0, 0, p), &data).unwrap();
        }
        let ctrl = sim.add_component(FlashController::new(array, FlashTiming::test_fast()));
        let split = sim.add_component(FlashSplitter::new(ctrl, tag_count));
        let c1 = sim.add_component(Client { done: vec![] });
        let c2 = sim.add_component(Client { done: vec![] });
        (sim, ctrl, split, c1, c2)
    }

    #[test]
    fn two_clients_share_one_controller_with_overlapping_tags() {
        let (mut sim, _ctrl, split, c1, c2) = world(16);
        // Both clients use tag 0 — the splitter must keep them apart.
        sim.schedule(
            SimTime::ZERO,
            split,
            CtrlCmd::Read {
                tag: Tag(0),
                ppa: Ppa::new(0, 0, 0, 0),
                reply_to: c1,
            },
        );
        sim.schedule(
            SimTime::ZERO,
            split,
            CtrlCmd::Read {
                tag: Tag(0),
                ppa: Ppa::new(0, 0, 0, 1),
                reply_to: c2,
            },
        );
        sim.run();
        assert_eq!(sim.component::<Client>(c1).unwrap().done, vec![Tag(0)]);
        assert_eq!(sim.component::<Client>(c2).unwrap().done, vec![Tag(0)]);
        let s = sim.component::<FlashSplitter>(split).unwrap();
        assert_eq!(s.stats().forwarded, 2);
        assert_eq!(s.stats().returned, 2);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn rename_exhaustion_queues_and_drains() {
        let (mut sim, _ctrl, split, c1, _c2) = world(2);
        for p in 0..8u32 {
            sim.schedule(
                SimTime::ZERO,
                split,
                CtrlCmd::Read {
                    tag: Tag(p as u16),
                    ppa: Ppa::new(0, 0, 0, p),
                    reply_to: c1,
                },
            );
        }
        sim.run();
        let c = sim.component::<Client>(c1).unwrap();
        assert_eq!(c.done.len(), 8);
        let s = sim.component::<FlashSplitter>(split).unwrap();
        assert!(s.stats().rename_stalls >= 6);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn preserves_client_tags_across_kinds() {
        let (mut sim, _ctrl, split, c1, _c2) = world(8);
        sim.schedule(
            SimTime::ZERO,
            split,
            CtrlCmd::Erase {
                tag: Tag(42),
                ppa: Ppa::new(0, 0, 1, 0),
                reply_to: c1,
            },
        );
        let buffer = sim
            .page_store_mut()
            .alloc_from(&vec![1u8; FlashGeometry::tiny().page_bytes]);
        sim.schedule(
            SimTime::ZERO,
            split,
            CtrlCmd::Write {
                tag: Tag(43),
                ppa: Ppa::new(0, 0, 1, 0),
                data: buffer,
                reply_to: c1,
            },
        );
        sim.run();
        let mut tags = sim.component::<Client>(c1).unwrap().done.clone();
        tags.sort();
        assert_eq!(tags, vec![Tag(42), Tag(43)]);
    }
}
