//! SECDED error correction: extended Hamming(72,64) over 64-bit words.
//!
//! The paper's Artix-7 flash controller spends most of its LUTs on ECC
//! encoders/decoders (Table 1) and presents the Virtex-7 a "logical
//! error-free access into flash". This module plays the same role in the
//! model: every page is encoded on program and decoded/corrected on read,
//! so the wear-driven bit errors injected by the array are actually
//! exercised and corrected, not just counted.
//!
//! The code is a textbook extended Hamming code: 7 parity bits at
//! power-of-two codeword positions plus one overall-parity bit, per 64-bit
//! data word. Single-bit errors (anywhere in the 72-bit codeword) are
//! corrected; double-bit errors are detected and reported as
//! uncorrectable.

/// Codeword positions 1..=71 that hold data bits (everything that is not a
/// power of two).
const fn data_positions() -> [u8; 64] {
    let mut out = [0u8; 64];
    let mut pos = 1u8;
    let mut i = 0;
    while i < 64 {
        if pos & (pos - 1) != 0 {
            out[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    out
}

#[cfg(test)]
const DATA_POS: [u8; 64] = data_positions();

/// Inverse map: codeword position -> data bit index (or 0xFF for parity
/// positions / unused).
const fn position_to_data() -> [u8; 128] {
    let mut out = [0xFFu8; 128];
    let positions = data_positions();
    let mut i = 0;
    while i < 64 {
        out[positions[i] as usize] = i as u8;
        i += 1;
    }
    out
}

const POS_TO_DATA: [u8; 128] = position_to_data();

/// `SYNDROME_MASK[j]` selects the data bits whose codeword positions
/// have bit `j` set: syndrome bit `j` is the parity of `data & mask`.
/// Turns the per-set-bit encode loop into seven popcounts.
const fn syndrome_masks() -> [u64; 7] {
    let positions = data_positions();
    let mut masks = [0u64; 7];
    let mut j = 0;
    while j < 7 {
        let mut i = 0;
        while i < 64 {
            if positions[i] & (1 << j) != 0 {
                masks[j] |= 1u64 << i;
            }
            i += 1;
        }
        j += 1;
    }
    masks
}

const SYNDROME_MASK: [u64; 7] = syndrome_masks();

/// Reference encoder: seven mask parities plus the overall bit. Used to
/// build the byte table at compile time (and by it alone at runtime).
const fn encode_word(data: u64) -> u8 {
    let mut syndrome = 0u8;
    let mut j = 0;
    while j < 7 {
        syndrome |= (((data & SYNDROME_MASK[j]).count_ones() & 1) as u8) << j;
        j += 1;
    }
    let overall = ((data.count_ones() + (syndrome as u32).count_ones()) & 1) as u8;
    syndrome | (overall << 7)
}

/// The code is linear over GF(2) — every parity bit, including the
/// overall bit, is an XOR of data bits — so the full 8-bit OOB of a
/// word is the XOR of eight per-byte contributions:
/// `OOB_TABLE[k][b] = encode(b << 8k)`. One L1-resident 2 KiB table
/// turns encode into eight byte loads and seven XORs, with no popcounts
/// on the hot path.
const fn oob_table() -> [[u8; 256]; 8] {
    let mut table = [[0u8; 256]; 8];
    let mut k = 0;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            table[k][b] = encode_word((b as u64) << (8 * k));
            b += 1;
        }
        k += 1;
    }
    table
}

const OOB_TABLE: [[u8; 256]; 8] = oob_table();

/// The 8-bit OOB (7 Hamming parity bits + overall bit) of a data word,
/// via the per-byte linearity table.
#[inline]
fn oob_of(data: u64) -> u8 {
    let b = data.to_le_bytes();
    OOB_TABLE[0][b[0] as usize]
        ^ OOB_TABLE[1][b[1] as usize]
        ^ OOB_TABLE[2][b[2] as usize]
        ^ OOB_TABLE[3][b[3] as usize]
        ^ OOB_TABLE[4][b[4] as usize]
        ^ OOB_TABLE[5][b[5] as usize]
        ^ OOB_TABLE[6][b[6] as usize]
        ^ OOB_TABLE[7][b[7] as usize]
}

/// Outcome of decoding one codeword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decoded {
    /// Clean word, no errors observed.
    Clean(u64),
    /// A single-bit error was corrected (it may have been in the data, a
    /// parity bit, or the overall-parity bit).
    Corrected(u64),
    /// Two (or an even number > 0 of) bit errors: detected, not
    /// correctable.
    Uncorrectable,
}

impl Decoded {
    /// The recovered data word, if the word was recoverable.
    pub fn data(self) -> Option<u64> {
        match self {
            Decoded::Clean(d) | Decoded::Corrected(d) => Some(d),
            Decoded::Uncorrectable => None,
        }
    }
}

/// Encode a 64-bit word, producing its 8-bit SECDED parity.
///
/// Bits 0..=6 of the result are the Hamming parity bits; bit 7 is the
/// overall parity of the other 71 codeword bits.
///
/// # Examples
///
/// ```rust
/// use bluedbm_flash::ecc::{decode, encode, Decoded};
///
/// let parity = encode(0xDEAD_BEEF_CAFE_F00D);
/// assert_eq!(decode(0xDEAD_BEEF_CAFE_F00D, parity), Decoded::Clean(0xDEAD_BEEF_CAFE_F00D));
/// ```
pub fn encode(data: u64) -> u8 {
    oob_of(data)
}

/// Decode a (data, parity) pair, correcting a single-bit error if present.
pub fn decode(data: u64, parity: u8) -> Decoded {
    // Recompute the word's OOB and diff it against the stored one. A
    // zero diff — the overwhelmingly common case — is a clean word.
    let diff = oob_of(data) ^ parity;
    if diff == 0 {
        return Decoded::Clean(data);
    }

    // Bits 0..=6 of the diff are exactly the classic Hamming syndrome
    // (recomputed parity XOR stored parity). The overall-parity check
    // over all 72 codeword bits folds to `diff`'s bit 7 XOR the
    // syndrome's own parity, by the same GF(2) linearity that powers
    // the table.
    let syndrome = diff & 0x7F;
    let overall_ok = ((u32::from(diff >> 7) + syndrome.count_ones()) & 1) == 0;

    match (syndrome, overall_ok) {
        (0, true) => Decoded::Clean(data), // unreachable: diff == 0 above
        (0, false) => Decoded::Corrected(data), // flip was in the overall bit
        (_, false) => {
            // Single-bit error at codeword position `syndrome`.
            if syndrome & (syndrome - 1) == 0 {
                // Power of two: a parity bit was hit; data is intact.
                Decoded::Corrected(data)
            } else {
                match POS_TO_DATA[syndrome as usize] {
                    // A syndrome outside the 71 used codeword positions can
                    // only arise from >= 3 raw errors: report, don't
                    // miscorrect.
                    0xFF => Decoded::Uncorrectable,
                    bit => Decoded::Corrected(data ^ (1u64 << bit)),
                }
            }
        }
        (_, true) => Decoded::Uncorrectable,
    }
}

/// Result of decoding a page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageDecode {
    /// Corrected page contents.
    pub data: Vec<u8>,
    /// Number of codewords in which a single-bit error was corrected.
    pub corrected_words: u32,
}

/// Encode a page: returns one parity byte per 8-byte word.
///
/// # Panics
///
/// Panics if `page.len()` is not a multiple of 8.
pub fn encode_page(page: &[u8]) -> Vec<u8> {
    assert!(page.len().is_multiple_of(8), "page length must be a multiple of 8");
    page.chunks_exact(8)
        .map(|w| encode(u64::from_le_bytes(w.try_into().expect("chunk of 8"))))
        .collect()
}

/// Decode a page against its out-of-band parity bytes, writing the
/// corrected contents straight into `out` — the zero-copy decode path:
/// the flash controller points `out` at a [`bluedbm_sim::PageStore`]
/// page, so a read's data is written exactly once, by the decoder.
///
/// Returns the number of corrected codewords, or `None` if any codeword
/// is uncorrectable (in which case `out`'s contents are unspecified).
///
/// # Panics
///
/// Panics if `page.len() != 8 * oob.len()` or `out.len() != page.len()`.
pub fn decode_page_into(page: &[u8], oob: &[u8], out: &mut [u8]) -> Option<u32> {
    assert_eq!(page.len(), oob.len() * 8, "page/oob size mismatch");
    assert_eq!(out.len(), page.len(), "output/page size mismatch");
    let mut corrected = 0u32;
    for ((word, &parity), out_word) in page
        .chunks_exact(8)
        .zip(oob)
        .zip(out.chunks_exact_mut(8))
    {
        let w = u64::from_le_bytes(word.try_into().expect("chunk of 8"));
        match decode(w, parity) {
            Decoded::Clean(d) => out_word.copy_from_slice(&d.to_le_bytes()),
            Decoded::Corrected(d) => {
                corrected += 1;
                out_word.copy_from_slice(&d.to_le_bytes());
            }
            Decoded::Uncorrectable => return None,
        }
    }
    Some(corrected)
}

/// Decode a page against its out-of-band parity bytes, allocating the
/// output. Convenience wrapper over [`decode_page_into`].
///
/// Returns `None` if any codeword is uncorrectable.
///
/// # Panics
///
/// Panics if `page.len() != 8 * oob.len()`.
pub fn decode_page(page: &[u8], oob: &[u8]) -> Option<PageDecode> {
    let mut data = vec![0u8; page.len()];
    let corrected_words = decode_page_into(page, oob, &mut data)?;
    Some(PageDecode {
        data,
        corrected_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluedbm_sim::rng::Rng;

    #[test]
    fn data_positions_are_the_non_powers_of_two() {
        assert_eq!(DATA_POS[0], 3);
        assert_eq!(DATA_POS[1], 5);
        assert_eq!(DATA_POS[63], 71);
        for p in DATA_POS {
            assert_ne!(p & (p - 1), 0, "{p} should not be a power of two");
        }
    }

    #[test]
    fn clean_round_trip() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let d = rng.next_u64();
            assert_eq!(decode(d, encode(d)), Decoded::Clean(d));
        }
        assert_eq!(decode(0, encode(0)), Decoded::Clean(0));
        assert_eq!(decode(u64::MAX, encode(u64::MAX)), Decoded::Clean(u64::MAX));
    }

    #[test]
    fn corrects_every_single_data_bit_flip() {
        let mut rng = Rng::new(2);
        for _ in 0..50 {
            let d = rng.next_u64();
            let p = encode(d);
            for bit in 0..64 {
                let corrupted = d ^ (1u64 << bit);
                assert_eq!(decode(corrupted, p), Decoded::Corrected(d), "bit {bit}");
            }
        }
    }

    #[test]
    fn corrects_every_single_parity_bit_flip() {
        let mut rng = Rng::new(3);
        for _ in 0..50 {
            let d = rng.next_u64();
            let p = encode(d);
            for bit in 0..8 {
                let corrupted_parity = p ^ (1u8 << bit);
                assert_eq!(
                    decode(d, corrupted_parity),
                    Decoded::Corrected(d),
                    "parity bit {bit}"
                );
            }
        }
    }

    #[test]
    fn detects_double_bit_flips() {
        let mut rng = Rng::new(4);
        for _ in 0..2000 {
            let d = rng.next_u64();
            let p = encode(d);
            let b1 = rng.below(64) as u32;
            let mut b2 = rng.below(64) as u32;
            while b2 == b1 {
                b2 = rng.below(64) as u32;
            }
            let corrupted = d ^ (1u64 << b1) ^ (1u64 << b2);
            assert_eq!(decode(corrupted, p), Decoded::Uncorrectable);
        }
    }

    #[test]
    fn detects_mixed_data_parity_double_flips() {
        let mut rng = Rng::new(5);
        for _ in 0..2000 {
            let d = rng.next_u64();
            let p = encode(d);
            let db = rng.below(64) as u32;
            let pb = rng.below(7) as u32; // avoid the overall bit for this case
            let res = decode(d ^ (1u64 << db), p ^ (1u8 << pb));
            assert_eq!(res, Decoded::Uncorrectable);
        }
    }

    #[test]
    fn decoded_data_accessor() {
        assert_eq!(Decoded::Clean(5).data(), Some(5));
        assert_eq!(Decoded::Corrected(6).data(), Some(6));
        assert_eq!(Decoded::Uncorrectable.data(), None);
    }

    #[test]
    fn page_round_trip() {
        let mut rng = Rng::new(6);
        let mut page = vec![0u8; 512];
        rng.fill_bytes(&mut page);
        let oob = encode_page(&page);
        assert_eq!(oob.len(), 64);
        let dec = decode_page(&page, &oob).expect("clean page decodes");
        assert_eq!(dec.data, page);
        assert_eq!(dec.corrected_words, 0);
    }

    #[test]
    fn page_corrects_scattered_single_bit_errors() {
        let mut rng = Rng::new(7);
        let mut page = vec![0u8; 512];
        rng.fill_bytes(&mut page);
        let oob = encode_page(&page);
        // Flip one bit in each of 10 different words.
        let mut corrupted = page.clone();
        for w in 0..10 {
            let byte = w * 8 + (rng.below(8) as usize);
            corrupted[byte] ^= 1 << rng.below(8);
        }
        let dec = decode_page(&corrupted, &oob).expect("single-bit errors correct");
        assert_eq!(dec.data, page);
        assert_eq!(dec.corrected_words, 10);
    }

    #[test]
    fn page_reports_uncorrectable() {
        let mut rng = Rng::new(8);
        let mut page = vec![0u8; 64];
        rng.fill_bytes(&mut page);
        let oob = encode_page(&page);
        let mut corrupted = page.clone();
        corrupted[0] ^= 0b11; // two flips in word 0
        assert!(decode_page(&corrupted, &oob).is_none());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn encode_page_validates_length() {
        let _ = encode_page(&[0u8; 7]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn decode_page_validates_oob() {
        let _ = decode_page(&[0u8; 16], &[0u8; 1]);
    }
}
