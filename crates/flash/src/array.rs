//! Functional NAND array: what the flash chips actually store.
//!
//! This is the synchronous truth layer under the DES controller. It
//! enforces real NAND semantics — program-once-then-erase, whole-block
//! erases, per-block wear counters — stores real bytes (sparsely, so huge
//! geometries cost only what is touched), injects wear-dependent bit
//! errors, and runs every page through the SECDED codec from [`crate::ecc`].

use bluedbm_sim::fxhash::FxHashMap;

use bluedbm_sim::rng::Rng;

use crate::ecc;
use crate::error::FlashError;
use crate::geometry::{FlashGeometry, Ppa};

/// Bit-error injection parameters.
///
/// The raw bit error rate grows linearly with a block's erase count,
/// which is the first-order behaviour of real NAND wear.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorModel {
    /// Probability that any given stored bit reads back flipped, at zero
    /// wear.
    pub base_ber: f64,
    /// Additional bit error probability per erase cycle of wear.
    pub ber_per_erase: f64,
    /// Fraction of blocks factory-marked bad.
    pub factory_bad_fraction: f64,
}

impl ErrorModel {
    /// No injected errors, no bad blocks — the deterministic default used
    /// by most tests and by the performance experiments.
    pub const fn none() -> Self {
        ErrorModel {
            base_ber: 0.0,
            ber_per_erase: 0.0,
            factory_bad_fraction: 0.0,
        }
    }

    /// A wear-sensitive model for the reliability test suites.
    pub const fn wearing() -> Self {
        ErrorModel {
            base_ber: 1e-7,
            ber_per_erase: 1e-8,
            factory_bad_fraction: 0.01,
        }
    }
}

impl Default for ErrorModel {
    fn default() -> Self {
        Self::none()
    }
}

/// Result of a successful page read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadResult {
    /// The page contents after ECC correction.
    pub data: Vec<u8>,
    /// Codewords in which a single-bit error was corrected on this read.
    pub corrected_words: u32,
}

#[derive(Clone, Debug, Default)]
struct BlockState {
    erase_count: u64,
    bad: bool,
    /// Bitmap of programmed pages.
    programmed: Vec<bool>,
}

/// Cumulative operation counters for one array.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Pages programmed.
    pub programs: u64,
    /// Pages read.
    pub reads: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Pages invalidated via [`FlashArray::trim`].
    pub trims: u64,
    /// Total single-bit corrections performed by ECC.
    pub corrected_words: u64,
    /// Reads that failed with an uncorrectable ECC error.
    pub uncorrectable: u64,
}

/// A stored codeword: page data plus its OOB parity bytes.
type StoredPage = (Box<[u8]>, Box<[u8]>);

/// First-touch undo journal for speculative execution (see
/// [`FlashArray::checkpoint_begin`]). An array can hold gigabytes of
/// sparse page data, so the speculation snapshot must not clone it
/// wholesale: instead, the first mutation of each page / block under an
/// open checkpoint records the *prior* value here, and rollback replays
/// the journal. The RNG and counters are tiny and change on every read,
/// so those two are captured up front.
#[derive(Debug, Default)]
struct ArrayJournal {
    /// Prior codeword per touched page (`None` = the page was absent).
    pages: FxHashMap<usize, Option<StoredPage>>,
    /// Prior state per touched block.
    blocks: FxHashMap<usize, BlockState>,
    rng: Option<Rng>,
    stats: ArrayStats,
}

/// One flash card's worth of NAND.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct FlashArray {
    geometry: FlashGeometry,
    /// Stored codewords: page data + OOB parity, keyed by linear page id.
    pages: FxHashMap<usize, StoredPage>,
    /// Per-block wear/bad/programmed state, keyed by linear block id.
    blocks: Vec<BlockState>,
    rng: Rng,
    error_model: ErrorModel,
    stats: ArrayStats,
    /// Open speculation checkpoint, if any.
    journal: Option<Box<ArrayJournal>>,
}

impl FlashArray {
    /// A fresh array with no injected errors.
    pub fn new(geometry: FlashGeometry, seed: u64) -> Self {
        Self::with_error_model(geometry, seed, ErrorModel::none())
    }

    /// A fresh array with the given error model; factory-bad blocks are
    /// chosen deterministically from `seed`.
    pub fn with_error_model(geometry: FlashGeometry, seed: u64, error_model: ErrorModel) -> Self {
        let mut rng = Rng::new(seed);
        let blocks = (0..geometry.total_blocks())
            .map(|_| BlockState {
                erase_count: 0,
                bad: rng.chance(error_model.factory_bad_fraction),
                programmed: vec![false; geometry.pages_per_block],
            })
            .collect();
        FlashArray {
            geometry,
            pages: FxHashMap::default(),
            blocks,
            rng,
            error_model,
            stats: ArrayStats::default(),
            journal: None,
        }
    }

    /// Open an undo checkpoint: every mutation until the matching
    /// [`checkpoint_commit`](Self::checkpoint_commit) or
    /// [`checkpoint_rollback`](Self::checkpoint_rollback) journals the
    /// prior value of each page and block it first touches, so rollback
    /// restores the array bit for bit without the snapshot ever copying
    /// untouched data. The controller wires these into
    /// [`bluedbm_sim::engine::Component::snapshot`] for the optimistic
    /// sharded runtime.
    ///
    /// # Panics
    ///
    /// Panics if a checkpoint is already open (speculation never nests).
    pub fn checkpoint_begin(&mut self) {
        assert!(self.journal.is_none(), "nested flash-array checkpoint");
        self.journal = Some(Box::new(ArrayJournal {
            pages: FxHashMap::default(),
            blocks: FxHashMap::default(),
            rng: Some(self.rng.clone()),
            stats: self.stats,
        }));
    }

    /// Keep all mutations since [`checkpoint_begin`](Self::checkpoint_begin)
    /// and drop the journal.
    ///
    /// # Panics
    ///
    /// Panics without an open checkpoint.
    pub fn checkpoint_commit(&mut self) {
        self.journal.take().expect("commit without checkpoint");
    }

    /// Undo every mutation since [`checkpoint_begin`](Self::checkpoint_begin):
    /// journalled pages and blocks revert to their prior values, the RNG
    /// stream rewinds, the counters roll back.
    ///
    /// # Panics
    ///
    /// Panics without an open checkpoint.
    pub fn checkpoint_rollback(&mut self) {
        let j = self.journal.take().expect("rollback without checkpoint");
        for (linear, prior) in j.pages {
            match prior {
                Some(page) => {
                    self.pages.insert(linear, page);
                }
                None => {
                    self.pages.remove(&linear);
                }
            }
        }
        for (bi, prior) in j.blocks {
            self.blocks[bi] = prior;
        }
        self.rng = j.rng.expect("journal holds the checkpoint rng");
        self.stats = j.stats;
    }

    /// Record the prior value of page `linear` on first touch under an
    /// open checkpoint (no-op otherwise, and on later touches).
    #[inline]
    fn journal_page(&mut self, linear: usize) {
        let FlashArray { journal, pages, .. } = self;
        if let Some(j) = journal.as_deref_mut() {
            j.pages
                .entry(linear)
                .or_insert_with(|| pages.get(&linear).cloned());
        }
    }

    /// As [`journal_page`](Self::journal_page), for block `bi`.
    #[inline]
    fn journal_block(&mut self, bi: usize) {
        let FlashArray { journal, blocks, .. } = self;
        if let Some(j) = journal.as_deref_mut() {
            j.blocks.entry(bi).or_insert_with(|| blocks[bi].clone());
        }
    }

    /// The card geometry.
    pub fn geometry(&self) -> FlashGeometry {
        self.geometry
    }

    /// Operation counters.
    pub fn stats(&self) -> ArrayStats {
        self.stats
    }

    fn block_index(&self, ppa: Ppa) -> usize {
        (ppa.bus as usize * self.geometry.chips_per_bus + ppa.chip as usize)
            * self.geometry.blocks_per_chip
            + ppa.block as usize
    }

    fn check(&self, ppa: Ppa) -> Result<(), FlashError> {
        if !self.geometry.contains(ppa) {
            return Err(FlashError::OutOfRange(ppa));
        }
        if self.blocks[self.block_index(ppa)].bad {
            return Err(FlashError::BadBlock(ppa));
        }
        Ok(())
    }

    /// Program one page.
    ///
    /// # Errors
    ///
    /// * [`FlashError::OutOfRange`] / [`FlashError::BadBlock`] on a bad
    ///   address.
    /// * [`FlashError::WrongPageSize`] unless `data` is exactly one page.
    /// * [`FlashError::AlreadyProgrammed`] if the page holds data — NAND
    ///   cannot overwrite in place.
    pub fn program(&mut self, ppa: Ppa, data: &[u8]) -> Result<(), FlashError> {
        self.check(ppa)?;
        if data.len() != self.geometry.page_bytes {
            return Err(FlashError::WrongPageSize {
                got: data.len(),
                want: self.geometry.page_bytes,
            });
        }
        let bi = self.block_index(ppa);
        if self.blocks[bi].programmed[ppa.page as usize] {
            return Err(FlashError::AlreadyProgrammed(ppa));
        }
        let linear = self.geometry.linear_of(ppa);
        self.journal_block(bi);
        self.journal_page(linear);
        self.blocks[bi].programmed[ppa.page as usize] = true;
        let oob = ecc::encode_page(data);
        self.pages.insert(linear, (data.into(), oob.into_boxed_slice()));
        self.stats.programs += 1;
        Ok(())
    }

    /// Read one page through the ECC decode path.
    ///
    /// Bit errors are injected per the [`ErrorModel`] and the block's
    /// wear, then corrected (or reported) by SECDED.
    ///
    /// # Errors
    ///
    /// * Address errors as for [`FlashArray::program`].
    /// * [`FlashError::NotProgrammed`] if the page is erased.
    /// * [`FlashError::Uncorrectable`] if more errors hit a codeword than
    ///   SECDED can repair.
    pub fn read(&mut self, ppa: Ppa) -> Result<ReadResult, FlashError> {
        let mut data = vec![0u8; self.geometry.page_bytes];
        let corrected_words = self.read_into(ppa, &mut data)?;
        Ok(ReadResult {
            data,
            corrected_words,
        })
    }

    /// Read one page through the ECC decode path, writing the corrected
    /// contents straight into `dest` (one page long) — the write-once
    /// read path: the DES controller points `dest` at a
    /// [`bluedbm_sim::PageStore`] page, so read data is produced by the
    /// decoder in place instead of being decoded into a scratch `Vec`
    /// and copied into the store afterwards. On the common no-injected-
    /// errors configuration the stored codeword is decoded directly from
    /// the array's backing buffer with no intermediate copy at all.
    ///
    /// Returns the number of corrected codewords; on any error `dest`'s
    /// contents are unspecified.
    ///
    /// # Errors
    ///
    /// As for [`FlashArray::read`].
    ///
    /// # Panics
    ///
    /// Panics if `dest` is not exactly one page.
    pub fn read_into(&mut self, ppa: Ppa, dest: &mut [u8]) -> Result<u32, FlashError> {
        self.check(ppa)?;
        let linear = self.geometry.linear_of(ppa);
        let bi = self.block_index(ppa);
        let wear = self.blocks[bi].erase_count;
        if !self.pages.contains_key(&linear) {
            return Err(FlashError::NotProgrammed(ppa));
        }
        self.stats.reads += 1;
        let decoded = if self.ber_at(wear) <= 0.0 {
            // No injected errors: decode the stored codeword in place.
            let (data, oob) = self.pages.get(&linear).expect("checked present");
            ecc::decode_page_into(data, oob, dest)
        } else {
            // Error injection must not corrupt the stored truth: flip
            // bits on a scratch copy, then decode into `dest`.
            let (data, oob) = self.pages.get(&linear).expect("checked present");
            let (mut data, mut oob) = (data.to_vec(), oob.to_vec());
            self.inject_errors(&mut data, &mut oob, wear);
            ecc::decode_page_into(&data, &oob, dest)
        };
        match decoded {
            Some(corrected) => {
                self.stats.corrected_words += u64::from(corrected);
                Ok(corrected)
            }
            None => {
                self.stats.uncorrectable += 1;
                Err(FlashError::Uncorrectable(ppa))
            }
        }
    }

    /// Raw bit error rate at `wear` erase cycles — the one source of
    /// truth for both the zero-copy fast-path gate and the injector.
    fn ber_at(&self, wear: u64) -> f64 {
        self.error_model.base_ber + self.error_model.ber_per_erase * wear as f64
    }

    fn inject_errors(&mut self, data: &mut [u8], oob: &mut [u8], wear: u64) {
        let ber = self.ber_at(wear);
        if ber <= 0.0 {
            return;
        }
        // Expected flips over the whole codeword region; sample a count
        // from the exponentially-spaced geometric approximation.
        let total_bits = (data.len() + oob.len()) * 8;
        let expected = ber * total_bits as f64;
        let mut flips = expected.floor() as u64;
        if self.rng.chance(expected - flips as f64) {
            flips += 1;
        }
        for _ in 0..flips {
            let bit = self.rng.below(total_bits as u64) as usize;
            let (byte, off) = (bit / 8, bit % 8);
            if byte < data.len() {
                data[byte] ^= 1 << off;
            } else {
                oob[byte - data.len()] ^= 1 << off;
            }
        }
    }

    /// Invalidate one page (a TRIM): the stored data is dropped and the
    /// page returns to the programmable state, as if its block had been
    /// garbage-collected around it. Real NAND can only erase whole
    /// blocks; this models the *observable outcome* of the FTL's
    /// copy-forward + erase at single-page granularity, so allocation
    /// layers (the cluster KV store's free list) can recycle pages
    /// without simulating full reclamation. Trimming an unprogrammed
    /// page is a no-op.
    ///
    /// # Errors
    ///
    /// Address errors as for [`FlashArray::program`].
    pub fn trim(&mut self, ppa: Ppa) -> Result<(), FlashError> {
        self.check(ppa)?;
        let bi = self.block_index(ppa);
        if self.blocks[bi].programmed[ppa.page as usize] {
            let linear = self.geometry.linear_of(ppa);
            self.journal_block(bi);
            self.journal_page(linear);
            self.blocks[bi].programmed[ppa.page as usize] = false;
            self.pages.remove(&linear);
            self.stats.trims += 1;
        }
        Ok(())
    }

    /// Erase a whole block (the `page` field of `ppa` is ignored).
    ///
    /// # Errors
    ///
    /// Address errors as for [`FlashArray::program`].
    pub fn erase(&mut self, ppa: Ppa) -> Result<(), FlashError> {
        self.check(ppa)?;
        let bi = self.block_index(ppa);
        self.journal_block(bi);
        for page in 0..self.geometry.pages_per_block {
            let linear = self.geometry.linear_of(ppa.with_page(page as u32));
            self.journal_page(linear);
            self.pages.remove(&linear);
            self.blocks[bi].programmed[page] = false;
        }
        self.blocks[bi].erase_count += 1;
        self.stats.erases += 1;
        Ok(())
    }

    /// Program one page **without storing data** — the blank-shadow mode
    /// used by the offline FTL twin (`bluedbm_ftl`) when it mirrors a
    /// simulated device: the programmed bitmap, the program-once
    /// discipline, and the wear counters are modelled exactly, but no
    /// page bytes or ECC parity are stored, so a shadow array costs only
    /// its per-block bitmaps. A blank-programmed page reads back as
    /// [`FlashError::NotProgrammed`] (it holds no bytes) while
    /// [`FlashArray::is_programmed`] reports `true`; use
    /// [`FlashArray::page_has_data`] to tell the two apart.
    ///
    /// # Errors
    ///
    /// Address errors as for [`FlashArray::program`], and
    /// [`FlashError::AlreadyProgrammed`] if the page is already
    /// programmed (with or without data).
    pub fn program_blank(&mut self, ppa: Ppa) -> Result<(), FlashError> {
        self.check(ppa)?;
        let bi = self.block_index(ppa);
        if self.blocks[bi].programmed[ppa.page as usize] {
            return Err(FlashError::AlreadyProgrammed(ppa));
        }
        self.journal_block(bi);
        self.blocks[bi].programmed[ppa.page as usize] = true;
        self.stats.programs += 1;
        Ok(())
    }

    /// `true` if the page currently holds data.
    pub fn is_programmed(&self, ppa: Ppa) -> bool {
        self.geometry.contains(ppa)
            && self.blocks[self.block_index(ppa)].programmed[ppa.page as usize]
    }

    /// `true` if the page holds stored bytes — i.e. it was programmed via
    /// [`FlashArray::program`], not [`FlashArray::program_blank`].
    pub fn page_has_data(&self, ppa: Ppa) -> bool {
        self.geometry.contains(ppa) && self.pages.contains_key(&self.geometry.linear_of(ppa))
    }

    /// Erase cycles endured by the block containing `ppa`.
    pub fn erase_count(&self, ppa: Ppa) -> u64 {
        self.blocks[self.block_index(ppa)].erase_count
    }

    /// `true` if the containing block is marked bad.
    pub fn is_bad(&self, ppa: Ppa) -> bool {
        self.blocks[self.block_index(ppa)].bad
    }

    /// Mark the containing block bad (a "grown" bad block).
    pub fn mark_bad(&mut self, ppa: Ppa) {
        let bi = self.block_index(ppa);
        self.journal_block(bi);
        self.blocks[bi].bad = true;
    }

    /// All good (not bad) block addresses, in linear order.
    pub fn good_blocks(&self) -> Vec<Ppa> {
        self.geometry
            .blocks()
            .filter(|b| !self.is_bad(*b))
            .collect()
    }

    /// Highest erase count across all blocks (wear-leveling metric).
    pub fn max_wear(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0)
    }

    /// Lowest erase count across good blocks.
    pub fn min_wear(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| !b.bad)
            .map(|b| b.erase_count)
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FlashArray {
        FlashArray::new(FlashGeometry::tiny(), 42)
    }

    fn page_of(array: &FlashArray, fill: u8) -> Vec<u8> {
        vec![fill; array.geometry().page_bytes]
    }

    #[test]
    fn program_read_round_trip() {
        let mut a = tiny();
        let ppa = Ppa::new(1, 0, 2, 3);
        let data = page_of(&a, 0x5A);
        a.program(ppa, &data).unwrap();
        let r = a.read(ppa).unwrap();
        assert_eq!(r.data, data);
        assert_eq!(r.corrected_words, 0);
        assert!(a.is_programmed(ppa));
        assert_eq!(a.stats().programs, 1);
        assert_eq!(a.stats().reads, 1);
    }

    #[test]
    fn cannot_overwrite_without_erase() {
        let mut a = tiny();
        let ppa = Ppa::new(0, 0, 0, 0);
        a.program(ppa, &page_of(&a, 1)).unwrap();
        assert_eq!(
            a.program(ppa, &page_of(&a, 2)),
            Err(FlashError::AlreadyProgrammed(ppa))
        );
        a.erase(ppa).unwrap();
        assert!(!a.is_programmed(ppa));
        a.program(ppa, &page_of(&a, 2)).unwrap();
        assert_eq!(a.read(ppa).unwrap().data, page_of(&a, 2));
    }

    #[test]
    fn trim_invalidates_one_page_and_allows_reprogram() {
        let mut a = tiny();
        let victim = Ppa::new(0, 0, 2, 1);
        let neighbor = Ppa::new(0, 0, 2, 2);
        a.program(victim, &page_of(&a, 1)).unwrap();
        a.program(neighbor, &page_of(&a, 2)).unwrap();
        a.trim(victim).unwrap();
        assert!(!a.is_programmed(victim));
        assert_eq!(a.read(victim), Err(FlashError::NotProgrammed(victim)));
        // Unlike erase, the rest of the block is untouched (no wear).
        assert_eq!(a.read(neighbor).unwrap().data, page_of(&a, 2));
        assert_eq!(a.erase_count(victim), 0);
        // The page is programmable again.
        a.program(victim, &page_of(&a, 3)).unwrap();
        assert_eq!(a.read(victim).unwrap().data, page_of(&a, 3));
        assert_eq!(a.stats().trims, 1);
        // Trimming an erased page is a no-op.
        a.trim(Ppa::new(1, 1, 0, 0)).unwrap();
        assert_eq!(a.stats().trims, 1);
        // Address checks still apply.
        assert_eq!(a.trim(Ppa::new(9, 0, 0, 0)), Err(FlashError::OutOfRange(Ppa::new(9, 0, 0, 0))));
    }

    #[test]
    fn erase_clears_whole_block_only() {
        let mut a = tiny();
        let in_block = Ppa::new(0, 0, 3, 5);
        let other_block = Ppa::new(0, 0, 4, 5);
        a.program(in_block, &page_of(&a, 1)).unwrap();
        a.program(other_block, &page_of(&a, 2)).unwrap();
        a.erase(in_block).unwrap();
        assert!(!a.is_programmed(in_block));
        assert!(a.is_programmed(other_block));
        assert_eq!(a.erase_count(in_block), 1);
        assert_eq!(a.erase_count(other_block), 0);
    }

    #[test]
    fn read_unprogrammed_fails() {
        let mut a = tiny();
        let ppa = Ppa::new(0, 1, 0, 0);
        assert_eq!(a.read(ppa), Err(FlashError::NotProgrammed(ppa)));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut a = tiny();
        let ppa = Ppa::new(9, 0, 0, 0);
        assert_eq!(a.read(ppa), Err(FlashError::OutOfRange(ppa)));
        assert_eq!(
            a.program(ppa, &page_of(&a, 0)),
            Err(FlashError::OutOfRange(ppa))
        );
    }

    #[test]
    fn wrong_page_size_rejected() {
        let mut a = tiny();
        let err = a.program(Ppa::new(0, 0, 0, 0), &[0u8; 3]).unwrap_err();
        assert_eq!(
            err,
            FlashError::WrongPageSize {
                got: 3,
                want: a.geometry().page_bytes
            }
        );
    }

    #[test]
    fn bad_blocks_rejected_and_growable() {
        let mut a = tiny();
        let ppa = Ppa::new(1, 1, 1, 0);
        assert!(!a.is_bad(ppa));
        a.mark_bad(ppa);
        assert!(a.is_bad(ppa));
        assert_eq!(a.program(ppa, &page_of(&a, 0)), Err(FlashError::BadBlock(ppa)));
        assert_eq!(a.erase(ppa), Err(FlashError::BadBlock(ppa)));
        assert_eq!(a.good_blocks().len(), a.geometry().total_blocks() - 1);
    }

    #[test]
    fn factory_bad_blocks_from_seed_are_deterministic() {
        let model = ErrorModel {
            factory_bad_fraction: 0.25,
            ..ErrorModel::none()
        };
        let a = FlashArray::with_error_model(FlashGeometry::tiny(), 7, model);
        let b = FlashArray::with_error_model(FlashGeometry::tiny(), 7, model);
        assert_eq!(a.good_blocks(), b.good_blocks());
        let bad = a.geometry().total_blocks() - a.good_blocks().len();
        assert!(bad > 0, "a 25% fraction over 32 blocks should mark some bad");
    }

    #[test]
    fn injected_single_bit_errors_are_corrected() {
        let model = ErrorModel {
            base_ber: 3e-5, // ~0.15 flips per 512B+64B page read
            ber_per_erase: 0.0,
            factory_bad_fraction: 0.0,
        };
        let mut a = FlashArray::with_error_model(FlashGeometry::tiny(), 11, model);
        let ppa = Ppa::new(0, 0, 0, 0);
        let data = page_of(&a, 0xA5);
        a.program(ppa, &data).unwrap();
        let mut corrected_total = 0;
        for _ in 0..2000 {
            let r = a.read(ppa).expect("SECDED should absorb sparse errors");
            assert_eq!(r.data, data, "corrected data must match what was written");
            corrected_total += r.corrected_words;
        }
        assert!(corrected_total > 0, "the error model should have fired");
    }

    #[test]
    fn heavy_errors_become_uncorrectable() {
        let model = ErrorModel {
            base_ber: 0.02, // many flips per word: SECDED must give up sometimes
            ber_per_erase: 0.0,
            factory_bad_fraction: 0.0,
        };
        let mut a = FlashArray::with_error_model(FlashGeometry::tiny(), 13, model);
        let ppa = Ppa::new(0, 0, 0, 0);
        a.program(ppa, &page_of(&a, 0xFF)).unwrap();
        let mut saw_uncorrectable = false;
        for _ in 0..200 {
            if a.read(ppa) == Err(FlashError::Uncorrectable(ppa)) {
                saw_uncorrectable = true;
                break;
            }
        }
        assert!(saw_uncorrectable);
        assert!(a.stats().uncorrectable > 0);
    }

    #[test]
    fn wear_increases_error_rate() {
        let model = ErrorModel {
            base_ber: 0.0,
            ber_per_erase: 2e-6,
            factory_bad_fraction: 0.0,
        };
        let mut a = FlashArray::with_error_model(FlashGeometry::tiny(), 17, model);
        let ppa = Ppa::new(0, 0, 0, 0);
        // Wear the block heavily.
        for _ in 0..500 {
            a.erase(ppa).unwrap();
        }
        a.program(ppa, &page_of(&a, 1)).unwrap();
        let mut corrected = 0;
        for _ in 0..500 {
            corrected += a.read(ppa).map(|r| r.corrected_words).unwrap_or(1);
        }
        assert!(corrected > 0, "worn block should show bit errors");
        assert_eq!(a.max_wear(), 500);
        assert_eq!(a.min_wear(), 0);
    }

    #[test]
    fn checkpoint_rollback_restores_everything_commit_keeps_it() {
        let wearing = ErrorModel::wearing();
        let mut a = FlashArray::with_error_model(FlashGeometry::tiny(), 23, wearing);
        let keep = a.good_blocks()[0];
        let victim = keep.with_page(1);
        let erased = a.good_blocks()[1];
        a.program(keep, &page_of(&a, 1)).unwrap();
        a.program(victim, &page_of(&a, 2)).unwrap();
        let stats0 = a.stats();
        let wear0 = a.erase_count(erased);

        // Speculate: overwrite-adjacent mutations of every kind, plus
        // reads (which advance the RNG under a wearing model).
        a.checkpoint_begin();
        a.trim(victim).unwrap();
        a.program(victim, &page_of(&a, 3)).unwrap();
        a.erase(erased).unwrap();
        a.mark_bad(erased);
        a.read(keep).unwrap();
        a.checkpoint_rollback();

        assert_eq!(a.stats(), stats0, "counters must rewind");
        assert_eq!(a.read(victim).unwrap().data, page_of(&a, 2));
        assert_eq!(a.erase_count(erased), wear0);
        assert!(!a.is_bad(erased));
        // The RNG stream rewound too: a replay of the same speculation
        // is bit-identical (same corrected-word counts, same stats).
        a.checkpoint_begin();
        a.read(keep).unwrap();
        let replay_a = a.stats();
        a.checkpoint_rollback();
        a.checkpoint_begin();
        a.read(keep).unwrap();
        let replay_b = a.stats();
        // Commit keeps the speculated read.
        a.checkpoint_commit();
        assert_eq!(replay_a, replay_b, "replayed speculation diverged");
        assert_eq!(a.stats(), replay_b);
    }

    #[test]
    fn blank_programs_track_the_bitmap_but_store_no_bytes() {
        let mut a = tiny();
        let ppa = Ppa::new(0, 0, 1, 2);
        a.program_blank(ppa).unwrap();
        assert!(a.is_programmed(ppa));
        assert!(!a.page_has_data(ppa));
        assert_eq!(a.stats().programs, 1);
        // Program-once discipline applies to blank programs too.
        assert_eq!(a.program_blank(ppa), Err(FlashError::AlreadyProgrammed(ppa)));
        assert_eq!(
            a.program(ppa, &page_of(&a, 1)),
            Err(FlashError::AlreadyProgrammed(ppa))
        );
        // Reads see no bytes.
        assert_eq!(a.read(ppa), Err(FlashError::NotProgrammed(ppa)));
        // Trim and erase recycle blank pages like data pages.
        a.trim(ppa).unwrap();
        assert!(!a.is_programmed(ppa));
        a.program(ppa, &page_of(&a, 7)).unwrap();
        assert!(a.page_has_data(ppa));
        a.erase(ppa).unwrap();
        assert!(!a.is_programmed(ppa));
        assert_eq!(a.erase_count(ppa), 1);
    }

    #[test]
    fn blank_programs_roll_back_with_the_journal() {
        let mut a = tiny();
        let ppa = Ppa::new(1, 0, 0, 0);
        a.checkpoint_begin();
        a.program_blank(ppa).unwrap();
        assert!(a.is_programmed(ppa));
        a.checkpoint_rollback();
        assert!(!a.is_programmed(ppa));
        assert_eq!(a.stats().programs, 0);
    }

    #[test]
    fn sparse_storage_handles_paper_geometry() {
        // 4 GiB card, but we only touch two pages — must be cheap.
        let mut a = FlashArray::new(FlashGeometry::paper_card(), 1);
        let p1 = Ppa::new(7, 7, 31, 255);
        let data = vec![9u8; a.geometry().page_bytes];
        a.program(p1, &data).unwrap();
        assert_eq!(a.read(p1).unwrap().data, data);
    }
}
