//! The Flash Server (paper Section 3.1.2): an in-order, page-buffered
//! convenience interface for in-store processors, with an Address
//! Translation Unit (ATU) that maps file handles to physical addresses.
//!
//! The raw controller returns bursts out of order; that is the fastest
//! interface but a hassle for accelerator developers. The Flash Server
//! "converts the out-of-order and interleaved flash interface into
//! multiple simple in-order request/response interfaces using page
//! buffers" — each client component gets FIFO delivery of its responses,
//! whatever order the flash returns them in.

use std::collections::{BTreeMap, VecDeque};

use bluedbm_sim::fxhash::FxHashMap;

use bluedbm_sim::engine::{Component, ComponentId, Ctx};
use bluedbm_sim::time::SimTime;

use crate::controller::{CtrlCmd, CtrlResp, Tag};
use crate::error::FlashError;
use crate::geometry::Ppa;
use crate::msg::{FlashMsg, FlashProtocol};

/// Requests accepted by the [`FlashServer`].
#[derive(Clone, Debug)]
pub enum ServerReq {
    /// Install (or replace) a file-handle -> extent-list mapping in the
    /// ATU. In the real system the host file system pushes these (paper
    /// Figure 8, step 2).
    MapHandle {
        /// Application-chosen handle.
        handle: u64,
        /// Physical pages of the file, in file order.
        extents: Vec<Ppa>,
    },
    /// Read the `page_offset`-th page of the file mapped at `handle`.
    ReadFilePage {
        /// Handle previously installed with `MapHandle`.
        handle: u64,
        /// Page index within the file.
        page_offset: u64,
        /// Client to deliver the (in-order) [`ServerResp`] to.
        reply_to: ComponentId,
    },
    /// Read a raw physical page, still with in-order delivery.
    ReadPpa {
        /// Page to read.
        ppa: Ppa,
        /// Client to deliver the (in-order) [`ServerResp`] to.
        reply_to: ComponentId,
    },
}

/// In-order response from the [`FlashServer`].
#[derive(Clone, Debug)]
pub struct ServerResp {
    /// 0-based position of this response in the client's request order.
    pub seq: u64,
    /// The physical page that was read.
    pub ppa: Ppa,
    /// Handle to the page contents in the simulator's page store (the
    /// client owns and must free it), or the failure.
    pub result: Result<bluedbm_sim::PageRef, FlashError>,
}

#[derive(Clone, Default)]
struct ClientQueue {
    next_assign: u64,
    next_deliver: u64,
    /// Completed but not yet deliverable (a predecessor is missing).
    parked: BTreeMap<u64, ServerResp>,
}

/// Bookkeeping for one in-flight read.
#[derive(Clone)]
struct InFlight {
    client: ComponentId,
    seq: u64,
    ppa: Ppa,
}

/// Cumulative server statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Reads accepted.
    pub accepted: u64,
    /// Responses delivered.
    pub delivered: u64,
    /// Responses that had to park in a page buffer to restore order.
    pub reordered: u64,
    /// Requests that waited for a free page buffer/tag.
    pub buffer_stalls: u64,
}

/// The Flash Server component. Send it [`ServerReq`]s; it converses with
/// the controller/splitter underneath and replies with in-order
/// [`ServerResp`]s.
#[derive(Clone)]
pub struct FlashServer {
    /// Controller or splitter to issue reads to.
    backend: ComponentId,
    /// ATU: file handle -> extent list.
    atu: FxHashMap<u64, Vec<Ppa>>,
    free_tags: Vec<u16>,
    in_flight: FxHashMap<u16, InFlight>,
    waiting: VecDeque<(ComponentId, u64, Ppa)>,
    clients: FxHashMap<ComponentId, ClientQueue>,
    stats: ServerStats,
}

impl FlashServer {
    /// Create a server issuing to `backend` with `page_buffers`
    /// concurrent page buffers (command queue depth).
    ///
    /// # Panics
    ///
    /// Panics if `page_buffers` is zero or exceeds `u16::MAX`.
    pub fn new(backend: ComponentId, page_buffers: usize) -> Self {
        assert!(page_buffers > 0 && page_buffers <= u16::MAX as usize);
        FlashServer {
            backend,
            atu: FxHashMap::default(),
            free_tags: (0..page_buffers as u16).rev().collect(),
            in_flight: FxHashMap::default(),
            waiting: VecDeque::new(),
            clients: FxHashMap::default(),
            stats: ServerStats::default(),
        }
    }

    /// Install an ATU mapping directly (test/setup convenience; the
    /// message form is [`ServerReq::MapHandle`]).
    pub fn map_handle(&mut self, handle: u64, extents: Vec<Ppa>) {
        self.atu.insert(handle, extents);
    }

    /// Look up the extent list for `handle`.
    pub fn extents(&self, handle: u64) -> Option<&[Ppa]> {
        self.atu.get(&handle).map(Vec::as_slice)
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    fn accept<M: FlashProtocol>(&mut self, ctx: &mut Ctx<'_, M>, client: ComponentId, ppa: Ppa) {
        let q = self.clients.entry(client).or_default();
        let seq = q.next_assign;
        q.next_assign += 1;
        self.stats.accepted += 1;
        self.issue_or_wait(ctx, client, seq, ppa);
    }

    fn accept_error<M: FlashProtocol>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        client: ComponentId,
        ppa: Ppa,
        err: FlashError,
    ) {
        let q = self.clients.entry(client).or_default();
        let seq = q.next_assign;
        q.next_assign += 1;
        self.stats.accepted += 1;
        self.park_and_deliver(
            ctx,
            client,
            ServerResp {
                seq,
                ppa,
                result: Err(err),
            },
        );
    }

    fn issue_or_wait<M: FlashProtocol>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        client: ComponentId,
        seq: u64,
        ppa: Ppa,
    ) {
        let Some(tag) = self.free_tags.pop() else {
            self.stats.buffer_stalls += 1;
            self.waiting.push_back((client, seq, ppa));
            return;
        };
        self.in_flight.insert(tag, InFlight { client, seq, ppa });
        let me = ctx.self_id();
        ctx.send(
            self.backend,
            SimTime::ZERO,
            FlashMsg::Cmd(CtrlCmd::Read {
                tag: Tag(tag),
                ppa,
                reply_to: me,
            }),
        );
    }

    fn park_and_deliver<M: FlashProtocol>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        client: ComponentId,
        resp: ServerResp,
    ) {
        let q = self.clients.entry(client).or_default();
        if resp.seq != q.next_deliver {
            self.stats.reordered += 1;
        }
        q.parked.insert(resp.seq, resp);
        // Drain the contiguous prefix.
        while let Some(r) = q.parked.remove(&q.next_deliver) {
            q.next_deliver += 1;
            self.stats.delivered += 1;
            ctx.send(client, SimTime::ZERO, FlashMsg::ServerResp(r));
        }
    }
}

impl<M: FlashProtocol> Component<M> for FlashServer {
    bluedbm_sim::clone_snapshot!();

    fn handle(&mut self, ctx: &mut Ctx<'_, M>, msg: M) {
        let resp = match msg.into_flash() {
            FlashMsg::ServerReq(req) => {
                match req {
                    ServerReq::MapHandle { handle, extents } => {
                        self.map_handle(handle, extents);
                    }
                    ServerReq::ReadFilePage {
                        handle,
                        page_offset,
                        reply_to,
                    } => match self.atu.get(&handle) {
                        None => {
                            self.accept_error(
                                ctx,
                                reply_to,
                                Ppa::default(),
                                FlashError::UnknownHandle(handle),
                            );
                        }
                        Some(extents) => match extents.get(page_offset as usize) {
                            Some(&ppa) => self.accept(ctx, reply_to, ppa),
                            None => self.accept_error(
                                ctx,
                                reply_to,
                                Ppa::default(),
                                FlashError::OffsetOutOfRange {
                                    handle,
                                    page_offset,
                                },
                            ),
                        },
                    },
                    ServerReq::ReadPpa { ppa, reply_to } => self.accept(ctx, reply_to, ppa),
                }
                return;
            }
            FlashMsg::Resp(resp) => resp,
            other => panic!("flash server got an unexpected message: {other:?}"),
        };

        let CtrlResp::ReadDone { tag, result, .. } = resp else {
            panic!("flash server only issues reads");
        };
        let fl = self
            .in_flight
            .remove(&tag.0)
            .expect("completion for a tag the server never issued");
        self.free_tags.push(tag.0);
        self.park_and_deliver(
            ctx,
            fl.client,
            ServerResp {
                seq: fl.seq,
                ppa: fl.ppa,
                result: result.map(|r| r.page),
            },
        );
        if let Some((client, seq, ppa)) = self.waiting.pop_front() {
            self.issue_or_wait(ctx, client, seq, ppa);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FlashArray;
    use crate::controller::FlashController;
    use crate::geometry::FlashGeometry;
    use crate::timing::FlashTiming;
    use bluedbm_sim::engine::Simulator;

    /// Collects in-order responses.
    struct Client {
        seqs: Vec<u64>,
        pages: Vec<Result<Vec<u8>, FlashError>>,
    }

    impl Component<FlashMsg> for Client {
        fn handle(&mut self, ctx: &mut Ctx<'_, FlashMsg>, msg: FlashMsg) {
            let FlashMsg::ServerResp(r) = msg else {
                panic!("ServerResp expected")
            };
            self.seqs.push(r.seq);
            // Consume the page buffer (copy out + free), the software
            // side of the paper's read-buffer discipline.
            self.pages.push(r.result.map(|page| ctx.pages().take(page)));
        }
    }

    fn world() -> (Simulator<FlashMsg>, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        let mut array = FlashArray::new(FlashGeometry::tiny(), 3);
        // Pages spread across chips so completions arrive out of order.
        for (i, ppa) in extent_list().into_iter().enumerate() {
            let data = vec![i as u8; FlashGeometry::tiny().page_bytes];
            array.program(ppa, &data).unwrap();
        }
        let ctrl = sim.add_component(FlashController::new(array, FlashTiming::paper()));
        let server = sim.add_component(FlashServer::new(ctrl, 16));
        (sim, ctrl, server)
    }

    /// Pages deliberately placed so file order != completion order: pages
    /// 0 and 1 share a chip (serialize) while 2 and 3 sit on other chips.
    fn extent_list() -> Vec<Ppa> {
        vec![
            Ppa::new(0, 0, 0, 0),
            Ppa::new(0, 0, 0, 1),
            Ppa::new(1, 0, 0, 0),
            Ppa::new(1, 1, 0, 0),
        ]
    }

    #[test]
    fn file_reads_are_delivered_in_order() {
        let (mut sim, _ctrl, server) = world();
        let client = sim.add_component(Client {
            seqs: vec![],
            pages: vec![],
        });
        sim.schedule(
            SimTime::ZERO,
            server,
            ServerReq::MapHandle {
                handle: 7,
                extents: extent_list(),
            },
        );
        for off in 0..4u64 {
            sim.schedule(
                SimTime::ns(1),
                server,
                ServerReq::ReadFilePage {
                    handle: 7,
                    page_offset: off,
                    reply_to: client,
                },
            );
        }
        sim.run();
        let c = sim.component::<Client>(client).unwrap();
        assert_eq!(c.seqs, vec![0, 1, 2, 3], "strict FIFO per client");
        for (i, page) in c.pages.iter().enumerate() {
            let page = page.as_ref().expect("read ok");
            assert!(page.iter().all(|&b| b == i as u8), "page {i} contents");
        }
        let s = sim.component::<FlashServer>(server).unwrap();
        assert!(
            s.stats().reordered > 0,
            "flash must have completed out of order for this test to bite"
        );
        assert_eq!(s.stats().delivered, 4);
    }

    #[test]
    fn unknown_handle_and_bad_offset_report_errors_in_order() {
        let (mut sim, _ctrl, server) = world();
        let client = sim.add_component(Client {
            seqs: vec![],
            pages: vec![],
        });
        sim.schedule(
            SimTime::ZERO,
            server,
            ServerReq::MapHandle {
                handle: 7,
                extents: extent_list(),
            },
        );
        sim.schedule(
            SimTime::ns(1),
            server,
            ServerReq::ReadFilePage {
                handle: 99,
                page_offset: 0,
                reply_to: client,
            },
        );
        sim.schedule(
            SimTime::ns(2),
            server,
            ServerReq::ReadFilePage {
                handle: 7,
                page_offset: 100,
                reply_to: client,
            },
        );
        sim.schedule(
            SimTime::ns(3),
            server,
            ServerReq::ReadFilePage {
                handle: 7,
                page_offset: 0,
                reply_to: client,
            },
        );
        sim.run();
        let c = sim.component::<Client>(client).unwrap();
        assert_eq!(c.seqs, vec![0, 1, 2]);
        assert_eq!(c.pages[0], Err(FlashError::UnknownHandle(99)));
        assert_eq!(
            c.pages[1],
            Err(FlashError::OffsetOutOfRange {
                handle: 7,
                page_offset: 100
            })
        );
        assert!(c.pages[2].is_ok());
    }

    #[test]
    fn two_clients_have_independent_orderings() {
        let (mut sim, _ctrl, server) = world();
        let c1 = sim.add_component(Client {
            seqs: vec![],
            pages: vec![],
        });
        let c2 = sim.add_component(Client {
            seqs: vec![],
            pages: vec![],
        });
        for (i, ppa) in extent_list().into_iter().enumerate() {
            let reply_to = if i % 2 == 0 { c1 } else { c2 };
            sim.schedule(SimTime::ZERO, server, ServerReq::ReadPpa { ppa, reply_to });
        }
        sim.run();
        assert_eq!(sim.component::<Client>(c1).unwrap().seqs, vec![0, 1]);
        assert_eq!(sim.component::<Client>(c2).unwrap().seqs, vec![0, 1]);
    }

    #[test]
    fn buffer_exhaustion_stalls_but_completes() {
        let mut sim = Simulator::<FlashMsg>::new();
        let mut array = FlashArray::new(FlashGeometry::tiny(), 3);
        let data = vec![9u8; FlashGeometry::tiny().page_bytes];
        for p in 0..10 {
            array.program(Ppa::new(0, 0, 0, p), &data).unwrap();
        }
        let ctrl = sim.add_component(FlashController::new(array, FlashTiming::test_fast()));
        let server = sim.add_component(FlashServer::new(ctrl, 2));
        let client = sim.add_component(Client {
            seqs: vec![],
            pages: vec![],
        });
        for p in 0..10u32 {
            sim.schedule(
                SimTime::ZERO,
                server,
                ServerReq::ReadPpa {
                    ppa: Ppa::new(0, 0, 0, p),
                    reply_to: client,
                },
            );
        }
        sim.run();
        let c = sim.component::<Client>(client).unwrap();
        assert_eq!(c.seqs, (0..10).collect::<Vec<_>>());
        let s = sim.component::<FlashServer>(server).unwrap();
        assert!(s.stats().buffer_stalls >= 8);
    }

    #[test]
    fn atu_introspection() {
        let mut sim = Simulator::<FlashMsg>::new();
        let backend = sim.reserve();
        let mut server = FlashServer::new(backend, 4);
        server.map_handle(1, extent_list());
        assert_eq!(server.extents(1).unwrap().len(), 4);
        assert!(server.extents(2).is_none());
    }
}
