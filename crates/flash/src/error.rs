//! Error type for flash operations.

use std::error::Error;
use std::fmt;

use crate::geometry::Ppa;

/// Everything that can go wrong talking to the flash array or controller.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlashError {
    /// The physical address does not exist in this geometry.
    OutOfRange(Ppa),
    /// A program was issued to a page that is already programmed; NAND
    /// requires an erase first.
    AlreadyProgrammed(Ppa),
    /// A read was issued to a page that was never programmed (erased
    /// state).
    NotProgrammed(Ppa),
    /// The block is marked bad (factory or grown) and must not be used.
    BadBlock(Ppa),
    /// ECC detected more errors in a codeword than it can correct.
    Uncorrectable(Ppa),
    /// A page-sized buffer was expected.
    WrongPageSize {
        /// Bytes the caller supplied.
        got: usize,
        /// Bytes one page holds.
        want: usize,
    },
    /// The controller's tag space is exhausted (too many in-flight
    /// commands for the configured tag count).
    TagsExhausted,
    /// A tag was used that has no in-flight command.
    UnknownTag(u16),
    /// A file handle unknown to the address translation unit.
    UnknownHandle(u64),
    /// A file-relative offset beyond the end of the mapped extent list.
    OffsetOutOfRange {
        /// The offending handle.
        handle: u64,
        /// The page offset requested.
        page_offset: u64,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::OutOfRange(ppa) => write!(f, "physical address out of range: {ppa}"),
            FlashError::AlreadyProgrammed(ppa) => {
                write!(f, "program to already-programmed page {ppa} (erase required)")
            }
            FlashError::NotProgrammed(ppa) => write!(f, "read of unprogrammed page {ppa}"),
            FlashError::BadBlock(ppa) => write!(f, "operation on bad block at {ppa}"),
            FlashError::Uncorrectable(ppa) => {
                write!(f, "uncorrectable ECC error reading {ppa}")
            }
            FlashError::WrongPageSize { got, want } => {
                write!(f, "buffer of {got} bytes where a {want}-byte page was expected")
            }
            FlashError::TagsExhausted => write!(f, "controller tag space exhausted"),
            FlashError::UnknownTag(tag) => write!(f, "no in-flight command holds tag {tag}"),
            FlashError::UnknownHandle(h) => write!(f, "unknown file handle {h}"),
            FlashError::OffsetOutOfRange {
                handle,
                page_offset,
            } => write!(
                f,
                "page offset {page_offset} beyond mapped extent of handle {handle}"
            ),
        }
    }
}

impl Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = FlashError::AlreadyProgrammed(Ppa::new(1, 2, 3, 4));
        let s = e.to_string();
        assert!(s.contains("erase required"));
        assert!(s.starts_with(char::is_lowercase));
        let e = FlashError::WrongPageSize { got: 10, want: 8192 };
        assert!(e.to_string().contains("8192"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        takes_err(&FlashError::TagsExhausted);
    }
}
