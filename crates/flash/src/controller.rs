//! The raw, tag-based flash controller (paper Section 3.1.1).
//!
//! The controller exposes exactly the paper's interface semantics:
//!
//! * commands carry a **tag**; at most `tag_limit` commands are in flight
//!   (the implementation has 128 tags) — further commands queue;
//! * completions return **out of order** with respect to issue order,
//!   interleaved across buses; the tag identifies which request finished;
//! * to saturate the device, *multiple commands must be in flight*,
//!   because a single read spends 50 µs in the NAND cell array while the
//!   bus could be transferring other pages.
//!
//! Contention is modelled per-chip (cell operations serialize on a die)
//! and per-bus (transfers serialize on a channel), which is where the
//! paper's 1.2 GB/s-per-card ceiling comes from: 8 buses x 150 MB/s.

use std::collections::VecDeque;

use bluedbm_sim::engine::{Batch, Component, ComponentId, Ctx};
use bluedbm_sim::pagestore::{PageRef, PageStore};
use bluedbm_sim::resource::SerialResource;
use bluedbm_sim::stats::{Histogram, Throughput};
use bluedbm_sim::time::SimTime;

use crate::array::FlashArray;
use crate::error::FlashError;
use crate::geometry::Ppa;
use crate::msg::{FlashMsg, FlashProtocol};
use crate::timing::FlashTiming;

/// Identifies one in-flight command (the paper's request tag).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tag(pub u16);

/// Commands accepted by the [`FlashController`].
#[derive(Clone, Debug)]
pub enum CtrlCmd {
    /// Read one page.
    Read {
        /// Caller-chosen tag echoed in the completion.
        tag: Tag,
        /// Page to read.
        ppa: Ppa,
        /// Component to deliver the [`CtrlResp`] to.
        reply_to: ComponentId,
    },
    /// Program one page.
    Write {
        /// Caller-chosen tag echoed in the completion.
        tag: Tag,
        /// Page to program.
        ppa: Ppa,
        /// Handle to the page contents in the simulator's
        /// [`PageStore`] (must be exactly one page). The controller
        /// consumes the handle: the buffer is freed once the hardware
        /// has read it, mirroring the paper's write-buffer free-queue
        /// discipline.
        data: PageRef,
        /// Component to deliver the [`CtrlResp`] to.
        reply_to: ComponentId,
    },
    /// Erase the block containing `ppa`.
    Erase {
        /// Caller-chosen tag echoed in the completion.
        tag: Tag,
        /// Any page inside the victim block.
        ppa: Ppa,
        /// Component to deliver the [`CtrlResp`] to.
        reply_to: ComponentId,
    },
}

impl CtrlCmd {
    /// The tag carried by this command.
    pub fn tag(&self) -> Tag {
        match self {
            CtrlCmd::Read { tag, .. } | CtrlCmd::Write { tag, .. } | CtrlCmd::Erase { tag, .. } => {
                *tag
            }
        }
    }

    /// The reply target carried by this command.
    pub fn reply_to(&self) -> ComponentId {
        match self {
            CtrlCmd::Read { reply_to, .. }
            | CtrlCmd::Write { reply_to, .. }
            | CtrlCmd::Erase { reply_to, .. } => *reply_to,
        }
    }
}

/// A successful page read as delivered by the controller: the data sits
/// in the simulator's [`PageStore`]; the handle's consumer owns the page
/// and must free (or [`PageStore::take`]) it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageRead {
    /// Handle to the page contents after ECC correction.
    pub page: PageRef,
    /// Codewords in which a single-bit error was corrected on this read.
    pub corrected_words: u32,
}

/// Completions produced by the [`FlashController`].
#[derive(Clone, Debug)]
pub enum CtrlResp {
    /// A read finished (successfully or not).
    ReadDone {
        /// Echo of the command tag.
        tag: Tag,
        /// Handle to the page data after ECC, or the failure.
        result: Result<PageRead, FlashError>,
        /// When the command was accepted by the controller.
        issued_at: SimTime,
    },
    /// A program finished.
    WriteDone {
        /// Echo of the command tag.
        tag: Tag,
        /// Success or the failure reason.
        result: Result<(), FlashError>,
    },
    /// An erase finished.
    EraseDone {
        /// Echo of the command tag.
        tag: Tag,
        /// Success or the failure reason.
        result: Result<(), FlashError>,
    },
}

impl CtrlResp {
    /// The tag carried by this completion.
    pub fn tag(&self) -> Tag {
        match self {
            CtrlResp::ReadDone { tag, .. }
            | CtrlResp::WriteDone { tag, .. }
            | CtrlResp::EraseDone { tag, .. } => *tag,
        }
    }
}

/// Controller-internal delayed completion. Public only because it rides
/// the [`FlashMsg`] enum as a self-send; nothing outside the controller
/// constructs or inspects one. Carries just a slot into the
/// controller's pending-finish slab, so the message stays 4 bytes — the
/// completed response and its reply target wait in the controller until
/// the modelled latency elapses.
#[derive(Clone, Debug)]
pub struct Finish {
    slot: u32,
}

/// A one-line hardware-inventory record, the software analogue of the
/// paper's Table 1 resource rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleSpec {
    /// Module name.
    pub name: &'static str,
    /// Instantiation count.
    pub instances: usize,
    /// Queue/scoreboard depth, if the module has one.
    pub queue_depth: usize,
    /// Dedicated buffer bytes (the BRAM analogue).
    pub buffer_bytes: usize,
}

/// Cumulative controller statistics. `PartialEq` so the cross-engine
/// determinism suite can assert sharded and sequential runs observe the
/// exact same controller behaviour.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtrlStats {
    /// Distribution of read command latency (accept -> data complete).
    pub read_latency: Histogram,
    /// Read payload throughput.
    pub read_throughput: Throughput,
    /// Commands that had to wait for a free tag.
    pub tag_stalls: u64,
    /// Peak simultaneous in-flight commands.
    pub peak_in_flight: usize,
}

impl CtrlStats {
    /// Write the counters and read-latency percentiles into a metrics
    /// subtree (for the unified `bluedbm_trace::MetricsRegistry`).
    pub fn fill_metrics(&self, node: &mut bluedbm_trace::MetricsNode) {
        node.set("tag_stalls", self.tag_stalls);
        node.set("peak_in_flight", self.peak_in_flight);
        node.set("read_bytes", self.read_throughput.total_bytes());
        node.set("read_ops", self.read_throughput.ops());
        node.histogram("read_latency", &self.read_latency.summary());
    }
}

/// DES component wrapping a [`FlashArray`] with the paper's controller
/// timing and interface. Send it [`CtrlCmd`]s; it replies with
/// [`CtrlResp`]s.
pub struct FlashController {
    array: FlashArray,
    timing: FlashTiming,
    tag_limit: usize,
    in_flight: usize,
    pending: VecDeque<CtrlCmd>,
    chips: Vec<SerialResource>,
    buses: Vec<SerialResource>,
    /// Completed responses awaiting their modelled finish instant,
    /// indexed by the slot a [`Finish`] self-send carries.
    finish_slots: Vec<Option<(CtrlResp, ComponentId)>>,
    free_finish: Vec<u32>,
    stats: CtrlStats,
}

impl FlashController {
    /// The paper's tag budget: 128 outstanding commands.
    pub const PAPER_TAGS: usize = 128;

    /// Wrap an array with paper timing and 128 tags.
    pub fn new(array: FlashArray, timing: FlashTiming) -> Self {
        Self::with_tags(array, timing, Self::PAPER_TAGS)
    }

    /// Wrap an array with a custom tag budget (used by the tag-parallelism
    /// ablation bench).
    ///
    /// # Panics
    ///
    /// Panics if `tag_limit == 0`.
    pub fn with_tags(array: FlashArray, timing: FlashTiming, tag_limit: usize) -> Self {
        assert!(tag_limit > 0, "controller needs at least one tag");
        let geom = array.geometry();
        FlashController {
            array,
            timing,
            tag_limit,
            in_flight: 0,
            pending: VecDeque::new(),
            chips: vec![SerialResource::new(); geom.total_chips()],
            buses: vec![SerialResource::new(); geom.buses],
            finish_slots: Vec::new(),
            free_finish: Vec::new(),
            stats: CtrlStats::default(),
        }
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Direct access to the wrapped functional array (for test setup:
    /// preloading data without simulating the writes).
    pub fn array_mut(&mut self) -> &mut FlashArray {
        &mut self.array
    }

    /// Shared access to the wrapped functional array.
    pub fn array(&self) -> &FlashArray {
        &self.array
    }

    /// The software analogue of the paper's Table 1: what this controller
    /// instantiates.
    pub fn inventory(&self) -> Vec<ModuleSpec> {
        let geom = self.array.geometry();
        vec![
            ModuleSpec {
                name: "bus controller",
                instances: geom.buses,
                queue_depth: self.tag_limit / geom.buses.max(1),
                buffer_bytes: geom.page_bytes,
            },
            ModuleSpec {
                name: "ecc decoder",
                instances: 2 * geom.buses,
                queue_depth: 0,
                buffer_bytes: geom.oob_bytes(),
            },
            ModuleSpec {
                name: "ecc encoder",
                instances: 2 * geom.buses,
                queue_depth: 0,
                buffer_bytes: geom.oob_bytes(),
            },
            ModuleSpec {
                name: "scoreboard",
                instances: 1,
                queue_depth: self.tag_limit,
                buffer_bytes: self.tag_limit * 8,
            },
            ModuleSpec {
                name: "phy",
                instances: geom.buses,
                queue_depth: 1,
                buffer_bytes: 64,
            },
            ModuleSpec {
                name: "serdes",
                instances: 1,
                queue_depth: 4,
                buffer_bytes: 4096,
            },
        ]
    }

    fn chip_index(&self, ppa: Ppa) -> usize {
        ppa.bus as usize * self.array.geometry().chips_per_bus + ppa.chip as usize
    }

    /// Compute the completion time of a command accepted at `now` and run
    /// the functional operation against `pages`, the simulator's page
    /// store. Returns `(finish_time, response, reply_target)`.
    fn execute(
        &mut self,
        now: SimTime,
        pages: &mut PageStore,
        cmd: CtrlCmd,
    ) -> (SimTime, CtrlResp, ComponentId) {
        let accept = now + self.timing.command_overhead;
        match cmd {
            CtrlCmd::Read { tag, ppa, reply_to } => {
                let page_bytes = self.array.geometry().page_bytes as u64;
                // Write-once read path: allocate the store page first and
                // let the ECC decoder produce the corrected data directly
                // into it — no scratch `Vec`, no copy-into-store.
                let page = pages.alloc(page_bytes as usize);
                let result = self
                    .array
                    .read_into(ppa, pages.get_mut(page))
                    .map(|corrected_words| PageRead {
                        page,
                        corrected_words,
                    });
                if result.is_err() {
                    pages.free(page);
                }
                let done = if self.array.geometry().contains(ppa) {
                    let ci = self.chip_index(ppa);
                    let cell = self.chips[ci].acquire(accept, self.timing.read_cell);
                    let xfer = self.buses[ppa.bus as usize].acquire(
                        cell.end,
                        self.timing.transfer_time(self.array.geometry().page_bytes),
                    );
                    xfer.end
                } else {
                    accept // address errors fail fast
                };
                if result.is_ok() {
                    self.stats.read_latency.record(done - now);
                    self.stats.read_throughput.record(done, page_bytes);
                }
                (
                    done,
                    CtrlResp::ReadDone {
                        tag,
                        result,
                        issued_at: now,
                    },
                    reply_to,
                )
            }
            CtrlCmd::Write {
                tag,
                ppa,
                data,
                reply_to,
            } => {
                let bytes = pages.len(data);
                let result = self.array.program(ppa, pages.get(data));
                // The write buffer "will be returned to the free queue
                // when the hardware has finished reading the data from
                // the buffer" (paper Section 3.3): the functional copy
                // above is that read, so the handle is consumed here.
                pages.free(data);
                let done = if self.array.geometry().contains(ppa) {
                    let xfer = self.buses[ppa.bus as usize]
                        .acquire(accept, self.timing.transfer_time(bytes));
                    let ci = self.chip_index(ppa);
                    let prog = self.chips[ci].acquire(xfer.end, self.timing.program_cell);
                    prog.end
                } else {
                    accept
                };
                (done, CtrlResp::WriteDone { tag, result }, reply_to)
            }
            CtrlCmd::Erase { tag, ppa, reply_to } => {
                let result = self.array.erase(ppa);
                let done = if self.array.geometry().contains(ppa) {
                    let ci = self.chip_index(ppa);
                    self.chips[ci].acquire(accept, self.timing.erase_block).end
                } else {
                    accept
                };
                (done, CtrlResp::EraseDone { tag, result }, reply_to)
            }
        }
    }

    fn issue<M: FlashProtocol>(&mut self, ctx: &mut Ctx<'_, M>, cmd: CtrlCmd) {
        self.in_flight += 1;
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight);
        let now = ctx.now();
        let (done, resp, reply_to) = self.execute(now, ctx.pages(), cmd);
        let slot = match self.free_finish.pop() {
            Some(slot) => {
                self.finish_slots[slot as usize] = Some((resp, reply_to));
                slot
            }
            None => {
                self.finish_slots.push(Some((resp, reply_to)));
                (self.finish_slots.len() - 1) as u32
            }
        };
        ctx.send_self(done - now, FlashMsg::Finish(Finish { slot }));
    }

    /// Per-message logic shared by [`Component::handle`] and the batch
    /// hook.
    fn handle_flash<M: FlashProtocol>(&mut self, ctx: &mut Ctx<'_, M>, msg: FlashMsg) {
        match msg {
            FlashMsg::Cmd(cmd) => {
                if self.in_flight >= self.tag_limit {
                    self.stats.tag_stalls += 1;
                    self.pending.push_back(cmd);
                } else {
                    self.issue(ctx, cmd);
                }
            }
            FlashMsg::Finish(Finish { slot }) => {
                let (resp, reply_to) = self.finish_slots[slot as usize]
                    .take()
                    .expect("finish for a slot the controller never armed");
                self.free_finish.push(slot);
                self.in_flight -= 1;
                ctx.send(reply_to, SimTime::ZERO, FlashMsg::Resp(resp));
                if self.in_flight < self.tag_limit {
                    if let Some(next) = self.pending.pop_front() {
                        self.issue(ctx, next);
                    }
                }
            }
            other => panic!("flash controller got an unexpected message: {other:?}"),
        }
    }
}

/// The controller's speculation snapshot: a clone of its DES-side state
/// (queues, resources, counters). The [`FlashArray`] is deliberately
/// absent — it can hold gigabytes of page data, so it journals in place
/// instead ([`FlashArray::checkpoint_begin`]): taking this snapshot opens
/// the array's undo journal, restore rolls it back, discard commits it.
struct CtrlSnapshot {
    timing: FlashTiming,
    in_flight: usize,
    pending: VecDeque<CtrlCmd>,
    chips: Vec<SerialResource>,
    buses: Vec<SerialResource>,
    finish_slots: Vec<Option<(CtrlResp, ComponentId)>>,
    free_finish: Vec<u32>,
    stats: CtrlStats,
}

impl<M: FlashProtocol> Component<M> for FlashController {
    fn snapshot(&mut self) -> Box<dyn std::any::Any + Send> {
        self.array.checkpoint_begin();
        Box::new(CtrlSnapshot {
            timing: self.timing,
            in_flight: self.in_flight,
            pending: self.pending.clone(),
            chips: self.chips.clone(),
            buses: self.buses.clone(),
            finish_slots: self.finish_slots.clone(),
            free_finish: self.free_finish.clone(),
            stats: self.stats.clone(),
        })
    }

    fn restore(&mut self, snapshot: Box<dyn std::any::Any + Send>) {
        let s = snapshot
            .downcast::<CtrlSnapshot>()
            .expect("snapshot type matches the component that took it");
        self.timing = s.timing;
        self.in_flight = s.in_flight;
        self.pending = s.pending;
        self.chips = s.chips;
        self.buses = s.buses;
        self.finish_slots = s.finish_slots;
        self.free_finish = s.free_finish;
        self.stats = s.stats;
        self.array.checkpoint_rollback();
    }

    fn discard_snapshot(&mut self) {
        self.array.checkpoint_commit();
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, M>, msg: M) {
        self.handle_flash(ctx, msg.into_flash());
    }

    /// Explicit batch adoption: command trains (the splitter fans one
    /// logical request into many same-instant [`CtrlCmd`]s) drain in one
    /// borrow. Equivalent to the default today — kept as the landing
    /// spot for train-level hoists (shared stats, queue-admission
    /// checks).
    fn handle_batch(&mut self, ctx: &mut Ctx<'_, M>, batch: &mut Batch<M>) {
        while let Some(msg) = batch.next(ctx) {
            self.handle_flash(ctx, msg.into_flash());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use bluedbm_sim::engine::Simulator;

    /// Test harness client that records completions.
    struct Client {
        reads: Vec<(Tag, Vec<u8>, SimTime)>,
        writes: Vec<Tag>,
        erases: Vec<Tag>,
        errors: Vec<(Tag, FlashError)>,
    }

    impl Client {
        fn new() -> Self {
            Client {
                reads: vec![],
                writes: vec![],
                erases: vec![],
                errors: vec![],
            }
        }
    }

    impl Component<FlashMsg> for Client {
        fn handle(&mut self, ctx: &mut Ctx<'_, FlashMsg>, msg: FlashMsg) {
            let FlashMsg::Resp(resp) = msg else {
                panic!("CtrlResp expected")
            };
            match resp {
                CtrlResp::ReadDone { tag, result, .. } => match result {
                    Ok(r) => self.reads.push((tag, ctx.pages().take(r.page), ctx.now())),
                    Err(e) => self.errors.push((tag, e)),
                },
                CtrlResp::WriteDone { tag, result } => match result {
                    Ok(()) => self.writes.push(tag),
                    Err(e) => self.errors.push((tag, e)),
                },
                CtrlResp::EraseDone { tag, result } => match result {
                    Ok(()) => self.erases.push(tag),
                    Err(e) => self.errors.push((tag, e)),
                },
            }
        }
    }

    fn setup(timing: FlashTiming) -> (Simulator<FlashMsg>, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        let array = FlashArray::new(FlashGeometry::tiny(), 5);
        let ctrl = sim.add_component(FlashController::new(array, timing));
        let client = sim.add_component(Client::new());
        (sim, ctrl, client)
    }

    #[test]
    fn write_then_read_round_trip_with_latency() {
        let timing = FlashTiming::paper();
        let (mut sim, ctrl, client) = setup(timing);
        let geom = FlashGeometry::tiny();
        let ppa = Ppa::new(0, 0, 0, 0);
        let data = vec![0x77u8; geom.page_bytes];
        let buffer = sim.page_store_mut().alloc_from(&data);
        sim.schedule(
            SimTime::ZERO,
            ctrl,
            CtrlCmd::Write {
                tag: Tag(1),
                ppa,
                data: buffer,
                reply_to: client,
            },
        );
        sim.run();
        let write_done = sim.now();
        // tPROG dominates: at least 300 us.
        assert!(write_done >= SimTime::us(300));

        sim.schedule(
            SimTime::ZERO,
            ctrl,
            CtrlCmd::Read {
                tag: Tag(2),
                ppa,
                reply_to: client,
            },
        );
        sim.run();
        let read_latency = sim.now() - write_done;
        // tR (50us) + 512B transfer at 150MB/s (~3.4us) + overhead.
        assert!(read_latency >= SimTime::us(50), "latency {read_latency}");
        assert!(read_latency < SimTime::us(60), "latency {read_latency}");

        let c = sim.component::<Client>(client).unwrap();
        assert_eq!(c.writes, vec![Tag(1)]);
        assert_eq!(c.reads.len(), 1);
        assert_eq!(c.reads[0].1, data);
        sim.page_store().assert_quiescent();
    }

    #[test]
    fn parallel_reads_across_buses_overlap() {
        // Two reads on different buses should finish at (almost) the same
        // time; two reads on the same chip must serialize their tR.
        let timing = FlashTiming::paper();
        let (mut sim, ctrl, client) = setup(timing);
        let geom = FlashGeometry::tiny();
        let mut ctl = sim.component_mut::<FlashController>(ctrl).unwrap();
        let data = vec![1u8; geom.page_bytes];
        for bus in 0..2 {
            ctl.array_mut()
                .program(Ppa::new(bus, 0, 0, 0), &data)
                .unwrap();
        }
        ctl = sim.component_mut::<FlashController>(ctrl).unwrap();
        ctl.array_mut().program(Ppa::new(0, 0, 0, 1), &data).unwrap();

        // Different buses in parallel.
        for (i, bus) in [0u16, 1].iter().enumerate() {
            sim.schedule(
                SimTime::ZERO,
                ctrl,
                CtrlCmd::Read {
                    tag: Tag(i as u16),
                    ppa: Ppa::new(*bus, 0, 0, 0),
                    reply_to: client,
                },
            );
        }
        sim.run();
        let parallel_done = sim.now();
        assert!(parallel_done < SimTime::us(60), "parallel: {parallel_done}");

        // Same chip: must serialize the 50us cell reads.
        let t0 = sim.now();
        for page in [0u32, 1] {
            sim.schedule(
                SimTime::ZERO,
                ctrl,
                CtrlCmd::Read {
                    tag: Tag(10 + page as u16),
                    ppa: Ppa::new(0, 0, 0, page),
                    reply_to: client,
                },
            );
        }
        sim.run();
        let serial_span = sim.now() - t0;
        assert!(serial_span >= SimTime::us(100), "serial: {serial_span}");
    }

    #[test]
    fn out_of_order_completion() {
        // Issue a slow read (bus 0) then a fast-only-because-parallel read
        // (bus 1) plus an erase on bus 0 chip 1; completions interleave.
        let timing = FlashTiming::test_fast();
        let (mut sim, ctrl, client) = setup(timing);
        let geom = FlashGeometry::tiny();
        let data = vec![2u8; geom.page_bytes];
        {
            let ctl = sim.component_mut::<FlashController>(ctrl).unwrap();
            // Two pages on one chip (will serialize), one on another bus.
            ctl.array_mut().program(Ppa::new(0, 0, 0, 0), &data).unwrap();
            ctl.array_mut().program(Ppa::new(0, 0, 0, 1), &data).unwrap();
            ctl.array_mut().program(Ppa::new(1, 0, 0, 0), &data).unwrap();
        }
        for (tag, ppa) in [
            (Tag(0), Ppa::new(0, 0, 0, 0)),
            (Tag(1), Ppa::new(0, 0, 0, 1)),
            (Tag(2), Ppa::new(1, 0, 0, 0)),
        ] {
            sim.schedule(
                SimTime::ZERO,
                ctrl,
                CtrlCmd::Read {
                    tag,
                    ppa,
                    reply_to: client,
                },
            );
        }
        sim.run();
        let c = sim.component::<Client>(client).unwrap();
        let order: Vec<Tag> = c.reads.iter().map(|(t, _, _)| *t).collect();
        // Tag 2 (other bus) must complete before tag 1 (serialized behind 0).
        let pos = |t: Tag| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(Tag(2)) < pos(Tag(1)), "completion order {order:?}");
    }

    #[test]
    fn tag_exhaustion_queues_commands() {
        let timing = FlashTiming::test_fast();
        let mut sim = Simulator::new();
        let array = FlashArray::new(FlashGeometry::tiny(), 5);
        let ctrl = sim.add_component(FlashController::with_tags(array, timing, 2));
        let client = sim.add_component(Client::new());
        {
            let ctl = sim.component_mut::<FlashController>(ctrl).unwrap();
            let data = vec![3u8; FlashGeometry::tiny().page_bytes];
            for p in 0..6 {
                ctl.array_mut().program(Ppa::new(0, 0, 0, p), &data).unwrap();
            }
        }
        for p in 0..6u32 {
            sim.schedule(
                SimTime::ZERO,
                ctrl,
                CtrlCmd::Read {
                    tag: Tag(p as u16),
                    ppa: Ppa::new(0, 0, 0, p),
                    reply_to: client,
                },
            );
        }
        sim.run();
        let c = sim.component::<Client>(client).unwrap();
        assert_eq!(c.reads.len(), 6, "all queued commands eventually run");
        let ctl = sim.component::<FlashController>(ctrl).unwrap();
        assert!(ctl.stats().tag_stalls >= 4, "stalls: {}", ctl.stats().tag_stalls);
        assert!(ctl.stats().peak_in_flight <= 2);
    }

    #[test]
    fn errors_are_reported_not_dropped() {
        let timing = FlashTiming::test_fast();
        let (mut sim, ctrl, client) = setup(timing);
        sim.schedule(
            SimTime::ZERO,
            ctrl,
            CtrlCmd::Read {
                tag: Tag(9),
                ppa: Ppa::new(0, 0, 0, 0), // never programmed
                reply_to: client,
            },
        );
        sim.run();
        let c = sim.component::<Client>(client).unwrap();
        assert_eq!(c.errors.len(), 1);
        assert!(matches!(c.errors[0].1, FlashError::NotProgrammed(_)));
    }

    #[test]
    fn deep_queue_saturates_card_bandwidth() {
        // Keep all 4 chips of the tiny geometry busy: with enough tags the
        // sustained rate approaches the 2-bus aggregate transfer limit or
        // the cell-read limit, whichever binds.
        let timing = FlashTiming::paper();
        let (mut sim, ctrl, client) = setup(timing);
        let geom = FlashGeometry::tiny();
        let data = vec![4u8; geom.page_bytes];
        const READS_PER_CHIP: u32 = 8;
        {
            let ctl = sim.component_mut::<FlashController>(ctrl).unwrap();
            for bus in 0..geom.buses as u16 {
                for chip in 0..geom.chips_per_bus as u16 {
                    for p in 0..READS_PER_CHIP {
                        ctl.array_mut()
                            .program(Ppa::new(bus, chip, 0, p), &data)
                            .unwrap();
                    }
                }
            }
        }
        let mut tag = 0u16;
        for bus in 0..geom.buses as u16 {
            for chip in 0..geom.chips_per_bus as u16 {
                for p in 0..READS_PER_CHIP {
                    sim.schedule(
                        SimTime::ZERO,
                        ctrl,
                        CtrlCmd::Read {
                            tag: Tag(tag),
                            ppa: Ppa::new(bus, chip, 0, p),
                            reply_to: client,
                        },
                    );
                    tag += 1;
                }
            }
        }
        sim.run();
        let c = sim.component::<Client>(client).unwrap();
        assert_eq!(c.reads.len(), tag as usize);
        // Each chip serializes 8 x 50us = 400us of cell reads; chips run in
        // parallel, so the whole batch should take ~400-450us, not 1.6ms.
        assert!(sim.now() < SimTime::us(480), "took {}", sim.now());
        assert!(sim.now() >= SimTime::us(400));
    }

    #[test]
    fn inventory_lists_expected_modules() {
        let ctl = FlashController::new(
            FlashArray::new(FlashGeometry::paper_card(), 1),
            FlashTiming::paper(),
        );
        let inv = ctl.inventory();
        let names: Vec<&str> = inv.iter().map(|m| m.name).collect();
        assert!(names.contains(&"bus controller"));
        assert!(names.contains(&"ecc decoder"));
        assert!(names.contains(&"scoreboard"));
        let bus = inv.iter().find(|m| m.name == "bus controller").unwrap();
        assert_eq!(bus.instances, 8);
    }

    #[test]
    #[should_panic(expected = "at least one tag")]
    fn zero_tags_rejected() {
        let _ = FlashController::with_tags(
            FlashArray::new(FlashGeometry::tiny(), 1),
            FlashTiming::paper(),
            0,
        );
    }
}
