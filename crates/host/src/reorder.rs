//! The "vector of FIFOs" burst-reassembly buffer (paper Figure 7).
//!
//! Flash data arrives at the DMA engine interleaved: bursts for different
//! read buffers mix freely because chips on multiple buses (or remote
//! nodes) complete out of order. A DMA burst, however, needs contiguous
//! data. The hardware solves this with a dual-ported buffer that behaves
//! like one FIFO per read buffer; a burst is eligible for DMA once its
//! FIFO holds at least one full DMA burst of data.
//!
//! This module is the functional model of that structure; the DES layer
//! feeds it chunk arrivals and turns the produced burst events into
//! [`crate::pcie::PcieXfer`]s.

/// An event produced by [`ReorderQueue::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurstReady {
    /// Which page buffer the burst belongs to.
    pub buffer: u16,
    /// Bytes to DMA (a full burst, or the final partial burst of a page).
    pub bytes: u32,
    /// `true` when this burst completes the buffer's page.
    pub completes_page: bool,
}

/// Per-buffer FIFO accumulation state.
#[derive(Clone, Debug, Default)]
struct Fifo {
    /// Bytes received and not yet emitted as bursts.
    pending: u32,
    /// Bytes emitted so far for the current page.
    emitted: u32,
}

/// Vector-of-FIFOs reassembly for one DMA engine.
///
/// # Examples
///
/// ```rust
/// use bluedbm_host::reorder::ReorderQueue;
///
/// let mut rq = ReorderQueue::new(4, 128, 256); // 4 buffers, 128B bursts, 256B pages
/// assert!(rq.push(0, 64).is_empty());          // not enough for a burst yet
/// let bursts = rq.push(0, 64);
/// assert_eq!(bursts.len(), 1);
/// assert_eq!(bursts[0].bytes, 128);
/// assert!(!bursts[0].completes_page);
/// ```
#[derive(Clone, Debug)]
pub struct ReorderQueue {
    fifos: Vec<Fifo>,
    burst_bytes: u32,
    page_bytes: u32,
    /// Total bursts emitted.
    bursts: u64,
    /// Pages completed.
    pages: u64,
}

impl ReorderQueue {
    /// Create a queue over `buffers` page buffers with the given DMA
    /// burst size and page size.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero or `burst_bytes > page_bytes`.
    pub fn new(buffers: usize, burst_bytes: u32, page_bytes: u32) -> Self {
        assert!(buffers > 0 && burst_bytes > 0 && page_bytes >= burst_bytes);
        ReorderQueue {
            fifos: vec![Fifo::default(); buffers],
            burst_bytes,
            page_bytes,
            bursts: 0,
            pages: 0,
        }
    }

    /// Record `bytes` arriving for `buffer`; returns the DMA bursts that
    /// became eligible (possibly several, possibly none).
    ///
    /// # Panics
    ///
    /// Panics if `buffer` is out of range or the page would overflow
    /// (more bytes pushed than `page_bytes` before [`Self::reset`]).
    pub fn push(&mut self, buffer: u16, bytes: u32) -> Vec<BurstReady> {
        let page_bytes = self.page_bytes;
        let burst = self.burst_bytes;
        let fifo = &mut self.fifos[buffer as usize];
        fifo.pending += bytes;
        assert!(
            fifo.emitted + fifo.pending <= page_bytes,
            "buffer {buffer} overflows its page"
        );
        let mut out = Vec::new();
        // Emit full bursts.
        while fifo.pending >= burst {
            fifo.pending -= burst;
            fifo.emitted += burst;
            out.push(BurstReady {
                buffer,
                bytes: burst,
                completes_page: fifo.emitted == page_bytes,
            });
        }
        // Emit a final partial burst when the page tail is in.
        if fifo.pending > 0 && fifo.emitted + fifo.pending == page_bytes {
            let bytes = fifo.pending;
            fifo.pending = 0;
            fifo.emitted = page_bytes;
            out.push(BurstReady {
                buffer,
                bytes,
                completes_page: true,
            });
        }
        self.bursts += out.len() as u64;
        self.pages += out.iter().filter(|b| b.completes_page).count() as u64;
        out
    }

    /// Bytes sitting in `buffer`'s FIFO awaiting a full burst.
    pub fn pending(&self, buffer: u16) -> u32 {
        self.fifos[buffer as usize].pending
    }

    /// Reset a buffer for its next page (after the software consumed it).
    pub fn reset(&mut self, buffer: u16) {
        self.fifos[buffer as usize] = Fifo::default();
    }

    /// Total bursts emitted.
    pub fn bursts_emitted(&self) -> u64 {
        self.bursts
    }

    /// Total pages completed.
    pub fn pages_completed(&self) -> u64 {
        self.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_buffers_do_not_mix() {
        let mut rq = ReorderQueue::new(2, 128, 256);
        // Interleave sub-burst chunks for two buffers.
        assert!(rq.push(0, 100).is_empty());
        assert!(rq.push(1, 100).is_empty());
        let b0 = rq.push(0, 28);
        assert_eq!(
            b0,
            vec![BurstReady {
                buffer: 0,
                bytes: 128,
                completes_page: false
            }]
        );
        let b1 = rq.push(1, 156);
        assert_eq!(b1.len(), 2);
        assert_eq!(b1[0].buffer, 1);
        assert!(b1[1].completes_page);
        assert_eq!(rq.pending(1), 0);
    }

    #[test]
    fn page_tail_flushes_partial_burst() {
        let mut rq = ReorderQueue::new(1, 128, 300);
        let out = rq.push(0, 300);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].bytes, 128);
        assert_eq!(out[1].bytes, 128);
        assert_eq!(out[2].bytes, 44);
        assert!(out[2].completes_page);
        assert_eq!(rq.pages_completed(), 1);
        assert_eq!(rq.bursts_emitted(), 3);
    }

    #[test]
    fn reset_allows_next_page() {
        let mut rq = ReorderQueue::new(1, 128, 128);
        assert_eq!(rq.push(0, 128).len(), 1);
        rq.reset(0);
        assert_eq!(rq.push(0, 128).len(), 1);
        assert_eq!(rq.pages_completed(), 2);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_detected() {
        let mut rq = ReorderQueue::new(1, 128, 128);
        rq.push(0, 128);
        rq.push(0, 1);
    }

    #[test]
    fn many_tiny_chunks_accumulate() {
        let mut rq = ReorderQueue::new(1, 128, 8192);
        let mut bursts = 0;
        for _ in 0..512 {
            bursts += rq.push(0, 16).len();
        }
        assert_eq!(bursts, 64);
        assert_eq!(rq.pages_completed(), 1);
    }
}
