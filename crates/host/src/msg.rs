//! The host subsystem's typed message protocol.
//!
//! [`HostMsg<B>`] is generic over the **transfer body** type `B`: the
//! functional payload a DMA transfer carries (a page of data in the full
//! system, `()` in timing-only benches).

use bluedbm_sim::Message;

use crate::pcie::{Finish, PcieDone, PcieXfer};

/// Union of every message a host-interface component sends or receives.
#[derive(Clone, Debug)]
pub enum HostMsg<B> {
    /// A DMA transfer request ([`crate::pcie::PcieLink`] ingress).
    Xfer(PcieXfer<B>),
    /// Transfer completion (egress to whoever `notify` names).
    Done(PcieDone<B>),
    /// Link-internal delayed completion (self-send only).
    Finish(Finish<B>),
}

impl<B> HostMsg<B> {
    /// Variant name, for wiring-bug panics without a `Debug` bound on `B`.
    pub fn kind(&self) -> &'static str {
        match self {
            HostMsg::Xfer(_) => "PcieXfer",
            HostMsg::Done(_) => "PcieDone",
            HostMsg::Finish(_) => "Finish",
        }
    }
}

impl<B> From<PcieXfer<B>> for HostMsg<B> {
    #[inline]
    fn from(m: PcieXfer<B>) -> Self {
        HostMsg::Xfer(m)
    }
}

impl<B> From<PcieDone<B>> for HostMsg<B> {
    #[inline]
    fn from(m: PcieDone<B>) -> Self {
        HostMsg::Done(m)
    }
}

/// Implemented by any simulation message type that embeds the host
/// protocol for one body type; the PCIe link component is generic over
/// this trait.
pub trait HostProtocol: Message + From<HostMsg<Self::Body>> {
    /// The transfer body type carried by this simulation's PCIe link.
    type Body: 'static;

    /// Extract the host view of this message.
    ///
    /// # Panics
    ///
    /// Implementations panic when the message is not a host message —
    /// delivery of a foreign protocol to a host component is a wiring
    /// bug.
    fn into_host(self) -> HostMsg<Self::Body>;
}

impl<B: 'static> HostProtocol for HostMsg<B> {
    type Body = B;

    #[inline]
    fn into_host(self) -> HostMsg<B> {
        self
    }
}
