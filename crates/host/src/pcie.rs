//! The PCIe/DMA model.
//!
//! A transfer occupies (1) one of the direction's DMA engines for its
//! setup time, then (2) the direction's link capacity for its
//! serialization time, then (3) pays the completion-notification latency
//! (interrupt or poll). The link is the shared bottleneck; the engines
//! exist so that setup latency of back-to-back transfers overlaps — with
//! one engine the paper's 1.6 GB/s would not be reachable at 8 KiB pages.

use bluedbm_sim::engine::{Batch, Component, ComponentId, Ctx};
use bluedbm_sim::resource::{MultiResource, SerialResource};
use bluedbm_sim::stats::{Histogram, Throughput};
use bluedbm_sim::time::{Bandwidth, SimTime};

use crate::msg::{HostMsg, HostProtocol};

/// Which way a transfer crosses the link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Device to host ("DMA read to host DRAM" in Connectal terms):
    /// capped at 1.6 GB/s in the paper.
    DeviceToHost,
    /// Host to device: capped at 1.0 GB/s in the paper.
    HostToDevice,
}

/// PCIe link constants.
///
/// # Examples
///
/// ```rust
/// use bluedbm_host::pcie::PcieParams;
///
/// let p = PcieParams::paper();
/// assert!((p.d2h.as_gb() - 1.6).abs() < 1e-9);
/// assert!((p.h2d.as_gb() - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcieParams {
    /// Device-to-host bandwidth cap.
    pub d2h: Bandwidth,
    /// Host-to-device bandwidth cap.
    pub h2d: Bandwidth,
    /// DMA descriptor setup time per transfer.
    pub dma_setup: SimTime,
    /// Completion notification (interrupt delivery / poll observation).
    pub completion_latency: SimTime,
    /// Engines per direction (paper: four read + four write).
    pub engines_per_direction: usize,
}

impl PcieParams {
    /// Paper-calibrated Connectal PCIe Gen 1 parameters.
    pub fn paper() -> Self {
        PcieParams {
            d2h: Bandwidth::gb(1.6),
            h2d: Bandwidth::gb(1.0),
            dma_setup: SimTime::us(1),
            completion_latency: SimTime::us(2),
            engines_per_direction: 4,
        }
    }
}

impl Default for PcieParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// A transfer request addressed to a [`PcieLink`], generic over the
/// carried body type.
#[derive(Clone, Debug)]
pub struct PcieXfer<B> {
    /// Transfer direction.
    pub direction: Direction,
    /// Bytes to move.
    pub bytes: u32,
    /// Component notified with a [`PcieDone`] when the transfer (and its
    /// completion notification) finish.
    pub notify: ComponentId,
    /// Caller token echoed in the completion.
    pub token: u64,
    /// Message object carried across (the functional payload).
    pub body: B,
}

impl<B> PcieXfer<B> {
    /// Convenience constructor.
    pub fn new(direction: Direction, bytes: u32, notify: ComponentId, token: u64, body: B) -> Self {
        PcieXfer {
            direction,
            bytes,
            notify,
            token,
            body,
        }
    }
}

/// Completion of a [`PcieXfer`].
#[derive(Clone, Debug)]
pub struct PcieDone<B> {
    /// Echo of the request token.
    pub token: u64,
    /// Direction that completed.
    pub direction: Direction,
    /// Bytes moved.
    pub bytes: u32,
    /// Request-accept to notification-delivered latency.
    pub latency: SimTime,
    /// The carried message object.
    pub body: B,
}

/// Per-direction statistics.
#[derive(Clone, Debug, Default)]
pub struct DirectionStats {
    /// Transfer latency distribution.
    pub latency: Histogram,
    /// Payload throughput.
    pub throughput: Throughput,
}

/// DES component modelling one node's PCIe link.
#[derive(Clone)]
pub struct PcieLink {
    params: PcieParams,
    d2h_engines: MultiResource,
    h2d_engines: MultiResource,
    d2h_link: SerialResource,
    h2d_link: SerialResource,
    d2h_stats: DirectionStats,
    h2d_stats: DirectionStats,
}

impl PcieLink {
    /// A link with the given parameters.
    pub fn new(params: PcieParams) -> Self {
        PcieLink {
            params,
            d2h_engines: MultiResource::new(params.engines_per_direction),
            h2d_engines: MultiResource::new(params.engines_per_direction),
            d2h_link: SerialResource::new(),
            h2d_link: SerialResource::new(),
            d2h_stats: DirectionStats::default(),
            h2d_stats: DirectionStats::default(),
        }
    }

    /// Statistics for one direction.
    pub fn stats(&self, direction: Direction) -> &DirectionStats {
        match direction {
            Direction::DeviceToHost => &self.d2h_stats,
            Direction::HostToDevice => &self.h2d_stats,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> PcieParams {
        self.params
    }
}

/// Link-internal delayed completion. Public only because it rides the
/// [`HostMsg`] enum as a self-send; nothing outside the link constructs
/// or inspects one.
#[derive(Clone, Debug)]
pub struct Finish<B> {
    done: PcieDone<B>,
    notify: ComponentId,
}

impl PcieLink {
    /// Per-message logic shared by [`Component::handle`] and the batch
    /// hook.
    fn handle_host<M: HostProtocol>(&mut self, ctx: &mut Ctx<'_, M>, msg: HostMsg<M::Body>) {
        match msg {
            HostMsg::Xfer(xfer) => {
                let (engines, link, bw) = match xfer.direction {
                    Direction::DeviceToHost => {
                        (&mut self.d2h_engines, &mut self.d2h_link, self.params.d2h)
                    }
                    Direction::HostToDevice => {
                        (&mut self.h2d_engines, &mut self.h2d_link, self.params.h2d)
                    }
                };
                // An engine owns its transfer end to end: descriptor setup
                // plus the wire time. The link is the shared serializer.
                let wire_time = bw.time_for(u64::from(xfer.bytes));
                let engine = engines.acquire(ctx.now(), self.params.dma_setup + wire_time);
                let wire = link.acquire(engine.start + self.params.dma_setup, wire_time);
                let done_at = wire.end + self.params.completion_latency;
                let latency = done_at - ctx.now();
                ctx.send_self(
                    done_at - ctx.now(),
                    HostMsg::Finish(Finish {
                        done: PcieDone {
                            token: xfer.token,
                            direction: xfer.direction,
                            bytes: xfer.bytes,
                            latency,
                            body: xfer.body,
                        },
                        notify: xfer.notify,
                    }),
                );
            }
            HostMsg::Finish(finish) => {
                // Statistics are recorded here — at completion time — not
                // at request accept: a `run_until` snapshot mid-run must
                // never count transfers whose wire time has not fully
                // elapsed yet.
                let stats = match finish.done.direction {
                    Direction::DeviceToHost => &mut self.d2h_stats,
                    Direction::HostToDevice => &mut self.h2d_stats,
                };
                stats.latency.record(finish.done.latency);
                stats.throughput.record(ctx.now(), u64::from(finish.done.bytes));
                ctx.send(finish.notify, SimTime::ZERO, HostMsg::Done(finish.done));
            }
            other => panic!("pcie link got an unexpected message: {}", other.kind()),
        }
    }
}

impl<M: HostProtocol> Component<M> for PcieLink {
    bluedbm_sim::clone_snapshot!();

    fn handle(&mut self, ctx: &mut Ctx<'_, M>, msg: M) {
        self.handle_host(ctx, msg.into_host());
    }

    /// Explicit batch adoption: back-to-back DMA requests (a page-stream
    /// burst) drain in one borrow. Equivalent to the default today —
    /// kept as the landing spot for train-level hoists (direction
    /// resource lookups).
    fn handle_batch(&mut self, ctx: &mut Ctx<'_, M>, batch: &mut Batch<M>) {
        while let Some(msg) = batch.next(ctx) {
            self.handle_host(ctx, msg.into_host());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluedbm_sim::engine::Simulator;

    struct Sink {
        done: Vec<(u64, SimTime)>,
        bytes: u64,
    }

    type TestMsg = HostMsg<()>;

    impl Component<TestMsg> for Sink {
        fn handle(&mut self, _ctx: &mut Ctx<'_, TestMsg>, msg: TestMsg) {
            let HostMsg::Done(d) = msg else {
                panic!("PcieDone expected")
            };
            self.done.push((d.token, d.latency));
            self.bytes += u64::from(d.bytes);
        }
    }

    fn world() -> (Simulator<TestMsg>, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        let link = sim.add_component(PcieLink::new(PcieParams::paper()));
        let sink = sim.add_component(Sink {
            done: vec![],
            bytes: 0,
        });
        (sim, link, sink)
    }

    #[test]
    fn single_page_latency() {
        let (mut sim, link, sink) = world();
        sim.schedule(
            SimTime::ZERO,
            link,
            PcieXfer::new(Direction::DeviceToHost, 8192, sink, 1, ()),
        );
        sim.run();
        let s = sim.component::<Sink>(sink).unwrap();
        assert_eq!(s.done.len(), 1);
        // setup 1us + 8KiB/1.6GB/s (~5.1us) + completion 2us ~ 8.1us.
        let lat = s.done[0].1;
        assert!(lat > SimTime::us(7) && lat < SimTime::us(9), "{lat}");
    }

    #[test]
    fn d2h_saturates_at_paper_cap() {
        let (mut sim, link, sink) = world();
        const N: u64 = 400;
        for t in 0..N {
            sim.schedule(
                SimTime::ZERO,
                link,
                PcieXfer::new(Direction::DeviceToHost, 8192, sink, t, ()),
            );
        }
        sim.run();
        let s = sim.component::<Sink>(sink).unwrap();
        assert_eq!(s.done.len(), N as usize);
        let rate = s.bytes as f64 / sim.now().as_secs_f64();
        assert!(rate > 1.55e9 && rate <= 1.6e9, "rate {rate:.3e}");
    }

    #[test]
    fn h2d_is_slower_than_d2h() {
        let run = |dir: Direction| {
            let (mut sim, link, sink) = world();
            for t in 0..200u64 {
                sim.schedule(SimTime::ZERO, link, PcieXfer::new(dir, 8192, sink, t, ()));
            }
            sim.run();
            let s = sim.component::<Sink>(sink).unwrap();
            s.bytes as f64 / sim.now().as_secs_f64()
        };
        let d2h = run(Direction::DeviceToHost);
        let h2d = run(Direction::HostToDevice);
        assert!(d2h > 1.5 * h2d, "d2h {d2h:.3e} vs h2d {h2d:.3e}");
        assert!(h2d > 0.95e9 && h2d <= 1.0e9);
    }

    #[test]
    fn directions_do_not_contend() {
        let (mut sim, link, sink) = world();
        for t in 0..100u64 {
            sim.schedule(
                SimTime::ZERO,
                link,
                PcieXfer::new(Direction::DeviceToHost, 8192, sink, t, ()),
            );
            sim.schedule(
                SimTime::ZERO,
                link,
                PcieXfer::new(Direction::HostToDevice, 8192, sink, 1000 + t, ()),
            );
        }
        sim.run();
        // Full duplex: total time is governed by the slower direction
        // alone (h2d: 100 * 8
        // KiB / 1 GB/s ~ 819us), not the sum.
        assert!(sim.now() < SimTime::us(900), "took {}", sim.now());
        let l = sim.component::<PcieLink>(link).unwrap();
        assert_eq!(l.stats(Direction::DeviceToHost).throughput.ops(), 100);
        assert_eq!(l.stats(Direction::HostToDevice).throughput.ops(), 100);
    }

    #[test]
    fn engine_count_hides_setup_latency() {
        let run = |engines: usize| {
            let mut sim = Simulator::new();
            let params = PcieParams {
                engines_per_direction: engines,
                ..PcieParams::paper()
            };
            let link = sim.add_component(PcieLink::new(params));
            let sink = sim.add_component(Sink {
                done: vec![],
                bytes: 0,
            });
            for t in 0..200u64 {
                sim.schedule(
                    SimTime::ZERO,
                    link,
                    PcieXfer::new(Direction::DeviceToHost, 8192, sink, t, ()),
                );
            }
            sim.run();
            let s = sim.component::<Sink>(sink).unwrap();
            s.bytes as f64 / sim.now().as_secs_f64()
        };
        // With one engine, 1us setup serializes with each ~5.1us transfer;
        // with four (the paper's choice) the setups overlap and the link
        // runs at capacity.
        let one = run(1);
        let four = run(4);
        assert!(four > 1.15 * one, "one {one:.3e}, four {four:.3e}");
    }

    #[test]
    fn run_until_snapshot_counts_only_completed_transfers() {
        // Ten serialized 8 KiB D2H transfers: each occupies the link for
        // ~5.1us, so a snapshot at 20us must see a strict subset done.
        // The old model recorded stats at request-accept time, so the
        // mid-run snapshot claimed all ten had completed.
        let (mut sim, link, sink) = world();
        const N: u64 = 10;
        for t in 0..N {
            sim.schedule(
                SimTime::ZERO,
                link,
                PcieXfer::new(Direction::DeviceToHost, 8192, sink, t, ()),
            );
        }
        sim.run_until(SimTime::us(20));
        let delivered = sim.component::<Sink>(sink).unwrap().done.len() as u64;
        assert!(delivered > 0 && delivered < N, "snapshot point: {delivered}");
        let l = sim.component::<PcieLink>(link).unwrap();
        let snap = l.stats(Direction::DeviceToHost);
        assert_eq!(snap.throughput.ops(), delivered);
        assert_eq!(snap.latency.count(), delivered);
        assert_eq!(snap.throughput.total_bytes(), delivered * 8192);

        sim.run();
        let l = sim.component::<PcieLink>(link).unwrap();
        let full = l.stats(Direction::DeviceToHost);
        assert_eq!(full.throughput.ops(), N);
        assert_eq!(full.latency.count(), N);
    }

    #[test]
    fn tokens_and_bodies_round_trip() {
        let (mut sim, link, sink) = world();
        sim.schedule(
            SimTime::ZERO,
            link,
            PcieXfer::new(Direction::HostToDevice, 64, sink, 42, ()),
        );
        sim.run();
        let s = sim.component::<Sink>(sink).unwrap();
        assert_eq!(s.done[0].0, 42);
    }
}
