//! Page buffer pools (paper Section 3.3).
//!
//! "The host interface provides the software with 128 page buffers, each
//! for reads and writes. When writing a page, the software will request a
//! free write buffer, copy data to the write buffer, and send a write
//! request over RPC ... The buffer will be returned to the free queue
//! when the hardware has finished reading the data from the buffer."

use std::collections::VecDeque;

/// A fixed pool of page buffers with free-queue discipline.
///
/// # Examples
///
/// ```rust
/// use bluedbm_host::bufpool::BufferPool;
///
/// let mut pool = BufferPool::new(4);
/// let a = pool.alloc().unwrap();
/// let b = pool.alloc().unwrap();
/// assert_ne!(a, b);
/// pool.free(a);
/// assert_eq!(pool.available(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct BufferPool {
    free: VecDeque<u16>,
    in_use: Vec<bool>,
    /// High-water mark of simultaneous allocations.
    peak_in_use: usize,
    /// Allocation attempts that found the pool empty.
    exhaustions: u64,
}

impl BufferPool {
    /// The paper's pool size: 128 buffers per direction.
    pub const PAPER_BUFFERS: usize = 128;

    /// A pool of `n` buffers, all free.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `u16::MAX`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n <= u16::MAX as usize);
        BufferPool {
            free: (0..n as u16).collect(),
            in_use: vec![false; n],
            peak_in_use: 0,
            exhaustions: 0,
        }
    }

    /// A 128-buffer pool, as in the paper.
    pub fn paper() -> Self {
        Self::new(Self::PAPER_BUFFERS)
    }

    /// Total buffers in the pool.
    pub fn capacity(&self) -> usize {
        self.in_use.len()
    }

    /// Currently free buffers.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Grab a free buffer index, FIFO order. `None` when exhausted.
    pub fn alloc(&mut self) -> Option<u16> {
        match self.free.pop_front() {
            Some(idx) => {
                self.in_use[idx as usize] = true;
                let used = self.capacity() - self.available();
                self.peak_in_use = self.peak_in_use.max(used);
                Some(idx)
            }
            None => {
                self.exhaustions += 1;
                None
            }
        }
    }

    /// Return a buffer to the free queue.
    ///
    /// # Panics
    ///
    /// Panics on double free or an out-of-range index — both indicate a
    /// protocol bug in the caller, not a runtime condition.
    pub fn free(&mut self, idx: u16) {
        let slot = &mut self.in_use[idx as usize];
        assert!(*slot, "double free of buffer {idx}");
        *slot = false;
        self.free.push_back(idx);
    }

    /// Highest simultaneous allocation count seen.
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use
    }

    /// Times `alloc` returned `None`.
    pub fn exhaustions(&self) -> u64 {
        self.exhaustions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut p = BufferPool::new(2);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_eq!(p.available(), 0);
        assert!(p.alloc().is_none());
        assert_eq!(p.exhaustions(), 1);
        p.free(a);
        let c = p.alloc().unwrap();
        assert_eq!(c, a, "FIFO free queue recycles the oldest free buffer");
        p.free(b);
        p.free(c);
        assert_eq!(p.available(), 2);
        assert_eq!(p.peak_in_use(), 2);
    }

    #[test]
    fn paper_pool_has_128() {
        let p = BufferPool::paper();
        assert_eq!(p.capacity(), 128);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = BufferPool::new(2);
        let a = p.alloc().unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    fn all_indices_distinct() {
        let mut p = BufferPool::new(128);
        let mut got: Vec<u16> = (0..128).map(|_| p.alloc().unwrap()).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 128);
    }
}
