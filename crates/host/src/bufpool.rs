//! Page buffer pools (paper Section 3.3).
//!
//! "The host interface provides the software with 128 page buffers, each
//! for reads and writes. When writing a page, the software will request a
//! free write buffer, copy data to the write buffer, and send a write
//! request over RPC ... The buffer will be returned to the free queue
//! when the hardware has finished reading the data from the buffer."
//!
//! Since the handle-based payload refactor the actual bytes live in the
//! simulator-owned [`PageStore`]; [`BufferPool`] is the **capacity view**
//! over that shared store: it enforces the paper's fixed budget (128
//! buffers per direction) and free-queue discipline on top of the
//! store's unbounded slab. A pool either *allocates* pages from the
//! store (the write direction: software grabs a buffer and fills it) or
//! *adopts* pages that already exist (the read direction: hardware
//! produced the page and needs a host buffer slot to land it in); both
//! count against the same capacity, and exhaustion surfaces as `None` /
//! `false` so callers stall exactly like the paper's software does.

use bluedbm_sim::pagestore::{PageRef, PageStore};

/// A fixed-capacity buffer-accounting view over the shared [`PageStore`],
/// with free-queue discipline.
///
/// # Examples
///
/// ```rust
/// use bluedbm_host::bufpool::BufferPool;
/// use bluedbm_sim::PageStore;
///
/// let mut store = PageStore::new();
/// let mut pool = BufferPool::new(2);
/// let a = pool.alloc_from(&mut store, b"first page").unwrap();
/// let _b = pool.alloc(&mut store, 8192).unwrap();
/// assert!(pool.alloc(&mut store, 8192).is_none()); // exhausted
/// pool.free(&mut store, a);
/// assert_eq!(pool.available(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct BufferPool {
    capacity: usize,
    /// Pages currently charged to this pool. At most `capacity` (128 in
    /// the paper) entries, so membership checks are a linear scan over a
    /// dense 8-byte-element `Vec` — no hashing on the per-page DMA path.
    held: Vec<PageRef>,
    /// High-water mark of simultaneous allocations.
    peak_in_use: usize,
    /// Allocation/adoption attempts that found the pool empty.
    exhaustions: u64,
}

impl BufferPool {
    /// The paper's pool size: 128 buffers per direction.
    pub const PAPER_BUFFERS: usize = 128;

    /// A pool of `n` buffers, all free.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a buffer pool needs at least one buffer");
        BufferPool {
            capacity: n,
            held: Vec::with_capacity(n),
            peak_in_use: 0,
            exhaustions: 0,
        }
    }

    /// A 128-buffer pool, as in the paper.
    pub fn paper() -> Self {
        Self::new(Self::PAPER_BUFFERS)
    }

    /// Total buffers in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently free buffers.
    pub fn available(&self) -> usize {
        self.capacity - self.held.len()
    }

    /// Pages currently charged to the pool.
    pub fn in_use(&self) -> usize {
        self.held.len()
    }

    /// `true` if `page` is currently charged to this pool.
    pub fn holds(&self, page: PageRef) -> bool {
        self.held.contains(&page)
    }

    /// The one capacity gate: `false` (and an exhaustion tick) when no
    /// buffer is free.
    fn has_free_buffer(&mut self) -> bool {
        if self.held.len() >= self.capacity {
            self.exhaustions += 1;
            return false;
        }
        true
    }

    fn charge(&mut self, page: PageRef) {
        debug_assert!(!self.holds(page), "page {page:?} charged twice");
        self.held.push(page);
        self.peak_in_use = self.peak_in_use.max(self.held.len());
    }

    /// Grab a free buffer of `len` bytes from the store (contents
    /// unspecified — the caller fills it). `None` when exhausted.
    pub fn alloc(&mut self, store: &mut PageStore, len: usize) -> Option<PageRef> {
        if !self.has_free_buffer() {
            return None;
        }
        let page = store.alloc(len);
        self.charge(page);
        Some(page)
    }

    /// Grab a free buffer and copy `data` into it — the paper's "request
    /// a free write buffer, copy data to the write buffer" step. `None`
    /// when exhausted.
    pub fn alloc_from(&mut self, store: &mut PageStore, data: &[u8]) -> Option<PageRef> {
        let page = self.alloc(store, data.len())?;
        store.get_mut(page).copy_from_slice(data);
        Some(page)
    }

    /// Charge an *existing* page against this pool's capacity — the read
    /// direction, where the hardware produced the page and needs a host
    /// buffer slot to land it in. Returns `false` (and counts an
    /// exhaustion) when no buffer is free; the page is untouched.
    ///
    /// # Panics
    ///
    /// Panics if the page is already charged to this pool.
    pub fn adopt(&mut self, page: PageRef) -> bool {
        assert!(!self.holds(page), "page {page:?} adopted twice");
        if !self.has_free_buffer() {
            return false;
        }
        self.charge(page);
        true
    }

    /// Return a buffer slot without freeing the underlying page (the
    /// page's ownership moves on, e.g. to the consumer that will copy it
    /// out).
    ///
    /// # Panics
    ///
    /// Panics if `page` is not charged to this pool — a double free or a
    /// foreign handle, both protocol bugs in the caller.
    pub fn release(&mut self, page: PageRef) {
        let at = self
            .held
            .iter()
            .position(|&h| h == page)
            .unwrap_or_else(|| panic!("double free of buffer {page:?}"));
        self.held.swap_remove(at);
    }

    /// Return the buffer slot *and* free the page in the store — the
    /// "returned to the free queue" step once the consumer is done with
    /// the bytes.
    ///
    /// # Panics
    ///
    /// As for [`release`](Self::release).
    pub fn free(&mut self, store: &mut PageStore, page: PageRef) {
        self.release(page);
        store.free(page);
    }

    /// Highest simultaneous allocation count seen.
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use
    }

    /// Times an allocation or adoption found the pool empty.
    pub fn exhaustions(&self) -> u64 {
        self.exhaustions
    }

    /// Write the pool's occupancy counters into a metrics subtree (for
    /// the unified `bluedbm_trace::MetricsRegistry`).
    pub fn fill_metrics(&self, node: &mut bluedbm_trace::MetricsNode) {
        node.set("capacity", self.capacity);
        node.set("in_use", self.in_use());
        node.set("peak_in_use", self.peak_in_use);
        node.set("exhaustions", self.exhaustions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut store = PageStore::new();
        let mut p = BufferPool::new(2);
        let a = p.alloc_from(&mut store, &[1, 2]).unwrap();
        let b = p.alloc(&mut store, 4).unwrap();
        assert_eq!(p.available(), 0);
        assert!(p.alloc(&mut store, 4).is_none());
        assert_eq!(p.exhaustions(), 1);
        assert_eq!(store.get(a), &[1, 2]);
        p.free(&mut store, a);
        let c = p.alloc(&mut store, 4).unwrap();
        assert!(p.holds(c));
        p.free(&mut store, b);
        p.free(&mut store, c);
        assert_eq!(p.available(), 2);
        assert_eq!(p.peak_in_use(), 2);
        store.assert_quiescent();
    }

    #[test]
    fn paper_pool_has_128() {
        let p = BufferPool::paper();
        assert_eq!(p.capacity(), 128);
    }

    #[test]
    fn adoption_counts_against_capacity() {
        let mut store = PageStore::new();
        let mut p = BufferPool::new(2);
        // Hardware-produced pages (not allocated through the pool).
        let x = store.alloc_from(&[9]);
        let y = store.alloc_from(&[8]);
        let z = store.alloc_from(&[7]);
        assert!(p.adopt(x));
        assert!(p.adopt(y));
        assert!(!p.adopt(z), "third adoption must find the pool empty");
        assert_eq!(p.exhaustions(), 1);
        p.release(x);
        assert!(p.adopt(z));
        // Release does not free store pages; callers own that step.
        for page in [x, y, z] {
            store.free(page);
        }
        store.assert_quiescent();
    }

    /// Paper Section 3.3 end to end: a host software driver bursts 300
    /// page writes at the PCIe link but owns only 128 write buffers.
    /// Allocation beyond the pool stalls (the software waits on the free
    /// queue); every completion returns its buffer and un-stalls exactly
    /// one queued write; the burst drains fully and the shared store is
    /// quiescent afterwards.
    #[test]
    fn write_burst_beyond_128_stalls_and_recovers() {
        use crate::msg::{HostMsg, HostProtocol};
        use crate::pcie::{Direction, PcieLink, PcieParams, PcieXfer};
        use bluedbm_sim::engine::{Component, ComponentId, Ctx, Simulator};
        use bluedbm_sim::time::SimTime;

        const TOTAL_WRITES: u64 = 300;
        const PAGE: usize = 8192;

        /// Host + a kick to start the driver.
        enum TestMsg {
            Host(HostMsg<PageRef>),
            Kick,
        }
        impl From<HostMsg<PageRef>> for TestMsg {
            fn from(m: HostMsg<PageRef>) -> Self {
                TestMsg::Host(m)
            }
        }
        impl HostProtocol for TestMsg {
            type Body = PageRef;
            fn into_host(self) -> HostMsg<PageRef> {
                match self {
                    TestMsg::Host(m) => m,
                    TestMsg::Kick => panic!("kick delivered to the link"),
                }
            }
        }

        struct WriteDriver {
            link: ComponentId,
            pool: BufferPool,
            remaining: u64,
            completed: u64,
            next_token: u64,
        }

        impl WriteDriver {
            /// Issue writes until the burst is done or the free queue is
            /// empty — the paper's "request a free write buffer" loop.
            fn pump(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                while self.remaining > 0 {
                    let Some(buffer) = self.pool.alloc(ctx.pages(), PAGE) else {
                        return; // stalled on the free queue
                    };
                    ctx.pages().get_mut(buffer)[0] = self.remaining as u8;
                    self.remaining -= 1;
                    let token = self.next_token;
                    self.next_token += 1;
                    let me = ctx.self_id();
                    ctx.send(
                        self.link,
                        SimTime::ZERO,
                        HostMsg::Xfer(PcieXfer::new(
                            Direction::HostToDevice,
                            PAGE as u32,
                            me,
                            token,
                            buffer,
                        )),
                    );
                }
            }
        }

        impl Component<TestMsg> for WriteDriver {
            fn handle(&mut self, ctx: &mut Ctx<'_, TestMsg>, msg: TestMsg) {
                match msg {
                    TestMsg::Kick => self.pump(ctx),
                    TestMsg::Host(HostMsg::Done(done)) => {
                        // "The buffer will be returned to the free queue
                        // when the hardware has finished reading the
                        // data from the buffer."
                        self.pool.free(ctx.pages(), done.body);
                        self.completed += 1;
                        self.pump(ctx);
                    }
                    TestMsg::Host(other) => {
                        panic!("driver got an unexpected message: {}", other.kind())
                    }
                }
            }
        }

        let mut sim = Simulator::<TestMsg>::new();
        let link = sim.add_component(PcieLink::new(PcieParams::paper()));
        let driver = sim.add_component(WriteDriver {
            link,
            pool: BufferPool::paper(),
            remaining: TOTAL_WRITES,
            completed: 0,
            next_token: 0,
        });
        sim.schedule(SimTime::ZERO, driver, TestMsg::Kick);
        sim.run();

        let d = sim.component::<WriteDriver>(driver).unwrap();
        assert_eq!(d.completed, TOTAL_WRITES, "the whole burst drains");
        assert_eq!(
            d.pool.peak_in_use(),
            BufferPool::PAPER_BUFFERS,
            "the burst saturates exactly the paper's 128 buffers"
        );
        assert!(
            d.pool.exhaustions() > 0,
            "a 300-write burst must hit the free-queue limit"
        );
        assert_eq!(d.pool.available(), BufferPool::PAPER_BUFFERS);
        sim.page_store().assert_quiescent();
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut store = PageStore::new();
        let mut p = BufferPool::new(2);
        let a = p.alloc(&mut store, 4).unwrap();
        p.free(&mut store, a);
        p.release(a);
    }

    #[test]
    fn all_buffers_usable_and_distinct() {
        let mut store = PageStore::new();
        let mut p = BufferPool::new(128);
        let got: Vec<PageRef> = (0..128).map(|_| p.alloc(&mut store, 16).unwrap()).collect();
        let mut idx: Vec<u32> = got.iter().map(|r| r.index()).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 128);
        assert!(p.alloc(&mut store, 16).is_none());
        for page in got {
            p.free(&mut store, page);
        }
        store.assert_quiescent();
    }
}
