//! # bluedbm-host
//!
//! The host interface of a BlueDBM node (paper Section 3.3): the PCIe
//! link between the storage device and its Xeon server, the 4+4 DMA
//! engines behind Connectal's RPC/DMA framework, the 128+128 page-buffer
//! pools, and the "vector of FIFOs" burst-reassembly structure of
//! Figure 7.
//!
//! Calibration comes straight from the paper (Section 5): Connectal's
//! PCIe Gen 1 endpoint "caps our performance at 1.6 GB/s reads and
//! 1 GB/s writes", with four read and four write DMA engines to keep the
//! link busy.
//!
//! ## Pieces
//!
//! * [`PcieParams`] — bandwidth caps and latency constants.
//! * [`PcieLink`] — DES component serializing transfers in each
//!   direction; send it [`PcieXfer`]s, receive [`PcieDone`]s.
//! * [`BufferPool`] — the free-queue discipline of the 128 page
//!   buffers, as a capacity view over the simulator's shared
//!   `PageStore`.
//! * [`ReorderQueue`] — per-buffer FIFOs that accumulate interleaved
//!   flash bursts until a DMA burst is contiguous.

pub mod bufpool;
pub mod msg;
pub mod pcie;
pub mod reorder;

pub use bufpool::BufferPool;
pub use msg::{HostMsg, HostProtocol};
pub use pcie::{Direction, PcieDone, PcieLink, PcieParams, PcieXfer};
pub use reorder::ReorderQueue;
