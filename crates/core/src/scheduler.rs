//! FIFO scheduling of shared hardware accelerators (paper Section 4).
//!
//! "It is also very common that multiple instances of a user application
//! may compete for the same hardware acceleration units. For efficient
//! sharing of hardware resources, BlueDBM runs a scheduler that assigns
//! available hardware-acceleration units to competing user-applications.
//! In our implementation, a simple FIFO-based policy is used."
//!
//! Two forms of that scheduler live here:
//!
//! * [`AccelSched`] — the **simulated component**: one per node, built by
//!   [`crate::cluster::Cluster`], arbitrating `config.accel.units`
//!   identical units among in-flight jobs *inside* the running DES.
//!   Jobs arrive as [`SchedSubmit`] messages (the node agent submits one
//!   for every read consumed with [`crate::node::Consume::Accel`] — the
//!   multi-tenant KV engine's data path); a free unit is granted
//!   immediately, otherwise the job parks in a FIFO queue and is granted
//!   when a running job releases its unit. The requester learns of
//!   completion via [`SchedDone`]. Queue-wait statistics accumulate in
//!   [`SchedStats`], surfaced per node through
//!   [`crate::cluster::Cluster::sched_stats`].
//! * [`AcceleratorScheduler`] — the offline calculator over the same
//!   FIFO policy, for closed-form experiments and planning (no
//!   simulator required).
//!
//! FIFO on a finite unit pool is starvation-free by construction: every
//! parked job is granted after at most `queue-position` predecessor
//! completions, whatever mix of tenants is saturating the units — the
//! unit tests pin that down.

use std::collections::VecDeque;

use bluedbm_sim::engine::{Component, ComponentId, Ctx};
use bluedbm_sim::resource::MultiResource;
use bluedbm_sim::time::SimTime;
use bluedbm_sim::{MetricsNode, TraceCat};

use crate::msg::Msg;

/// Ask a node's [`AccelSched`] for one accelerator unit for `duration`.
#[derive(Clone, Copy, Debug)]
pub struct SchedSubmit {
    /// Requester-chosen job id, echoed in [`SchedDone`].
    pub job: u64,
    /// Component notified when the job finishes.
    pub reply_to: ComponentId,
    /// Accelerator busy time the job needs once granted.
    pub duration: SimTime,
}

/// Scheduler-internal self-send: a running job's unit becomes free.
#[derive(Clone, Copy, Debug)]
pub struct SchedFree {
    pub(crate) job: u64,
    pub(crate) reply_to: ComponentId,
}

/// A job finished on its accelerator unit (scheduler → requester).
#[derive(Clone, Copy, Debug)]
pub struct SchedDone {
    /// Echo of the [`SchedSubmit`] job id.
    pub job: u64,
}

/// Cumulative per-node scheduler statistics. Additive counters plus
/// queue-wait aggregates; `PartialEq` so test suites can compare nodes
/// field for field. (Under same-instant cross-tenant contention the
/// *individual* waits are arbitration-dependent — the cross-engine
/// conformance suite compares only the counters.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs granted a unit so far.
    pub granted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs that found every unit busy and had to park.
    pub parked: u64,
    /// Deepest the parked queue ever got.
    pub peak_parked: u64,
    /// Sum of queue waits (submit → grant) over granted jobs.
    pub total_wait: SimTime,
    /// Largest single queue wait.
    pub max_wait: SimTime,
}

impl SchedStats {
    /// Mean queue wait across granted jobs ([`SimTime::ZERO`] before any
    /// grant).
    pub fn mean_wait(&self) -> SimTime {
        if self.granted == 0 {
            SimTime::ZERO
        } else {
            self.total_wait / self.granted
        }
    }

    /// Write every counter into a metrics `node` (see
    /// [`bluedbm_sim::MetricsRegistry`]).
    pub fn fill_metrics(&self, node: &mut MetricsNode) {
        node.set("submitted", self.submitted);
        node.set("granted", self.granted);
        node.set("completed", self.completed);
        node.set("parked", self.parked);
        node.set("peak_parked", self.peak_parked);
        node.set("total_wait_ps", self.total_wait.as_ps());
        node.set("max_wait_ps", self.max_wait.as_ps());
        node.set("mean_wait_ps", self.mean_wait().as_ps());
    }
}

/// A job waiting for a free unit.
#[derive(Clone, Copy, Debug)]
struct ParkedJob {
    job: u64,
    reply_to: ComponentId,
    duration: SimTime,
    since: SimTime,
}

/// The per-node accelerator scheduler component (see the module docs).
#[derive(Clone)]
pub struct AccelSched {
    units: usize,
    busy: usize,
    node: u32,
    parked: VecDeque<ParkedJob>,
    stats: SchedStats,
}

impl AccelSched {
    /// A scheduler over `units` identical accelerator units.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn new(units: usize) -> Self {
        assert!(units > 0, "a node needs at least one accelerator unit");
        AccelSched {
            units,
            busy: 0,
            node: 0,
            parked: VecDeque::new(),
            stats: SchedStats::default(),
        }
    }

    /// Tag this scheduler with its owning node index — the `track` of
    /// every [`TraceCat::Accel`] record it emits.
    pub fn with_node(mut self, node: u32) -> Self {
        self.node = node;
        self
    }

    /// Units this scheduler arbitrates.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Units currently granted to running jobs.
    pub fn busy_units(&self) -> usize {
        self.busy
    }

    /// Jobs currently parked waiting for a unit.
    pub fn parked_jobs(&self) -> usize {
        self.parked.len()
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    fn grant(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        job: u64,
        reply_to: ComponentId,
        duration: SimTime,
        waited: SimTime,
    ) {
        self.busy += 1;
        self.stats.granted += 1;
        self.stats.total_wait += waited;
        self.stats.max_wait = self.stats.max_wait.max(waited);
        ctx.trace()
            .instant(TraceCat::Accel, "grant", self.node, job, waited.as_ps());
        ctx.send_self(duration, SchedFree { job, reply_to });
    }
}

impl Component<Msg> for AccelSched {
    bluedbm_sim::clone_snapshot!();

    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        match msg {
            Msg::SchedSubmit(s) => {
                self.stats.submitted += 1;
                if self.busy < self.units {
                    self.grant(ctx, s.job, s.reply_to, s.duration, SimTime::ZERO);
                } else {
                    self.stats.parked += 1;
                    ctx.trace()
                        .instant(TraceCat::Accel, "park", self.node, s.job, 0);
                    self.parked.push_back(ParkedJob {
                        job: s.job,
                        reply_to: s.reply_to,
                        duration: s.duration,
                        since: ctx.now(),
                    });
                    self.stats.peak_parked =
                        self.stats.peak_parked.max(self.parked.len() as u64);
                }
            }
            Msg::SchedFree(f) => {
                self.busy -= 1;
                self.stats.completed += 1;
                ctx.trace()
                    .instant(TraceCat::Accel, "done", self.node, f.job, 0);
                ctx.send(f.reply_to, SimTime::ZERO, SchedDone { job: f.job });
                if let Some(next) = self.parked.pop_front() {
                    let waited = ctx.now() - next.since;
                    self.grant(ctx, next.job, next.reply_to, next.duration, waited);
                }
            }
            other => panic!("accelerator scheduler got an unexpected message: {other:?}"),
        }
    }
}

/// A scheduled job's outcome (offline calculator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSchedule {
    /// Caller-supplied id.
    pub job: u64,
    /// When the job was submitted.
    pub submitted: SimTime,
    /// When an accelerator unit became available for it.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
}

impl JobSchedule {
    /// Queueing delay before an accelerator was granted.
    pub fn queue_wait(&self) -> SimTime {
        self.started - self.submitted
    }
}

/// Offline FIFO scheduler over `units` identical accelerator units: the
/// closed-form planning twin of [`AccelSched`] (no simulator needed —
/// grants are computed immediately from submission order).
///
/// # Examples
///
/// ```rust
/// use bluedbm_core::scheduler::AcceleratorScheduler;
/// use bluedbm_sim::time::SimTime;
///
/// let mut sched = AcceleratorScheduler::new(1);
/// let a = sched.submit(1, SimTime::ZERO, SimTime::us(100));
/// let b = sched.submit(2, SimTime::ZERO, SimTime::us(100));
/// assert_eq!(a.started, SimTime::ZERO);
/// assert_eq!(b.started, SimTime::us(100)); // FIFO behind job 1
/// ```
#[derive(Debug)]
pub struct AcceleratorScheduler {
    units: MultiResource,
    history: VecDeque<JobSchedule>,
}

impl AcceleratorScheduler {
    /// A scheduler over `units` accelerator units.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn new(units: usize) -> Self {
        AcceleratorScheduler {
            units: MultiResource::new(units),
            history: VecDeque::new(),
        }
    }

    /// Submit a job needing `duration` of accelerator time at `now`.
    /// Jobs must be submitted in non-decreasing `now` order (FIFO).
    pub fn submit(&mut self, job: u64, now: SimTime, duration: SimTime) -> JobSchedule {
        let grant = self.units.acquire(now, duration);
        let schedule = JobSchedule {
            job,
            submitted: now,
            started: grant.start,
            finished: grant.end,
        };
        self.history.push_back(schedule);
        schedule
    }

    /// All scheduled jobs, in submission order.
    pub fn history(&self) -> impl Iterator<Item = &JobSchedule> {
        self.history.iter()
    }

    /// Mean queue wait across all jobs.
    pub fn mean_wait(&self) -> SimTime {
        if self.history.is_empty() {
            return SimTime::ZERO;
        }
        let total: SimTime = self.history.iter().map(|j| j.queue_wait()).sum();
        total / self.history.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluedbm_sim::engine::Simulator;

    #[test]
    fn fifo_order_preserved() {
        let mut s = AcceleratorScheduler::new(1);
        let jobs: Vec<JobSchedule> = (0..5)
            .map(|i| s.submit(i, SimTime::ZERO, SimTime::us(10)))
            .collect();
        for pair in jobs.windows(2) {
            assert_eq!(pair[1].started, pair[0].finished, "strict FIFO on one unit");
        }
        assert_eq!(s.mean_wait(), SimTime::us(20)); // 0+10+20+30+40 / 5
    }

    #[test]
    fn multiple_units_run_concurrently() {
        let mut s = AcceleratorScheduler::new(4);
        let jobs: Vec<JobSchedule> = (0..4)
            .map(|i| s.submit(i, SimTime::ZERO, SimTime::us(10)))
            .collect();
        assert!(jobs.iter().all(|j| j.started == SimTime::ZERO));
        assert_eq!(s.mean_wait(), SimTime::ZERO);
    }

    #[test]
    fn later_submissions_start_no_earlier() {
        let mut s = AcceleratorScheduler::new(2);
        s.submit(0, SimTime::ZERO, SimTime::us(100));
        s.submit(1, SimTime::ZERO, SimTime::us(100));
        let c = s.submit(2, SimTime::us(30), SimTime::us(10));
        assert_eq!(c.started, SimTime::us(100));
        assert_eq!(c.queue_wait(), SimTime::us(70));
        assert_eq!(s.history().count(), 3);
    }

    // ------------------------------------------------------------------
    // The simulated component.
    // ------------------------------------------------------------------

    /// Probe requester: records the order and times jobs complete.
    struct Probe {
        done: Vec<(u64, SimTime)>,
    }

    impl Component<Msg> for Probe {
        fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
            match msg {
                Msg::SchedDone(d) => self.done.push((d.job, ctx.now())),
                other => panic!("probe got {other:?}"),
            }
        }
    }

    fn world(units: usize) -> (Simulator<Msg>, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        let sched = sim.add_component(AccelSched::new(units));
        let probe = sim.add_component(Probe { done: Vec::new() });
        (sim, sched, probe)
    }

    fn submit(sim: &mut Simulator<Msg>, sched: ComponentId, probe: ComponentId, job: u64, at: SimTime, duration: SimTime) {
        sim.schedule(at, sched, Msg::SchedSubmit(SchedSubmit { job, reply_to: probe, duration }));
    }

    #[test]
    fn component_grants_in_fifo_order_on_one_unit() {
        let (mut sim, sched, probe) = world(1);
        for job in 0..6u64 {
            submit(&mut sim, sched, probe, job, SimTime::ZERO, SimTime::us(10));
        }
        sim.run();
        let done = &sim.component::<Probe>(probe).unwrap().done;
        // Strict FIFO: job k completes at (k+1)*10us, in submission order.
        let expect: Vec<(u64, SimTime)> =
            (0..6).map(|k| (k, SimTime::us(10 * (k + 1)))).collect();
        assert_eq!(*done, expect);
        let s = sim.component::<AccelSched>(sched).unwrap();
        assert_eq!(s.stats().submitted, 6);
        assert_eq!(s.stats().completed, 6);
        assert_eq!(s.stats().parked, 5, "all but the first waited");
        assert_eq!(s.stats().peak_parked, 5);
        assert_eq!(s.busy_units(), 0);
        assert_eq!(s.parked_jobs(), 0);
    }

    #[test]
    fn queue_wait_accounting_under_unit_exhaustion() {
        let (mut sim, sched, probe) = world(2);
        // Four same-instant 10us jobs on two units: two run at 0, two
        // wait 10us.
        for job in 0..4u64 {
            submit(&mut sim, sched, probe, job, SimTime::ZERO, SimTime::us(10));
        }
        sim.run();
        let s = sim.component::<AccelSched>(sched).unwrap().stats();
        assert_eq!(s.granted, 4);
        assert_eq!(s.parked, 2);
        assert_eq!(s.total_wait, SimTime::us(20));
        assert_eq!(s.mean_wait(), SimTime::us(5));
        assert_eq!(s.max_wait, SimTime::us(10));
    }

    #[test]
    fn mixed_durations_match_offline_calculator() {
        // The component and the offline twin must agree on completion
        // times for an uncontended-arrival FIFO schedule.
        let durations = [7u64, 3, 12, 5, 9, 1, 4];
        let (mut sim, sched, probe) = world(2);
        let mut offline = AcceleratorScheduler::new(2);
        let mut expect: Vec<(u64, SimTime)> = durations
            .iter()
            .enumerate()
            .map(|(j, &d)| {
                let j = j as u64;
                submit(&mut sim, sched, probe, j, SimTime::ZERO, SimTime::us(d));
                (j, offline.submit(j, SimTime::ZERO, SimTime::us(d)).finished)
            })
            .collect();
        sim.run();
        let mut done = sim.component::<Probe>(probe).unwrap().done.clone();
        done.sort_by_key(|&(j, _)| j);
        expect.sort_by_key(|&(j, _)| j);
        assert_eq!(done, expect);
    }

    #[test]
    fn starvation_freedom_when_tenants_saturate_one_unit() {
        // Two "tenants" alternately flood one unit; every job of both
        // must complete, and FIFO means completion order == submission
        // order regardless of which tenant a job belongs to.
        let (mut sim, sched, probe) = world(1);
        let mut order = Vec::new();
        for round in 0..10u64 {
            for tenant in 0..2u64 {
                let job = (tenant << 32) | round;
                submit(&mut sim, sched, probe, job, SimTime::ZERO, SimTime::us(3));
                order.push(job);
            }
        }
        sim.run();
        let done: Vec<u64> = sim
            .component::<Probe>(probe)
            .unwrap()
            .done
            .iter()
            .map(|&(j, _)| j)
            .collect();
        assert_eq!(done, order, "no tenant's job overtook an earlier one");
        let s = sim.component::<AccelSched>(sched).unwrap().stats();
        assert_eq!(s.completed, 20);
        // Later arrivals wait longer; the last job waited 19 * 3us.
        assert_eq!(s.max_wait, SimTime::us(57));
    }

    #[test]
    fn staggered_arrivals_use_free_units_without_waiting() {
        let (mut sim, sched, probe) = world(2);
        submit(&mut sim, sched, probe, 0, SimTime::ZERO, SimTime::us(30));
        // Arrives while job 0 runs, but the second unit is free.
        submit(&mut sim, sched, probe, 1, SimTime::us(5), SimTime::us(4));
        sim.run();
        let done = &sim.component::<Probe>(probe).unwrap().done;
        assert_eq!(*done, vec![(1, SimTime::us(9)), (0, SimTime::us(30))]);
        let s = sim.component::<AccelSched>(sched).unwrap().stats();
        assert_eq!(s.parked, 0);
        assert_eq!(s.total_wait, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one accelerator unit")]
    fn zero_units_rejected() {
        let _ = AccelSched::new(0);
    }
}
