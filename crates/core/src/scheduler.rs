//! FIFO scheduling of shared hardware accelerators (paper Section 4).
//!
//! "It is also very common that multiple instances of a user application
//! may compete for the same hardware acceleration units. For efficient
//! sharing of hardware resources, BlueDBM runs a scheduler that assigns
//! available hardware-acceleration units to competing user-applications.
//! In our implementation, a simple FIFO-based policy is used."

use std::collections::VecDeque;

use bluedbm_sim::resource::MultiResource;
use bluedbm_sim::time::SimTime;

/// A scheduled job's outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSchedule {
    /// Caller-supplied id.
    pub job: u64,
    /// When the job was submitted.
    pub submitted: SimTime,
    /// When an accelerator unit became available for it.
    pub started: SimTime,
    /// When it finished.
    pub finished: SimTime,
}

impl JobSchedule {
    /// Queueing delay before an accelerator was granted.
    pub fn queue_wait(&self) -> SimTime {
        self.started - self.submitted
    }
}

/// FIFO scheduler over `units` identical accelerator units.
///
/// # Examples
///
/// ```rust
/// use bluedbm_core::scheduler::AcceleratorScheduler;
/// use bluedbm_sim::time::SimTime;
///
/// let mut sched = AcceleratorScheduler::new(1);
/// let a = sched.submit(1, SimTime::ZERO, SimTime::us(100));
/// let b = sched.submit(2, SimTime::ZERO, SimTime::us(100));
/// assert_eq!(a.started, SimTime::ZERO);
/// assert_eq!(b.started, SimTime::us(100)); // FIFO behind job 1
/// ```
#[derive(Debug)]
pub struct AcceleratorScheduler {
    units: MultiResource,
    history: VecDeque<JobSchedule>,
}

impl AcceleratorScheduler {
    /// A scheduler over `units` accelerator units.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn new(units: usize) -> Self {
        AcceleratorScheduler {
            units: MultiResource::new(units),
            history: VecDeque::new(),
        }
    }

    /// Submit a job needing `duration` of accelerator time at `now`.
    /// Jobs must be submitted in non-decreasing `now` order (FIFO).
    pub fn submit(&mut self, job: u64, now: SimTime, duration: SimTime) -> JobSchedule {
        let grant = self.units.acquire(now, duration);
        let schedule = JobSchedule {
            job,
            submitted: now,
            started: grant.start,
            finished: grant.end,
        };
        self.history.push_back(schedule);
        schedule
    }

    /// All scheduled jobs, in submission order.
    pub fn history(&self) -> impl Iterator<Item = &JobSchedule> {
        self.history.iter()
    }

    /// Mean queue wait across all jobs.
    pub fn mean_wait(&self) -> SimTime {
        if self.history.is_empty() {
            return SimTime::ZERO;
        }
        let total: SimTime = self.history.iter().map(|j| j.queue_wait()).sum();
        total / self.history.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut s = AcceleratorScheduler::new(1);
        let jobs: Vec<JobSchedule> = (0..5)
            .map(|i| s.submit(i, SimTime::ZERO, SimTime::us(10)))
            .collect();
        for pair in jobs.windows(2) {
            assert_eq!(pair[1].started, pair[0].finished, "strict FIFO on one unit");
        }
        assert_eq!(s.mean_wait(), SimTime::us(20)); // 0+10+20+30+40 / 5
    }

    #[test]
    fn multiple_units_run_concurrently() {
        let mut s = AcceleratorScheduler::new(4);
        let jobs: Vec<JobSchedule> = (0..4)
            .map(|i| s.submit(i, SimTime::ZERO, SimTime::us(10)))
            .collect();
        assert!(jobs.iter().all(|j| j.started == SimTime::ZERO));
        assert_eq!(s.mean_wait(), SimTime::ZERO);
    }

    #[test]
    fn later_submissions_start_no_earlier() {
        let mut s = AcceleratorScheduler::new(2);
        s.submit(0, SimTime::ZERO, SimTime::us(100));
        s.submit(1, SimTime::ZERO, SimTime::us(100));
        let c = s.submit(2, SimTime::us(30), SimTime::us(10));
        assert_eq!(c.started, SimTime::us(100));
        assert_eq!(c.queue_wait(), SimTime::us(70));
        assert_eq!(s.history().count(), 3);
    }
}
