//! The comparison arms of the evaluation (Figures 16–21): host-software
//! nearest neighbor, RAM-cloud with spill, off-the-shelf SSD, HDD, and
//! the grep-style CPU utilization model.
//!
//! All arms are analytic rate models over the calibrated constants in
//! [`crate::config`]; the derivations are spelled out in EXPERIMENTS.md.
//! The BlueDBM arms of the same figures come from the DES ([`crate::cluster`]).

use bluedbm_sim::time::SimTime;

use crate::config::SystemConfig;

/// Where spilled accesses land in the RAM-cloud experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Secondary {
    /// Off-the-shelf SSD (Figure 17's "DRAM + 10% Flash").
    Ssd,
    /// Hard disk (Figure 17's "DRAM + 5% Disk").
    Disk,
}

/// Host-software nearest-neighbor throughput (comparisons/s) over
/// DRAM-resident data with `threads` threads — Figure 16's "DRAM" arm.
pub fn host_dram_nn_rate(config: &SystemConfig, threads: usize) -> f64 {
    config.host_nn_rate(threads)
}

/// RAM-cloud nearest-neighbor throughput when a fraction
/// `spill_fraction` of accesses miss DRAM and hit `secondary` — the
/// Figure 17 cliff.
///
/// Each thread's per-item time grows from the pure compare time by the
/// expected secondary-device wait; queue depth is one per thread, as in
/// the paper's multithreaded software.
pub fn ramcloud_nn_rate(
    config: &SystemConfig,
    threads: usize,
    spill_fraction: f64,
    secondary: Secondary,
) -> f64 {
    assert!((0.0..=1.0).contains(&spill_fraction), "bad fraction");
    let threads = threads.min(config.host.max_threads) as f64;
    let miss = match secondary {
        Secondary::Ssd => config.baseline.ssd_random_latency,
        Secondary::Disk => config.baseline.hdd_random_latency,
    };
    let per_item =
        config.host.nn_compare_time.as_secs_f64() + spill_fraction * miss.as_secs_f64();
    threads / per_item
}

/// Off-the-shelf SSD nearest-neighbor throughput with fully random
/// accesses (Figure 18's "Full Flash"): each thread waits out the random
/// read latency per item, capped by the device's bandwidth.
pub fn ssd_random_nn_rate(config: &SystemConfig, threads: usize) -> f64 {
    let threads = threads.min(config.host.max_threads) as f64;
    let per_item = config.baseline.ssd_random_latency.as_secs_f64()
        + config.host.nn_compare_time.as_secs_f64();
    let device_cap = config.baseline.ssd_bandwidth.as_bytes_per_sec()
        / config.flash.geometry.page_bytes as f64;
    (threads / per_item).min(device_cap)
}

/// Off-the-shelf SSD nearest-neighbor throughput when accesses are
/// "artificially arranged to be sequential" (Figure 18's "Seq Flash"):
/// the device streams at full bandwidth, compute permitting.
pub fn ssd_sequential_nn_rate(config: &SystemConfig, threads: usize) -> f64 {
    let device = config.baseline.ssd_bandwidth.as_bytes_per_sec()
        / config.flash.geometry.page_bytes as f64;
    device.min(config.host_nn_rate(threads))
}

/// In-store NN throughput on a device throttled to `fraction` of its
/// flash bandwidth (Figure 16/19's "Throttled" arms; the paper throttles
/// to 600 MB/s = 0.25).
pub fn isp_nn_rate_throttled(config: &SystemConfig, fraction: f64) -> f64 {
    assert!(fraction > 0.0 && fraction <= 1.0);
    config.isp_nn_rate() * fraction
}

/// Host software scanning the (possibly throttled) BlueDBM device over
/// PCIe (Figure 19's "BlueDBM+SW" arm): per-page software overhead
/// stretches the device's page service time, and the PCIe cap applies.
pub fn host_sw_scan_rate(config: &SystemConfig, device_fraction: f64, threads: usize) -> f64 {
    let device_rate = config.isp_nn_rate() * device_fraction;
    let page_time = 1.0 / device_rate;
    let stretched = page_time + config.host.io_page_overhead.as_secs_f64();
    let pcie_cap = config.pcie.d2h.as_bytes_per_sec() / config.flash.geometry.page_bytes as f64;
    (1.0 / stretched)
        .min(pcie_cap)
        .min(config.host_nn_rate(threads))
}

/// Dependent-lookup (graph traversal) step rate given a per-step access
/// latency — Figure 20's arms all reduce to `1 / step_latency` since the
/// next request depends on the previous response.
pub fn traversal_rate(step_latency: SimTime) -> f64 {
    1.0 / step_latency.as_secs_f64()
}

/// Sequential-scan throughput (bytes/s) of grep-style software on a
/// device — Figure 21's software arms are I/O-bound at the device's
/// sequential bandwidth.
pub fn sw_scan_bandwidth(config: &SystemConfig, secondary: Secondary) -> f64 {
    match secondary {
        Secondary::Ssd => config.baseline.ssd_bandwidth.as_bytes_per_sec(),
        Secondary::Disk => config.baseline.hdd_bandwidth.as_bytes_per_sec(),
    }
}

/// CPU utilization (%) of grep-style software scanning at `bytes_per_sec`
/// (Figure 21's right axis), from the two-point fit in the config.
pub fn scan_cpu_utilization(config: &SystemConfig, bytes_per_sec: f64) -> f64 {
    let mbps = bytes_per_sec / 1e6;
    (config.baseline.scan_cpu_slope * mbps + config.baseline.scan_cpu_intercept).max(0.0)
}

/// CPU utilization of the in-store search path: only match locations
/// (0.01% of the data) return to the host.
pub fn isp_scan_cpu_utilization(config: &SystemConfig, bytes_per_sec: f64) -> f64 {
    scan_cpu_utilization(config, bytes_per_sec * 0.0001)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SystemConfig {
        SystemConfig::paper()
    }

    #[test]
    fn figure16_shape_dram_crosses_isp() {
        let c = config();
        let isp = c.isp_nn_rate();
        // Few threads: ISP wins. Many threads: DRAM wins.
        assert!(host_dram_nn_rate(&c, 2) < isp);
        assert!(host_dram_nn_rate(&c, 16) > isp);
        // Throttled ISP is 4x slower.
        let throttled = isp_nn_rate_throttled(&c, 0.25);
        assert!((isp / throttled - 4.0).abs() < 1e-9);
    }

    #[test]
    fn figure17_cliff_ordering() {
        let c = config();
        let dram = host_dram_nn_rate(&c, 8);
        let flash10 = ramcloud_nn_rate(&c, 8, 0.10, Secondary::Ssd);
        let disk5 = ramcloud_nn_rate(&c, 8, 0.05, Secondary::Disk);
        // Paper text: 350K -> <80K -> <10K at 8 threads.
        assert!((dram - 350_000.0).abs() / 350_000.0 < 0.02, "{dram}");
        assert!(flash10 < 80_000.0, "{flash10}");
        assert!(flash10 > 30_000.0, "{flash10} should not collapse to zero");
        assert!(disk5 < 11_000.0, "{disk5}");
        assert!(dram > flash10 && flash10 > disk5);
    }

    #[test]
    fn figure18_random_ssd_is_poor_sequential_recovers() {
        let c = config();
        let throttled_isp = isp_nn_rate_throttled(&c, 0.25);
        let random = ssd_random_nn_rate(&c, 8);
        let seq = ssd_sequential_nn_rate(&c, 8);
        assert!(
            random < throttled_isp / 3.0,
            "random {random} vs throttled {throttled_isp}"
        );
        // "when we artificially arranged the data accesses to be
        // sequential, the performance improved dramatically, sometimes
        // matching throttled BlueDBM".
        assert!(seq / throttled_isp > 0.9, "seq {seq} vs {throttled_isp}");
    }

    #[test]
    fn figure19_isp_beats_host_software_by_20_percent() {
        let c = config();
        let isp_t = isp_nn_rate_throttled(&c, 0.25);
        let sw_t = host_sw_scan_rate(&c, 0.25, 8);
        let advantage = isp_t / sw_t;
        assert!(
            (1.18..1.4).contains(&advantage),
            "throttled advantage {advantage}"
        );
        // Unthrottled: PCIe (1.6 GB/s) caps software while the ISP runs
        // at 2.4 GB/s: >= 30%.
        let isp = c.isp_nn_rate();
        let sw = host_sw_scan_rate(&c, 1.0, 8);
        assert!(isp / sw >= 1.3, "unthrottled advantage {}", isp / sw);
    }

    #[test]
    fn figure21_bandwidths_and_cpu() {
        let c = config();
        let ssd = sw_scan_bandwidth(&c, Secondary::Ssd);
        let hdd = sw_scan_bandwidth(&c, Secondary::Disk);
        assert_eq!(ssd, 600e6);
        // In-store search runs at 1.1 GB/s (92% of one card); 7.5x HDD.
        let isp_search = 1.1e9;
        assert!((isp_search / hdd - 7.5).abs() < 0.1);
        assert!((scan_cpu_utilization(&c, ssd) - 65.0).abs() < 1.0);
        assert!((scan_cpu_utilization(&c, hdd) - 13.0).abs() < 1.0);
        assert!(isp_scan_cpu_utilization(&c, isp_search) < 2.0);
    }

    #[test]
    fn traversal_rate_inverts_latency() {
        let r = traversal_rate(SimTime::us(50));
        assert!((r - 20_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bad fraction")]
    fn ramcloud_validates_fraction() {
        ramcloud_nn_rate(&config(), 8, 1.5, Secondary::Ssd);
    }
}
