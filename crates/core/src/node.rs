//! The per-node agent: the glue fabric of one BlueDBM storage device.
//!
//! In the paper's node architecture (Figure 2) the in-store processor
//! sits between four services: flash interface, network interface, host
//! interface and the on-board DRAM buffer. [`NodeAgent`] is that hub as a
//! DES component: it accepts operations from the experiment driver,
//! issues tagged commands to the local flash splitters, serves and issues
//! remote requests over the integrated network, stages host-bound data
//! through the PCIe link, and answers remote DRAM-buffer reads.

use std::collections::VecDeque;

use bluedbm_sim::fxhash::FxHashMap;

use bluedbm_flash::controller::{CtrlCmd, CtrlResp, Tag};
use bluedbm_flash::error::FlashError;
use bluedbm_flash::geometry::Ppa;
use bluedbm_host::bufpool::BufferPool;
use bluedbm_host::msg::HostMsg;
use bluedbm_host::pcie::{Direction, PcieXfer};
use bluedbm_net::router::{NetRecv, NetSend};
use bluedbm_net::topology::NodeId;
use bluedbm_sim::engine::{Batch, Component, ComponentId, Ctx};
use bluedbm_sim::time::{Bandwidth, SimTime};
use bluedbm_sim::{MetricsNode, PageRef, TraceCat};

use crate::msg::{Msg, NetBody};
use crate::scheduler::{SchedDone, SchedSubmit};

/// Endpoint used for remote request messages.
pub const REQUEST_ENDPOINT: u16 = 0;
/// Number of endpoints used for data return (spread across parallel
/// lanes by the deterministic router).
pub const DATA_ENDPOINTS: u16 = 4;
/// Wire size of a remote read request.
pub const REQUEST_BYTES: u32 = 32;

/// A page address in the cluster-wide global address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GlobalPageAddr {
    /// Owning node.
    pub node: NodeId,
    /// Flash card within the node.
    pub card: u8,
    /// Physical page on that card.
    pub ppa: Ppa,
}

/// Who consumes the data of a read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Consume {
    /// The in-store processor: data stays on the device (ISP-* paths).
    Isp,
    /// Host software: data additionally crosses the PCIe link (Host-*
    /// and H-* paths).
    Host,
    /// A shared in-store accelerator unit: data stays on the device but
    /// must first be granted one of the node's
    /// `config.accel.units` units by the FIFO
    /// [`crate::scheduler::AccelSched`] (paper Section 4) — competing
    /// tenants queue. The KV engine's get path.
    Accel,
}

/// Operations the experiment driver sends to a [`NodeAgent`].
#[derive(Clone, Debug)]
pub enum AgentOp {
    /// Read one page of the global address space (local or remote — the
    /// agent routes accordingly).
    ReadFlash {
        /// Driver-chosen id echoed in the completion record.
        op_id: u64,
        /// Page to read.
        addr: GlobalPageAddr,
        /// Data destination.
        consume: Consume,
    },
    /// Program one local page.
    WriteFlash {
        /// Driver-chosen id echoed in the completion record.
        op_id: u64,
        /// Page to program; must be local to this agent's node.
        addr: GlobalPageAddr,
        /// Handle to the page contents (staged in the simulator's page
        /// store by the driver; consumed by the flash controller).
        data: PageRef,
    },
    /// Stage data into this node's DRAM buffer (setup; immediate).
    LoadDram {
        /// Key later used by `ReadRemoteDram`.
        key: u64,
        /// Value stored.
        data: Vec<u8>,
    },
    /// Read a remote node's DRAM buffer over the integrated network (the
    /// H-D path of Figure 12).
    ReadRemoteDram {
        /// Driver-chosen id echoed in the completion record.
        op_id: u64,
        /// Node whose DRAM buffer is read.
        node: NodeId,
        /// Key to fetch.
        key: u64,
        /// Data destination.
        consume: Consume,
    },
}

/// A finished operation, harvested by the cluster facade.
#[derive(Clone, Debug)]
pub struct Completed {
    /// Echo of the driver's op id.
    pub op_id: u64,
    /// Address the operation touched (reads/writes).
    pub addr: Option<GlobalPageAddr>,
    /// Page data for reads; `None` for writes.
    pub data: Option<Vec<u8>>,
    /// Failure, if any.
    pub error: Option<FlashError>,
    /// When the agent accepted the operation.
    pub start: SimTime,
    /// When it completed (data fully at its destination).
    pub end: SimTime,
}

/// Remote request carried over the storage network (interned in the
/// simulator-owned control-block pool; [`crate::msg::NetBody::Req`]
/// carries the 8-byte handle). Public only because it rides the network
/// body and crosses shard boundaries; agents construct and consume it.
#[derive(Clone, Debug)]
pub struct RemoteReq {
    req_id: u64,
    origin: NodeId,
    reply_ep: u16,
    kind: RemoteKind,
}

#[derive(Clone, Copy, Debug)]
enum RemoteKind {
    Flash(GlobalPageAddr),
    Dram(u64),
}

/// Compact wire form of a remote read failure: a status code, as real
/// hardware would return — the rich [`FlashError`] context (which page,
/// which key) is reconstructed by the requester from its own pending
/// state, so the response message stays small. Only the errors a read
/// path can produce exist here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteError {
    /// The address does not exist on the owning node.
    OutOfRange,
    /// The block is marked bad.
    BadBlock,
    /// The page was never programmed.
    NotProgrammed,
    /// Uncorrectable ECC failure.
    Uncorrectable,
    /// The DRAM buffer holds no such key.
    UnknownHandle,
}

impl RemoteError {
    /// Collapse a read-path failure to its wire code.
    fn of(e: &FlashError) -> Self {
        match e {
            FlashError::OutOfRange(_) => RemoteError::OutOfRange,
            FlashError::BadBlock(_) => RemoteError::BadBlock,
            FlashError::NotProgrammed(_) => RemoteError::NotProgrammed,
            FlashError::Uncorrectable(_) => RemoteError::Uncorrectable,
            FlashError::UnknownHandle(_) => RemoteError::UnknownHandle,
            other => panic!("non-read error on the remote read path: {other}"),
        }
    }

    /// Rehydrate the full error from the requester's knowledge of what
    /// it asked for.
    fn rehydrate(self, target: RemoteKind) -> FlashError {
        match (self, target) {
            (RemoteError::OutOfRange, RemoteKind::Flash(a)) => FlashError::OutOfRange(a.ppa),
            (RemoteError::BadBlock, RemoteKind::Flash(a)) => FlashError::BadBlock(a.ppa),
            (RemoteError::NotProgrammed, RemoteKind::Flash(a)) => {
                FlashError::NotProgrammed(a.ppa)
            }
            (RemoteError::Uncorrectable, RemoteKind::Flash(a)) => {
                FlashError::Uncorrectable(a.ppa)
            }
            (RemoteError::UnknownHandle, RemoteKind::Dram(key)) => {
                FlashError::UnknownHandle(key)
            }
            (code, target) => panic!("error code {code:?} does not fit request {target:?}"),
        }
    }
}

/// Remote response carried over the storage network. Public only because
/// it rides [`crate::msg::NetBody`]. Page data travels by handle (the
/// requesting agent consumes the page); failures travel as
/// [`RemoteError`] codes.
#[derive(Clone, Debug)]
pub struct RemoteResp {
    req_id: u64,
    /// `pub(crate)` so the cross-shard relocation in [`crate::msg`] can
    /// rewrite the page handle.
    pub(crate) data: Result<PageRef, RemoteError>,
}

/// Delayed local DRAM reply (models the DRAM access latency of a
/// remote-DRAM request being serviced). Public only because it rides
/// [`crate::msg::Msg`] as an agent self-send. Carries the response
/// fields flat (DRAM replies never carry a flash address) so the
/// variant stays inside `Msg`'s 64-byte budget.
#[derive(Clone, Debug)]
pub struct DramServed {
    origin: NodeId,
    reply_ep: u16,
    req_id: u64,
    /// `pub(crate)` for the cross-shard relocation in [`crate::msg`].
    pub(crate) data: Result<PageRef, RemoteError>,
    bytes: u32,
}

/// What an in-flight flash tag is for.
#[derive(Clone)]
enum FlashDest {
    Local {
        op_id: u64,
        addr: GlobalPageAddr,
        consume: Consume,
        start: SimTime,
    },
    LocalWrite {
        op_id: u64,
        addr: GlobalPageAddr,
        start: SimTime,
    },
    RemoteJob {
        origin: NodeId,
        req_id: u64,
        reply_ep: u16,
    },
}

/// A network round trip awaiting its response. Remembers what was asked
/// for, so completion records (and rehydrated errors) carry the full
/// context without the response having to echo it over the wire.
#[derive(Clone)]
struct NetPending {
    op_id: u64,
    consume: Consume,
    start: SimTime,
    target: RemoteKind,
}

/// Cumulative node-agent statistics. Purely additive counters, so the
/// batched dispatcher accumulates a per-train delta and applies it once
/// per train instead of once per message; `PartialEq` so the
/// cross-engine determinism suite can compare agents field for field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Driver operations accepted.
    pub ops: u64,
    /// Reads issued to local flash (driver-initiated).
    pub local_reads: u64,
    /// Remote requests sent over the storage network.
    pub remote_reads: u64,
    /// Remote requests served here on behalf of other nodes.
    pub remote_jobs: u64,
    /// Operations completed (success or failure).
    pub completions: u64,
    /// Host-bound pages that had to park waiting for a read buffer.
    pub parked_pages: u64,
    /// Read payloads submitted to the node's accelerator scheduler.
    pub accel_jobs: u64,
}

impl AgentStats {
    /// Write every counter into a metrics `node` (see
    /// [`bluedbm_sim::MetricsRegistry`]).
    pub fn fill_metrics(&self, node: &mut MetricsNode) {
        node.set("ops", self.ops);
        node.set("local_reads", self.local_reads);
        node.set("remote_reads", self.remote_reads);
        node.set("remote_jobs", self.remote_jobs);
        node.set("completions", self.completions);
        node.set("parked_pages", self.parked_pages);
        node.set("accel_jobs", self.accel_jobs);
    }

    fn apply(&mut self, delta: AgentStats) {
        self.ops += delta.ops;
        self.local_reads += delta.local_reads;
        self.remote_reads += delta.remote_reads;
        self.remote_jobs += delta.remote_jobs;
        self.completions += delta.completions;
        self.parked_pages += delta.parked_pages;
        self.accel_jobs += delta.accel_jobs;
    }
}

/// The node hub component. Built by [`crate::cluster::Cluster`].
/// `Clone` is the agent's speculation snapshot.
#[derive(Clone)]
pub struct NodeAgent {
    node: NodeId,
    router: ComponentId,
    pcie: ComponentId,
    /// Splitter (or controller) per flash card.
    cards: Vec<ComponentId>,
    page_bytes: usize,
    dram_latency: SimTime,
    /// The node's accelerator scheduler and one unit's processing
    /// bandwidth (for [`Consume::Accel`] reads).
    sched: ComponentId,
    accel_bandwidth: Bandwidth,

    next_tag: u16,
    flash_pending: FxHashMap<u16, FlashDest>,
    next_req: u64,
    /// Per-destination counter for round-robin data-return endpoints
    /// (spreads response traffic across parallel lanes regardless of how
    /// requests to different destinations interleave).
    reply_rr: FxHashMap<NodeId, u64>,
    net_pending: FxHashMap<u64, NetPending>,
    /// Host-bound pages in flight on PCIe: token -> (op state).
    pcie_pending: FxHashMap<u64, (u64, Option<GlobalPageAddr>, SimTime)>,
    next_pcie_token: u64,
    /// The paper's host-interface read buffers: a device-to-host page
    /// must claim one of the (128 in the paper) buffers before its DMA
    /// is issued; pages that find the pool exhausted park in
    /// `host_parked` until a completion frees a buffer.
    host_buffers: BufferPool,
    host_parked: VecDeque<(u64, Option<GlobalPageAddr>, SimTime, PageRef)>,
    /// Read payloads being processed on (or queued for) an accelerator
    /// unit: job -> the op state restored when [`SchedDone`] arrives.
    accel_pending: FxHashMap<u64, (u64, Option<GlobalPageAddr>, SimTime, Vec<u8>)>,
    next_accel_job: u64,
    dram: FxHashMap<u64, Vec<u8>>,
    /// Finished operations awaiting harvest.
    completed: Vec<Completed>,
    stats: AgentStats,
}

impl NodeAgent {
    /// Build an agent for `node` wired to its router, PCIe link, flash
    /// card frontends and accelerator scheduler.
    #[allow(clippy::too_many_arguments)] // the cluster builder is the one caller
    pub fn new(
        node: NodeId,
        router: ComponentId,
        pcie: ComponentId,
        cards: Vec<ComponentId>,
        page_bytes: usize,
        dram_latency: SimTime,
        read_buffers: usize,
        sched: ComponentId,
        accel_bandwidth: Bandwidth,
    ) -> Self {
        NodeAgent {
            node,
            router,
            pcie,
            cards,
            page_bytes,
            dram_latency,
            sched,
            accel_bandwidth,
            next_tag: 0,
            flash_pending: FxHashMap::default(),
            next_req: 0,
            reply_rr: FxHashMap::default(),
            net_pending: FxHashMap::default(),
            pcie_pending: FxHashMap::default(),
            next_pcie_token: 0,
            host_buffers: BufferPool::new(read_buffers),
            host_parked: VecDeque::new(),
            accel_pending: FxHashMap::default(),
            next_accel_job: 0,
            dram: FxHashMap::default(),
            completed: Vec::new(),
            stats: AgentStats::default(),
        }
    }

    /// The host-interface read-buffer pool (stats: peak occupancy,
    /// exhaustion stalls).
    pub fn host_buffers(&self) -> &BufferPool {
        &self.host_buffers
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// Drain all completions recorded so far.
    pub fn take_completed(&mut self) -> Vec<Completed> {
        std::mem::take(&mut self.completed)
    }

    /// Inspect the DRAM buffer (test support).
    pub fn dram_get(&self, key: u64) -> Option<&Vec<u8>> {
        self.dram.get(&key)
    }

    fn alloc_tag(&mut self) -> u16 {
        // Rolling 16-bit tags; collision would need 65k in flight.
        loop {
            let t = self.next_tag;
            self.next_tag = self.next_tag.wrapping_add(1);
            if !self.flash_pending.contains_key(&t) {
                return t;
            }
        }
    }

    fn issue_local_read(&mut self, ctx: &mut Ctx<'_, Msg>, addr: GlobalPageAddr, dest: FlashDest) {
        let tag = self.alloc_tag();
        self.flash_pending.insert(tag, dest);
        let me = ctx.self_id();
        ctx.send(
            self.cards[addr.card as usize],
            SimTime::ZERO,
            CtrlCmd::Read {
                tag: Tag(tag),
                ppa: addr.ppa,
                reply_to: me,
            },
        );
    }

    fn complete(
        &mut self,
        tc: &mut AgentStats,
        now: SimTime,
        op_id: u64,
        addr: Option<GlobalPageAddr>,
        data: Result<Vec<u8>, FlashError>,
        start: SimTime,
    ) {
        tc.completions += 1;
        let (data, error) = match data {
            Ok(d) => (Some(d), None),
            Err(e) => (None, Some(e)),
        };
        self.completed.push(Completed {
            op_id,
            addr,
            data,
            error,
            start,
            end: now,
        });
    }

    /// Deliver read data to its consumer: ISP copies the page out of the
    /// store here; Host claims a read buffer and pays the PCIe crossing
    /// first (parking if all buffers are in flight).
    #[allow(clippy::too_many_arguments)]
    fn consume_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        tc: &mut AgentStats,
        op_id: u64,
        addr: Option<GlobalPageAddr>,
        consume: Consume,
        start: SimTime,
        data: Result<PageRef, FlashError>,
    ) {
        match (consume, data) {
            (Consume::Isp, data) => {
                let data = data.map(|page| ctx.pages().take(page));
                self.complete(tc, ctx.now(), op_id, addr, data, start);
            }
            (Consume::Accel, Ok(page)) => {
                // The payload must stream through one of the node's
                // shared accelerator units before the op counts as done;
                // the FIFO scheduler (paper Section 4) arbitrates them
                // among competing tenants.
                tc.accel_jobs += 1;
                let data = ctx.pages().take(page);
                let duration = self.accel_bandwidth.time_for(data.len() as u64);
                let job = self.next_accel_job;
                self.next_accel_job += 1;
                self.accel_pending.insert(job, (op_id, addr, start, data));
                let me = ctx.self_id();
                ctx.send(
                    self.sched,
                    SimTime::ZERO,
                    SchedSubmit {
                        job,
                        reply_to: me,
                        duration,
                    },
                );
            }
            (Consume::Accel, Err(e)) => {
                self.complete(tc, ctx.now(), op_id, addr, Err(e), start)
            }
            (Consume::Host, Ok(page)) => {
                if self.host_buffers.adopt(page) {
                    self.issue_pcie(ctx, op_id, addr, start, page);
                } else {
                    // All 128 read buffers hold in-flight pages: the
                    // paper's free-queue discipline makes this page wait
                    // for a completion to return a buffer.
                    tc.parked_pages += 1;
                    ctx.trace().instant(
                        TraceCat::BufPool,
                        "park",
                        self.node.0 as u32,
                        op_id,
                        self.host_parked.len() as u64 + 1,
                    );
                    self.host_parked.push_back((op_id, addr, start, page));
                }
            }
            (Consume::Host, Err(e)) => self.complete(tc, ctx.now(), op_id, addr, Err(e), start),
        }
    }

    /// DMA one buffered page to the host.
    fn issue_pcie(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        op_id: u64,
        addr: Option<GlobalPageAddr>,
        start: SimTime,
        page: PageRef,
    ) {
        let token = self.next_pcie_token;
        self.next_pcie_token += 1;
        self.pcie_pending.insert(token, (op_id, addr, start));
        let me = ctx.self_id();
        let bytes = ctx.pages().len(page) as u32;
        ctx.send(
            self.pcie,
            SimTime::ZERO,
            PcieXfer::new(Direction::DeviceToHost, bytes, me, token, page),
        );
    }

    fn handle_op(&mut self, ctx: &mut Ctx<'_, Msg>, tc: &mut AgentStats, op: AgentOp) {
        tc.ops += 1;
        match op {
            AgentOp::ReadFlash {
                op_id,
                addr,
                consume,
            } => {
                if addr.node == self.node {
                    tc.local_reads += 1;
                    self.issue_local_read(
                        ctx,
                        addr,
                        FlashDest::Local {
                            op_id,
                            addr,
                            consume,
                            start: ctx.now(),
                        },
                    );
                } else {
                    tc.remote_reads += 1;
                    let req_id = self.next_req;
                    self.next_req += 1;
                    self.net_pending.insert(
                        req_id,
                        NetPending {
                            op_id,
                            consume,
                            start: ctx.now(),
                            target: RemoteKind::Flash(addr),
                        },
                    );
                    let rr = self.reply_rr.entry(addr.node).or_insert(0);
                    let reply_ep = 1 + (*rr % u64::from(DATA_ENDPOINTS)) as u16;
                    *rr += 1;
                    // Interned, not boxed: the pool slot recycles when the
                    // owning node takes the request back out, so the
                    // remote-read control plane allocates nothing in
                    // steady state.
                    let req = ctx.pools().intern(RemoteReq {
                        req_id,
                        origin: self.node,
                        reply_ep,
                        kind: RemoteKind::Flash(addr),
                    });
                    ctx.send(
                        self.router,
                        SimTime::ZERO,
                        NetSend::new(
                            addr.node,
                            REQUEST_ENDPOINT,
                            REQUEST_BYTES,
                            NetBody::Req(req),
                        ),
                    );
                }
            }
            AgentOp::WriteFlash { op_id, addr, data } => {
                assert_eq!(addr.node, self.node, "remote writes are not modelled");
                let tag = self.alloc_tag();
                self.flash_pending.insert(
                    tag,
                    FlashDest::LocalWrite {
                        op_id,
                        addr,
                        start: ctx.now(),
                    },
                );
                let me = ctx.self_id();
                ctx.send(
                    self.cards[addr.card as usize],
                    SimTime::ZERO,
                    CtrlCmd::Write {
                        tag: Tag(tag),
                        ppa: addr.ppa,
                        data,
                        reply_to: me,
                    },
                );
            }
            AgentOp::LoadDram { key, data } => {
                self.dram.insert(key, data);
            }
            AgentOp::ReadRemoteDram {
                op_id,
                node,
                key,
                consume,
            } => {
                tc.remote_reads += 1;
                let req_id = self.next_req;
                self.next_req += 1;
                self.net_pending.insert(
                    req_id,
                    NetPending {
                        op_id,
                        consume,
                        start: ctx.now(),
                        target: RemoteKind::Dram(key),
                    },
                );
                let rr = self.reply_rr.entry(node).or_insert(0);
                let reply_ep = 1 + (*rr % u64::from(DATA_ENDPOINTS)) as u16;
                *rr += 1;
                let req = ctx.pools().intern(RemoteReq {
                    req_id,
                    origin: self.node,
                    reply_ep,
                    kind: RemoteKind::Dram(key),
                });
                ctx.send(
                    self.router,
                    SimTime::ZERO,
                    NetSend::new(
                        node,
                        REQUEST_ENDPOINT,
                        REQUEST_BYTES,
                        NetBody::Req(req),
                    ),
                );
            }
        }
    }

    fn handle_ctrl_resp(&mut self, ctx: &mut Ctx<'_, Msg>, tc: &mut AgentStats, resp: CtrlResp) {
        let tag = resp.tag().0;
        let dest = self
            .flash_pending
            .remove(&tag)
            .expect("completion for a tag the agent never issued");
        match (dest, resp) {
            (
                FlashDest::Local {
                    op_id,
                    addr,
                    consume,
                    start,
                },
                CtrlResp::ReadDone { result, .. },
            ) => {
                self.consume_read(ctx, tc, op_id, Some(addr), consume, start, result.map(|r| r.page));
            }
            (FlashDest::LocalWrite { op_id, addr, start }, CtrlResp::WriteDone { result, .. }) => {
                let data = result.map(|()| Vec::new());
                self.complete(tc, ctx.now(), op_id, Some(addr), data, start);
            }
            (
                FlashDest::RemoteJob {
                    origin,
                    req_id,
                    reply_ep,
                },
                CtrlResp::ReadDone { result, .. },
            ) => {
                let data = result
                    .map(|r| r.page)
                    .map_err(|e| RemoteError::of(&e));
                let bytes = self.page_bytes as u32;
                ctx.send(
                    self.router,
                    SimTime::ZERO,
                    NetSend::new(
                        origin,
                        reply_ep,
                        bytes,
                        NetBody::Resp(RemoteResp { req_id, data }),
                    ),
                );
            }
            _ => panic!("mismatched flash completion kind"),
        }
    }

    fn handle_net(&mut self, ctx: &mut Ctx<'_, Msg>, tc: &mut AgentStats, recv: NetRecv<NetBody>) {
        let resp = match recv.body {
            NetBody::Req(req) => {
                let req = ctx.pools().take(req);
                tc.remote_jobs += 1;
                match req.kind {
                    RemoteKind::Flash(addr) => {
                        debug_assert_eq!(addr.node, self.node);
                        self.issue_local_read(
                            ctx,
                            addr,
                            FlashDest::RemoteJob {
                                origin: req.origin,
                                req_id: req.req_id,
                                reply_ep: req.reply_ep,
                            },
                        );
                    }
                    RemoteKind::Dram(key) => {
                        let data = match self.dram.get(&key) {
                            Some(d) => Ok(ctx.pages().alloc_from(d)),
                            None => Err(RemoteError::UnknownHandle),
                        };
                        let bytes = match &data {
                            Ok(page) => ctx.pages().len(*page) as u32,
                            Err(_) => 8,
                        };
                        // Model the DRAM access before replying.
                        ctx.send_self(
                            self.dram_latency,
                            DramServed {
                                origin: req.origin,
                                reply_ep: req.reply_ep,
                                req_id: req.req_id,
                                data,
                                bytes,
                            },
                        );
                    }
                }
                return;
            }
            NetBody::Resp(resp) => resp,
        };
        let pending = self
            .net_pending
            .remove(&resp.req_id)
            .expect("response for a request the agent never sent");
        let addr = match pending.target {
            RemoteKind::Flash(addr) => Some(addr),
            RemoteKind::Dram(_) => None,
        };
        let data = resp.data.map_err(|code| code.rehydrate(pending.target));
        self.consume_read(ctx, tc, pending.op_id, addr, pending.consume, pending.start, data);
    }
}

impl NodeAgent {
    /// Per-message logic shared by [`Component::handle`] and the batch
    /// hook. Additive statistics go through `tc`, which the dispatch
    /// entry points flush once per train.
    fn handle_msg(&mut self, ctx: &mut Ctx<'_, Msg>, tc: &mut AgentStats, msg: Msg) {
        match msg {
            Msg::Op(op) => self.handle_op(ctx, tc, op),
            Msg::FlashResp(resp) => self.handle_ctrl_resp(ctx, tc, resp),
            Msg::NetRecv(recv) => self.handle_net(ctx, tc, recv),
            Msg::Dram(served) => {
                ctx.send(
                    self.router,
                    SimTime::ZERO,
                    NetSend::new(
                        served.origin,
                        served.reply_ep,
                        served.bytes,
                        NetBody::Resp(RemoteResp {
                            req_id: served.req_id,
                            data: served.data,
                        }),
                    ),
                );
            }
            Msg::SchedDone(SchedDone { job }) => {
                let (op_id, addr, start, data) = self
                    .accel_pending
                    .remove(&job)
                    .expect("accelerator completion for an unknown job");
                self.complete(tc, ctx.now(), op_id, addr, Ok(data), start);
            }
            Msg::Host(HostMsg::Done(done)) => {
                let (op_id, addr, start) = self
                    .pcie_pending
                    .remove(&done.token)
                    .expect("PCIe completion for an unknown token");
                // The page is in host memory: return the read buffer to
                // the free queue and hand the next parked page its slot.
                self.host_buffers.release(done.body);
                let data = ctx.pages().take(done.body);
                self.complete(tc, ctx.now(), op_id, addr, Ok(data), start);
                if let Some((op_id, addr, start, page)) = self.host_parked.pop_front() {
                    let adopted = self.host_buffers.adopt(page);
                    debug_assert!(adopted, "a just-released buffer must be free");
                    let waited = (ctx.now() - start).as_ps();
                    ctx.trace().instant(
                        TraceCat::BufPool,
                        "resume",
                        self.node.0 as u32,
                        op_id,
                        waited,
                    );
                    self.issue_pcie(ctx, op_id, addr, start, page);
                }
            }
            other => panic!("node agent got an unexpected message: {other:?}"),
        }
    }
}

impl Component<Msg> for NodeAgent {
    bluedbm_sim::clone_snapshot!();

    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        let mut tc = AgentStats::default();
        self.handle_msg(ctx, &mut tc, msg);
        self.stats.apply(tc);
    }

    /// Batched dispatch with the per-train hoist: the experiment drivers
    /// inject whole read streams at one instant, and those [`AgentOp`]
    /// trains drain in one borrow with the additive statistics (ops,
    /// reads, jobs, completions, parks) applied once per train instead
    /// of once per message.
    fn handle_batch(&mut self, ctx: &mut Ctx<'_, Msg>, batch: &mut Batch<Msg>) {
        let mut tc = AgentStats::default();
        while let Some(msg) = batch.next(ctx) {
            self.handle_msg(ctx, &mut tc, msg);
        }
        self.stats.apply(tc);
    }
}

/// The Virtex-7 module inventory of one node — the software analogue of
/// the paper's Table 2.
pub fn node_inventory(cards: usize) -> Vec<(&'static str, usize)> {
    vec![
        ("flash interface", cards),
        ("network interface", 1),
        ("dram interface", 1),
        ("host interface", 1),
        ("in-store processor slots", 4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_table2_modules() {
        let inv = node_inventory(2);
        let names: Vec<&str> = inv.iter().map(|(n, _)| *n).collect();
        for expected in [
            "flash interface",
            "network interface",
            "dram interface",
            "host interface",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn global_addr_ordering_and_copy() {
        let a = GlobalPageAddr {
            node: NodeId(0),
            card: 0,
            ppa: Ppa::new(0, 0, 0, 0),
        };
        let b = GlobalPageAddr {
            node: NodeId(1),
            card: 0,
            ppa: Ppa::new(0, 0, 0, 0),
        };
        assert!(a < b);
        let c = a;
        assert_eq!(a, c);
    }
}
