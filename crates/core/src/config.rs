//! Every calibration constant of the reproduction, in one place.
//!
//! Each default is annotated with the paper statement it reproduces.
//! Values marked *calibrated* are not printed in the paper directly but
//! are solved from the paper's reported results (the solving is written
//! out in EXPERIMENTS.md).

use bluedbm_flash::{FlashGeometry, FlashTiming};
use bluedbm_host::PcieParams;
use bluedbm_net::NetParams;
use bluedbm_sim::shard::ExecMode;
use bluedbm_sim::time::{Bandwidth, SimTime};
use bluedbm_sim::TraceConfig;

use crate::power::PowerModel;

/// Flash subsystem configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashConfig {
    /// Geometry of one flash card.
    pub geometry: FlashGeometry,
    /// Timing of one flash card.
    pub timing: FlashTiming,
    /// Cards per node. Paper Section 5: "Each VC707 board hosts two
    /// custom-built flash boards", 1.2 GB/s each -> 2.4 GB/s per node.
    pub cards_per_node: usize,
}

/// The host server model: a 24-core Xeon with 50 GB of DRAM (paper
/// Section 5), reduced to the aggregate rates the experiments depend on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostModel {
    /// Software latency added per storage access that traverses the host
    /// (driver, syscall, request scheduling, interrupt). *Calibrated*:
    /// Figure 12 shows H-F exceeding ISP-F by roughly this much plus the
    /// PCIe time, and Figure 20's H-RH-F pays it twice.
    pub sw_overhead: SimTime,
    /// Per-page host I/O overhead when software streams pages over PCIe
    /// (DMA descriptor + completion handling, amortized). *Calibrated*
    /// from Figure 19's >= 20% in-store advantage at throttled bandwidth.
    pub io_page_overhead: SimTime,
    /// Time for one host thread to hamming-compare one 8 KiB item that is
    /// already in DRAM. *Calibrated*: Figure 17's H-DRAM arm reaches
    /// ~350 K comparisons/s at 8 threads -> ~22.9 µs per item per thread.
    pub nn_compare_time: SimTime,
    /// Host DRAM random access latency (remote H-D storage-access term).
    pub dram_latency: SimTime,
    /// Host-interface read page buffers per node: "the host interface
    /// provides the software with 128 page buffers, each for reads and
    /// writes" (Section 3.3). Device-to-host pages wait for a free
    /// buffer before crossing PCIe.
    pub read_buffers: usize,
    /// Host threads available (24 cores in the paper's Xeons).
    pub max_threads: usize,
}

impl HostModel {
    /// Paper-calibrated host model.
    pub fn paper() -> Self {
        HostModel {
            sw_overhead: SimTime::us(100),
            // detlint::allow(float-sim-time): paper-calibrated constant
            io_page_overhead: SimTime::from_us_f64(2.7),
            // detlint::allow(float-sim-time): paper-calibrated constant
            nn_compare_time: SimTime::from_us_f64(22.9),
            dram_latency: SimTime::ns(200),
            read_buffers: 128,
            max_threads: 24,
        }
    }
}

/// Comparison-device envelopes (Figures 16–21).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineDevices {
    /// Off-the-shelf M.2 mPCIe SSD sequential/ideal bandwidth: "whose
    /// performance, for 8 KB accesses, was limited to 600 MB/s"
    /// (Section 7.1).
    pub ssd_bandwidth: Bandwidth,
    /// Random 8 KiB read latency through the full software stack at
    /// queue depth 1. *Calibrated* from Figure 17: DRAM + 10% flash drops
    /// below 80 K comparisons/s at 8 threads.
    pub ssd_random_latency: SimTime,
    /// HDD sequential bandwidth. *Calibrated* from Figure 21: Grep on
    /// disk is 7.5x slower than the 1.1 GB/s in-store search -> ~147 MB/s.
    pub hdd_bandwidth: Bandwidth,
    /// HDD random 8 KiB latency (seek + rotate + queueing); Figure 17's
    /// DRAM + 5% disk arm falls under 10 K comparisons/s.
    pub hdd_random_latency: SimTime,
    /// Grep-style scan CPU model: utilization% = a * MB/s + b, fitted to
    /// Figure 21's two software points (65% at 600 MB/s, 13% at
    /// 147 MB/s).
    pub scan_cpu_slope: f64,
    /// Intercept of the scan CPU fit (clamped at zero).
    pub scan_cpu_intercept: f64,
}

impl BaselineDevices {
    /// Paper-calibrated baseline devices.
    pub fn paper() -> Self {
        BaselineDevices {
            ssd_bandwidth: Bandwidth::mb(600.0),
            ssd_random_latency: SimTime::us(775),
            hdd_bandwidth: Bandwidth::mb(147.0),
            hdd_random_latency: SimTime::ms(15),
            scan_cpu_slope: 0.1148,
            scan_cpu_intercept: -3.87,
        }
    }
}

/// The shared in-store accelerator units of one node (paper Section 4).
///
/// "Multiple instances of a user application may compete for the same
/// hardware acceleration units. For efficient sharing of hardware
/// resources, BlueDBM runs a scheduler that assigns available
/// hardware-acceleration units to competing user-applications. In our
/// implementation, a simple FIFO-based policy is used." Each node's
/// [`crate::scheduler::AccelSched`] component arbitrates these units;
/// reads consumed with [`crate::node::Consume::Accel`] claim one for the
/// time it takes to stream the page through at `bandwidth`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccelConfig {
    /// Identical acceleration units per node (Table 2 provisions four
    /// in-store processor slots per Virtex-7).
    pub units: usize,
    /// Processing bandwidth of one unit. Matched to the node's aggregate
    /// flash bandwidth so a single tenant is never accelerator-bound —
    /// contention only appears when tenants compete, which is the
    /// scheduling behaviour Section 4 describes.
    pub bandwidth: Bandwidth,
}

impl AccelConfig {
    /// Paper-shaped accelerator provisioning.
    pub fn paper() -> Self {
        AccelConfig {
            units: 4,
            bandwidth: Bandwidth::gb(2.4),
        }
    }
}

/// Flash lifecycle management: per-card mirror FTLs drive garbage
/// collection, wear leveling and write-amplification accounting inside
/// the event-driven simulation (paper Section 4 — BlueDBM's raw flash
/// pushes the FTL into the driver).
///
/// When enabled, the cluster's driver-visible page addresses become
/// *logical*: each card keeps a [`bluedbm_ftl::Ftl`] mirror that maps
/// them to physical pages, and a per-node [`crate::gc::GcAgent`]
/// executes the mirror's GC rounds (valid-page migration reads/programs
/// and block erases) as ordinary simulated commands on the same buses
/// and controllers as foreground traffic. Disabled, the cluster falls
/// back to the historical physical bump allocator with magic TRIM —
/// useful for pinning what GC costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GcConfig {
    /// Run the DES flash lifecycle (mirror FTLs + GC agents).
    pub enabled: bool,
    /// Over-provisioned fraction withheld from the exported space.
    pub over_provision: f64,
    /// Per-plane free-block watermark that triggers collection.
    pub gc_watermark: usize,
    /// Erase-count spread beyond which wear leveling picks victims.
    pub wear_threshold: u64,
    /// Record each card's logical op log and executed GC rounds so the
    /// conformance suite can replay them into an offline twin. Memory
    /// grows with the op count — leave off outside tests.
    pub log: bool,
}

impl GcConfig {
    /// The lifecycle knobs as an offline-[`bluedbm_ftl::Ftl`] config.
    pub fn ftl(&self) -> bluedbm_ftl::FtlConfig {
        bluedbm_ftl::FtlConfig {
            over_provision: self.over_provision,
            gc_watermark: self.gc_watermark,
            wear_threshold: self.wear_threshold,
        }
    }
}

impl Default for GcConfig {
    fn default() -> Self {
        let ftl = bluedbm_ftl::FtlConfig::default();
        GcConfig {
            enabled: true,
            over_provision: ftl.over_provision,
            gc_watermark: ftl.gc_watermark,
            wear_threshold: ftl.wear_threshold,
            log: false,
        }
    }
}

/// How the simulation itself executes (not a property of the modelled
/// hardware — changing it must never change observable results).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Worker shards for parallel conservative simulation. `1` (the
    /// default) runs the sequential engine; `n > 1` partitions the
    /// cluster's nodes across `n` scoped worker threads with the
    /// cross-shard lookahead derived from the minimum inter-node link
    /// latency. Sharded runs are deterministic and observably identical
    /// to sequential runs — see `bluedbm_sim::shard`.
    pub shards: usize,
    /// How the sharded engine's workers execute (ignored when
    /// `shards == 1`): conservative threads, cooperative single-thread,
    /// or bounded-window optimistic speculation. See
    /// `bluedbm_sim::shard::ExecMode`.
    pub exec: ExecMode,
    /// Deterministic event tracing (off by default — every trace entry
    /// point then costs one predictable branch). When enabled, every
    /// engine sink captures per-shard records harvested through
    /// `Cluster::take_trace` / `KvStore::take_trace`. Capturing never
    /// perturbs simulated results: the merged trace and all observables
    /// are identical with tracing on or off.
    pub trace: TraceConfig,
}

impl SimConfig {
    /// The sequential engine.
    pub fn sequential() -> Self {
        SimConfig {
            shards: 1,
            exec: ExecMode::Auto,
            trace: TraceConfig::off(),
        }
    }

    /// `n` worker shards.
    pub fn sharded(n: usize) -> Self {
        SimConfig {
            shards: n.max(1),
            exec: ExecMode::Auto,
            trace: TraceConfig::off(),
        }
    }

    /// `n` worker shards on the optimistic speculative runtime.
    pub fn optimistic(n: usize) -> Self {
        SimConfig {
            shards: n.max(1),
            exec: ExecMode::Optimistic,
            trace: TraceConfig::off(),
        }
    }

    /// The same engine with event tracing per `trace`.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

/// The complete system configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// Flash cards.
    pub flash: FlashConfig,
    /// Integrated storage network.
    pub net: NetParams,
    /// PCIe host link.
    pub pcie: PcieParams,
    /// Host server model.
    pub host: HostModel,
    /// Comparison devices.
    pub baseline: BaselineDevices,
    /// Power model (Table 3).
    pub power: PowerModel,
    /// Shared accelerator units per node (Section 4 scheduling).
    pub accel: AccelConfig,
    /// Flash lifecycle (GC / wear leveling) knobs.
    pub gc: GcConfig,
    /// Simulation-engine execution knobs.
    pub sim: SimConfig,
}

impl SystemConfig {
    /// The full paper-scale configuration: two 8-bus cards per node,
    /// paper timing, 10 Gbps/0.48 µs network, Gen-1 PCIe caps.
    pub fn paper() -> Self {
        SystemConfig {
            flash: FlashConfig {
                geometry: FlashGeometry::paper_card(),
                timing: FlashTiming::paper(),
                cards_per_node: 2,
            },
            net: NetParams::paper(),
            pcie: PcieParams::paper(),
            host: HostModel::paper(),
            baseline: BaselineDevices::paper(),
            power: PowerModel::paper(),
            accel: AccelConfig::paper(),
            gc: GcConfig::default(),
            sim: SimConfig::sequential(),
        }
    }

    /// Identical rates and latencies to [`SystemConfig::paper`], but a
    /// tiny flash geometry so unit tests, doctests and examples run in
    /// milliseconds of wall clock. Bandwidth-shape experiments must use
    /// `paper()`; latency-shape results are identical under both.
    pub fn scaled_down() -> Self {
        SystemConfig {
            flash: FlashConfig {
                geometry: FlashGeometry::small(),
                timing: FlashTiming::paper(),
                cards_per_node: 2,
            },
            ..Self::paper()
        }
    }

    /// Node-aggregate flash bandwidth (all cards).
    pub fn node_flash_bandwidth(&self) -> Bandwidth {
        let per_card =
            self.flash.timing.bus_bandwidth.as_bytes_per_sec() * self.flash.geometry.buses as f64;
        Bandwidth::bytes_per_sec(per_card * self.flash.cards_per_node as f64)
    }

    /// In-store nearest-neighbor comparison rate (items/s) at full flash
    /// bandwidth — the Figure 16 "Baseline" plateau.
    pub fn isp_nn_rate(&self) -> f64 {
        self.node_flash_bandwidth().as_bytes_per_sec() / self.flash.geometry.page_bytes as f64
    }

    /// Host software nearest-neighbor rate (items/s) for `threads`
    /// threads over DRAM-resident data.
    pub fn host_nn_rate(&self, threads: usize) -> f64 {
        let threads = threads.min(self.host.max_threads) as f64;
        threads / self.host.nn_compare_time.as_secs_f64()
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_aggregates_match_reported_numbers() {
        let c = SystemConfig::paper();
        // 2 cards x 1.2 GB/s = 2.4 GB/s (Figure 13 ISP-Local).
        assert!((c.node_flash_bandwidth().as_gb() - 2.4).abs() < 1e-9);
        // ISP NN rate ~ 293 K items/s (paper reports 320 K with its item
        // framing; within 10%).
        let rate = c.isp_nn_rate();
        assert!(rate > 280_000.0 && rate < 330_000.0, "{rate}");
        // Host at 8 threads ~ 350 K/s (Figure 17 text).
        let host8 = c.host_nn_rate(8);
        assert!((host8 - 350_000.0).abs() / 350_000.0 < 0.02, "{host8}");
    }

    #[test]
    fn host_threads_clamped_to_cores() {
        let c = SystemConfig::paper();
        assert_eq!(c.host_nn_rate(100), c.host_nn_rate(24));
    }

    #[test]
    fn scaled_down_keeps_rates() {
        let paper = SystemConfig::paper();
        let small = SystemConfig::scaled_down();
        assert_eq!(paper.flash.timing, small.flash.timing);
        assert_eq!(paper.net, small.net);
        assert!(small.flash.geometry.total_pages() < paper.flash.geometry.total_pages());
    }

    #[test]
    fn scan_cpu_fit_reproduces_figure_21_points() {
        let b = BaselineDevices::paper();
        let util = |mbps: f64| (b.scan_cpu_slope * mbps + b.scan_cpu_intercept).max(0.0);
        assert!((util(600.0) - 65.0).abs() < 1.0);
        assert!((util(147.0) - 13.0).abs() < 1.0);
    }
}
