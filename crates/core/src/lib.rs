//! # bluedbm-core
//!
//! The BlueDBM appliance itself: 20-node-class clusters of host servers,
//! each with a flash storage device carrying in-store processors and
//! integrated network ports (paper Figure 1/2).
//!
//! This crate composes the substrate crates into
//!
//! * [`config::SystemConfig`] — every calibration constant of the model,
//!   each traced to the paper sentence it comes from;
//! * [`cluster::Cluster`] — a DES world of N nodes: flash cards behind
//!   splitters, a node agent (the in-store processing fabric), the
//!   integrated network, and a PCIe link per node, with a synchronous
//!   facade for experiments;
//! * [`paths`] — the four remote-access paths of Figure 12 (ISP-F, H-F,
//!   H-RH-F, H-D) with latency breakdowns;
//! * [`baselines`] — the comparison arms: host CPU model, off-the-shelf
//!   SSD, HDD, DRAM store and the RAM-cloud spill model (Figures 16–21);
//! * [`power`] — the Table 3 power model and the RAM-cloud comparison;
//! * [`scheduler`] — the FIFO accelerator scheduler of Section 4, both
//!   as the per-node simulated component ([`scheduler::AccelSched`])
//!   gating in-store accelerator work and as an offline calculator;
//! * [`kvstore`] — the concurrent multi-tenant key-value workload
//!   engine: async op submission, per-key FIFO consistency, windowed
//!   injection, extent free-lists with a stranded-page audit;
//! * [`gc`] — the flash lifecycle inside the simulation: per-card
//!   mirror FTLs decide garbage collection and wear leveling, and a
//!   per-node [`gc::GcAgent`] executes the migration reads/programs and
//!   block erases as ordinary simulated commands, so GC pressure shows
//!   up in tenant tail latency and [`cluster::Cluster::gc_stats`]
//!   reports erase counts and write amplification.
//!
//! ## Example
//!
//! ```rust
//! use bluedbm_core::{Cluster, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SystemConfig::scaled_down();
//! let mut cluster = Cluster::ring(4, &config)?;
//! let page = vec![0xAB; config.flash.geometry.page_bytes];
//! let addr = cluster.write_page_local(0.into(), &page)?;
//! let read = cluster.read_page_remote(2.into(), addr)?;
//! assert_eq!(read.data, page);
//! assert!(read.latency.as_us() >= 50); // flash tR dominates
//! # Ok(())
//! # }
//! ```

pub mod baselines;
pub mod cluster;
pub mod config;
pub mod gc;
pub mod kvstore;
pub mod msg;
pub mod node;
pub mod paths;
pub mod power;
pub mod scheduler;

pub use cluster::{Cluster, CompletedRead, GlobalPageAddr};
pub use gc::{GcAgent, GcAgentStats, GcStats, LifecycleOp};
pub use msg::{Msg, NetBody};
pub use config::{GcConfig, SystemConfig};
pub use kvstore::{KvCompletion, KvOpId, KvOpKind, KvStore, TenantId, TenantStats};
pub use paths::{AccessPath, LatencyBreakdown};
pub use power::PowerModel;
pub use scheduler::{AccelSched, AcceleratorScheduler, SchedStats};

// Re-export the node id type used throughout the public API, and the
// page-store types payload-bearing drivers stage data through.
pub use bluedbm_net::topology::NodeId;
pub use bluedbm_sim::{ExecMode, PageRef, PageStore, ShardLaneStats, ShardStats};
