//! A cluster-wide key-value store over the global address space.
//!
//! BlueDBM grew out of the authors' "scalable multi-access flash store
//! for Big Data analytics" (their FPGA'14 system, the paper's reference 20); this
//! module provides that store as a library API on top of [`Cluster`]:
//! values are paged onto whichever node the key hashes to, and any node
//! can `get` any key — the integrated network makes placement invisible
//! apart from a microsecond-scale latency difference.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use bluedbm_net::topology::NodeId;
use bluedbm_sim::time::SimTime;

use crate::cluster::{Cluster, ClusterError, GlobalPageAddr};
use crate::node::Consume;

/// Where a value's pages live.
#[derive(Clone, Debug)]
struct ValueRecord {
    pages: Vec<GlobalPageAddr>,
    len: usize,
}

/// A get result: the value plus the simulated time the reads took.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetResult {
    /// The stored bytes.
    pub value: Vec<u8>,
    /// Simulated wall time spent reading (pages stream concurrently).
    pub elapsed: SimTime,
}

/// Cluster-backed key-value store.
///
/// # Examples
///
/// ```rust
/// use bluedbm_core::kvstore::KvStore;
/// use bluedbm_core::{Cluster, NodeId, SystemConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SystemConfig::scaled_down();
/// let cluster = Cluster::ring(4, &config)?;
/// let mut store = KvStore::new(cluster);
/// store.put(b"user:42", b"a value that spans flash pages")?;
/// let got = store.get(NodeId(2), b"user:42")?;
/// assert_eq!(got.value, b"a value that spans flash pages");
/// # Ok(())
/// # }
/// ```
pub struct KvStore {
    cluster: Cluster,
    directory: HashMap<Vec<u8>, ValueRecord>,
}

impl KvStore {
    /// Wrap a cluster as a key-value store.
    pub fn new(cluster: Cluster) -> Self {
        KvStore {
            cluster,
            directory: HashMap::new(),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.directory.contains_key(key)
    }

    /// The node a key's value is placed on (FNV-1a over the key, modulo
    /// cluster size — deterministic, so a restarted client agrees).
    pub fn home_node(&self, key: &[u8]) -> NodeId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        NodeId::from((h % self.cluster.node_count() as u64) as usize)
    }

    /// Access the underlying cluster (stats, simulated clock).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Store `value` under `key`, replacing any previous value. The
    /// write goes through the full simulated flash stack on the key's
    /// home node.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash failures.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), ClusterError> {
        let node = self.home_node(key);
        let page_bytes = self.cluster.config().flash.geometry.page_bytes;
        let mut pages = Vec::with_capacity(value.len().div_ceil(page_bytes).max(1));
        if value.is_empty() {
            // Zero-length values still occupy a directory entry only.
        }
        for chunk in value.chunks(page_bytes) {
            let addr = if chunk.len() == page_bytes {
                self.cluster.write_page_local(node, chunk)?
            } else {
                let mut padded = chunk.to_vec();
                padded.resize(page_bytes, 0);
                self.cluster.write_page_local(node, &padded)?
            };
            pages.push(addr);
        }
        // NAND pages cannot be reclaimed without an FTL here; the old
        // extent simply becomes garbage (the FTL crate handles real
        // reclamation — this store is an allocation-forward log).
        self.directory.insert(
            key.to_vec(),
            ValueRecord {
                pages,
                len: value.len(),
            },
        );
        Ok(())
    }

    /// Fetch `key`'s value from the perspective of `reader` (any node).
    /// Pages are streamed concurrently; `elapsed` is the simulated time
    /// from first request to last page.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Flash`] wrapping `UnknownHandle` when the key is
    /// absent, or underlying read failures.
    pub fn get(&mut self, reader: NodeId, key: &[u8]) -> Result<GetResult, ClusterError> {
        let record = self
            .directory
            .get(key)
            .cloned()
            .ok_or(ClusterError::Flash(bluedbm_flash::FlashError::UnknownHandle(0)))?;
        let t0 = self.cluster.now();
        if record.pages.is_empty() {
            return Ok(GetResult {
                value: Vec::new(),
                elapsed: SimTime::ZERO,
            });
        }
        let done = self
            .cluster
            .stream_reads(reader, &record.pages, Consume::Isp);
        if done.len() != record.pages.len() {
            return Err(ClusterError::MissingCompletion);
        }
        // Reassemble in page order (completions may arrive out of order).
        let mut by_addr: HashMap<GlobalPageAddr, Vec<u8>> = HashMap::new();
        let mut last = t0;
        for c in done {
            if let Some(e) = c.error {
                return Err(ClusterError::Flash(e));
            }
            last = last.max(c.end);
            if let (Some(addr), Some(data)) = (c.addr, c.data) {
                if let Entry::Vacant(v) = by_addr.entry(addr) {
                    v.insert(data);
                }
            }
        }
        let mut value = Vec::with_capacity(record.len);
        for addr in &record.pages {
            value.extend_from_slice(&by_addr[addr]);
        }
        value.truncate(record.len);
        Ok(GetResult {
            value,
            elapsed: last - t0,
        })
    }

    /// Remove `key`. Returns whether it was present. (Pages become
    /// garbage; see `put`.)
    pub fn delete(&mut self, key: &[u8]) -> bool {
        self.directory.remove(key).is_some()
    }
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("keys", &self.directory.len())
            .field("nodes", &self.cluster.node_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn store(nodes: usize) -> KvStore {
        let config = SystemConfig::scaled_down();
        KvStore::new(Cluster::ring(nodes, &config).expect("cluster"))
    }

    #[test]
    fn put_get_round_trip_multi_page() {
        let mut s = store(4);
        let page = s.cluster().config().flash.geometry.page_bytes;
        let value: Vec<u8> = (0..3 * page + 123).map(|i| i as u8).collect();
        s.put(b"big", &value).unwrap();
        for reader in 0..4u16 {
            let got = s.get(NodeId(reader), b"big").unwrap();
            assert_eq!(got.value, value, "reader {reader}");
            assert!(got.elapsed >= SimTime::us(50), "flash was touched");
        }
    }

    #[test]
    fn keys_spread_across_nodes() {
        let s = store(4);
        let mut homes = std::collections::HashSet::new();
        for i in 0..64 {
            homes.insert(s.home_node(format!("key{i}").as_bytes()));
        }
        assert!(homes.len() >= 3, "hashing should use most nodes: {homes:?}");
    }

    #[test]
    fn overwrite_returns_latest_and_delete_removes() {
        let mut s = store(2);
        s.put(b"k", b"first").unwrap();
        s.put(b"k", b"second value").unwrap();
        assert_eq!(s.get(NodeId(0), b"k").unwrap().value, b"second value");
        assert!(s.delete(b"k"));
        assert!(!s.delete(b"k"));
        assert!(s.get(NodeId(0), b"k").is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn empty_value_and_missing_key() {
        let mut s = store(2);
        s.put(b"empty", b"").unwrap();
        assert_eq!(s.get(NodeId(1), b"empty").unwrap().value, b"");
        assert!(s.get(NodeId(1), b"never").is_err());
        assert_eq!(s.len(), 1);
        assert!(s.contains(b"empty"));
    }

    #[test]
    fn placement_is_deterministic() {
        let a = store(4);
        let b = store(4);
        for key in [b"alpha".as_slice(), b"beta", b"gamma"] {
            assert_eq!(a.home_node(key), b.home_node(key));
        }
    }

    #[test]
    fn remote_get_costs_only_the_network() {
        let mut s = store(4);
        let page = s.cluster().config().flash.geometry.page_bytes;
        s.put(b"k", &vec![7u8; page]).unwrap();
        let home = s.home_node(b"k");
        let local = s.get(home, b"k").unwrap().elapsed;
        let far = NodeId::from((home.index() + 2) % 4);
        let remote = s.get(far, b"k").unwrap().elapsed;
        assert!(remote > local);
        assert!(remote < local + SimTime::us(25), "near-uniform access");
    }
}
