//! A concurrent, multi-tenant key-value workload engine over the global
//! address space.
//!
//! BlueDBM grew out of the authors' "scalable multi-access flash store
//! for Big Data analytics" (their FPGA'14 system, the paper's reference
//! 20); this module provides that store as an **event-driven, op-level
//! async API** on top of [`Cluster`]: values are paged onto whichever
//! node the key hashes to, any node can read any key, and many tenants'
//! operations from many reader nodes are in flight through the
//! simulation simultaneously.
//!
//! ## The async model
//!
//! [`KvStore::submit_put`] / [`KvStore::submit_get`] /
//! [`KvStore::submit_delete`] enqueue operations and return op ids
//! without running the simulation; [`KvStore::drive`] runs the cluster's
//! event queues (on either execution engine — the sequential kernel or
//! the sharded parallel runtime, per `config.sim.shards`) until every
//! in-flight operation has completed, harvesting [`KvCompletion`]
//! records. Consistency is **per-key FIFO**: each key carries a
//! readers-writer gate, so concurrent gets share the key while puts and
//! deletes are exclusive, and every operation observes exactly the state
//! left by the last conflicting operation *submitted* before it —
//! submission order is the linearization order, independent of how the
//! engines interleave the underlying events. Ops on different keys
//! proceed fully concurrently.
//!
//! Get payloads are consumed with [`Consume::Accel`]: each page must be
//! granted one of the node's shared accelerator units by the FIFO
//! [`crate::scheduler::AccelSched`] (paper Section 4), so competing
//! tenants queue against `config.accel.units` and the per-node queue
//! waits are visible via [`Cluster::sched_stats`].
//!
//! ## Flash extents and the leak audit
//!
//! Values own flash pages. [`KvStore::submit_delete`] and overwriting
//! puts release the previous extent back to the cluster's per-node free
//! pool ([`Cluster::free_page`]), where the pages are trimmed and
//! reallocated by later puts; the per-key gates guarantee no reader
//! holds the extent when it is freed, and an overwrite retires the old
//! extent only once its replacement is durable (a failed put leaves the
//! previous value intact). [`KvStore::stranded_pages`] /
//! [`KvStore::assert_no_stranded_pages`] audit the directory against the
//! cluster's allocation counter, so a code path that drops an extent
//! without freeing it (what `delete` used to do) is caught the way
//! `PageStore::assert_quiescent` catches leaked payload handles.
//!
//! ## Backpressure
//!
//! In-flight flash work is bounded by a per-home-node window
//! ([`KvStore::set_window`]): an op's page commands are injected only
//! when its home node has room (an oversized op is admitted alone), and
//! further ready ops wait driver-side. This models bounded device queue
//! depth and keeps the node agents' 16-bit flash tag space safe at
//! million-key scale.
//!
//! # Examples
//!
//! ```rust
//! use bluedbm_core::kvstore::KvStore;
//! use bluedbm_core::{Cluster, NodeId, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SystemConfig::scaled_down();
//! let cluster = Cluster::ring(4, &config)?;
//! let mut store = KvStore::new(cluster);
//!
//! // Blocking convenience API (drives the simulation per call).
//! store.put(b"user:42", b"a value that spans flash pages")?;
//! let got = store.get(NodeId(2), b"user:42")?;
//! assert_eq!(got.value, b"a value that spans flash pages");
//!
//! // Async API: two tenants' ops in flight concurrently.
//! let a = store.submit_put(0, b"t0:k", b"alpha");
//! let b = store.submit_put(1, b"t1:k", b"beta");
//! let g = store.submit_get(1, NodeId(3), b"user:42");
//! let done = store.drive();
//! assert_eq!(done.len(), 3);
//! assert!(done.iter().any(|c| c.op == a && c.error.is_none()));
//! assert!(done.iter().any(|c| c.op == b && c.error.is_none()));
//! let got = done.iter().find(|c| c.op == g).unwrap();
//! assert_eq!(got.value.as_deref(), Some(&b"a value that spans flash pages"[..]));
//! store.assert_no_stranded_pages();
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;

use bluedbm_sim::fxhash::FxHashMap;

use bluedbm_net::topology::NodeId;
use bluedbm_sim::time::SimTime;
use bluedbm_sim::{
    Histogram, MetricsDoc, MetricsRegistry, TraceCat, TracePart, TraceSink, DRIVER_SHARD,
};

use crate::cluster::{Cluster, ClusterError, GlobalPageAddr};
use crate::node::{Completed, Consume};

/// Default per-home-node cap on in-flight page commands.
const DEFAULT_WINDOW: usize = 512;

/// Operation id returned by the `submit_*` calls.
pub type KvOpId = u64;

/// Tenant (application instance) id, for accounting and fairness
/// observation — tenants share the directory namespace; generators keep
/// them apart by key prefix.
pub type TenantId = u16;

/// Where a value's pages live.
#[derive(Clone, Debug)]
struct ValueRecord {
    pages: Vec<GlobalPageAddr>,
    len: usize,
}

/// A blocking-get result: the value plus the simulated time the
/// operation took from injection to accelerator completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetResult {
    /// The stored bytes.
    pub value: Vec<u8>,
    /// Simulated wall time spent (pages stream concurrently).
    pub elapsed: SimTime,
}

/// What kind of operation a completion reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvOpKind {
    /// Store / overwrite a value.
    Put,
    /// Fetch a value.
    Get,
    /// Remove a key (and free its extent).
    Delete,
}

/// One finished KV operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvCompletion {
    /// The id `submit_*` returned.
    pub op: KvOpId,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Operation kind.
    pub kind: KvOpKind,
    /// The key operated on.
    pub key: Vec<u8>,
    /// The value read (successful gets of present keys only).
    pub value: Option<Vec<u8>>,
    /// Whether the key existed: hit/miss for gets and deletes, always
    /// `true` for puts.
    pub found: bool,
    /// Failure, if any (allocation or flash errors).
    pub error: Option<ClusterError>,
    /// When the op was submitted.
    pub submitted: SimTime,
    /// When its key gate was acquired and its commands injected.
    pub started: SimTime,
    /// When the last page command (or accelerator job) finished.
    pub finished: SimTime,
}

impl KvCompletion {
    /// Driver-side wait for the key gate (serialization against
    /// conflicting ops on the same key).
    pub fn gate_wait(&self) -> SimTime {
        self.started - self.submitted
    }
}

/// Per-tenant accounting, updated as operations complete.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Puts completed.
    pub puts: u64,
    /// Gets completed.
    pub gets: u64,
    /// Deletes completed.
    pub deletes: u64,
    /// Gets that found their key.
    pub get_hits: u64,
    /// Gets of absent keys.
    pub get_misses: u64,
    /// Operations that failed.
    pub errors: u64,
    /// Sum of key-gate waits.
    pub total_gate_wait: SimTime,
    /// Largest single key-gate wait.
    pub max_gate_wait: SimTime,
    /// End-to-end (submit → finish) op latency distribution;
    /// `latency.percentile(0.99)` is the tenant's p99.
    pub latency: Histogram,
}

impl TenantStats {
    /// Write every counter (and the latency percentiles) into a metrics
    /// `node` (see [`bluedbm_sim::MetricsRegistry`]).
    pub fn fill_metrics(&self, node: &mut bluedbm_sim::MetricsNode) {
        node.set("puts", self.puts);
        node.set("gets", self.gets);
        node.set("deletes", self.deletes);
        node.set("get_hits", self.get_hits);
        node.set("get_misses", self.get_misses);
        node.set("errors", self.errors);
        node.set("total_gate_wait_ps", self.total_gate_wait.as_ps());
        node.set("max_gate_wait_ps", self.max_gate_wait.as_ps());
        node.histogram("latency", &self.latency.summary());
    }
}

/// Readers-writer gate over one key, FIFO so no tenant starves.
#[derive(Debug, Default)]
struct KeyGate {
    readers: usize,
    writer: bool,
    waiting: VecDeque<KvOpId>,
}

impl KeyGate {
    fn admits(&self, exclusive: bool) -> bool {
        if exclusive {
            !self.writer && self.readers == 0
        } else {
            !self.writer
        }
    }

    fn acquire(&mut self, exclusive: bool) {
        if exclusive {
            self.writer = true;
        } else {
            self.readers += 1;
        }
    }

    fn idle(&self) -> bool {
        self.readers == 0 && !self.writer && self.waiting.is_empty()
    }
}

/// The kind-specific state of one in-flight operation.
#[derive(Debug)]
enum OpBody {
    Put {
        /// The payload, held until injection chunks it onto flash.
        value: Vec<u8>,
        /// Pages allocated at injection; moved into the directory at
        /// successful completion, freed on failure.
        pages: Vec<GlobalPageAddr>,
        /// True value length (recorded at injection, when `value` is
        /// consumed).
        len: usize,
    },
    Get {
        reader: NodeId,
        /// Page-granular reassembly buffer, filled by completion index.
        buf: Vec<u8>,
        /// True value length (the last page is zero-padded on flash).
        len: usize,
    },
    Delete,
}

impl OpBody {
    fn kind(&self) -> KvOpKind {
        match self {
            OpBody::Put { .. } => KvOpKind::Put,
            OpBody::Get { .. } => KvOpKind::Get,
            OpBody::Delete => KvOpKind::Delete,
        }
    }

    /// Puts and deletes hold the key exclusively; gets share it.
    fn exclusive(&self) -> bool {
        !matches!(self, OpBody::Get { .. })
    }
}

/// One submitted, not-yet-completed operation.
#[derive(Debug)]
struct InFlight {
    tenant: TenantId,
    key: Vec<u8>,
    body: OpBody,
    /// Page commands still outstanding in the simulation.
    outstanding: usize,
    error: Option<ClusterError>,
    found: bool,
    submitted: SimTime,
    started: SimTime,
    /// Latest page-command (or accelerator-job) end time seen so far —
    /// the op's true finish time, independent of when the drive round
    /// quiesces.
    last_end: SimTime,
    /// Node whose window this op's page commands occupy.
    home: NodeId,
}

/// Cluster-backed concurrent key-value store. See the [module
/// docs](self) for the consistency and backpressure model.
pub struct KvStore {
    cluster: Cluster,
    directory: FxHashMap<Vec<u8>, ValueRecord>,
    /// Flash pages referenced by the directory (incremental, so the
    /// stranded-extent audit is O(1) at million-key scale).
    directory_pages: u64,
    gates: FxHashMap<Vec<u8>, KeyGate>,
    ops: FxHashMap<KvOpId, InFlight>,
    /// Cluster-level op id -> (KV op, page index within the op).
    page_ops: FxHashMap<u64, (KvOpId, usize)>,
    /// Gate-holding ops awaiting injection (window backpressure).
    ready: VecDeque<KvOpId>,
    /// In-flight page commands per home node.
    inflight: Vec<usize>,
    window: usize,
    next_op: KvOpId,
    finished: Vec<KvCompletion>,
    tenants: FxHashMap<TenantId, TenantStats>,
    page_bytes: usize,
    /// Driver-side trace sink ([`DRIVER_SHARD`]): KV op lifecycle
    /// records live here, beside — not inside — the engine's per-shard
    /// sinks. Disabled (free) unless `config.sim.trace` enables the
    /// [`TraceCat::KvOp`] category.
    trace: TraceSink,
}

impl KvStore {
    /// Wrap a cluster as a key-value store.
    pub fn new(cluster: Cluster) -> Self {
        let nodes = cluster.node_count();
        let page_bytes = cluster.config().flash.geometry.page_bytes;
        let trace = TraceSink::new(cluster.config().sim.trace, DRIVER_SHARD);
        KvStore {
            cluster,
            directory: FxHashMap::default(),
            directory_pages: 0,
            gates: FxHashMap::default(),
            ops: FxHashMap::default(),
            page_ops: FxHashMap::default(),
            ready: VecDeque::new(),
            inflight: vec![0; nodes],
            window: DEFAULT_WINDOW,
            next_op: 0,
            finished: Vec::new(),
            tenants: FxHashMap::default(),
            page_bytes,
            trace,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.directory.contains_key(key)
    }

    /// Operations submitted and not yet completed.
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }

    /// The per-home-node in-flight page-command window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Set the per-home-node window (clamped to at least 1).
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// The node a key's value is placed on (FNV-1a over the key, modulo
    /// cluster size — deterministic, so a restarted client agrees).
    pub fn home_node(&self, key: &[u8]) -> NodeId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        NodeId::from((h % self.cluster.node_count() as u64) as usize)
    }

    /// Access the underlying cluster (stats, simulated clock, audits).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Accounting for `tenant` (zeros if it never completed an op).
    pub fn tenant_stats(&self, tenant: TenantId) -> TenantStats {
        self.tenants.get(&tenant).cloned().unwrap_or_default()
    }

    /// Harvest every trace buffer: the cluster's per-shard engine sinks
    /// plus the KV driver's own [`DRIVER_SHARD`] sink. Merge with
    /// [`bluedbm_sim::TraceDoc::merge`]; taking resets the sinks.
    pub fn take_trace(&mut self) -> Vec<TracePart> {
        let mut parts = self.cluster.take_trace();
        parts.push(self.trace.take());
        parts
    }

    /// Write the KV layer's statistics into `reg`: a `kv` scope with
    /// totals plus one `tenant<T>` subtree per tenant (counters and the
    /// end-to-end latency percentiles).
    pub fn fill_metrics(&self, reg: &mut MetricsRegistry) {
        let kv = reg.scope("kv");
        kv.set("keys", self.directory.len());
        kv.set("in_flight", self.ops.len());
        kv.set("window", self.window);
        kv.set("directory_pages", self.directory_pages);
        // Sort: FxHashMap iteration order must not leak into the doc.
        let mut tenants: Vec<&TenantId> = self.tenants.keys().collect();
        tenants.sort_unstable();
        for &tenant in tenants {
            let node = kv.child(&format!("tenant{tenant}"));
            self.tenants[&tenant].fill_metrics(node);
        }
    }

    /// A complete [`MetricsDoc`] snapshot: the cluster inventory
    /// ([`Cluster::fill_metrics`]) plus the KV scope above.
    pub fn metrics(&self) -> MetricsDoc {
        let mut reg = MetricsRegistry::new();
        self.cluster.fill_metrics(&mut reg);
        self.fill_metrics(&mut reg);
        reg.snapshot()
    }

    /// Flash pages allocated through this store's cluster but referenced
    /// by neither the directory nor an in-flight put — stranded extents.
    /// Zero unless something dropped pages without freeing them (or
    /// pages were allocated behind the store's back, e.g. via
    /// [`Cluster::preload_page`], which this audit intentionally
    /// counts).
    ///
    /// # Panics
    ///
    /// Panics if called with operations still in flight (the audit is
    /// only meaningful at quiescence — [`KvStore::drive`] first).
    pub fn stranded_pages(&self) -> u64 {
        assert!(
            self.ops.is_empty(),
            "stranded-page audit requires quiescence; drive() first"
        );
        self.cluster
            .flash_pages_in_use()
            .checked_sub(self.directory_pages)
            .expect("directory references more pages than are allocated")
    }

    /// Panic unless every allocated flash page is referenced by the
    /// directory — the KV twin of `PageStore::assert_quiescent`.
    ///
    /// # Panics
    ///
    /// Panics on stranded pages or in-flight operations.
    pub fn assert_no_stranded_pages(&self) {
        let stranded = self.stranded_pages();
        assert_eq!(stranded, 0, "{stranded} flash pages stranded (allocated but unreferenced)");
    }

    // ------------------------------------------------------------------
    // Submission.
    // ------------------------------------------------------------------

    /// Submit a put: store `value` under `key`, replacing any previous
    /// value. The old extent is freed only once the new one is durable
    /// (a failed put leaves the previous value intact), so an overwrite
    /// transiently occupies both extents' space. Returns immediately;
    /// the write happens when [`KvStore::drive`] runs the simulation.
    pub fn submit_put(&mut self, tenant: TenantId, key: &[u8], value: &[u8]) -> KvOpId {
        self.submit(
            tenant,
            key,
            OpBody::Put {
                value: value.to_vec(),
                pages: Vec::new(),
                len: value.len(),
            },
        )
    }

    /// Submit a get of `key` read from `reader` (any node).
    pub fn submit_get(&mut self, tenant: TenantId, reader: NodeId, key: &[u8]) -> KvOpId {
        self.submit(
            tenant,
            key,
            OpBody::Get {
                reader,
                buf: Vec::new(),
                len: 0,
            },
        )
    }

    /// Submit a delete of `key`; its extent returns to the free pool.
    pub fn submit_delete(&mut self, tenant: TenantId, key: &[u8]) -> KvOpId {
        self.submit(tenant, key, OpBody::Delete)
    }

    fn submit(&mut self, tenant: TenantId, key: &[u8], body: OpBody) -> KvOpId {
        let id = self.next_op;
        self.next_op += 1;
        let exclusive = body.exclusive();
        let kind_code = body.kind() as u64;
        let now_ps = self.cluster.now().as_ps();
        self.trace
            .at(now_ps)
            .instant(TraceCat::KvOp, "submit", u32::from(tenant), id, kind_code);
        self.ops.insert(
            id,
            InFlight {
                tenant,
                key: key.to_vec(),
                body,
                outstanding: 0,
                error: None,
                found: false,
                submitted: self.cluster.now(),
                started: SimTime::ZERO,
                last_end: SimTime::ZERO,
                home: NodeId(0),
            },
        );
        let gate = self.gates.entry(key.to_vec()).or_default();
        if gate.waiting.is_empty() && gate.admits(exclusive) {
            gate.acquire(exclusive);
            self.trace
                .at(now_ps)
                .instant(TraceCat::KvOp, "gate", u32::from(tenant), id, 0);
            self.ready.push_back(id);
        } else {
            gate.waiting.push_back(id);
        }
        id
    }

    // ------------------------------------------------------------------
    // The drive loop.
    // ------------------------------------------------------------------

    /// Run the simulation until every submitted operation has completed,
    /// returning their completions (in completion order, deterministic
    /// for a given submission sequence). Interleaves windowed injection
    /// rounds with runs to quiescence; on the sharded engine each round
    /// executes across all worker shards.
    pub fn drive(&mut self) -> Vec<KvCompletion> {
        loop {
            self.pump();
            if self.ops.is_empty() {
                break;
            }
            assert!(
                !self.page_ops.is_empty(),
                "KV engine stalled: {} ops pending but nothing in flight",
                self.ops.len()
            );
            self.cluster.run_to_quiescence();
            let mut batch: Vec<Completed> = Vec::new();
            for node in 0..self.cluster.node_count() {
                batch.extend(self.cluster.harvest_node(NodeId::from(node)));
            }
            // Normalize harvest order to cluster-op order: injection
            // order of gate-released successors (and therefore every
            // observable downstream) is independent of which node's
            // completions drain first.
            batch.sort_by_key(|c| c.op_id);
            for c in batch {
                self.feed(c);
            }
        }
        self.poll()
    }

    /// Drain completions recorded so far without running the simulation.
    pub fn poll(&mut self) -> Vec<KvCompletion> {
        std::mem::take(&mut self.finished)
    }

    /// Inject every gate-holding op whose home-node window has room. An
    /// op larger than the whole window is admitted once its node is
    /// idle, so oversized values make progress instead of deadlocking.
    fn pump(&mut self) {
        let mut deferred = VecDeque::new();
        while let Some(id) = self.ready.pop_front() {
            let (node, pages) = self.injection_cost(id);
            let used = self.inflight[node.index()];
            if used == 0 || used + pages <= self.window {
                self.inject(id, node);
            } else {
                deferred.push_back(id);
            }
        }
        self.ready = deferred;
    }

    /// Where an op's page commands will run and how many there are.
    fn injection_cost(&self, id: KvOpId) -> (NodeId, usize) {
        let op = &self.ops[&id];
        let home = self.home_node(&op.key);
        let pages = match &op.body {
            OpBody::Put { value, .. } => value.len().div_ceil(self.page_bytes),
            OpBody::Get { .. } => self
                .directory
                .get(&op.key)
                .map_or(0, |record| record.pages.len()),
            OpBody::Delete => 0,
        };
        (home, pages)
    }

    fn inject(&mut self, id: KvOpId, home: NodeId) {
        let now = self.cluster.now();
        // Phase 1: stamp the op and lift out what injection needs, under
        // a short borrow of the op table.
        enum Plan {
            Put { value: Vec<u8> },
            Get { key: Vec<u8>, reader: NodeId },
            Delete { key: Vec<u8> },
        }
        let plan = {
            let op = self.ops.get_mut(&id).expect("ready op exists");
            op.started = now;
            op.home = home;
            match &mut op.body {
                OpBody::Put { value, .. } => Plan::Put {
                    value: std::mem::take(value),
                },
                OpBody::Get { reader, .. } => Plan::Get {
                    key: op.key.clone(),
                    reader: *reader,
                },
                OpBody::Delete => Plan::Delete {
                    key: op.key.clone(),
                },
            }
        };
        let tenant = self.ops[&id].tenant;
        self.trace.at(now.as_ps()).instant(
            TraceCat::KvOp,
            "start",
            u32::from(tenant),
            id,
            home.index() as u64,
        );
        // Phase 2: talk to the directory and the cluster, then store the
        // results back.
        match plan {
            Plan::Put { value } => {
                // The old extent (if any) stays in the directory until
                // the replacement is durable — see `finalize` — so an
                // overwrite transiently occupies both extents.
                let mut injected = Vec::new();
                let mut error = None;
                for chunk in value.chunks(self.page_bytes) {
                    match self.cluster.inject_write(home, chunk) {
                        Ok((cluster_op, addr)) => {
                            self.page_ops.insert(cluster_op, (id, injected.len()));
                            injected.push(addr);
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                let count = injected.len();
                self.inflight[home.index()] += count;
                let op = self.ops.get_mut(&id).expect("still in flight");
                op.found = true;
                op.error = error;
                op.outstanding = count;
                let OpBody::Put { pages, .. } = &mut op.body else {
                    unreachable!()
                };
                *pages = injected;
                if count == 0 {
                    self.finalize(id);
                }
            }
            Plan::Get { key, reader } => {
                let Some(record) = self.directory.get(&key) else {
                    self.ops.get_mut(&id).expect("still in flight").found = false;
                    self.finalize(id);
                    return;
                };
                let addrs = record.pages.clone();
                let value_len = record.len;
                let count = addrs.len();
                let mut cluster_ops = Vec::with_capacity(count);
                for addr in &addrs {
                    cluster_ops.push(self.cluster.inject_read(reader, *addr, Consume::Accel));
                }
                for (idx, cluster_op) in cluster_ops.into_iter().enumerate() {
                    self.page_ops.insert(cluster_op, (id, idx));
                }
                self.inflight[home.index()] += count;
                let op = self.ops.get_mut(&id).expect("still in flight");
                op.found = true;
                op.outstanding = count;
                let OpBody::Get { buf, len, .. } = &mut op.body else {
                    unreachable!()
                };
                *len = value_len;
                *buf = vec![0; count * self.page_bytes];
                if count == 0 {
                    self.finalize(id);
                }
            }
            Plan::Delete { key } => {
                let found = match self.directory.remove(&key) {
                    None => false,
                    Some(record) => {
                        self.directory_pages -= record.pages.len() as u64;
                        for addr in record.pages {
                            self.cluster
                                .free_page(addr)
                                .expect("directory extents are valid");
                        }
                        true
                    }
                };
                self.ops.get_mut(&id).expect("still in flight").found = found;
                self.finalize(id);
            }
        }
    }

    /// Apply one harvested cluster completion to its owning op.
    fn feed(&mut self, c: Completed) {
        let (id, idx) = self
            .page_ops
            .remove(&c.op_id)
            .expect("completion for an op the KV engine never injected");
        let op = self.ops.get_mut(&id).expect("op still in flight");
        self.inflight[op.home.index()] -= 1;
        op.last_end = op.last_end.max(c.end);
        if let Some(e) = c.error {
            op.error.get_or_insert(ClusterError::Flash(e));
        } else if let (OpBody::Get { buf, .. }, Some(data)) = (&mut op.body, c.data) {
            buf[idx * self.page_bytes..][..self.page_bytes].copy_from_slice(&data);
        }
        op.outstanding -= 1;
        if op.outstanding == 0 {
            self.finalize(id);
        }
    }

    /// All page commands done: publish the result, update accounting,
    /// release the key gate and start its waiting successors.
    fn finalize(&mut self, id: KvOpId) {
        let op = self.ops.remove(&id).expect("finalizing a live op");
        // Ops with no page commands (deletes, misses, empty values)
        // finish the instant they start.
        let finished = op.last_end.max(op.started);
        let kind = op.body.kind();
        let exclusive = op.body.exclusive();
        let value = match op.body {
            OpBody::Put { pages, len, .. } => {
                if op.error.is_none() {
                    // The new extent is durable: publish it and only now
                    // retire the one it replaces, so a failed put never
                    // destroys the previous value.
                    self.directory_pages += pages.len() as u64;
                    let old = self
                        .directory
                        .insert(op.key.clone(), ValueRecord { pages, len });
                    if let Some(old) = old {
                        self.directory_pages -= old.pages.len() as u64;
                        for addr in old.pages {
                            self.cluster
                                .free_page(addr)
                                .expect("directory extents are valid");
                        }
                    }
                } else {
                    // A failed put stores nothing; return what it had
                    // already claimed (written pages are trimmed). The
                    // previous extent, if any, is untouched.
                    for addr in pages {
                        self.cluster
                            .free_page(addr)
                            .expect("put extents are valid");
                    }
                }
                None
            }
            OpBody::Get { mut buf, len, .. } => {
                if op.error.is_none() && op.found {
                    buf.truncate(len);
                    Some(buf)
                } else {
                    None
                }
            }
            OpBody::Delete => None,
        };

        let stats = self.tenants.entry(op.tenant).or_default();
        match kind {
            KvOpKind::Put => stats.puts += 1,
            KvOpKind::Get => {
                stats.gets += 1;
                if op.found {
                    stats.get_hits += 1;
                } else {
                    stats.get_misses += 1;
                }
            }
            KvOpKind::Delete => stats.deletes += 1,
        }
        if op.error.is_some() {
            stats.errors += 1;
        }
        let wait = op.started - op.submitted;
        stats.total_gate_wait += wait;
        stats.max_gate_wait = stats.max_gate_wait.max(wait);
        let latency = finished - op.submitted;
        stats.latency.record(latency);
        // b packs the arbitration-independent observables only: the
        // latency itself shifts with when the driver's submit round
        // quiesced, which redistributes across engines (see
        // `KvRunSummary::sim_time`), and would break the stable
        // cross-engine trace digest.
        let flags =
            ((kind as u64) << 2) | (u64::from(op.found) << 1) | u64::from(op.error.is_some());
        self.trace.at(finished.as_ps()).instant(
            TraceCat::KvOp,
            "finish",
            u32::from(op.tenant),
            id,
            flags,
        );

        self.release_gate(&op.key, exclusive);
        self.finished.push(KvCompletion {
            op: id,
            tenant: op.tenant,
            kind,
            key: op.key,
            value,
            found: op.found,
            error: op.error,
            submitted: op.submitted,
            started: op.started,
            finished,
        });
    }

    /// Release one hold on `key`'s gate and admit waiting successors in
    /// FIFO order: a run of consecutive readers, or one writer.
    fn release_gate(&mut self, key: &[u8], exclusive: bool) {
        let gate = self.gates.get_mut(key).expect("gate exists while ops hold it");
        if exclusive {
            gate.writer = false;
        } else {
            gate.readers -= 1;
        }
        while let Some(&front) = gate.waiting.front() {
            let exclusive = self.ops[&front].body.exclusive();
            if !gate.admits(exclusive) {
                break;
            }
            gate.waiting.pop_front();
            gate.acquire(exclusive);
            let tenant = self.ops[&front].tenant;
            let now_ps = self.cluster.now().as_ps();
            self.trace
                .at(now_ps)
                .instant(TraceCat::KvOp, "gate", u32::from(tenant), front, 0);
            self.ready.push_back(front);
            if exclusive {
                break;
            }
        }
        if gate.idle() {
            self.gates.remove(key);
        }
    }

    // ------------------------------------------------------------------
    // Blocking convenience API (single-tenant; drives the simulation).
    // ------------------------------------------------------------------

    fn drive_blocking(&mut self, id: KvOpId) -> KvCompletion {
        let mut done = self.drive();
        let pos = done
            .iter()
            .position(|c| c.op == id)
            .expect("driven op completes");
        let c = done.remove(pos);
        // Preserve any concurrently-finished async completions for poll().
        self.finished.extend(done);
        c
    }

    /// Store `value` under `key`, replacing (and freeing) any previous
    /// extent. Drives the simulation to completion.
    ///
    /// # Errors
    ///
    /// Propagates allocation and flash failures.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), ClusterError> {
        let id = self.submit_put(0, key, value);
        match self.drive_blocking(id).error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Fetch `key`'s value from the perspective of `reader` (any node).
    /// Drives the simulation to completion.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Flash`] wrapping `UnknownHandle` when the key is
    /// absent, or underlying read failures.
    pub fn get(&mut self, reader: NodeId, key: &[u8]) -> Result<GetResult, ClusterError> {
        let id = self.submit_get(0, reader, key);
        let c = self.drive_blocking(id);
        if let Some(e) = c.error {
            return Err(e);
        }
        if !c.found {
            return Err(ClusterError::Flash(bluedbm_flash::FlashError::UnknownHandle(0)));
        }
        Ok(GetResult {
            value: c.value.expect("successful hit carries the value"),
            elapsed: c.finished - c.started,
        })
    }

    /// Remove `key`, returning whether it was present. The extent goes
    /// back to the free pool. Drives the simulation to completion.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let id = self.submit_delete(0, key);
        self.drive_blocking(id).found
    }
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("keys", &self.directory.len())
            .field("nodes", &self.cluster.node_count())
            .field("in_flight", &self.ops.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn store(nodes: usize) -> KvStore {
        let config = SystemConfig::scaled_down();
        KvStore::new(Cluster::ring(nodes, &config).expect("cluster"))
    }

    #[test]
    fn put_get_round_trip_multi_page() {
        let mut s = store(4);
        let page = s.cluster().config().flash.geometry.page_bytes;
        let value: Vec<u8> = (0..3 * page + 123).map(|i| i as u8).collect();
        s.put(b"big", &value).unwrap();
        for reader in 0..4u16 {
            let got = s.get(NodeId(reader), b"big").unwrap();
            assert_eq!(got.value, value, "reader {reader}");
            assert!(got.elapsed >= SimTime::us(50), "flash was touched");
        }
        s.assert_no_stranded_pages();
        s.cluster().assert_quiescent();
    }

    #[test]
    fn keys_spread_across_nodes() {
        let s = store(4);
        let mut homes = bluedbm_sim::fxhash::FxHashSet::default();
        for i in 0..64 {
            homes.insert(s.home_node(format!("key{i}").as_bytes()));
        }
        assert!(homes.len() >= 3, "hashing should use most nodes: {homes:?}");
    }

    #[test]
    fn overwrite_returns_latest_and_delete_removes() {
        let mut s = store(2);
        s.put(b"k", b"first").unwrap();
        s.put(b"k", b"second value").unwrap();
        assert_eq!(s.get(NodeId(0), b"k").unwrap().value, b"second value");
        assert!(s.delete(b"k"));
        assert!(!s.delete(b"k"));
        assert!(s.get(NodeId(0), b"k").is_err());
        assert!(s.is_empty());
        // Overwrite and delete both returned their extents.
        assert_eq!(s.cluster().flash_pages_in_use(), 0);
        s.assert_no_stranded_pages();
    }

    #[test]
    fn empty_value_and_missing_key() {
        let mut s = store(2);
        s.put(b"empty", b"").unwrap();
        assert_eq!(s.get(NodeId(1), b"empty").unwrap().value, b"");
        assert!(s.get(NodeId(1), b"never").is_err());
        assert_eq!(s.len(), 1);
        assert!(s.contains(b"empty"));
    }

    #[test]
    fn placement_is_deterministic() {
        let a = store(4);
        let b = store(4);
        for key in [b"alpha".as_slice(), b"beta", b"gamma"] {
            assert_eq!(a.home_node(key), b.home_node(key));
        }
    }

    #[test]
    fn remote_get_costs_only_the_network() {
        let mut s = store(4);
        let page = s.cluster().config().flash.geometry.page_bytes;
        s.put(b"k", &vec![7u8; page]).unwrap();
        let home = s.home_node(b"k");
        let local = s.get(home, b"k").unwrap().elapsed;
        let far = NodeId::from((home.index() + 2) % 4);
        let remote = s.get(far, b"k").unwrap().elapsed;
        assert!(remote > local);
        assert!(remote < local + SimTime::us(25), "near-uniform access");
    }

    #[test]
    fn concurrent_tenants_make_progress_in_one_drive() {
        let mut s = store(4);
        let page = s.cluster().config().flash.geometry.page_bytes;
        let mut put_ids = Vec::new();
        for tenant in 0..6u16 {
            for k in 0..4u32 {
                let key = format!("t{tenant}/k{k}");
                let value = vec![tenant as u8 ^ k as u8; page / 2];
                put_ids.push((s.submit_put(tenant, key.as_bytes(), &value), value));
            }
        }
        let done = s.drive();
        assert_eq!(done.len(), put_ids.len());
        assert!(done.iter().all(|c| c.error.is_none()));
        // Now everyone reads everyone's keys from their own node.
        let mut gets = Vec::new();
        for tenant in 0..6u16 {
            for k in 0..4u32 {
                let key = format!("t{tenant}/k{k}");
                let reader = NodeId::from(tenant as usize % 4);
                gets.push((s.submit_get(tenant, reader, key.as_bytes()), tenant, k));
            }
        }
        let done = s.drive();
        assert_eq!(done.len(), gets.len());
        for (id, tenant, k) in gets {
            let c = done.iter().find(|c| c.op == id).unwrap();
            assert!(c.found && c.error.is_none());
            assert_eq!(
                c.value.as_deref().unwrap(),
                vec![tenant as u8 ^ k as u8; page / 2]
            );
        }
        // Every get went through the accelerator schedulers.
        let jobs: u64 = (0..4u16)
            .map(|n| s.cluster().sched_stats(NodeId(n)).completed)
            .sum();
        assert_eq!(jobs, 24, "one accel job per read page");
        let t0 = s.tenant_stats(0);
        assert_eq!((t0.puts, t0.gets, t0.get_hits), (4, 4, 4));
        s.assert_no_stranded_pages();
        s.cluster().assert_quiescent();
    }

    #[test]
    fn same_key_ops_linearize_in_submission_order() {
        let mut s = store(2);
        let g0 = s.submit_get(0, NodeId(0), b"k"); // before any put: miss
        let p1 = s.submit_put(1, b"k", b"one");
        let g1 = s.submit_get(0, NodeId(1), b"k"); // sees "one"
        let p2 = s.submit_put(2, b"k", b"two");
        let g2 = s.submit_get(1, NodeId(0), b"k"); // sees "two"
        let d = s.submit_delete(0, b"k");
        let g3 = s.submit_get(2, NodeId(1), b"k"); // after delete: miss
        let done = s.drive();
        let find = |id| done.iter().find(|c| c.op == id).unwrap();
        assert!(!find(g0).found);
        assert!(find(p1).error.is_none());
        assert_eq!(find(g1).value.as_deref(), Some(&b"one"[..]));
        assert_eq!(find(g2).value.as_deref(), Some(&b"two"[..]));
        assert!(find(d).found);
        assert!(!find(g3).found);
        assert!(find(p2).error.is_none());
        s.assert_no_stranded_pages();
        s.cluster().assert_quiescent();
    }

    #[test]
    fn deleted_extents_are_reused_by_later_puts() {
        let mut s = store(2);
        let page = s.cluster().config().flash.geometry.page_bytes;
        s.put(b"a", &vec![1; 2 * page]).unwrap();
        let used_before = s.cluster().flash_pages_in_use();
        assert_eq!(used_before, 2);
        assert!(s.delete(b"a"));
        assert_eq!(s.cluster().flash_pages_in_use(), 0);
        // The freed pages satisfy the next allocation on that node.
        s.put(b"a", &vec![2; 2 * page]).unwrap();
        assert_eq!(s.cluster().flash_pages_in_use(), 2);
        assert_eq!(s.get(NodeId(0), b"a").unwrap().value, vec![2; 2 * page]);
        s.assert_no_stranded_pages();
    }

    #[test]
    fn windowed_injection_completes_more_ops_than_the_window() {
        let mut s = store(2);
        s.set_window(4);
        let page = s.cluster().config().flash.geometry.page_bytes;
        let keys: Vec<String> = (0..32).map(|i| format!("w{i}")).collect();
        for (i, key) in keys.iter().enumerate() {
            s.submit_put(0, key.as_bytes(), &vec![i as u8; page]);
        }
        let done = s.drive();
        assert_eq!(done.len(), 32);
        assert!(done.iter().all(|c| c.error.is_none()));
        for key in &keys {
            assert!(s.contains(key.as_bytes()));
        }
        s.assert_no_stranded_pages();
        s.cluster().assert_quiescent();
    }

    #[test]
    fn oversized_value_is_admitted_when_node_idle() {
        let mut s = store(2);
        s.set_window(2);
        let page = s.cluster().config().flash.geometry.page_bytes;
        // 6 pages > window of 2: must still complete.
        let value = vec![9u8; 6 * page];
        s.put(b"huge", &value).unwrap();
        assert_eq!(s.get(NodeId(1), b"huge").unwrap().value, value);
        s.assert_no_stranded_pages();
    }

    #[test]
    fn failed_overwrite_preserves_the_previous_value() {
        // Fill the home node so the overwrite's allocation fails: the
        // old extent must survive (it is only retired once the new one
        // is durable).
        let mut config = SystemConfig::scaled_down();
        config.flash.geometry = bluedbm_flash::FlashGeometry::tiny();
        let mut s = KvStore::new(Cluster::ring(2, &config).unwrap());
        let page = config.flash.geometry.page_bytes;
        s.put(b"k", &vec![1u8; page]).unwrap();
        let home = s.home_node(b"k");
        // Exhaust the node behind the store's back.
        let mut hogged = Vec::new();
        while let Ok(addr) = s.cluster.alloc_page(home) {
            hogged.push(addr);
        }
        let err = s.put(b"k", &vec![2u8; page]).unwrap_err();
        assert!(matches!(err, ClusterError::DeviceFull(n) if n == home));
        assert_eq!(s.get(NodeId(0), b"k").unwrap().value, vec![1u8; page]);
        for addr in hogged {
            s.cluster.free_page(addr).unwrap();
        }
        s.assert_no_stranded_pages();
    }

    #[test]
    fn completion_times_are_per_op_not_per_round() {
        // A short get and a long multi-page put in the same drive round
        // must not share the round's quiescent clock as their finish
        // time.
        let mut s = store(2);
        let page = s.cluster().config().flash.geometry.page_bytes;
        s.put(b"short", &vec![1u8; page]).unwrap();
        let g = s.submit_get(0, s.home_node(b"short"), b"short");
        let p = s.submit_put(1, b"long", &vec![2u8; 12 * page]);
        let done = s.drive();
        let get = done.iter().find(|c| c.op == g).unwrap();
        let put = done.iter().find(|c| c.op == p).unwrap();
        // Local 1-page get: tR + bus + accel streaming, well under the
        // 12-page program train the put pays.
        assert!(get.finished < put.finished, "get {get:?} put {put:?}");
        let elapsed = get.finished - get.started;
        assert!(
            elapsed >= SimTime::us(50) && elapsed < SimTime::us(150),
            "get latency {elapsed} should be one flash read + accel"
        );
    }

    #[test]
    fn stranded_page_audit_catches_unreferenced_extents() {
        let mut s = store(2);
        s.put(b"k", b"value").unwrap();
        s.assert_no_stranded_pages();
        // What the pre-async `delete` used to do: drop the directory
        // entry without freeing the extent. Model it by allocating a
        // page behind the directory's back.
        let _ = s.cluster.alloc_page(NodeId(0)).unwrap();
        assert_eq!(s.stranded_pages(), 1, "the audit must catch the leak");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.assert_no_stranded_pages()
        }));
        assert!(r.is_err(), "assert_no_stranded_pages must panic on a leak");
    }
}
