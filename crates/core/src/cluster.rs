//! The cluster facade: build a DES world of N BlueDBM nodes and drive it
//! with synchronous-feeling operations.
//!
//! A [`Cluster`] owns the simulator, the per-node flash stacks
//! (controller + splitter per card), the node agents, the PCIe links and
//! the integrated network. Experiment drivers inject operations, the
//! cluster runs the event queue to quiescence, and completions come back
//! with simulated timestamps.

use std::error::Error;
use std::fmt;

use bluedbm_flash::array::FlashArray;
use bluedbm_flash::controller::{CtrlStats, FlashController};
use bluedbm_flash::error::FlashError;
use bluedbm_flash::splitter::FlashSplitter;
use bluedbm_ftl::{Ftl, GcRound};
use bluedbm_host::pcie::PcieLink;
use bluedbm_net::router::{build_network, Router, RouterStats};
use bluedbm_net::topology::{NodeId, PortId, Topology};
use bluedbm_sim::engine::{Component, ComponentId, Simulator};
use bluedbm_sim::shard::{ExecMode, ShardStats, ShardedSimulator};
use bluedbm_sim::time::SimTime;
use bluedbm_sim::{MetricsDoc, MetricsRegistry, PageRef, TracePart, WallLaneProfile};

use crate::config::SystemConfig;
use crate::gc::{GcAgent, GcAgentStats, GcKick, GcStats, LifecycleOp};
use crate::msg::{Msg, NetBody};
use crate::node::{AgentOp, AgentStats, Completed, Consume, NodeAgent, DATA_ENDPOINTS, REQUEST_ENDPOINT};
use crate::scheduler::{AccelSched, SchedStats};

pub use crate::node::GlobalPageAddr;

/// The execution engine behind a [`Cluster`]: the sequential typed
/// kernel, or the conservative-parallel sharded runtime when
/// `config.sim.shards > 1`. Sharded runs are deterministic and
/// observably identical to sequential runs (same statistics, same event
/// counts, same store quiescence) — the engine choice is a wall-clock
/// decision, never a modelling one.
enum Engine {
    // Boxed: the sequential simulator is a large inline struct and
    // `Cluster` moves around in tests; the sharded variant is already a
    // handle over heap state.
    Seq(Box<Simulator<Msg>>),
    Sharded(ShardedSimulator<Msg>),
}

impl Engine {
    fn run(&mut self) {
        match self {
            Engine::Seq(sim) => sim.run(),
            Engine::Sharded(sim) => sim.run(),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            Engine::Seq(sim) => sim.now(),
            Engine::Sharded(sim) => sim.now(),
        }
    }

    fn events_delivered(&self) -> u64 {
        match self {
            Engine::Seq(sim) => sim.events_delivered(),
            Engine::Sharded(sim) => sim.events_delivered(),
        }
    }

    fn schedule<T: Into<Msg>>(&mut self, delay: SimTime, to: ComponentId, msg: T) {
        match self {
            Engine::Seq(sim) => sim.schedule(delay, to, msg),
            Engine::Sharded(sim) => sim.schedule(delay, to, msg),
        }
    }

    fn component<C: Component<Msg>>(&self, id: ComponentId) -> Option<&C> {
        match self {
            Engine::Seq(sim) => sim.component::<C>(id),
            Engine::Sharded(sim) => sim.component::<C>(id),
        }
    }

    fn component_mut<C: Component<Msg>>(&mut self, id: ComponentId) -> Option<&mut C> {
        match self {
            Engine::Seq(sim) => sim.component_mut::<C>(id),
            Engine::Sharded(sim) => sim.component_mut::<C>(id),
        }
    }

    /// Stage a page into the store segment the component `consumer`
    /// reads from (the shared store on the sequential engine, the owning
    /// shard's segment on the sharded one).
    fn stage_page(&mut self, consumer: ComponentId, data: &[u8]) -> PageRef {
        match self {
            Engine::Seq(sim) => sim.page_store_mut().alloc_from(data),
            Engine::Sharded(sim) => {
                let shard = sim.owner_of(consumer).expect("consumer installed");
                sim.page_store_mut(shard).alloc_from(data)
            }
        }
    }

    fn assert_quiescent(&self) {
        match self {
            Engine::Seq(sim) => {
                sim.page_store().assert_quiescent();
                sim.pool_store().assert_quiescent();
            }
            Engine::Sharded(sim) => sim.assert_quiescent(),
        }
    }

    fn take_trace(&mut self) -> Vec<TracePart> {
        match self {
            Engine::Seq(sim) => vec![sim.take_trace()],
            Engine::Sharded(sim) => sim.take_trace(),
        }
    }
}

/// The conservative lookahead of a partition: the minimum latency of any
/// cable whose endpoints live in different shards. Every link shares one
/// hop latency today; written as a min-fold so per-link latencies stay
/// easy to introduce. The sharded engine runs on the finer per-pair
/// bound ([`cross_shard_lookaheads`]); this global bound survives as its
/// floor — a probe and a debug invariant.
fn cross_shard_lookahead(topo: &Topology, partition: &[u32], hop_latency: SimTime) -> SimTime {
    let mut lookahead: Option<SimTime> = None;
    for node in 0..topo.node_count() {
        for port in 0..Topology::MAX_PORTS {
            let Some((peer, _)) = topo.peer(NodeId::from(node), PortId(port as u8)) else {
                continue;
            };
            if partition[node] != partition[peer.index()] {
                lookahead = Some(lookahead.map_or(hop_latency, |l| l.min(hop_latency)));
            }
        }
    }
    // No cross-shard cable: the only cross-shard traffic left is the
    // direct end-to-end ack, which also pays >= one hop of latency.
    lookahead.unwrap_or(hop_latency)
}

/// The per-pair lookahead matrix of a partition: entry `[s][r]` is
/// `hop_latency x` the minimum hop distance between any node of shard
/// `s` and any node of shard `r`. Sound because every cross-node message
/// — cable transmit, credit return, end-to-end ack — pays at least one
/// hop of latency per hop of distance, so a message from shard `s` into
/// shard `r` takes at least that long. Mutually unreachable shard pairs
/// (possible on disconnected topologies) exchange no traffic at all;
/// they get a generous `hop_latency x node count` bound.
fn cross_shard_lookaheads(
    topo: &Topology,
    partition: &[u32],
    shards: usize,
    hop_latency: SimTime,
) -> Vec<Vec<SimTime>> {
    let unreachable = hop_latency * topo.node_count() as u64;
    topo.shard_distances(partition, shards)
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|d| {
                    if d == u32::MAX {
                        unreachable
                    } else {
                        hop_latency * u64::from(d)
                    }
                })
                .collect()
        })
        .collect()
}

/// Errors surfaced by the cluster facade.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// An underlying flash operation failed.
    Flash(FlashError),
    /// A node's flash cards are fully allocated.
    DeviceFull(NodeId),
    /// The simulation quiesced without producing the expected completion
    /// (a wiring bug, surfaced as an error for debuggability).
    MissingCompletion,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Flash(e) => write!(f, "flash error: {e}"),
            ClusterError::DeviceFull(n) => write!(f, "no free pages left on {n}"),
            ClusterError::MissingCompletion => write!(f, "operation produced no completion"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for ClusterError {
    fn from(e: FlashError) -> Self {
        ClusterError::Flash(e)
    }
}

/// A completed single read with its simulated latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletedRead {
    /// Page contents.
    pub data: Vec<u8>,
    /// Operation latency (accept to data-at-destination).
    pub latency: SimTime,
}

/// A DES world of BlueDBM nodes. See the
/// [crate-level documentation](crate) for an example.
pub struct Cluster {
    engine: Engine,
    config: SystemConfig,
    topo: Topology,
    routers: Vec<ComponentId>,
    agents: Vec<ComponentId>,
    pcie: Vec<ComponentId>,
    controllers: Vec<Vec<ComponentId>>,
    /// Per-node accelerator scheduler (paper Section 4).
    scheds: Vec<ComponentId>,
    /// Per-node GC agent executing lifecycle rounds as simulated
    /// traffic.
    gc_agents: Vec<ComponentId>,
    /// Per-(node, card) mirror FTL making the GC / wear-leveling
    /// decisions the agents execute (empty when `config.gc.enabled` is
    /// off). Addresses handed to drivers encode *logical* pages; the
    /// mirror's mapping table translates them at injection time.
    mirrors: Vec<Vec<Ftl>>,
    /// Per-(node, card) logical op log (populated under
    /// `config.gc.log`) — the conformance suite's replay input.
    lifecycle_log: Vec<Vec<Vec<LifecycleOp>>>,
    /// Per-(node, card) mirror-decided GC rounds in op order (populated
    /// under `config.gc.log`) — the conformance suite's expected victim
    /// and relocation sequence.
    gc_rounds_log: Vec<Vec<Vec<GcRound>>>,
    /// Node -> shard map (all zeros on the sequential engine).
    partition: Vec<u32>,
    /// Next unallocated linear page per (node, card).
    bump: Vec<Vec<usize>>,
    /// Trimmed pages available for reallocation, per node (LIFO — the
    /// most recently freed page is reused first, keeping the touched
    /// footprint compact).
    free: Vec<Vec<GlobalPageAddr>>,
    /// Flash pages allocated and not yet freed, cluster-wide — the KV
    /// layer's stranded-extent audit baseline.
    pages_in_use: u64,
    next_op: u64,
}

impl Cluster {
    /// Build a cluster over an explicit topology.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` reserves the right
    /// to validate configurations (and keeps call sites uniform with the
    /// other constructors).
    pub fn new(topo: Topology, config: &SystemConfig) -> Result<Self, ClusterError> {
        let shards = config.sim.shards.clamp(1, topo.node_count());
        let partition = if shards <= 1 {
            vec![0; topo.node_count()]
        } else {
            // Latency-aware min-cut partition: fewest cut cables, so the
            // least cross-shard mail and the largest per-pair lookaheads.
            topo.min_cut_partition(shards)
        };
        Self::with_partition(topo, config, &partition)
    }

    /// Build a cluster with an explicit node -> shard map (the shard
    /// count is `max(partition) + 1`; a map of all zeros runs the
    /// sequential engine). Every component of a node — router, flash
    /// controllers, splitters, PCIe link, agent — is pinned to the
    /// node's shard, so only inter-node traffic crosses shards and the
    /// conservative lookahead is the minimum cross-shard link latency.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::new`].
    ///
    /// # Panics
    ///
    /// Panics if `partition.len() != topo.node_count()`.
    pub fn with_partition(
        topo: Topology,
        config: &SystemConfig,
        partition: &[u32],
    ) -> Result<Self, ClusterError> {
        assert_eq!(
            partition.len(),
            topo.node_count(),
            "partition must assign every node a shard"
        );
        let shards = partition.iter().map(|&s| s as usize + 1).max().unwrap_or(1);
        let mut sim = Simulator::new();
        let routers = build_network(&mut sim, &topo, config.net);
        let n = topo.node_count();
        let mut agents = Vec::with_capacity(n);
        let mut pcie = Vec::with_capacity(n);
        let mut scheds = Vec::with_capacity(n);
        let mut controllers = Vec::with_capacity(n);
        let mut splitters = Vec::with_capacity(n);
        let mut gc_agents = Vec::with_capacity(n);
        let mut mirrors = Vec::with_capacity(if config.gc.enabled { n } else { 0 });
        for (node, &node_router) in routers.iter().enumerate() {
            let mut node_ctrls = Vec::new();
            let mut node_splitters = Vec::new();
            for card in 0..config.flash.cards_per_node {
                let array = FlashArray::new(
                    config.flash.geometry,
                    ((0xB1DE + (node as u64)) << 8) | card as u64,
                );
                let ctrl = sim.add_component(FlashController::new(array, config.flash.timing));
                let split = sim.add_component(FlashSplitter::new(
                    ctrl,
                    FlashController::PAPER_TAGS,
                ));
                node_ctrls.push(ctrl);
                node_splitters.push(split);
            }
            let gc_agent = sim.add_component(GcAgent::new(
                node as u32,
                node_splitters.clone(),
                config.flash.geometry,
            ));
            gc_agents.push(gc_agent);
            if config.gc.enabled {
                let mut node_mirrors = Vec::with_capacity(config.flash.cards_per_node);
                for card in 0..config.flash.cards_per_node {
                    // The shadow array is seeded like the card's real
                    // array: under today's error-free factory model both
                    // start blank with identical good-block sets, so the
                    // mirror's physical decisions are valid verbatim on
                    // the simulated card.
                    let shadow = FlashArray::new(
                        config.flash.geometry,
                        ((0xB1DE + (node as u64)) << 8) | card as u64,
                    );
                    node_mirrors.push(
                        Ftl::new(shadow, config.gc.ftl())
                            .expect("geometry too small for the GC watermark"),
                    );
                }
                mirrors.push(node_mirrors);
            }
            let link = sim.add_component(PcieLink::new(config.pcie));
            let sched = sim
                .add_component(AccelSched::new(config.accel.units).with_node(node as u32));
            let agent = sim.add_component(NodeAgent::new(
                NodeId::from(node),
                node_router,
                link,
                node_splitters.clone(),
                config.flash.geometry.page_bytes,
                config.host.dram_latency,
                config.host.read_buffers,
                sched,
                config.accel.bandwidth,
            ));
            let router = sim
                .component_mut::<Router<NetBody>>(node_router)
                .expect("router installed");
            router.register_endpoint(REQUEST_ENDPOINT, agent);
            for ep in 1..=DATA_ENDPOINTS {
                router.register_endpoint(ep, agent);
            }
            agents.push(agent);
            pcie.push(link);
            scheds.push(sched);
            controllers.push(node_ctrls);
            splitters.push(node_splitters);
        }
        let engine = if shards <= 1 {
            sim.set_trace(config.sim.trace, 0);
            Engine::Seq(Box::new(sim))
        } else {
            let mut owner = vec![u32::MAX; sim.component_count()];
            for node in 0..n {
                let shard = partition[node];
                owner[routers[node].index()] = shard;
                owner[agents[node].index()] = shard;
                owner[pcie[node].index()] = shard;
                owner[scheds[node].index()] = shard;
                owner[gc_agents[node].index()] = shard;
                for c in controllers[node].iter().chain(&splitters[node]) {
                    owner[c.index()] = shard;
                }
            }
            let lookaheads =
                cross_shard_lookaheads(&topo, partition, shards, config.net.hop_latency);
            // The pair matrix can only widen the global single-link
            // bound, never undercut it.
            debug_assert!(lookaheads.iter().enumerate().all(|(s, row)| {
                row.iter().enumerate().all(|(r, &l)| {
                    s == r || l >= cross_shard_lookahead(&topo, partition, config.net.hop_latency)
                })
            }));
            let mut sharded =
                ShardedSimulator::with_lookaheads(sim, owner, shards, lookaheads);
            sharded.set_exec_mode(config.sim.exec);
            sharded.set_trace(config.sim.trace);
            Engine::Sharded(sharded)
        };
        Ok(Cluster {
            engine,
            config: *config,
            bump: vec![vec![0; config.flash.cards_per_node]; n],
            free: vec![Vec::new(); n],
            pages_in_use: 0,
            topo,
            routers,
            agents,
            pcie,
            scheds,
            gc_agents,
            mirrors,
            lifecycle_log: vec![vec![Vec::new(); config.flash.cards_per_node]; n],
            gc_rounds_log: vec![vec![Vec::new(); config.flash.cards_per_node]; n],
            controllers,
            partition: partition.to_vec(),
            next_op: 0,
        })
    }

    /// A ring of `n` nodes with enough lanes to mirror the paper's
    /// cabling (4 each way for n > 2).
    ///
    /// # Errors
    ///
    /// As for [`Cluster::new`].
    pub fn ring(n: usize, config: &SystemConfig) -> Result<Self, ClusterError> {
        let lanes = 4;
        Self::new(Topology::ring(n, lanes), config)
    }

    /// A line of `n` nodes with `lanes` parallel cables per hop.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::new`].
    pub fn line(n: usize, lanes: usize, config: &SystemConfig) -> Result<Self, ClusterError> {
        Self::new(Topology::line(n, lanes), config)
    }

    /// The system configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.topo.node_count()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Total simulation events delivered so far (aggregated across
    /// shards on the sharded engine).
    pub fn events_delivered(&self) -> u64 {
        self.engine.events_delivered()
    }

    /// Worker shards executing this cluster (1 = sequential engine).
    pub fn shard_count(&self) -> usize {
        match &self.engine {
            Engine::Seq(_) => 1,
            Engine::Sharded(sim) => sim.shard_count(),
        }
    }

    /// The node -> shard map in force (all zeros on the sequential
    /// engine).
    pub fn partition(&self) -> &[u32] {
        &self.partition
    }

    /// The sharded engine's minimum conservative window — the smallest
    /// entry of the per-pair lookahead matrix (`None` on the sequential
    /// engine, which needs no window).
    pub fn min_lookahead(&self) -> Option<SimTime> {
        match &self.engine {
            Engine::Seq(_) => None,
            Engine::Sharded(sim) => Some(sim.lookahead()),
        }
    }

    /// The per-pair conservative lookahead from shard `src` to shard
    /// `dst` (`None` on the sequential engine).
    ///
    /// # Panics
    ///
    /// Panics if either shard index is out of range on the sharded
    /// engine.
    pub fn lookahead_between(&self, src: usize, dst: usize) -> Option<SimTime> {
        match &self.engine {
            Engine::Seq(_) => None,
            Engine::Sharded(sim) => Some(sim.lookahead_between(src, dst)),
        }
    }

    /// Cumulative conservative-sync rounds the sharded engine has
    /// executed (`None` on the sequential engine): one all-to-all
    /// mailbox/horizon exchange per round, so rounds ÷ wall time is the
    /// protocol-overhead denominator.
    pub fn sync_rounds(&self) -> Option<u64> {
        match &self.engine {
            Engine::Seq(_) => None,
            Engine::Sharded(sim) => Some(sim.sync_rounds()),
        }
    }

    /// The sharded engine's execution mode (`None` on the sequential
    /// engine).
    pub fn exec_mode(&self) -> Option<ExecMode> {
        match &self.engine {
            Engine::Seq(_) => None,
            Engine::Sharded(sim) => Some(sim.exec_mode()),
        }
    }

    /// Synchronization and speculation statistics of the sharded engine
    /// (`None` on the sequential engine): sync rounds plus, per shard,
    /// committed / rolled-back speculative event counts, the adaptive
    /// window, and park/spin waits. All zeros outside
    /// [`ExecMode::Optimistic`] except the wait counters.
    pub fn shard_stats(&self) -> Option<ShardStats> {
        match &self.engine {
            Engine::Seq(_) => None,
            Engine::Sharded(sim) => Some(sim.shard_stats()),
        }
    }

    /// Harvest the per-shard trace buffers accumulated so far: one
    /// [`TracePart`] on the sequential engine, one per worker shard
    /// otherwise (empty parts when `config.sim.trace` is off). Taking
    /// resets the sinks, so back-to-back harvests see disjoint records;
    /// merge parts with [`bluedbm_sim::TraceDoc::merge`].
    pub fn take_trace(&mut self) -> Vec<TracePart> {
        self.engine.take_trace()
    }

    /// Wall-clock worker profiles from threaded runs (`None` on the
    /// sequential engine; all zeros unless
    /// `config.sim.trace.wall_profile` opted in). Strictly an
    /// out-of-band measurement — never part of the deterministic record.
    pub fn wall_profiles(&self) -> Option<Vec<WallLaneProfile>> {
        match &self.engine {
            Engine::Seq(_) => None,
            Engine::Sharded(sim) => Some(sim.wall_profiles()),
        }
    }

    /// Write the cluster's complete statistics inventory into `reg`: an
    /// `engine` scope (mode, shard count, event count, sync rounds,
    /// per-shard speculation/wait lanes, opt-in wall profiles), a `gc`
    /// scope (lifecycle counters and write amplification, when the
    /// lifecycle is enabled) and a `nodes` scope with per-node router /
    /// agent / scheduler / GC-agent / host-buffer / flash-card
    /// subtrees.
    pub fn fill_metrics(&self, reg: &mut MetricsRegistry) {
        let engine = reg.scope("engine");
        engine.set(
            "mode",
            match self.exec_mode() {
                None => "seq".to_string(),
                Some(m) => format!("{m:?}").to_lowercase(),
            },
        );
        engine.set("shards", self.shard_count());
        engine.set("now_ps", self.now().as_ps());
        engine.set("events_delivered", self.events_delivered());
        if let Some(rounds) = self.sync_rounds() {
            engine.set("sync_rounds", rounds);
        }
        if let Some(stats) = self.shard_stats() {
            for (i, lane) in stats.shards.iter().enumerate() {
                let shard = engine.child(&format!("shard{i}"));
                shard.set("committed_events", lane.committed_events);
                shard.set("rolled_back_events", lane.rolled_back_events);
                shard.set("rollbacks", lane.rollbacks);
                shard.set("window_ps", lane.window.as_ps());
                shard.set("spins", lane.spins);
                shard.set("parks", lane.parks);
            }
        }
        if let Some(walls) = self.wall_profiles() {
            for (i, w) in walls.iter().enumerate() {
                if w.spin_ns == 0 && w.park_ns == 0 && w.execute_ns == 0 {
                    continue;
                }
                let lane = engine.child(&format!("wall{i}"));
                lane.set("spin_ns", w.spin_ns);
                lane.set("park_ns", w.park_ns);
                lane.set("execute_ns", w.execute_ns);
            }
        }
        if self.config.gc.enabled {
            self.gc_stats().fill_metrics(reg.scope("gc"));
        }
        let nodes = reg.scope("nodes");
        for node in 0..self.node_count() {
            let id = NodeId::from(node);
            let scope = nodes.child(&format!("node{node}"));
            self.router_stats(id).fill_metrics(scope.child("router"));
            self.agent_stats(id).fill_metrics(scope.child("agent"));
            self.sched_stats(id).fill_metrics(scope.child("sched"));
            if self.config.gc.enabled {
                self.gc_agent_stats(id).fill_metrics(scope.child("gc_agent"));
            }
            self.engine
                .component::<NodeAgent>(self.agents[node])
                .expect("agent installed")
                .host_buffers()
                .fill_metrics(scope.child("host_buffers"));
            for card in 0..self.config.flash.cards_per_node {
                self.controller_stats(id, card)
                    .fill_metrics(scope.child(&format!("card{card}")));
            }
        }
    }

    /// A fresh [`MetricsDoc`] snapshot of [`Cluster::fill_metrics`] —
    /// the mid-run observability entry point (JSON via
    /// [`MetricsDoc::to_json_pretty`]).
    pub fn metrics(&self) -> MetricsDoc {
        let mut reg = MetricsRegistry::new();
        self.fill_metrics(&mut reg);
        reg.snapshot()
    }

    /// Pin every shard's speculation window to `w` (no-op on the
    /// sequential engine). `SimTime::ZERO` disables speculation, making
    /// [`ExecMode::Optimistic`] execute exactly like conservative
    /// threads; the window self-tunes from whatever is set here.
    pub fn set_speculation_window(&mut self, w: SimTime) {
        if let Engine::Sharded(sim) = &mut self.engine {
            sim.set_speculation_window(w);
        }
    }

    /// Allocate the next free page on `node`: a previously
    /// [`Cluster::free_page`]d page if one is available (most recently
    /// freed first), otherwise the bump allocator's next page —
    /// round-robin across cards, and striped across every bus and chip
    /// within a card so sequential allocations exploit the device's full
    /// parallelism (the same discipline the FTL uses).
    ///
    /// With the flash lifecycle live (`config.gc.enabled`, the default)
    /// the address returned encodes a **logical** page: the mirror FTL
    /// picks the physical cell at write time and may move it later
    /// during collection, and every injection path translates through
    /// the mapping table. Capacity is then the FTL's exported logical
    /// capacity (good pages minus over-provision and watermark reserve),
    /// not the raw cell count — the slack is what GC reclaims into.
    ///
    /// # Errors
    ///
    /// [`ClusterError::DeviceFull`] when every card is exhausted.
    pub fn alloc_page(&mut self, node: NodeId) -> Result<GlobalPageAddr, ClusterError> {
        if let Some(addr) = self.free[node.index()].pop() {
            self.pages_in_use += 1;
            return Ok(addr);
        }
        let geom = self.config.flash.geometry;
        if self.config.gc.enabled {
            let mirrors = &self.mirrors[node.index()];
            let cards = &mut self.bump[node.index()];
            let card = (0..cards.len())
                .filter(|&c| cards[c] < mirrors[c].capacity_pages() as usize)
                .min_by_key(|&c| cards[c])
                .ok_or(ClusterError::DeviceFull(node))?;
            let lba = cards[card];
            cards[card] += 1;
            self.pages_in_use += 1;
            return Ok(GlobalPageAddr {
                node,
                card: card as u8,
                ppa: geom.ppa_of(lba),
            });
        }
        let cards = &mut self.bump[node.index()];
        let card = (0..cards.len())
            .min_by_key(|&c| cards[c])
            .filter(|&c| cards[c] < geom.total_pages())
            .ok_or(ClusterError::DeviceFull(node))?;
        let i = cards[card];
        cards[card] += 1;
        // Chip-interleaved layout: consecutive allocations land on
        // consecutive (bus, chip) planes.
        let chips = geom.total_chips();
        let plane = i % chips;
        let within = i / chips;
        let ppa = bluedbm_flash::Ppa::new(
            (plane / geom.chips_per_bus) as u16,
            (plane % geom.chips_per_bus) as u16,
            (within / geom.pages_per_block) as u32,
            (within % geom.pages_per_block) as u32,
        );
        self.pages_in_use += 1;
        Ok(GlobalPageAddr {
            node,
            card: card as u8,
            ppa,
        })
    }

    /// Return an allocated page to `addr.node`'s free pool: the page is
    /// trimmed (its data invalidated and the cell reprogrammable — see
    /// [`bluedbm_flash::array::FlashArray::trim`]) and becomes the next
    /// allocation candidate on that node. The caller must own the page
    /// (allocated and not already freed) and must not have reads in
    /// flight against it — the KV store's per-key gates guarantee both.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Flash`] on an address outside the configured
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if more pages are freed than were ever allocated (a
    /// double-free somewhere).
    pub fn free_page(&mut self, addr: GlobalPageAddr) -> Result<(), ClusterError> {
        if self.config.gc.enabled {
            // Lifecycle mode: a free is a logical trim. The mirror
            // unmaps the lba (marking the physical cell stale and
            // reclaimable); the simulated array keeps the stale bits
            // until the block's erase, exactly like the mirror's shadow
            // — the two stay program-bitmap lockstep.
            let node = addr.node.index();
            let card = addr.card as usize;
            let lba = self.config.flash.geometry.linear_of(addr.ppa) as u64;
            if self.config.gc.log {
                self.lifecycle_log[node][card].push(LifecycleOp::Trim(lba));
            }
            self.mirrors[node][card]
                .step_trim(lba)
                .expect("freed address outside the mirror's logical space");
        } else {
            let ctrl = self.controllers[addr.node.index()][addr.card as usize];
            self.engine
                .component_mut::<FlashController>(ctrl)
                .expect("controller installed")
                .array_mut()
                .trim(addr.ppa)?;
        }
        self.pages_in_use = self
            .pages_in_use
            .checked_sub(1)
            .expect("free_page without a matching alloc_page");
        self.free[addr.node.index()].push(addr);
        Ok(())
    }

    /// Flash pages currently allocated (cluster-wide): every
    /// [`Cluster::alloc_page`] not yet returned via
    /// [`Cluster::free_page`]. The KV store audits its directory against
    /// this to catch stranded extents.
    pub fn flash_pages_in_use(&self) -> u64 {
        self.pages_in_use
    }

    /// Translate a driver-visible (logical) address into the physical
    /// cell the mirror FTL currently maps it to. Identity when the
    /// lifecycle is disabled, and for unmapped logical pages — an
    /// unwritten page then reads as `NotProgrammed`, matching the
    /// GC-off contract.
    fn resolve(&self, addr: GlobalPageAddr) -> GlobalPageAddr {
        if !self.config.gc.enabled {
            return addr;
        }
        let lba = self.config.flash.geometry.linear_of(addr.ppa) as u64;
        match self.mirrors[addr.node.index()][addr.card as usize].physical_of(lba) {
            Some(ppa) => GlobalPageAddr { ppa, ..addr },
            None => addr,
        }
    }

    /// Mirror-FTL write replay for one logical page: step the mapping
    /// table and, when the write tripped a free-block watermark, execute
    /// the resulting collection rounds as simulated flash traffic before
    /// returning the physical program target.
    fn step_mirror_write(&mut self, node: NodeId, card: u8, lba: u64) -> bluedbm_flash::Ppa {
        let n = node.index();
        let c = card as usize;
        if self.config.gc.log {
            self.lifecycle_log[n][c].push(LifecycleOp::Write(lba));
        }
        // Allocation is gated on the mirror's exported capacity, so the
        // policy can always make room: NoSpace here is a logic bug, not
        // an operational condition.
        let outcome = self.mirrors[n][c]
            .step_write(lba)
            .expect("mirror FTL out of space despite capacity-gated allocation");
        if !outcome.gc.is_empty() {
            if self.config.gc.log {
                self.gc_rounds_log[n][c].extend(outcome.gc.iter().cloned());
            }
            self.run_gc(node, card, outcome.gc);
        }
        outcome.target
    }

    /// Execute mirror-decided collection rounds on `node`/`card` as
    /// simulated commands, stop-the-world: first drain in-flight
    /// foreground traffic (whose physical targets were resolved against
    /// the pre-collection mapping), then let the node's [`GcAgent`] run
    /// the relocation reads/programs and erases through the shared
    /// splitter and buses. The simulated clock advances across both
    /// drains — that stall is precisely the GC pressure tenants observe.
    fn run_gc(&mut self, node: NodeId, card: u8, rounds: Vec<GcRound>) {
        self.engine.run();
        let agent = self.gc_agents[node.index()];
        self.engine
            .component_mut::<GcAgent>(agent)
            .expect("GC agent installed")
            .push_job(card, rounds);
        self.engine.schedule(SimTime::ZERO, agent, GcKick);
        self.engine.run();
    }

    /// Cluster-wide flash lifecycle accounting, aggregated over every
    /// card's mirror FTL: host programs vs GC relocation programs (the
    /// write-amplification numerator), victim erases, relocated pages,
    /// and the widest per-card erase-count spread the wear leveler is
    /// holding down. All zeros when `config.gc.enabled` is off.
    pub fn gc_stats(&self) -> GcStats {
        let mut total = GcStats::default();
        for node in &self.mirrors {
            for mirror in node {
                let stats = mirror.stats();
                total.host_writes += stats.host_writes;
                total.gc_writes += stats.flash_writes - stats.host_writes;
                total.erases += stats.gc_erases;
                total.relocated += stats.gc_moves;
                let spread = mirror.array().max_wear() - mirror.array().min_wear();
                total.wear_spread = total.wear_spread.max(spread);
            }
        }
        total
    }

    /// Per-node GC agent statistics: rounds/moves/erases this node has
    /// executed as simulated traffic (preload-time functional rounds are
    /// accounted only in the mirror's policy totals).
    pub fn gc_agent_stats(&self, node: NodeId) -> &GcAgentStats {
        self.engine
            .component::<GcAgent>(self.gc_agents[node.index()])
            .expect("GC agent installed")
            .stats()
    }

    /// Logical page capacity of `node` across its cards: the mirror
    /// FTL's exported capacity under the lifecycle, the raw cell count
    /// otherwise.
    pub fn node_capacity_pages(&self, node: NodeId) -> u64 {
        if self.config.gc.enabled {
            self.mirrors[node.index()].iter().map(Ftl::capacity_pages).sum()
        } else {
            (self.config.flash.cards_per_node * self.config.flash.geometry.total_pages()) as u64
        }
    }

    /// The mirror FTL of one card (lifecycle mode only) — the
    /// conformance suite compares its mapping table and stats against an
    /// offline twin.
    ///
    /// # Panics
    ///
    /// Panics when `config.gc.enabled` is off.
    pub fn mirror(&self, node: NodeId, card: usize) -> &Ftl {
        &self.mirrors[node.index()][card]
    }

    /// The simulated flash array of one card — the conformance suite
    /// checks its programmed bitmap and erase counts against the
    /// mirror's shadow.
    pub fn card_array(&self, node: NodeId, card: usize) -> &FlashArray {
        self.engine
            .component::<FlashController>(self.controllers[node.index()][card])
            .expect("controller installed")
            .array()
    }

    /// The logical lifecycle ops recorded for one card (empty unless
    /// `config.gc.log`).
    pub fn lifecycle_log(&self, node: NodeId, card: usize) -> &[LifecycleOp] {
        &self.lifecycle_log[node.index()][card]
    }

    /// The mirror-decided GC rounds recorded for one card, in op order
    /// (empty unless `config.gc.log`).
    pub fn gc_rounds_log(&self, node: NodeId, card: usize) -> &[GcRound] {
        &self.gc_rounds_log[node.index()][card]
    }

    fn op_id(&mut self) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        id
    }

    fn harvest(&mut self, node: NodeId) -> Vec<Completed> {
        self.engine
            .component_mut::<NodeAgent>(self.agents[node.index()])
            .expect("agent installed")
            .take_completed()
    }

    fn run_one(&mut self, node: NodeId, op: AgentOp) -> Result<Completed, ClusterError> {
        self.engine.schedule(SimTime::ZERO, self.agents[node.index()], op);
        self.drain_one(node)
    }

    /// Run to quiescence and harvest the single completion `node` must
    /// have produced, mapping its failure to an error.
    fn drain_one(&mut self, node: NodeId) -> Result<Completed, ClusterError> {
        self.engine.run();
        let mut done = self.harvest(node);
        let one = done.pop().ok_or(ClusterError::MissingCompletion)?;
        debug_assert!(done.is_empty(), "single op produced multiple completions");
        match one.error {
            Some(e) => Err(ClusterError::Flash(e)),
            None => Ok(one),
        }
    }

    /// Write a page to `node`'s own flash through the full DES path.
    ///
    /// # Errors
    ///
    /// Allocation or flash failures.
    pub fn write_page_local(
        &mut self,
        node: NodeId,
        data: &[u8],
    ) -> Result<GlobalPageAddr, ClusterError> {
        // Stage the page in the simulator's store (the owning node's
        // shard segment under the sharded engine); the flash controller
        // consumes (and frees) the handle once the bus has read it.
        let (_op_id, addr) = self.inject_write(node, data)?;
        match self.drain_one(node) {
            Ok(_) => Ok(addr),
            Err(e) => {
                // The write failed: the page holds nothing durable, so
                // return it to the pool (keeps the allocation audit
                // honest on this blocking path).
                let _ = self.free_page(addr);
                Err(e)
            }
        }
    }

    /// Preload a page without simulating the write (experiment setup:
    /// building a 100k-page dataset should not cost 100k simulated
    /// tPROGs).
    ///
    /// # Errors
    ///
    /// Allocation or flash failures.
    pub fn preload_page(
        &mut self,
        node: NodeId,
        data: &[u8],
    ) -> Result<GlobalPageAddr, ClusterError> {
        let addr = self.alloc_page(node)?;
        if self.config.gc.enabled {
            // Preload skips simulated time but not the lifecycle: the
            // mirror steps exactly as for a simulated write, and any
            // collection rounds it decides are applied *functionally* to
            // the card's array (relocation copies and victim erases with
            // no simulated latency), keeping the two program bitmaps in
            // lockstep for later simulated traffic.
            let geom = self.config.flash.geometry;
            let lba = geom.linear_of(addr.ppa) as u64;
            let n = node.index();
            let c = addr.card as usize;
            if self.config.gc.log {
                self.lifecycle_log[n][c].push(LifecycleOp::Write(lba));
            }
            let outcome = self.mirrors[n][c]
                .step_write(lba)
                .expect("mirror FTL out of space despite capacity-gated allocation");
            if self.config.gc.log {
                self.gc_rounds_log[n][c].extend(outcome.gc.iter().cloned());
            }
            let ctrl = self.controllers[n][c];
            let array = self
                .engine
                .component_mut::<FlashController>(ctrl)
                .expect("controller installed")
                .array_mut();
            let mut buf = vec![0u8; geom.page_bytes];
            for round in &outcome.gc {
                for &(src, dst) in &round.moves {
                    if array.page_has_data(src) {
                        array.read_into(src, &mut buf)?;
                        array.program(dst, &buf)?;
                    } else {
                        array.program_blank(dst)?;
                    }
                }
                array.erase(round.victim)?;
            }
            array.program(outcome.target, data)?;
            return Ok(addr);
        }
        let ctrl = self.controllers[node.index()][addr.card as usize];
        let programmed = self
            .engine
            .component_mut::<FlashController>(ctrl)
            .expect("controller installed")
            .array_mut()
            .program(addr.ppa, data);
        if let Err(e) = programmed {
            let _ = self.free_page(addr);
            return Err(e.into());
        }
        Ok(addr)
    }

    /// Read a page, consumed by the in-store processor of `reader`
    /// (local flash or the ISP-F remote path, depending on `addr`).
    ///
    /// # Errors
    ///
    /// Flash failures.
    pub fn read_page_remote(
        &mut self,
        reader: NodeId,
        addr: GlobalPageAddr,
    ) -> Result<CompletedRead, ClusterError> {
        self.read_page(reader, addr, Consume::Isp)
    }

    /// Read a page into `reader`'s host memory (adds the PCIe crossing).
    ///
    /// # Errors
    ///
    /// Flash failures.
    pub fn read_page_host(
        &mut self,
        reader: NodeId,
        addr: GlobalPageAddr,
    ) -> Result<CompletedRead, ClusterError> {
        self.read_page(reader, addr, Consume::Host)
    }

    /// Read with an explicit consumer.
    ///
    /// # Errors
    ///
    /// Flash failures.
    pub fn read_page(
        &mut self,
        reader: NodeId,
        addr: GlobalPageAddr,
        consume: Consume,
    ) -> Result<CompletedRead, ClusterError> {
        let op_id = self.op_id();
        let addr = self.resolve(addr);
        let done = self.run_one(
            reader,
            AgentOp::ReadFlash {
                op_id,
                addr,
                consume,
            },
        )?;
        Ok(CompletedRead {
            data: done.data.expect("successful read carries data"),
            latency: done.end - done.start,
        })
    }

    /// Stage data into `node`'s DRAM buffer.
    pub fn load_dram(&mut self, node: NodeId, key: u64, data: &[u8]) {
        self.engine.schedule(
            SimTime::ZERO,
            self.agents[node.index()],
            AgentOp::LoadDram {
                key,
                data: data.to_vec(),
            },
        );
        self.engine.run();
    }

    /// Read `host`'s DRAM buffer from `reader` over the integrated
    /// network (the H-D path's storage half).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Flash`] wrapping `UnknownHandle` when `key` was
    /// never loaded.
    pub fn read_remote_dram(
        &mut self,
        reader: NodeId,
        host: NodeId,
        key: u64,
        consume: Consume,
    ) -> Result<CompletedRead, ClusterError> {
        let op_id = self.op_id();
        let done = self.run_one(
            reader,
            AgentOp::ReadRemoteDram {
                op_id,
                node: host,
                key,
                consume,
            },
        )?;
        Ok(CompletedRead {
            data: done.data.expect("successful read carries data"),
            latency: done.end - done.start,
        })
    }

    /// Inject one read at `reader` (scheduled at the current instant)
    /// **without running the simulation** — the building block for
    /// concurrent multi-reader workloads (all-to-all scatter streams):
    /// inject from every reader, then [`Cluster::run_to_quiescence`] and
    /// [`Cluster::harvest_node`]. Returns the op id echoed in the
    /// completion.
    pub fn inject_read(&mut self, reader: NodeId, addr: GlobalPageAddr, consume: Consume) -> u64 {
        let op_id = self.op_id();
        let addr = self.resolve(addr);
        self.engine.schedule(
            SimTime::ZERO,
            self.agents[reader.index()],
            AgentOp::ReadFlash {
                op_id,
                addr,
                consume,
            },
        );
        op_id
    }

    /// Inject one page write at `node` (allocating the page and staging
    /// the payload) **without running the simulation** — the write-side
    /// twin of [`Cluster::inject_read`], used by the concurrent KV
    /// engine to put many tenants' writes in flight at once. `data`
    /// shorter than a page is zero-padded. Returns the op id echoed in
    /// the completion and the page allocated.
    ///
    /// # Errors
    ///
    /// [`ClusterError::DeviceFull`] when `node` has no free pages.
    pub fn inject_write(
        &mut self,
        node: NodeId,
        data: &[u8],
    ) -> Result<(u64, GlobalPageAddr), ClusterError> {
        let addr = self.alloc_page(node)?;
        let op_id = self.op_id();
        // Lifecycle mode: replay the write against the mirror FTL first.
        // If it trips a watermark the collection runs to completion as
        // simulated traffic *before* this program is scheduled — the
        // foreground write waits out its own GC, like on a real device.
        let target = if self.config.gc.enabled {
            let lba = self.config.flash.geometry.linear_of(addr.ppa) as u64;
            let ppa = self.step_mirror_write(node, addr.card, lba);
            GlobalPageAddr { ppa, ..addr }
        } else {
            addr
        };
        let page_bytes = self.config.flash.geometry.page_bytes;
        debug_assert!(data.len() <= page_bytes);
        let buffer = if data.len() == page_bytes {
            self.engine.stage_page(self.agents[node.index()], data)
        } else {
            let mut padded = data.to_vec();
            padded.resize(page_bytes, 0);
            self.engine.stage_page(self.agents[node.index()], &padded)
        };
        self.engine.schedule(
            SimTime::ZERO,
            self.agents[node.index()],
            AgentOp::WriteFlash {
                op_id,
                addr: target,
                data: buffer,
            },
        );
        Ok((op_id, addr))
    }

    /// Run the event queues to global quiescence (across all shards on
    /// the sharded engine).
    pub fn run_to_quiescence(&mut self) {
        self.engine.run();
    }

    /// Drain the completions recorded at `node`.
    pub fn harvest_node(&mut self, node: NodeId) -> Vec<Completed> {
        self.harvest(node)
    }

    /// Inject a batch of reads at `reader` (all at the current instant),
    /// run to quiescence, and return every completion. Used by the
    /// bandwidth experiments (Figure 13): per-class sustained rates are
    /// computed from the completion timestamps.
    pub fn stream_reads(
        &mut self,
        reader: NodeId,
        addrs: &[GlobalPageAddr],
        consume: Consume,
    ) -> Vec<Completed> {
        for &addr in addrs {
            let op_id = self.op_id();
            let addr = self.resolve(addr);
            self.engine.schedule(
                SimTime::ZERO,
                self.agents[reader.index()],
                AgentOp::ReadFlash {
                    op_id,
                    addr,
                    consume,
                },
            );
        }
        self.engine.run();
        self.harvest(reader)
    }

    /// Run a user-defined in-store processor over an address stream —
    /// the paper's hardware-software codesign interface: the host
    /// supplies physical addresses (from
    /// [`bluedbm_ftl::Rfs::physical_addrs`] in the full flow), the
    /// engine consumes pages *in stream order* at simulated device
    /// bandwidth (the Flash Server's in-order interface), and only the
    /// engine's result state returns.
    ///
    /// Returns the simulated time from first request to last page.
    ///
    /// # Errors
    ///
    /// Fails on the first page whose read failed.
    pub fn isp_scan(
        &mut self,
        reader: NodeId,
        addrs: &[GlobalPageAddr],
        engine: &mut dyn bluedbm_isp::Accelerator,
    ) -> Result<SimTime, ClusterError> {
        let t0 = self.engine.now();
        let mut done = self.stream_reads(reader, addrs, Consume::Isp);
        if done.len() != addrs.len() {
            return Err(ClusterError::MissingCompletion);
        }
        // Reorder completions back into the host-supplied stream order
        // (op ids were assigned in that order).
        done.sort_by_key(|c| c.op_id);
        let mut last = t0;
        for (seq, c) in done.into_iter().enumerate() {
            if let Some(e) = c.error {
                return Err(ClusterError::Flash(e));
            }
            last = last.max(c.end);
            let data = c.data.expect("successful reads carry data");
            engine.consume(seq as u64, &data);
        }
        Ok(last - t0)
    }

    /// Shortest-path hop count between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if `b` is unreachable from `a` (the cluster network must be
    /// connected).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let d = self.topo.distances_from(a)[b.index()];
        assert_ne!(d, u32::MAX, "{b} unreachable from {a}");
        d
    }

    /// Router statistics for `node`. Borrowed straight from the
    /// component — clone at the call site if the probe must outlive
    /// further cluster mutation.
    pub fn router_stats(&self, node: NodeId) -> &RouterStats {
        self.engine
            .component::<Router<NetBody>>(self.routers[node.index()])
            .expect("router installed")
            .stats()
    }

    /// Node-agent statistics for `node` (borrowed; see
    /// [`Cluster::router_stats`]).
    pub fn agent_stats(&self, node: NodeId) -> &AgentStats {
        self.engine
            .component::<NodeAgent>(self.agents[node.index()])
            .expect("agent installed")
            .stats()
    }

    /// Accelerator-scheduler statistics for `node` (borrowed; see
    /// [`Cluster::router_stats`]): FIFO unit grants, parked-job counts
    /// and queue waits for the node's shared acceleration units.
    pub fn sched_stats(&self, node: NodeId) -> &SchedStats {
        self.engine
            .component::<AccelSched>(self.scheds[node.index()])
            .expect("scheduler installed")
            .stats()
    }

    /// Controller statistics for one card of `node` (borrowed; see
    /// [`Cluster::router_stats`]).
    pub fn controller_stats(&self, node: NodeId, card: usize) -> &CtrlStats {
        self.engine
            .component::<FlashController>(self.controllers[node.index()][card])
            .expect("controller installed")
            .stats()
    }

    /// The PCIe link component id of `node` (advanced drivers can inject
    /// [`bluedbm_host::pcie::PcieXfer`]s directly).
    pub fn pcie_id(&self, node: NodeId) -> ComponentId {
        self.pcie[node.index()]
    }

    /// The simulator-owned page store: payload staging for advanced
    /// drivers, and the leak audit (`assert_quiescent`) after a run.
    ///
    /// # Panics
    ///
    /// Panics on the sharded engine, where pages live in per-shard
    /// segments — use [`Cluster::assert_quiescent`] for audits there.
    pub fn page_store(&self) -> &bluedbm_sim::PageStore {
        match &self.engine {
            Engine::Seq(sim) => sim.page_store(),
            Engine::Sharded(_) => {
                panic!("page_store() is sequential-engine-only; use assert_quiescent()")
            }
        }
    }

    /// Store leak audit across both engines: every page and every
    /// interned control block must have been consumed.
    ///
    /// # Panics
    ///
    /// Panics if any store segment still holds live entries.
    pub fn assert_quiescent(&self) {
        self.engine.assert_quiescent();
    }

    /// Direct simulator access for advanced experiment drivers.
    ///
    /// # Panics
    ///
    /// Panics on the sharded engine (no single simulator exists); the
    /// aggregate probes ([`Cluster::now`], [`Cluster::events_delivered`])
    /// work on both.
    pub fn sim_mut(&mut self) -> &mut Simulator<Msg> {
        match &mut self.engine {
            Engine::Seq(sim) => sim,
            Engine::Sharded(_) => panic!("sim_mut() is sequential-engine-only"),
        }
    }
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.node_count())
            .field("shards", &self.shard_count())
            .field("now", &self.engine.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(config: &SystemConfig, fill: u8) -> Vec<u8> {
        vec![fill; config.flash.geometry.page_bytes]
    }

    #[test]
    fn local_write_then_read_round_trip() {
        let config = SystemConfig::scaled_down();
        let mut cluster = Cluster::ring(2, &config).unwrap();
        let addr = cluster.write_page_local(NodeId(0), &page(&config, 1)).unwrap();
        let read = cluster.read_page_remote(NodeId(0), addr).unwrap();
        assert_eq!(read.data, page(&config, 1));
        // Local ISP read: tR 50us + bus transfer (2 KiB page at 150 MB/s
        // is ~13.7us), no network.
        assert!(read.latency >= SimTime::us(50));
        assert!(read.latency < SimTime::us(66), "{}", read.latency);
        // Every page handle was consumed on its way through the stack.
        cluster.page_store().assert_quiescent();
    }

    #[test]
    fn remote_read_pays_the_network_but_not_much() {
        let config = SystemConfig::scaled_down();
        let mut cluster = Cluster::ring(4, &config).unwrap();
        let addr = cluster.preload_page(NodeId(0), &page(&config, 7)).unwrap();
        let local = cluster.read_page_remote(NodeId(0), addr).unwrap();
        let remote = cluster.read_page_remote(NodeId(1), addr).unwrap();
        assert_eq!(remote.data, page(&config, 7));
        assert!(remote.latency > local.latency);
        // One hop each way (0.48us) plus the 8KB+ page on the wire: the
        // paper's "integrated network adds ~5% to a flash access".
        let overhead = remote.latency - local.latency;
        assert!(
            overhead < SimTime::us(12),
            "network overhead too large: {overhead}"
        );
    }

    #[test]
    fn host_read_adds_pcie_crossing() {
        let config = SystemConfig::scaled_down();
        let mut cluster = Cluster::ring(2, &config).unwrap();
        let addr = cluster.preload_page(NodeId(0), &page(&config, 3)).unwrap();
        let isp = cluster.read_page_remote(NodeId(0), addr).unwrap();
        let host = cluster.read_page_host(NodeId(0), addr).unwrap();
        assert_eq!(host.data, page(&config, 3));
        let gap = host.latency - isp.latency;
        // DMA setup 1us + ~1.3us transfer (2KB page at 1.6GB/s) + 2us
        // completion.
        assert!(gap > SimTime::us(3) && gap < SimTime::us(10), "{gap}");
        cluster.page_store().assert_quiescent();
    }

    #[test]
    fn remote_dram_read_works_and_is_faster_than_flash() {
        let config = SystemConfig::scaled_down();
        let mut cluster = Cluster::ring(2, &config).unwrap();
        let data = page(&config, 9);
        cluster.load_dram(NodeId(1), 42, &data);
        let flash_addr = cluster.preload_page(NodeId(1), &data).unwrap();
        let dram = cluster
            .read_remote_dram(NodeId(0), NodeId(1), 42, Consume::Isp)
            .unwrap();
        let flash = cluster.read_page_remote(NodeId(0), flash_addr).unwrap();
        assert_eq!(dram.data, data);
        // DRAM skips the 50us tR.
        assert!(flash.latency > dram.latency + SimTime::us(40));
    }

    #[test]
    fn missing_dram_key_reports_error() {
        let config = SystemConfig::scaled_down();
        let mut cluster = Cluster::ring(2, &config).unwrap();
        let err = cluster
            .read_remote_dram(NodeId(0), NodeId(1), 999, Consume::Isp)
            .unwrap_err();
        assert!(matches!(
            err,
            ClusterError::Flash(FlashError::UnknownHandle(999))
        ));
    }

    #[test]
    fn unwritten_page_read_errors() {
        let config = SystemConfig::scaled_down();
        let mut cluster = Cluster::ring(2, &config).unwrap();
        let addr = cluster.alloc_page(NodeId(0)).unwrap();
        let err = cluster.read_page_remote(NodeId(0), addr).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::Flash(FlashError::NotProgrammed(_))
        ));
    }

    #[test]
    fn allocation_spreads_across_cards_and_fills_up() {
        let mut config = SystemConfig::scaled_down();
        config.flash.geometry = bluedbm_flash::FlashGeometry::tiny();
        let mut cluster = Cluster::ring(2, &config).unwrap();
        let a = cluster.alloc_page(NodeId(0)).unwrap();
        let b = cluster.alloc_page(NodeId(0)).unwrap();
        assert_ne!(a.card, b.card, "round-robin across the two cards");
        // Logical capacity under the lifecycle: good pages minus the
        // over-provision and watermark reserve GC reclaims into.
        let total = cluster.node_capacity_pages(NodeId(0)) as usize;
        assert!(total < 2 * config.flash.geometry.total_pages());
        for _ in 2..total {
            cluster.alloc_page(NodeId(0)).unwrap();
        }
        assert!(matches!(
            cluster.alloc_page(NodeId(0)),
            Err(ClusterError::DeviceFull(_))
        ));
    }

    #[test]
    fn isp_scan_streams_in_order_at_device_bandwidth() {
        use bluedbm_isp::mp::MpMatcher;
        let config = SystemConfig::paper();
        let mut cluster = Cluster::line(2, 1, &config).unwrap();
        let page_bytes = config.flash.geometry.page_bytes;

        // A needle straddling two consecutive pages on the REMOTE node:
        // stream-order delivery is what makes it findable.
        let needle = b"cross-page-needle";
        let mut haystack = vec![b'.'; 32 * page_bytes];
        let at = 3 * page_bytes - 5;
        haystack[at..at + needle.len()].copy_from_slice(needle);
        let addrs: Vec<GlobalPageAddr> = haystack
            .chunks(page_bytes)
            .map(|c| cluster.preload_page(NodeId(1), c).unwrap())
            .collect();

        let mut engine = MpMatcher::new(needle).unwrap();
        let elapsed = cluster.isp_scan(NodeId(0), &addrs, &mut engine).unwrap();
        assert_eq!(engine.matches(), &[at as u64]);
        // 32 pages over the single 8.2Gbps lane, minus the ~110us
        // pipeline fill of the first page.
        let rate = haystack.len() as f64 / elapsed.as_secs_f64();
        assert!(rate > 0.5e9, "scan rate {rate:.3e}");
    }

    #[test]
    fn isp_scan_reports_failed_pages() {
        let config = SystemConfig::scaled_down();
        let mut cluster = Cluster::ring(2, &config).unwrap();
        let addr = cluster.alloc_page(NodeId(0)).unwrap(); // never written
        let mut engine =
            bluedbm_isp::hamming::HammingEngine::new(vec![0; config.flash.geometry.page_bytes]);
        let err = cluster.isp_scan(NodeId(0), &[addr], &mut engine).unwrap_err();
        assert!(matches!(err, ClusterError::Flash(_)));
    }

    #[test]
    fn stream_of_remote_reads_saturates_one_lane() {
        // Paper geometry: the flash side sustains 2.4 GB/s, so the single
        // 8.2 Gbps lane (~1.0 GB/s) is the bottleneck — Figure 13's
        // ISP-2Nodes remote component.
        let config = SystemConfig::paper();
        let mut cluster = Cluster::line(2, 1, &config).unwrap();
        let page_bytes = config.flash.geometry.page_bytes;
        let mut addrs = Vec::new();
        for i in 0..600 {
            let data = vec![i as u8; page_bytes];
            addrs.push(cluster.preload_page(NodeId(1), &data).unwrap());
        }
        let t0 = cluster.now();
        let done = cluster.stream_reads(NodeId(0), &addrs, Consume::Isp);
        assert_eq!(done.len(), 600);
        let last = done.iter().map(|c| c.end).max().unwrap();
        let bytes = (600 * page_bytes) as f64;
        let rate = bytes / (last - t0).as_secs_f64();
        assert!(
            rate > 0.90e9 && rate < 1.06e9,
            "one-lane remote stream: {rate:.3e} B/s"
        );
        cluster.page_store().assert_quiescent();
    }

    #[test]
    fn default_partition_minimizes_cut_and_widens_lookaheads() {
        let mut config = SystemConfig::scaled_down();
        config.sim.shards = 4;
        let topo = || Topology::mesh2d(8, 8);
        let cluster = Cluster::new(topo(), &config).unwrap();
        assert_eq!(cluster.shard_count(), 4);
        // The min-cut partition beats the old row-band split on a mesh
        // (quadrants cut 2 seams of 8; 4 bands cut 3).
        let per = 64 / 4;
        let band: Vec<u32> = (0..64).map(|i| (i / per) as u32).collect();
        let t = topo();
        assert!(t.cut_cables(cluster.partition()) < t.cut_cables(&band));
        // Adjacent shard pairs synchronize on one hop; diagonal pairs
        // (two hops apart) get a strictly wider window.
        let hop = config.net.hop_latency;
        let min = cluster.min_lookahead().unwrap();
        assert_eq!(min, hop);
        let mut widest = SimTime::ZERO;
        for s in 0..4 {
            for r in 0..4 {
                if s == r {
                    continue;
                }
                let l = cluster.lookahead_between(s, r).unwrap();
                assert!(l >= min, "pair ({s},{r}) below the global bound");
                widest = widest.max(l);
            }
        }
        assert_eq!(widest, hop * 2, "quadrant diagonals are two hops apart");
    }

    #[test]
    fn sequential_engine_has_no_lookahead() {
        let config = SystemConfig::scaled_down();
        let cluster = Cluster::ring(3, &config).unwrap();
        assert_eq!(cluster.min_lookahead(), None);
        assert_eq!(cluster.lookahead_between(0, 0), None);
    }

    #[test]
    fn explicit_partition_with_empty_middle_shard_still_runs() {
        // Random partition maps (see tests/sharded.rs) can leave a shard
        // uninhabited; the pair matrix must stay positive and the run
        // must still match expectations.
        let mut config = SystemConfig::scaled_down();
        config.sim.shards = 1;
        let mut cluster =
            Cluster::with_partition(Topology::ring(4, 2), &config, &[0, 2, 0, 2]).unwrap();
        assert_eq!(cluster.shard_count(), 3);
        assert!(cluster.lookahead_between(0, 1).unwrap() > SimTime::ZERO);
        assert!(cluster.lookahead_between(1, 2).unwrap() > SimTime::ZERO);
        let addr = cluster.preload_page(NodeId(0), &page(&config, 5)).unwrap();
        let read = cluster.read_page_remote(NodeId(1), addr).unwrap();
        assert_eq!(read.data, page(&config, 5));
        cluster.assert_quiescent();
    }

    #[test]
    fn host_stream_respects_the_read_buffer_pool() {
        use crate::node::NodeAgent;

        // Shrink the host interface to 4 read buffers so a 32-page burst
        // must recycle them: pages beyond the pool park until a PCIe
        // completion returns a buffer (paper Section 3.3's free-queue
        // discipline on the read side).
        let mut config = SystemConfig::scaled_down();
        config.host.read_buffers = 4;
        let mut cluster = Cluster::ring(2, &config).unwrap();
        let addrs: Vec<GlobalPageAddr> = (0..32)
            .map(|i| cluster.preload_page(NodeId(0), &page(&config, i as u8)).unwrap())
            .collect();
        let done = cluster.stream_reads(NodeId(0), &addrs, Consume::Host);
        assert_eq!(done.len(), 32, "every parked page eventually crosses PCIe");
        assert!(done.iter().all(|c| c.error.is_none()));
        let agent = cluster.agents[0];
        let pool = cluster
            .engine
            .component::<NodeAgent>(agent)
            .expect("agent installed")
            .host_buffers();
        assert_eq!(pool.peak_in_use(), 4, "the burst saturates the pool");
        assert!(pool.exhaustions() > 0, "flash outruns 4 buffers");
        assert_eq!(pool.in_use(), 0, "all buffers returned");
        cluster.page_store().assert_quiescent();
    }
}
