//! The Table 3 power model and the RAM-cloud cost comparison.
//!
//! Paper Table 3: VC707 30 W, two flash boards 10 W, Xeon server 200 W —
//! 240 W per node; "BlueDBM adds less than 20% of power consumption to
//! the system". The abstract's larger claim — a rack-size BlueDBM is "an
//! order of magnitude cheaper and less power hungry than a cloud based
//! system with enough DRAM to accommodate 10TB–20TB of data" — is
//! reproduced by [`PowerModel::ramcloud_watts`].

/// Component wattages (datasheet values, per the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    /// Xilinx VC707 development board.
    pub vc707_watts: f64,
    /// One custom flash board.
    pub flash_board_watts: f64,
    /// Flash boards per node.
    pub flash_boards: usize,
    /// Host Xeon server (24 cores, 50 GB DRAM).
    pub server_watts: f64,
    /// A RAM-cloud server: a denser box (e.g. 256 GB DRAM) drawing more
    /// power per node.
    pub ramcloud_server_watts: f64,
    /// DRAM per RAM-cloud server, bytes.
    pub ramcloud_dram_bytes: u64,
    /// Flash per BlueDBM node, bytes (two 512 GB cards).
    pub node_flash_bytes: u64,
}

impl PowerModel {
    /// Paper Table 3 values.
    pub fn paper() -> Self {
        PowerModel {
            vc707_watts: 30.0,
            flash_board_watts: 5.0,
            flash_boards: 2,
            server_watts: 200.0,
            ramcloud_server_watts: 300.0,
            ramcloud_dram_bytes: 256 << 30,
            node_flash_bytes: 1 << 40,
        }
    }

    /// Watts added by the BlueDBM storage device (FPGA + flash boards).
    pub fn device_watts(&self) -> f64 {
        self.vc707_watts + self.flash_board_watts * self.flash_boards as f64
    }

    /// Watts per full node (Table 3's 240 W row).
    pub fn node_watts(&self) -> f64 {
        self.device_watts() + self.server_watts
    }

    /// Fraction of node power added by the storage device (paper: "less
    /// than 20%").
    pub fn device_overhead_fraction(&self) -> f64 {
        self.device_watts() / self.node_watts()
    }

    /// Watts for a BlueDBM cluster holding `dataset_bytes`.
    pub fn bluedbm_watts(&self, dataset_bytes: u64) -> f64 {
        let nodes = dataset_bytes.div_ceil(self.node_flash_bytes);
        nodes as f64 * self.node_watts()
    }

    /// Watts for a RAM-cloud cluster holding `dataset_bytes` in DRAM.
    pub fn ramcloud_watts(&self, dataset_bytes: u64) -> f64 {
        let servers = dataset_bytes.div_ceil(self.ramcloud_dram_bytes);
        servers as f64 * self.ramcloud_server_watts
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_node_total() {
        let p = PowerModel::paper();
        assert_eq!(p.device_watts(), 40.0);
        assert_eq!(p.node_watts(), 240.0);
    }

    #[test]
    fn device_overhead_under_20_percent() {
        let p = PowerModel::paper();
        assert!(p.device_overhead_fraction() < 0.20);
    }

    #[test]
    fn twenty_tb_comparison_favors_bluedbm() {
        let p = PowerModel::paper();
        let dataset = 20u64 << 40; // 20 TB
        let blue = p.bluedbm_watts(dataset);
        let ram = p.ramcloud_watts(dataset);
        // 20 nodes x 240 W = 4.8 kW vs 80 servers x 300 W = 24 kW: 5x.
        assert_eq!(blue, 4_800.0);
        assert_eq!(ram, 24_000.0);
        assert!(ram / blue >= 5.0);
    }

    #[test]
    fn rounding_up_partial_nodes() {
        let p = PowerModel::paper();
        assert_eq!(p.bluedbm_watts(1), p.node_watts());
        assert_eq!(p.bluedbm_watts((1 << 40) + 1), 2.0 * p.node_watts());
    }
}
