//! The per-node garbage-collection agent: flash lifecycle as simulated
//! traffic.
//!
//! BlueDBM's flash is raw, so GC lives in the driver (paper Section 4).
//! In the event-driven simulation that driver policy is the per-card
//! mirror [`bluedbm_ftl::Ftl`] owned by [`crate::cluster::Cluster`]: on
//! every host write it replays the allocation/GC/wear-leveling decision
//! via [`bluedbm_ftl::Ftl::step_write`] and, when a plane fell to its
//! free-block watermark, hands the resulting [`GcRound`]s to this
//! component. The [`GcAgent`] then executes them as **ordinary
//! simulated commands** — a [`CtrlCmd::Read`] and [`CtrlCmd::Write`]
//! per valid-page relocation, a [`CtrlCmd::Erase`] per victim block —
//! through the same tag-renaming splitter foreground traffic uses, so
//! migration and erase time occupy the card's buses and chips and GC
//! pressure lands on tenant tail latency.
//!
//! Rounds execute strictly in policy order, one command in flight at a
//! time (relocation must read a page before it can program the copy,
//! and the erase must wait for every relocation), which also makes the
//! [`TraceCat::Gc`] records it emits arbitration-independent: victim
//! choice, move order and erase order are pure functions of the logical
//! op sequence, so the category participates in the stable cross-engine
//! trace digest.

use std::collections::VecDeque;

use bluedbm_flash::controller::{CtrlCmd, CtrlResp, Tag};
use bluedbm_flash::geometry::{FlashGeometry, Ppa};
use bluedbm_ftl::GcRound;
use bluedbm_sim::engine::{Component, ComponentId, Ctx};
use bluedbm_sim::time::SimTime;
use bluedbm_sim::{MetricsNode, TraceCat};

use crate::msg::Msg;

/// Wake-up message for a node's [`GcAgent`]: the cluster queued at
/// least one [`GcJob`] and wants it executed now.
#[derive(Clone, Copy, Debug, Default)]
pub struct GcKick;

/// One logical-space lifecycle operation, as recorded by the cluster's
/// conformance log (`config.gc.log`). Replaying the per-card log
/// op-for-op against a fresh offline [`bluedbm_ftl::Ftl`] must
/// reproduce the mirror's mapping table, victim sequence, erase counts
/// and write amplification exactly — that replay is the GC conformance
/// suite's oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleOp {
    /// A host write of logical page `lba`.
    Write(u64),
    /// A host trim (free) of logical page `lba`.
    Trim(u64),
}

/// One watermark-triggered collection: the rounds one mirror-FTL write
/// reported, to run against one card.
#[derive(Clone, Debug)]
pub struct GcJob {
    /// Card index within the node.
    pub card: u8,
    /// The rounds, in policy order.
    pub rounds: Vec<GcRound>,
}

/// Cluster-wide flash lifecycle accounting, aggregated over every
/// card's mirror FTL by [`crate::cluster::Cluster::gc_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GcStats {
    /// Pages written by hosts (foreground programs).
    pub host_writes: u64,
    /// Pages programmed by GC relocation (background programs).
    pub gc_writes: u64,
    /// Victim blocks erased.
    pub erases: u64,
    /// Valid pages relocated.
    pub relocated: u64,
    /// Largest erase-count spread (`max_wear - min_wear`) of any card.
    pub wear_spread: u64,
}

impl GcStats {
    /// Write amplification: flash programs per host program (1.0 before
    /// any host write).
    pub fn wa(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            (self.host_writes + self.gc_writes) as f64 / self.host_writes as f64
        }
    }

    /// Write every counter (and the derived WA ratio) into a metrics
    /// `node` (see [`bluedbm_sim::MetricsRegistry`]).
    pub fn fill_metrics(&self, node: &mut MetricsNode) {
        node.set("host_writes", self.host_writes);
        node.set("gc_writes", self.gc_writes);
        node.set("erases", self.erases);
        node.set("relocated", self.relocated);
        node.set("wear_spread", self.wear_spread);
        node.set("wa", self.wa());
    }
}

/// Cumulative per-node GC agent statistics: what this node's agent has
/// executed as simulated traffic (functional preload-time rounds are
/// not counted here — see the mirror's own stats for policy totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcAgentStats {
    /// Jobs (watermark triggers) executed.
    pub jobs: u64,
    /// Collection rounds completed.
    pub rounds: u64,
    /// Valid-page relocations performed (read + program pairs).
    pub moves: u64,
    /// Block erases issued.
    pub erases: u64,
}

impl GcAgentStats {
    /// Write every counter into a metrics `node`.
    pub fn fill_metrics(&self, node: &mut MetricsNode) {
        node.set("jobs", self.jobs);
        node.set("rounds", self.rounds);
        node.set("moves", self.moves);
        node.set("erases", self.erases);
    }
}

/// The in-progress job: a cursor over its rounds and moves. At most one
/// flash command is outstanding at a time; which completion arrives
/// next is implied by the cursor (move `mv` pending read → pending
/// write → next move, then the round's erase).
#[derive(Clone, Debug)]
struct Running {
    card: u8,
    rounds: Vec<GcRound>,
    round: usize,
    mv: usize,
    /// Rounds whose `victim` trace instant has been emitted.
    announced: usize,
}

/// Per-node DES component executing mirror-FTL GC rounds on the node's
/// flash cards. See the [module docs](self).
#[derive(Clone)]
pub struct GcAgent {
    node: u32,
    geometry: FlashGeometry,
    /// Per-card flash splitter (shared with foreground traffic).
    cards: Vec<ComponentId>,
    jobs: VecDeque<GcJob>,
    run: Option<Running>,
    next_tag: u16,
    stats: GcAgentStats,
}

impl GcAgent {
    /// An agent for node `node` driving one splitter per card.
    pub fn new(node: u32, cards: Vec<ComponentId>, geometry: FlashGeometry) -> Self {
        GcAgent {
            node,
            geometry,
            cards,
            jobs: VecDeque::new(),
            run: None,
            next_tag: 0,
            stats: GcAgentStats::default(),
        }
    }

    /// Queue a job; the driver follows up with a [`GcKick`] to start it.
    pub fn push_job(&mut self, card: u8, rounds: Vec<GcRound>) {
        assert!((card as usize) < self.cards.len(), "job for a card this node lacks");
        self.jobs.push_back(GcJob { card, rounds });
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &GcAgentStats {
        &self.stats
    }

    /// `true` when no job is running or queued.
    pub fn idle(&self) -> bool {
        self.run.is_none() && self.jobs.is_empty()
    }

    fn alloc_tag(&mut self) -> Tag {
        let tag = Tag(self.next_tag);
        self.next_tag = self.next_tag.wrapping_add(1);
        tag
    }

    /// `(card << 32) | linear page` — the policy-pure payload word the
    /// `Gc` trace records carry (stable across engines).
    fn addr_word(&self, card: u8, ppa: Ppa) -> u64 {
        (u64::from(card) << 32) | self.geometry.linear_of(ppa) as u64
    }

    /// Issue the next command of the current job, or pull the next job
    /// when the current one is finished.
    fn advance(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            let Some(run) = &self.run else { return };
            if run.round == run.rounds.len() {
                self.run = None;
                match self.jobs.pop_front() {
                    Some(job) => {
                        self.stats.jobs += 1;
                        self.run = Some(Running {
                            card: job.card,
                            rounds: job.rounds,
                            round: 0,
                            mv: 0,
                            announced: 0,
                        });
                        continue;
                    }
                    None => return,
                }
            }
            let card = run.card;
            let round = &run.rounds[run.round];
            if run.announced == run.round {
                let a = self.addr_word(card, round.victim);
                let b = u64::from(round.wear_leveling);
                ctx.trace().instant(TraceCat::Gc, "victim", self.node, a, b);
                self.run.as_mut().expect("job still running").announced += 1;
                continue;
            }
            let splitter = self.cards[card as usize];
            // Copy the target out before alloc_tag's mutable borrow.
            let target = if run.mv < round.moves.len() {
                Ok(round.moves[run.mv].0)
            } else {
                Err(round.victim)
            };
            let tag = self.alloc_tag();
            let reply_to = ctx.self_id();
            let cmd = match target {
                Ok(src) => CtrlCmd::Read { tag, ppa: src, reply_to },
                Err(victim) => CtrlCmd::Erase { tag, ppa: victim, reply_to },
            };
            ctx.send(splitter, SimTime::ZERO, cmd);
            return;
        }
    }

    fn on_resp(&mut self, ctx: &mut Ctx<'_, Msg>, resp: CtrlResp) {
        let run = self.run.as_ref().expect("completion with no job running");
        let card = run.card;
        let round = &run.rounds[run.round];
        match resp {
            CtrlResp::ReadDone { result, .. } => {
                // The mirror only relocates valid (mapped) pages, and
                // every mapped page was programmed by a simulated or
                // preloaded write — a failed read means the DES array
                // diverged from the mirror's shadow.
                let read = result.expect("GC relocation read failed: DES array diverged from mirror FTL");
                let (_src, dst) = round.moves[run.mv];
                let cmd = CtrlCmd::Write {
                    tag: self.alloc_tag(),
                    ppa: dst,
                    data: read.page,
                    reply_to: ctx.self_id(),
                };
                let splitter = self.cards[card as usize];
                ctx.send(splitter, SimTime::ZERO, cmd);
            }
            CtrlResp::WriteDone { result, .. } => {
                result.expect("GC relocation program failed: DES array diverged from mirror FTL");
                let (src, dst) = round.moves[run.mv];
                let a = self.addr_word(card, src);
                let b = self.geometry.linear_of(dst) as u64;
                ctx.trace().instant(TraceCat::Gc, "move", self.node, a, b);
                self.stats.moves += 1;
                self.run.as_mut().expect("job still running").mv += 1;
                self.advance(ctx);
            }
            CtrlResp::EraseDone { result, .. } => {
                result.expect("GC erase failed: DES array diverged from mirror FTL");
                let a = self.addr_word(card, round.victim);
                let b = round.moves.len() as u64;
                ctx.trace().instant(TraceCat::Gc, "erase", self.node, a, b);
                self.stats.erases += 1;
                self.stats.rounds += 1;
                let run = self.run.as_mut().expect("job still running");
                run.round += 1;
                run.mv = 0;
                self.advance(ctx);
            }
        }
    }
}

impl Component<Msg> for GcAgent {
    bluedbm_sim::clone_snapshot!();

    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        match msg {
            Msg::GcKick(_) => {
                if self.run.is_none() {
                    if let Some(job) = self.jobs.pop_front() {
                        self.stats.jobs += 1;
                        self.run = Some(Running {
                            card: job.card,
                            rounds: job.rounds,
                            round: 0,
                            mv: 0,
                            announced: 0,
                        });
                        self.advance(ctx);
                    }
                }
            }
            Msg::FlashResp(resp) => self.on_resp(ctx, resp),
            other => panic!("GC agent got an unexpected message: {other:?}"),
        }
    }
}
