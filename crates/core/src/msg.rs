//! The workspace-wide concrete message type.
//!
//! [`Msg`] composes every subsystem protocol a full BlueDBM node speaks —
//! flash commands, network packets (whose bodies are the remote-operation
//! types in [`NetBody`]), PCIe transfers carrying page data, and the
//! node-agent operations — into one enum that instantiates the typed
//! [`bluedbm_sim::Simulator`]. Payloads travel inline end to end: a page
//! read off a simulated flash chip moves through the controller, the
//! splitter, the network and the PCIe link without a single heap-boxed
//! message or downcast.
//!
//! To add a new message kind, see the "Adding a new message variant"
//! checklist in the `bluedbm_sim` crate docs.

use bluedbm_flash::controller::CtrlCmd;
use bluedbm_flash::msg::{FlashMsg, FlashProtocol};
use bluedbm_host::msg::{HostMsg, HostProtocol};
use bluedbm_host::pcie::PcieXfer;
use bluedbm_net::msg::{NetMsg, NetProtocol};
use bluedbm_net::router::NetSend;

use crate::node::{AgentOp, DramServed, RemoteReq, RemoteResp};

/// Functional payload of a storage-network packet in the full system.
#[derive(Debug)]
pub enum NetBody {
    /// A remote flash/DRAM request travelling to the owning node.
    Req(RemoteReq),
    /// The response travelling back to the requesting node.
    Resp(RemoteResp),
}

/// Page data carried across the PCIe link.
pub type PageData = Vec<u8>;

/// The concrete message type of full-system simulations.
#[derive(Debug)]
pub enum Msg {
    /// Flash-stack traffic (commands, completions, server requests).
    Flash(FlashMsg),
    /// Storage-network traffic with [`NetBody`] packet bodies.
    Net(NetMsg<NetBody>),
    /// PCIe/DMA traffic carrying page data.
    Host(HostMsg<PageData>),
    /// Driver operation addressed to a node agent.
    Op(AgentOp),
    /// Node-agent internal: delayed DRAM-buffer reply.
    Dram(DramServed),
}

impl From<FlashMsg> for Msg {
    #[inline]
    fn from(m: FlashMsg) -> Self {
        Msg::Flash(m)
    }
}

impl From<NetMsg<NetBody>> for Msg {
    #[inline]
    fn from(m: NetMsg<NetBody>) -> Self {
        Msg::Net(m)
    }
}

impl From<HostMsg<PageData>> for Msg {
    #[inline]
    fn from(m: HostMsg<PageData>) -> Self {
        Msg::Host(m)
    }
}

impl From<AgentOp> for Msg {
    #[inline]
    fn from(m: AgentOp) -> Self {
        Msg::Op(m)
    }
}

impl From<DramServed> for Msg {
    #[inline]
    fn from(m: DramServed) -> Self {
        Msg::Dram(m)
    }
}

impl From<CtrlCmd> for Msg {
    #[inline]
    fn from(m: CtrlCmd) -> Self {
        Msg::Flash(FlashMsg::Cmd(m))
    }
}

impl From<NetSend<NetBody>> for Msg {
    #[inline]
    fn from(m: NetSend<NetBody>) -> Self {
        Msg::Net(NetMsg::Send(m))
    }
}

impl From<PcieXfer<PageData>> for Msg {
    #[inline]
    fn from(m: PcieXfer<PageData>) -> Self {
        Msg::Host(HostMsg::Xfer(m))
    }
}

impl FlashProtocol for Msg {
    #[inline]
    fn into_flash(self) -> FlashMsg {
        match self {
            Msg::Flash(m) => m,
            other => panic!("flash component received a non-flash message: {other:?}"),
        }
    }
}

impl NetProtocol for Msg {
    type Body = NetBody;

    #[inline]
    fn into_net(self) -> NetMsg<NetBody> {
        match self {
            Msg::Net(m) => m,
            other => panic!("network component received a non-network message: {other:?}"),
        }
    }
}

impl HostProtocol for Msg {
    type Body = PageData;

    #[inline]
    fn into_host(self) -> HostMsg<PageData> {
        match self {
            Msg::Host(m) => m,
            other => panic!("host component received a non-host message: {other:?}"),
        }
    }
}
