//! The workspace-wide concrete message type.
//!
//! [`Msg`] composes every subsystem protocol a full BlueDBM node speaks —
//! flash commands, network packets (whose bodies are the remote-operation
//! types in [`NetBody`]), PCIe transfers, and the node-agent operations —
//! into one enum that instantiates the typed [`bluedbm_sim::Simulator`].
//!
//! ## Handle-based payloads
//!
//! Control fields travel inline; **bulk page payloads travel by
//! handle**: page contents live in the simulator-owned
//! [`bluedbm_sim::PageStore`] and messages carry an 8-byte [`PageRef`].
//! A page read off a simulated flash chip moves through the controller,
//! the splitter, the network and the PCIe link as one handle copy per
//! hop; the bytes are written once by the producer (the flash array) and
//! copied out once by the consumer. Ownership rule: every [`PageRef`]
//! inside a message has exactly one consumer, which must `free` (or
//! `take`) the page — simulations audit this with
//! `PageStore::assert_quiescent` after a run.
//!
//! ## The 64-byte budget
//!
//! `size_of::<Msg>() <= 64` is asserted at compile time: one message
//! fits a cache line, so fast-queue entries stay compact and train
//! dispatch is never payload-transport-bound. Three layout decisions
//! keep it true:
//!
//! * [`Msg`] is **flat** — one discriminant level. Each nested enum
//!   wrapper costs 8 bytes of tag + padding, so the subsystem enums
//!   (`FlashMsg`, `NetMsg`) are split into their variants here and
//!   reassembled (a plain move) in the protocol-trait impls below;
//! * bulk payloads ride the page store as [`PageRef`]s (above);
//! * the two verbose network objects are **interned in the
//!   simulator-owned control-block pool** where they are born:
//!   `NetMsg::Wire` (per-hop routing metadata; interned at injection,
//!   the 8-byte [`WireRef`] moves hop to hop, the delivering router
//!   takes it out) and [`NetBody::Req`] (interned by the requesting
//!   agent, taken by the owning node's agent). Pool slots recycle, so
//!   the remote-request control plane allocates nothing in steady state
//!   — the per-page data plane, [`NetBody::Resp`], stays inline.
//!
//! ## Crossing shard boundaries
//!
//! Under the sharded runtime ([`bluedbm_sim::ShardedSimulator`]) pages
//! and pooled control blocks live in per-shard store segments, so a
//! message leaving its shard must carry its payloads along: the
//! [`ShardMessage`] impl below detaches them into a [`Luggage`] crate on
//! the way out and re-installs them (rewriting the handles in place) on
//! the way in. Only the controller-internal `FlashFinish` and the PCIe
//! link's internal `Finish` cannot cross — they are self-sends by
//! contract, and the impl panics loudly if a partition ever splits them
//! from their component.
//!
//! To add a new message kind, see the "Adding a new message variant"
//! checklist in the `bluedbm_sim` crate docs.

use bluedbm_flash::controller::{CtrlCmd, CtrlResp, Finish};
use bluedbm_flash::msg::{FlashMsg, FlashProtocol};
use bluedbm_flash::server::{ServerReq, ServerResp};
use bluedbm_host::msg::{HostMsg, HostProtocol};
use bluedbm_host::pcie::PcieXfer;
use bluedbm_net::msg::{NetMsg, NetProtocol};
use bluedbm_net::router::{CreditReturn, E2eAck, NetRecv, NetSend, Wire, WireRef};
use bluedbm_sim::pool::PoolRef;
use bluedbm_sim::shard::ShardMessage;
use bluedbm_sim::{PageRef, PageStore, PoolStore};

use crate::gc::GcKick;
use crate::node::{AgentOp, DramServed, RemoteReq, RemoteResp};
use crate::scheduler::{SchedDone, SchedFree, SchedSubmit};

/// Functional payload of a storage-network packet in the full system.
#[derive(Clone, Debug)]
pub enum NetBody {
    /// A remote flash/DRAM request travelling to the owning node, by
    /// pool handle (interned by the requester, taken by the owner — the
    /// control plane allocates nothing in steady state).
    Req(PoolRef<RemoteReq>),
    /// The response travelling back to the requesting node — page data
    /// by handle, inline.
    Resp(RemoteResp),
}

/// The concrete message type of full-system simulations. Flat on
/// purpose — see the module docs for the layout rules.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Raw flash-controller command.
    FlashCmd(CtrlCmd),
    /// Flash-controller completion.
    FlashResp(CtrlResp),
    /// Controller-internal delayed completion (self-send only).
    FlashFinish(Finish),
    /// Flash Server request.
    ServerReq(ServerReq),
    /// Flash Server in-order response.
    ServerResp(ServerResp),
    /// Local sender asks its router to inject a packet.
    NetSend(NetSend<NetBody>),
    /// Router delivers a packet to an endpoint consumer.
    NetRecv(NetRecv<NetBody>),
    /// Router-to-router transfer, by pool handle.
    NetWire(WireRef<NetBody>),
    /// Link-layer credit return.
    NetCredit(CreditReturn),
    /// End-to-end flow-control acknowledgement.
    NetAck(E2eAck),
    /// PCIe/DMA traffic carrying page handles.
    Host(HostMsg<PageRef>),
    /// Driver operation addressed to a node agent.
    Op(AgentOp),
    /// Node-agent internal: delayed DRAM-buffer reply.
    Dram(DramServed),
    /// Job submission to a node's accelerator scheduler (Section 4).
    SchedSubmit(SchedSubmit),
    /// Scheduler-internal delayed unit release (self-send only).
    SchedFree(SchedFree),
    /// Accelerator job completion (scheduler → requester).
    SchedDone(SchedDone),
    /// Wake a node's GC agent: a mirror FTL queued lifecycle rounds.
    GcKick(GcKick),
}

/// The fast-path size budget: one [`Msg`] must fit a 64-byte cache
/// line. Adding a variant (or growing one) past the budget fails the
/// build here — carry bulk payloads by [`PageRef`] instead.
const _: () = assert!(
    std::mem::size_of::<Msg>() <= 64,
    "Msg exceeds the 64-byte fast-path budget; carry bulk payloads by PageRef"
);

impl From<FlashMsg> for Msg {
    #[inline]
    fn from(m: FlashMsg) -> Self {
        match m {
            FlashMsg::Cmd(c) => Msg::FlashCmd(c),
            FlashMsg::Resp(r) => Msg::FlashResp(r),
            FlashMsg::Finish(f) => Msg::FlashFinish(f),
            FlashMsg::ServerReq(r) => Msg::ServerReq(r),
            FlashMsg::ServerResp(r) => Msg::ServerResp(r),
        }
    }
}

impl From<NetMsg<NetBody>> for Msg {
    #[inline]
    fn from(m: NetMsg<NetBody>) -> Self {
        match m {
            NetMsg::Send(s) => Msg::NetSend(s),
            NetMsg::Recv(r) => Msg::NetRecv(r),
            NetMsg::Wire(w) => Msg::NetWire(w),
            NetMsg::Credit(c) => Msg::NetCredit(c),
            NetMsg::Ack(a) => Msg::NetAck(a),
        }
    }
}

impl From<HostMsg<PageRef>> for Msg {
    #[inline]
    fn from(m: HostMsg<PageRef>) -> Self {
        Msg::Host(m)
    }
}

impl From<AgentOp> for Msg {
    #[inline]
    fn from(m: AgentOp) -> Self {
        Msg::Op(m)
    }
}

impl From<DramServed> for Msg {
    #[inline]
    fn from(m: DramServed) -> Self {
        Msg::Dram(m)
    }
}

impl From<SchedSubmit> for Msg {
    #[inline]
    fn from(m: SchedSubmit) -> Self {
        Msg::SchedSubmit(m)
    }
}

impl From<SchedFree> for Msg {
    #[inline]
    fn from(m: SchedFree) -> Self {
        Msg::SchedFree(m)
    }
}

impl From<SchedDone> for Msg {
    #[inline]
    fn from(m: SchedDone) -> Self {
        Msg::SchedDone(m)
    }
}

impl From<GcKick> for Msg {
    #[inline]
    fn from(m: GcKick) -> Self {
        Msg::GcKick(m)
    }
}

impl From<CtrlCmd> for Msg {
    #[inline]
    fn from(m: CtrlCmd) -> Self {
        Msg::FlashCmd(m)
    }
}

impl From<NetSend<NetBody>> for Msg {
    #[inline]
    fn from(m: NetSend<NetBody>) -> Self {
        Msg::NetSend(m)
    }
}

impl From<PcieXfer<PageRef>> for Msg {
    #[inline]
    fn from(m: PcieXfer<PageRef>) -> Self {
        Msg::Host(HostMsg::Xfer(m))
    }
}

impl FlashProtocol for Msg {
    #[inline]
    fn into_flash(self) -> FlashMsg {
        match self {
            Msg::FlashCmd(c) => FlashMsg::Cmd(c),
            Msg::FlashResp(r) => FlashMsg::Resp(r),
            Msg::FlashFinish(f) => FlashMsg::Finish(f),
            Msg::ServerReq(r) => FlashMsg::ServerReq(r),
            Msg::ServerResp(r) => FlashMsg::ServerResp(r),
            other => panic!("flash component received a non-flash message: {other:?}"),
        }
    }
}

impl NetProtocol for Msg {
    type Body = NetBody;

    #[inline]
    fn into_net(self) -> NetMsg<NetBody> {
        match self {
            Msg::NetSend(s) => NetMsg::Send(s),
            Msg::NetRecv(r) => NetMsg::Recv(r),
            Msg::NetWire(w) => NetMsg::Wire(w),
            Msg::NetCredit(c) => NetMsg::Credit(c),
            Msg::NetAck(a) => NetMsg::Ack(a),
            other => panic!("network component received a non-network message: {other:?}"),
        }
    }
}

impl HostProtocol for Msg {
    type Body = PageRef;

    #[inline]
    fn into_host(self) -> HostMsg<PageRef> {
        match self {
            Msg::Host(m) => m,
            other => panic!("host component received a non-host message: {other:?}"),
        }
    }
}

/// Owned form of a [`Msg`]'s store-backed payloads while the message is
/// in transit between shards (see the module docs). Built by
/// [`ShardMessage::detach`], consumed by [`ShardMessage::attach`].
#[derive(Debug)]
pub enum Luggage {
    /// No store-backed payload.
    None,
    /// One page's bytes (the copy the real network link would perform).
    Page(Vec<u8>),
    /// A remote request taken out of the sending shard's pool.
    Req(Box<RemoteReq>),
    /// A wire record taken out of the sending shard's pool, plus the
    /// luggage of the packet body riding inside it.
    Wire(Box<Wire<NetBody>>, Box<Luggage>),
}

/// Detach the store-backed payloads of one network body.
fn detach_body(body: &mut NetBody, pages: &mut PageStore, pools: &mut PoolStore) -> Luggage {
    match body {
        NetBody::Req(req) => Luggage::Req(Box::new(pools.take(*req))),
        NetBody::Resp(resp) => match &resp.data {
            Ok(page) => Luggage::Page(pages.take(*page)),
            Err(_) => Luggage::None,
        },
    }
}

/// Re-install a network body's payloads into the receiving shard's
/// stores, rewriting the handles in place.
fn attach_body(body: &mut NetBody, luggage: Luggage, pages: &mut PageStore, pools: &mut PoolStore) {
    match (body, luggage) {
        (NetBody::Req(req), Luggage::Req(carried)) => *req = pools.intern(*carried),
        (NetBody::Resp(resp), Luggage::Page(bytes)) => {
            resp.data = Ok(pages.alloc_from(&bytes));
        }
        (NetBody::Resp(resp), Luggage::None) => {
            debug_assert!(resp.data.is_err(), "a successful response carries a page");
        }
        (body, luggage) => panic!("luggage {luggage:?} does not fit body {body:?}"),
    }
}

impl ShardMessage for Msg {
    type Detached = Luggage;

    fn detach(&mut self, pages: &mut PageStore, pools: &mut PoolStore) -> Luggage {
        match self {
            // The inter-node traffic that actually crosses shards under
            // the cluster partition (router/links are node-pinned).
            Msg::NetWire(wire) => {
                let mut wire = Box::new(pools.take(*wire));
                let inner = detach_body(wire.body_mut(), pages, pools);
                Luggage::Wire(wire, Box::new(inner))
            }
            Msg::NetCredit(_) | Msg::NetAck(_) => Luggage::None,
            // Node-internal in the cluster wiring, but supported so
            // arbitrary partitions stay correct.
            Msg::NetSend(send) => detach_body(&mut send.body, pages, pools),
            Msg::NetRecv(recv) => detach_body(&mut recv.body, pages, pools),
            Msg::FlashCmd(CtrlCmd::Write { data, .. }) => Luggage::Page(pages.take(*data)),
            Msg::FlashCmd(_) => Luggage::None,
            Msg::FlashResp(CtrlResp::ReadDone { result: Ok(read), .. }) => {
                Luggage::Page(pages.take(read.page))
            }
            Msg::FlashResp(_) => Luggage::None,
            Msg::ServerReq(_) => Luggage::None,
            Msg::ServerResp(resp) => match &resp.result {
                Ok(page) => Luggage::Page(pages.take(*page)),
                Err(_) => Luggage::None,
            },
            Msg::Host(HostMsg::Xfer(xfer)) => Luggage::Page(pages.take(xfer.body)),
            Msg::Host(HostMsg::Done(done)) => Luggage::Page(pages.take(done.body)),
            Msg::Op(AgentOp::WriteFlash { data, .. }) => Luggage::Page(pages.take(*data)),
            Msg::Op(_) => Luggage::None,
            Msg::Dram(served) => match &served.data {
                Ok(page) => Luggage::Page(pages.take(*page)),
                Err(_) => Luggage::None,
            },
            // Scheduler traffic is handle-free (and node-internal under
            // the cluster partition, but arbitrary partitions stay
            // correct).
            Msg::SchedSubmit(_) | Msg::SchedDone(_) => Luggage::None,
            // Driver → node-pinned GC agent; carries no payload.
            Msg::GcKick(_) => Luggage::None,
            // Self-sends by contract: a partition can never split a
            // component from itself, so these crossing a shard boundary
            // is a wiring bug.
            Msg::SchedFree(_) => {
                panic!("scheduler-internal SchedFree cannot cross shards")
            }
            Msg::FlashFinish(_) => {
                panic!("controller-internal Finish cannot cross shards")
            }
            Msg::Host(HostMsg::Finish(_)) => {
                panic!("PCIe-link-internal Finish cannot cross shards")
            }
        }
    }

    fn attach(&mut self, luggage: Luggage, pages: &mut PageStore, pools: &mut PoolStore) {
        match (self, luggage) {
            (Msg::NetWire(wire), Luggage::Wire(mut carried, inner)) => {
                attach_body(carried.body_mut(), *inner, pages, pools);
                *wire = pools.intern(*carried);
            }
            (Msg::NetSend(send), luggage) => attach_body(&mut send.body, luggage, pages, pools),
            (Msg::NetRecv(recv), luggage) => attach_body(&mut recv.body, luggage, pages, pools),
            (Msg::FlashCmd(CtrlCmd::Write { data, .. }), Luggage::Page(bytes)) => {
                *data = pages.alloc_from(&bytes);
            }
            (Msg::FlashResp(CtrlResp::ReadDone { result: Ok(read), .. }), Luggage::Page(bytes)) => {
                read.page = pages.alloc_from(&bytes);
            }
            (Msg::ServerResp(resp), Luggage::Page(bytes)) => {
                resp.result = Ok(pages.alloc_from(&bytes));
            }
            (Msg::Host(HostMsg::Xfer(xfer)), Luggage::Page(bytes)) => {
                xfer.body = pages.alloc_from(&bytes);
            }
            (Msg::Host(HostMsg::Done(done)), Luggage::Page(bytes)) => {
                done.body = pages.alloc_from(&bytes);
            }
            (Msg::Op(AgentOp::WriteFlash { data, .. }), Luggage::Page(bytes)) => {
                *data = pages.alloc_from(&bytes);
            }
            (Msg::Dram(served), Luggage::Page(bytes)) => {
                served.data = Ok(pages.alloc_from(&bytes));
            }
            (_, Luggage::None) => {}
            (msg, luggage) => panic!("luggage {luggage:?} does not fit message {msg:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_round_trips_preserve_variants() {
        let cmd = CtrlCmd::Erase {
            tag: bluedbm_flash::Tag(3),
            ppa: bluedbm_flash::Ppa::new(0, 0, 0, 0),
            reply_to: {
                let mut sim = bluedbm_sim::Simulator::<Msg>::new();
                sim.reserve()
            },
        };
        let msg: Msg = FlashMsg::Cmd(cmd).into();
        assert!(matches!(msg, Msg::FlashCmd(_)));
        let back = msg.into_flash();
        assert!(matches!(back, FlashMsg::Cmd(CtrlCmd::Erase { .. })));
    }
}
