//! The workspace-wide concrete message type.
//!
//! [`Msg`] composes every subsystem protocol a full BlueDBM node speaks —
//! flash commands, network packets (whose bodies are the remote-operation
//! types in [`NetBody`]), PCIe transfers, and the node-agent operations —
//! into one enum that instantiates the typed [`bluedbm_sim::Simulator`].
//!
//! ## Handle-based payloads
//!
//! Control fields travel inline; **bulk page payloads travel by
//! handle**: page contents live in the simulator-owned
//! [`bluedbm_sim::PageStore`] and messages carry an 8-byte [`PageRef`].
//! A page read off a simulated flash chip moves through the controller,
//! the splitter, the network and the PCIe link as one handle copy per
//! hop; the bytes are written once by the producer (the flash array) and
//! copied out once by the consumer. Ownership rule: every [`PageRef`]
//! inside a message has exactly one consumer, which must `free` (or
//! `take`) the page — simulations audit this with
//! `PageStore::assert_quiescent` after a run.
//!
//! ## The 64-byte budget
//!
//! `size_of::<Msg>() <= 64` is asserted at compile time: one message
//! fits a cache line, so fast-queue entries stay compact and train
//! dispatch is never payload-transport-bound. Three layout decisions
//! keep it true:
//!
//! * [`Msg`] is **flat** — one discriminant level. Each nested enum
//!   wrapper costs 8 bytes of tag + padding, so the subsystem enums
//!   (`FlashMsg`, `NetMsg`) are split into their variants here and
//!   reassembled (a plain move) in the protocol-trait impls below;
//! * bulk payloads ride the page store as [`PageRef`]s (above);
//! * the two verbose network objects are boxed where they are born:
//!   `NetMsg::Wire` (per-hop routing metadata; the box is allocated at
//!   injection and reused across every hop) and [`NetBody::Req`] (one
//!   small control-plane allocation per remote request — the per-page
//!   data plane, [`NetBody::Resp`], stays inline).
//!
//! To add a new message kind, see the "Adding a new message variant"
//! checklist in the `bluedbm_sim` crate docs.

use bluedbm_flash::controller::{CtrlCmd, CtrlResp, Finish};
use bluedbm_flash::msg::{FlashMsg, FlashProtocol};
use bluedbm_flash::server::{ServerReq, ServerResp};
use bluedbm_host::msg::{HostMsg, HostProtocol};
use bluedbm_host::pcie::PcieXfer;
use bluedbm_net::msg::{NetMsg, NetProtocol};
use bluedbm_net::router::{CreditReturn, E2eAck, NetRecv, NetSend, Wire};
use bluedbm_sim::PageRef;

use crate::node::{AgentOp, DramServed, RemoteReq, RemoteResp};

/// Functional payload of a storage-network packet in the full system.
#[derive(Debug)]
pub enum NetBody {
    /// A remote flash/DRAM request travelling to the owning node (boxed:
    /// control-plane, one allocation per remote request).
    Req(Box<RemoteReq>),
    /// The response travelling back to the requesting node — page data
    /// by handle, inline.
    Resp(RemoteResp),
}

/// The concrete message type of full-system simulations. Flat on
/// purpose — see the module docs for the layout rules.
#[derive(Debug)]
pub enum Msg {
    /// Raw flash-controller command.
    FlashCmd(CtrlCmd),
    /// Flash-controller completion.
    FlashResp(CtrlResp),
    /// Controller-internal delayed completion (self-send only).
    FlashFinish(Finish),
    /// Flash Server request.
    ServerReq(ServerReq),
    /// Flash Server in-order response.
    ServerResp(ServerResp),
    /// Local sender asks its router to inject a packet.
    NetSend(NetSend<NetBody>),
    /// Router delivers a packet to an endpoint consumer.
    NetRecv(NetRecv<NetBody>),
    /// Router-to-router transfer.
    NetWire(Box<Wire<NetBody>>),
    /// Link-layer credit return.
    NetCredit(CreditReturn),
    /// End-to-end flow-control acknowledgement.
    NetAck(E2eAck),
    /// PCIe/DMA traffic carrying page handles.
    Host(HostMsg<PageRef>),
    /// Driver operation addressed to a node agent.
    Op(AgentOp),
    /// Node-agent internal: delayed DRAM-buffer reply.
    Dram(DramServed),
}

/// The fast-path size budget: one [`Msg`] must fit a 64-byte cache
/// line. Adding a variant (or growing one) past the budget fails the
/// build here — carry bulk payloads by [`PageRef`] instead.
const _: () = assert!(
    std::mem::size_of::<Msg>() <= 64,
    "Msg exceeds the 64-byte fast-path budget; carry bulk payloads by PageRef"
);

impl From<FlashMsg> for Msg {
    #[inline]
    fn from(m: FlashMsg) -> Self {
        match m {
            FlashMsg::Cmd(c) => Msg::FlashCmd(c),
            FlashMsg::Resp(r) => Msg::FlashResp(r),
            FlashMsg::Finish(f) => Msg::FlashFinish(f),
            FlashMsg::ServerReq(r) => Msg::ServerReq(r),
            FlashMsg::ServerResp(r) => Msg::ServerResp(r),
        }
    }
}

impl From<NetMsg<NetBody>> for Msg {
    #[inline]
    fn from(m: NetMsg<NetBody>) -> Self {
        match m {
            NetMsg::Send(s) => Msg::NetSend(s),
            NetMsg::Recv(r) => Msg::NetRecv(r),
            NetMsg::Wire(w) => Msg::NetWire(w),
            NetMsg::Credit(c) => Msg::NetCredit(c),
            NetMsg::Ack(a) => Msg::NetAck(a),
        }
    }
}

impl From<HostMsg<PageRef>> for Msg {
    #[inline]
    fn from(m: HostMsg<PageRef>) -> Self {
        Msg::Host(m)
    }
}

impl From<AgentOp> for Msg {
    #[inline]
    fn from(m: AgentOp) -> Self {
        Msg::Op(m)
    }
}

impl From<DramServed> for Msg {
    #[inline]
    fn from(m: DramServed) -> Self {
        Msg::Dram(m)
    }
}

impl From<CtrlCmd> for Msg {
    #[inline]
    fn from(m: CtrlCmd) -> Self {
        Msg::FlashCmd(m)
    }
}

impl From<NetSend<NetBody>> for Msg {
    #[inline]
    fn from(m: NetSend<NetBody>) -> Self {
        Msg::NetSend(m)
    }
}

impl From<PcieXfer<PageRef>> for Msg {
    #[inline]
    fn from(m: PcieXfer<PageRef>) -> Self {
        Msg::Host(HostMsg::Xfer(m))
    }
}

impl FlashProtocol for Msg {
    #[inline]
    fn into_flash(self) -> FlashMsg {
        match self {
            Msg::FlashCmd(c) => FlashMsg::Cmd(c),
            Msg::FlashResp(r) => FlashMsg::Resp(r),
            Msg::FlashFinish(f) => FlashMsg::Finish(f),
            Msg::ServerReq(r) => FlashMsg::ServerReq(r),
            Msg::ServerResp(r) => FlashMsg::ServerResp(r),
            other => panic!("flash component received a non-flash message: {other:?}"),
        }
    }
}

impl NetProtocol for Msg {
    type Body = NetBody;

    #[inline]
    fn into_net(self) -> NetMsg<NetBody> {
        match self {
            Msg::NetSend(s) => NetMsg::Send(s),
            Msg::NetRecv(r) => NetMsg::Recv(r),
            Msg::NetWire(w) => NetMsg::Wire(w),
            Msg::NetCredit(c) => NetMsg::Credit(c),
            Msg::NetAck(a) => NetMsg::Ack(a),
            other => panic!("network component received a non-network message: {other:?}"),
        }
    }
}

impl HostProtocol for Msg {
    type Body = PageRef;

    #[inline]
    fn into_host(self) -> HostMsg<PageRef> {
        match self {
            Msg::Host(m) => m,
            other => panic!("host component received a non-host message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_round_trips_preserve_variants() {
        let cmd = CtrlCmd::Erase {
            tag: bluedbm_flash::Tag(3),
            ppa: bluedbm_flash::Ppa::new(0, 0, 0, 0),
            reply_to: {
                let mut sim = bluedbm_sim::Simulator::<Msg>::new();
                sim.reserve()
            },
        };
        let msg: Msg = FlashMsg::Cmd(cmd).into();
        assert!(matches!(msg, Msg::FlashCmd(_)));
        let back = msg.into_flash();
        assert!(matches!(back, FlashMsg::Cmd(CtrlCmd::Erase { .. })));
    }
}
