//! The four remote-access paths of Figure 12, with latency breakdowns.
//!
//! * **ISP-F** — in-store processor reads remote flash over the
//!   integrated network. No host software anywhere on the path.
//! * **H-F** — host software reads remote flash over the integrated
//!   network: adds the local software overhead and the PCIe crossing.
//! * **H-RH-F** — host software asks the *remote host* to read its
//!   flash: pays software overhead on both ends ("the request is
//!   processed by the remote server, instead of the remote in-store
//!   processor").
//! * **H-D** — host software reads the remote node's DRAM buffer: the
//!   50 µs flash access is replaced by a DRAM access.
//!
//! The storage, transfer and network terms come out of the DES; the host
//! software overhead is the calibrated [`crate::config::HostModel`]
//! constant, applied per traversal of a host software stack (the paper
//! measured it as the "Software" bar of Figure 12).

use bluedbm_net::topology::NodeId;
use bluedbm_sim::time::SimTime;

use crate::cluster::{Cluster, ClusterError, GlobalPageAddr};
use crate::node::Consume;

/// Which Figure 12 experiment to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessPath {
    /// In-store processor to remote flash.
    IspF,
    /// Host to remote flash (integrated network).
    HF,
    /// Host to remote host to flash.
    HRhF,
    /// Host to remote DRAM.
    HD,
}

impl AccessPath {
    /// All four paths in the paper's presentation order.
    pub const ALL: [AccessPath; 4] = [
        AccessPath::IspF,
        AccessPath::HF,
        AccessPath::HRhF,
        AccessPath::HD,
    ];

    /// The paper's label for this path.
    pub fn label(self) -> &'static str {
        match self {
            AccessPath::IspF => "ISP-F",
            AccessPath::HF => "H-F",
            AccessPath::HRhF => "H-RH-F",
            AccessPath::HD => "H-D",
        }
    }

    /// Host software stacks traversed.
    fn software_layers(self) -> u64 {
        match self {
            AccessPath::IspF => 0,
            AccessPath::HF | AccessPath::HD => 1,
            AccessPath::HRhF => 2,
        }
    }
}

/// The four stacked components of Figure 12.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Host software overhead (driver, syscalls, request handling).
    pub software: SimTime,
    /// Storage access: command accept to first byte out of the medium.
    pub storage: SimTime,
    /// Data transfer: medium to destination buffer (bus, wire serialization,
    /// PCIe).
    pub transfer: SimTime,
    /// Network propagation (hop latency both ways).
    pub network: SimTime,
}

impl LatencyBreakdown {
    /// End-to-end latency.
    pub fn total(&self) -> SimTime {
        self.software + self.storage + self.transfer + self.network
    }
}

/// Run one Figure 12 measurement: `reader` fetches `addr` (which should
/// live on a *different* node for the remote paths) via `path`. For
/// [`AccessPath::HD`], the page must also have been staged with
/// [`Cluster::load_dram`] on `addr.node` under `dram_key`.
///
/// # Errors
///
/// Flash/DRAM failures from the underlying operations.
pub fn measure_path(
    cluster: &mut Cluster,
    reader: NodeId,
    addr: GlobalPageAddr,
    dram_key: u64,
    path: AccessPath,
) -> Result<LatencyBreakdown, ClusterError> {
    let config = *cluster.config();
    let consume = match path {
        AccessPath::IspF => Consume::Isp,
        _ => Consume::Host,
    };
    let measured = match path {
        AccessPath::HD => cluster.read_remote_dram(reader, addr.node, dram_key, consume)?,
        _ => cluster.read_page(reader, addr, consume)?,
    };

    // Decompose the DES total using the model's own constants: the
    // request hop + response hop network propagation, and the storage
    // access time, are known; everything else the DES added is transfer
    // (bus serialization, wire time, queueing, PCIe).
    let hops = hops_between(cluster, reader, addr.node);
    let network = config.net.hop_latency * (2 * hops);
    let storage = match path {
        AccessPath::HD => config.host.dram_latency,
        _ => config.flash.timing.read_cell + config.flash.timing.command_overhead,
    };
    let transfer = measured
        .latency
        .saturating_sub(network)
        .saturating_sub(storage);
    let software = config.host.sw_overhead * path.software_layers();
    Ok(LatencyBreakdown {
        software,
        storage,
        transfer,
        network,
    })
}

fn hops_between(cluster: &Cluster, a: NodeId, b: NodeId) -> u64 {
    if a == b {
        return 0;
    }
    // Reconstruct hop counts from router latency would be circular; the
    // cluster's topology is the source of truth.
    u64::from(cluster.hops(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn world() -> (Cluster, GlobalPageAddr) {
        let config = SystemConfig::scaled_down();
        let mut cluster = Cluster::ring(4, &config).unwrap();
        let page = vec![0x5Au8; config.flash.geometry.page_bytes];
        let addr = cluster.preload_page(NodeId(1), &page).unwrap();
        cluster.load_dram(NodeId(1), 7, &page);
        (cluster, addr)
    }

    #[test]
    fn figure12_ordering_holds() {
        let (mut cluster, addr) = world();
        let mut totals = Vec::new();
        for path in AccessPath::ALL {
            let b = measure_path(&mut cluster, NodeId(0), addr, 7, path).unwrap();
            totals.push((path, b.total()));
        }
        let get = |p: AccessPath| totals.iter().find(|(q, _)| *q == p).unwrap().1;
        // ISP-F is the fastest; H-RH-F the slowest flash path; H-D beats
        // H-F because DRAM replaces the 50us flash read.
        assert!(get(AccessPath::IspF) < get(AccessPath::HF));
        assert!(get(AccessPath::HF) < get(AccessPath::HRhF));
        assert!(get(AccessPath::HD) < get(AccessPath::HF));
        // And the network component is insignificant everywhere (paper:
        // "in all 4 cases, the network latency is insignificant").
        for path in AccessPath::ALL {
            let b = measure_path(&mut cluster, NodeId(0), addr, 7, path).unwrap();
            assert!(
                b.network.as_ps() * 10 < b.total().as_ps(),
                "{}: network {} of {}",
                path.label(),
                b.network,
                b.total()
            );
        }
    }

    #[test]
    fn isp_f_has_no_software_term() {
        let (mut cluster, addr) = world();
        let b = measure_path(&mut cluster, NodeId(0), addr, 7, AccessPath::IspF).unwrap();
        assert_eq!(b.software, SimTime::ZERO);
        assert!(b.storage >= SimTime::us(50));
    }

    #[test]
    fn hrhf_pays_double_software() {
        let (mut cluster, addr) = world();
        let hf = measure_path(&mut cluster, NodeId(0), addr, 7, AccessPath::HF).unwrap();
        let hrhf = measure_path(&mut cluster, NodeId(0), addr, 7, AccessPath::HRhF).unwrap();
        assert_eq!(hrhf.software, hf.software * 2);
    }

    #[test]
    fn labels_are_the_papers() {
        let labels: Vec<&str> = AccessPath::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["ISP-F", "H-F", "H-RH-F", "H-D"]);
    }
}
