//! Sharded parallel simulation: conservative (lookahead-windowed)
//! parallel DES over the typed kernel.
//!
//! A [`ShardedSimulator`] partitions an already-built component graph
//! across N **shards**. Each shard is a complete [`Simulator`] — its own
//! event heap, same-instant fast queue, [`PageStore`] segment and
//! [`PoolStore`] segment — and runs on its own worker thread (the
//! vendored `crossbeam` scoped threads). The shards' arenas are
//! index-aligned: every [`ComponentId`] exists in every shard, but the
//! component itself is installed in exactly one (the others hold the
//! vacant sentinel), so model code built for the sequential engine runs
//! unmodified.
//!
//! ## The conservative window protocol
//!
//! Cross-shard messages ride per-pair **mailboxes** (the `crossbeam`
//! channel shim) as `(time, seq, slot, msg)` entries. Correctness rests
//! on one property of the model: every direct message from a component
//! of shard `s` to a component of shard `r` takes at least the
//! **per-pair lookahead** `L[s][r]` to arrive, asserted at the send
//! site. For the BlueDBM cluster `L[s][r]` is the minimum network
//! latency between the two shards' nodes — one hop (0.48 µs) for
//! adjacent partitions, proportionally more for far-apart ones, which
//! is sound because every cross-node send (cable hop, credit return,
//! end-to-end ack) pays at least one hop of latency per hop of
//! distance. Execution proceeds in coordinator-free rounds:
//!
//! 1. every worker mails its outgoing parcels, its local queue frontier,
//!    and the earliest parcel time per destination to every other
//!    worker, then receives the same;
//! 2. from the exchanged frontiers every worker computes — identically,
//!    with no coordinator — every shard's exact **post-merge horizon**
//!    `h_s` (its queue plus everything just mailed to it). If every
//!    `h_s` is empty, the run is over;
//! 3. otherwise each worker merges its incoming mail and executes local
//!    events strictly below its **safe bound**, the Chandy–Misra–Bryant
//!    estimate over exact horizons generalized to the pair matrix.
//!    Nothing is in flight after the merge, so shard `t`'s earliest
//!    possible next event is the least fixed point of
//!
//!    ```text
//!    E_t = min(h_t, min_{r≠t}(E_r + L[r][t]))
//!    ```
//!
//!    (its own queued work, or the earliest chain of cross-shard
//!    reactions that could reach it — computed by Bellman–Ford style
//!    relaxation over the matrix, identically on every worker), and the
//!    bound is `min_{s≠me}(E_s + L[s][me])`. With a uniform matrix this
//!    collapses to the classic `eot_s = min(h_s + L, min_{r≠s}(h_r) +
//!    2L)` two-level estimate; with a distance-aware matrix, far shard
//!    pairs synchronize in proportionally larger steps, so a mailbox
//!    flush to a far partition batches the traffic of several adjacent
//!    lookahead windows into one exchange instead of flushing every
//!    round. On imbalanced phases the busy shard runs multiple
//!    lookaheads per round while idle shards just relay frontiers,
//!    instead of everyone lock-stepping through one-lookahead windows.
//!
//! The worker loop keeps its merge and horizon buffers (outboxes,
//! frontier tables, arrival staging) allocated across rounds, shares
//! one reference-counted copy of the per-destination minima with every
//! peer, and receives with a short spin-then-park backoff — barrier
//! mates usually answer within microseconds, so a brief `try_recv` spin
//! (with `yield_now` probes) skips the futex round trip of a full
//! blocking park on most rounds.
//!
//! ## Execution modes
//!
//! Where the rounds run is a scheduling decision ([`ExecMode`]),
//! independent of what they compute. The default, [`ExecMode::Auto`],
//! spawns one worker thread per shard only when the host has a core for
//! each; on an oversubscribed host the workers cannot overlap anyway,
//! so the threaded protocol's marginal cost is one futex park/unpark
//! context switch per worker per round — tens of microseconds times
//! tens of thousands of rounds. Auto instead runs the identical rounds
//! **cooperatively on the calling thread** (plain vectors for
//! mailboxes, shards taking turns), which removes that cost without
//! changing a single delivery: the merge order and safe bounds are the
//! same computation, so threaded and cooperative runs are bit-for-bit
//! identical and the suite pins that.
//!
//! ## Optimistic speculation ([`ExecMode::Optimistic`])
//!
//! The conservative rounds leave one latency on the table: between
//! mailing its exchange and receiving the peers' answers, a worker
//! sits in the spin/park window doing nothing. [`ExecMode::Optimistic`]
//! fills exactly that gap with **bounded-window speculation** in the
//! Breathing-Time-Buckets style:
//!
//! 1. at the bottom of every round the worker *stages* its next
//!    exchange — outbound parcels, queue frontier, per-destination
//!    minima — from fully committed state: bit-for-bit what the
//!    conservative worker would send;
//! 2. after mailing the staged exchange (and before receiving), it
//!    checkpoints its local state — event queues, touched components
//!    (via [`Component::snapshot`]), page and pool store segments —
//!    and speculatively executes local events up to
//!    `horizon = bound + W`, where `bound` is the previous round's
//!    safe bound and `W` the shard's current speculation window.
//!    Cross-shard sends produced under speculation are **buffered** in
//!    the (just-drained, therefore empty) outboxes and never mailed,
//!    so nothing speculative escapes the shard — which is the whole
//!    reason **no anti-messages can ever be needed**: a mis-speculation
//!    is undone entirely locally;
//! 3. at the exchange barrier the worker computes the true post-merge
//!    bound exactly as the conservative rounds do. If the speculated
//!    horizon is at or below that bound *and* no incoming arrival
//!    lands below the horizon, the speculation is exactly the
//!    execution a conservative round would have performed, so it
//!    **commits**: the arrival merge splices at sequence numbers
//!    reserved by the checkpoint (preserving the merge-before-window
//!    tie order), and the buffered sends ride the next staged exchange
//!    in the usual deterministic `(arrival, send time, source shard,
//!    source seq)` order. Otherwise every speculative effect **rolls
//!    back** — queues, components, stores, buffered sends — and the
//!    window re-executes conservatively.
//!
//! Because the staged exchange is always computed from committed
//! state, every round's exchange is identical to the conservative
//! protocol's, so round counts, bounds and merge orders agree across
//! all modes and committed results stay bit-identical — speculation
//! only moves work into the otherwise-idle barrier gap. `W` self-tunes
//! per shard (multiplicative decrease on a rollback, additive increase
//! on a fully committed window);
//! [`ShardedSimulator::set_speculation_window`] pins it, and `W = 0`
//! degenerates to the conservative protocol. Commit/rollback tallies
//! and the live windows are reported by
//! [`ShardedSimulator::shard_stats`]. The explicitly threaded modes
//! ([`ExecMode::Threads`], [`ExecMode::Optimistic`]) additionally pin
//! each worker to its own core on Linux ([`crate::affinity`]) so the
//! per-round spin windows keep their cache affinity.
//!
//! ## Determinism and observational equivalence
//!
//! Within a shard, events keep the sequential engine's total `(time,
//! local seq)` order. Incoming cross-shard events are merged at the
//! window barrier in the deterministic order `(arrival time, send time,
//! source shard, source seq)` — nothing depends on thread scheduling, so
//! a sharded run is **bit-for-bit repeatable**.
//!
//! Relative to the sequential engine, delivery order can differ in
//! exactly one place: several events delivered to the *same component*
//! at the *same simulated instant* from *different shards*. That is a
//! same-cycle arbitration race in the modelled hardware too; each engine
//! resolves it deterministically, but not necessarily identically (the
//! sequential engine uses its global send sequence, the merge uses send
//! time + source shard). The equivalence contract is therefore:
//!
//! * **uncontended timing is identical** — any message flow with no
//!   same-instant cross-shard rival delivers at exactly the sequential
//!   timestamps (serialized operations match down to the picosecond and
//!   the full latency histograms);
//! * **arbitration-independent observables are always identical** —
//!   event totals, every additive statistic (packets injected /
//!   forwarded / delivered, bytes, operation counts), per-operation
//!   results (data, errors), per-flow FIFO order, and store quiescence;
//! * under same-instant contention for a serial resource, *which*
//!   contender waits is an arbitration choice, so individual queueing
//!   delays may redistribute within the contended window (the sample
//!   counts still match; only the distribution's shape can shift by the
//!   serialization quantum).
//!
//! The cross-engine determinism suite (`tests/sharded.rs`) pins all
//! three down over random topologies × random partition maps.
//!
//! ## Payload handles cross shards by relocation
//!
//! Handles ([`crate::PageRef`], [`crate::PoolRef`]) are only meaningful
//! inside their owning shard's stores. When a message crosses shards,
//! the sending worker [`detach`](ShardMessage::detach)es every
//! store-backed payload into an owned crate that travels with the
//! mailbox entry, and the receiving worker
//! [`attach`](ShardMessage::attach)es it into its own stores, rewriting
//! the handles in place. For a flash page that is exactly the copy the
//! real network link would perform. Message types without store-backed
//! payloads opt out wholesale via [`PlainMessage`].

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bluedbm_trace::{TraceCat, TraceConfig, TraceKind, TracePart, WallLane, WallLaneProfile};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::affinity;

use crate::engine::{Component, ComponentId, Message, Outbound, ShardEnv, Simulator, UNOWNED};
use crate::pagestore::PageStore;
use crate::pool::PoolStore;
use crate::time::SimTime;

/// A message type that can cross shard boundaries: `Send`, plus the
/// ability to detach its store-backed payloads (pages, pooled control
/// blocks) on the way out of one shard and re-attach them into another
/// shard's stores.
///
/// Implementations must be exact inverses: after `attach(detach(m))` on
/// fresh stores, the message must describe the same payload bytes (via
/// new, valid handles). Messages that never carry handles should
/// implement the [`PlainMessage`] marker instead and inherit the no-op
/// impl.
pub trait ShardMessage: Message + Send {
    /// The owned form of the message's store-backed payloads while in
    /// transit between shards.
    type Detached: Send;

    /// Pull every store-backed payload out of the sending shard's
    /// stores. Handles left inside `self` are dangling until
    /// [`attach`](ShardMessage::attach) rewrites them.
    fn detach(&mut self, pages: &mut PageStore, pools: &mut PoolStore) -> Self::Detached;

    /// Install the detached payloads into the receiving shard's stores
    /// and rewrite the handles inside `self`.
    fn attach(&mut self, detached: Self::Detached, pages: &mut PageStore, pools: &mut PoolStore);
}

/// Marker for message types that carry no store-backed payloads; they
/// get the no-op [`ShardMessage`] impl for free.
pub trait PlainMessage: Message + Send {}

impl<M: PlainMessage> ShardMessage for M {
    type Detached = ();

    #[inline]
    fn detach(&mut self, _pages: &mut PageStore, _pools: &mut PoolStore) {}

    #[inline]
    fn attach(&mut self, (): (), _pages: &mut PageStore, _pools: &mut PoolStore) {}
}

/// One cross-shard event in transit: the mailbox entry plus the detached
/// payloads.
struct Parcel<M: ShardMessage> {
    at: SimTime,
    sent_at: SimTime,
    seq: u64,
    to: ComponentId,
    msg: M,
    detached: M::Detached,
}

/// How [`ShardedSimulator::run`] executes its shards.
///
/// The window protocol itself — round structure, merge order, safe
/// bounds — is identical in every mode, so all modes produce
/// bit-identical results; the modes only choose *where* the rounds run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// One worker thread per shard when the host has a core for each
    /// worker; [`Cooperative`](ExecMode::Cooperative) rounds otherwise.
    /// On an oversubscribed host the threaded protocol spends its wall
    /// time on futex park/unpark context switches between workers that
    /// cannot run concurrently anyway — tens of microseconds per sync
    /// round, tens of thousands of rounds per busy workload.
    #[default]
    Auto,
    /// Always spawn one worker thread per shard.
    Threads,
    /// Always run the window protocol cooperatively on the calling
    /// thread: the same rounds, with plain vectors for mailboxes.
    Cooperative,
    /// One worker thread per shard, speculating into the exchange gap:
    /// each round a worker checkpoints its local state, optimistically
    /// executes up to `W` past the previous safe bound while its
    /// mailboxes are in flight, then commits or rolls back at the
    /// barrier (see the module docs). Committed results are
    /// bit-identical to every other mode — only wall-clock changes.
    /// Requires every speculated component to support
    /// [`Component::snapshot`] and the message type to be [`Clone`].
    /// Never chosen by [`Auto`](ExecMode::Auto).
    Optimistic,
}

/// Per-shard execution statistics, accumulated across
/// [`ShardedSimulator::run`] calls and reported by
/// [`ShardedSimulator::shard_stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardLaneStats {
    /// Speculatively executed events that survived their barrier check
    /// ([`ExecMode::Optimistic`] only).
    pub committed_events: u64,
    /// Speculatively executed events undone by a rollback.
    pub rolled_back_events: u64,
    /// Speculative windows rolled back at the barrier.
    pub rollbacks: u64,
    /// The shard's current speculation window `W` — self-tuned unless
    /// pinned by [`ShardedSimulator::set_speculation_window`].
    pub window: SimTime,
    /// Exchange receives satisfied inside the spin window (threaded
    /// modes).
    pub spins: u64,
    /// Exchange receives that fell through to a blocking park.
    pub parks: u64,
}

/// Aggregate protocol statistics from
/// [`ShardedSimulator::shard_stats`]: the cumulative sync-round count
/// plus one [`ShardLaneStats`] per shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Synchronization rounds executed — identical on every worker by
    /// construction.
    pub sync_rounds: u64,
    /// Per-shard statistics, in shard order.
    pub shards: Vec<ShardLaneStats>,
}

/// One round's traffic from one shard to one other shard.
struct Exchange<M: ShardMessage> {
    parcels: Vec<Parcel<M>>,
    /// The sender's local queue frontier (earliest queued event).
    queue_next: Option<SimTime>,
    /// Earliest parcel time the sender mailed to every destination this
    /// round. Receivers fold these with the queue frontiers to compute
    /// every shard's exact post-merge horizon — which is what makes a
    /// single exchange phase enough for a sound reactive bound. One
    /// shared copy per round (not one clone per peer).
    out_mins: Arc<Vec<Option<SimTime>>>,
}

/// N-shard conservative-parallel façade over [`Simulator`]. Build the
/// component graph on a sequential simulator first, then split it with
/// [`ShardedSimulator::from_simulator`].
///
/// The driving API mirrors the sequential engine where it can:
/// [`schedule`](Self::schedule), [`run`](Self::run),
/// [`component`](Self::component) /
/// [`component_mut`](Self::component_mut) (routed to the owning shard
/// transparently), [`now`](Self::now) and
/// [`events_delivered`](Self::events_delivered) (aggregated).
pub struct ShardedSimulator<M: ShardMessage> {
    shards: Vec<Simulator<M>>,
    owner: Arc<Vec<u32>>,
    /// Per-pair lookahead matrix: `lookaheads[s][r]` is the minimum
    /// latency of any direct message from shard `s` to shard `r`
    /// (diagonal unused, zero). One row is shared with each shard's
    /// [`ShardEnv`] for the send-site assertion; workers use the full
    /// matrix for the execution bound.
    lookaheads: Arc<Vec<Arc<[SimTime]>>>,
    /// The matrix's minimum off-diagonal entry — the classic global
    /// conservative window, kept for probes and quick reasoning.
    min_lookahead: SimTime,
    /// Events the source simulator had already delivered before the
    /// split, so aggregate accounting stays continuous.
    base_delivered: u64,
    /// Cumulative synchronization rounds across all [`run`](Self::run)
    /// calls — every worker executes the identical round count, so this
    /// is the protocol-overhead denominator (each round is one
    /// all-to-all exchange plus a window execution). Atomic so workers
    /// publish each round and the count is well-defined mid-run.
    sync_rounds: AtomicU64,
    /// Per-shard delivery counters published once per round by the
    /// workers, so [`events_delivered`](Self::events_delivered) stays
    /// well-defined while the shard simulators are out on their worker
    /// threads.
    delivered_live: Vec<AtomicU64>,
    /// Per-shard statistics (speculation tallies, live windows,
    /// spin/park counts), moved onto the workers for a run and
    /// reassembled after it.
    lanes: Vec<ShardLaneStats>,
    /// Where [`run`](Self::run) executes the rounds (never changes what
    /// they compute).
    exec: ExecMode,
    /// The trace configuration applied to every shard simulator (and
    /// the wall-profiling opt-in for the threaded workers).
    trace_cfg: TraceConfig,
    /// Per-shard wall-clock worker profilers (spin/park/execute split).
    /// Strictly outside the deterministic record; populated only by the
    /// threaded modes when [`TraceConfig::wall_profile`] is set.
    wall: Vec<WallLane>,
}

impl<M: ShardMessage> ShardedSimulator<M> {
    /// Split a fully built (but idle) simulator into `shards` shards
    /// under a single global `lookahead` — the minimum latency of any
    /// message between components of different shards. Shorthand for
    /// [`ShardedSimulator::with_lookaheads`] with a uniform matrix.
    ///
    /// # Panics
    ///
    /// As for [`ShardedSimulator::with_lookaheads`].
    pub fn from_simulator(
        sim: Simulator<M>,
        owner: Vec<u32>,
        shards: usize,
        lookahead: SimTime,
    ) -> Self {
        let lookaheads = vec![vec![lookahead; shards]; shards];
        Self::with_lookaheads(sim, owner, shards, lookaheads)
    }

    /// Split a fully built (but idle) simulator into `shards` shards.
    /// `owner[i]` names the shard that owns component id `i`
    /// ([`u32::MAX`] for reserved-but-uninstalled ids);
    /// `lookaheads[s][r]` is the minimum latency of any direct message
    /// from a component of shard `s` to a component of shard `r` — for
    /// a cluster, the minimum network latency between the two shards'
    /// nodes. Entries need not be symmetric; diagonal entries are
    /// ignored. Larger (honest) entries for far-apart shard pairs let
    /// the conservative bound advance in larger steps.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, the matrix is not `shards × shards`,
    /// any off-diagonal entry is zero, the simulator still has pending
    /// events or live store entries, `owner` does not cover every
    /// component, or an installed component is left unowned.
    pub fn with_lookaheads(
        sim: Simulator<M>,
        owner: Vec<u32>,
        shards: usize,
        lookaheads: Vec<Vec<SimTime>>,
    ) -> Self {
        assert!(shards > 0, "at least one shard");
        assert_eq!(lookaheads.len(), shards, "one lookahead row per shard");
        let mut min_lookahead: Option<SimTime> = None;
        for (s, row) in lookaheads.iter().enumerate() {
            assert_eq!(row.len(), shards, "one lookahead entry per shard pair");
            for (r, &l) in row.iter().enumerate() {
                if s == r {
                    continue;
                }
                assert!(
                    l > SimTime::ZERO,
                    "conservative sharding needs a positive lookahead (pair {s} -> {r})"
                );
                min_lookahead = Some(min_lookahead.map_or(l, |m| m.min(l)));
            }
        }
        let min_lookahead = min_lookahead.unwrap_or(SimTime::ZERO);
        let lookaheads: Arc<Vec<Arc<[SimTime]>>> =
            Arc::new(lookaheads.into_iter().map(Arc::from).collect());
        assert!(sim.is_idle(), "split the simulator before scheduling events");
        assert_eq!(
            sim.pages.live_pages(),
            0,
            "split the simulator before staging pages"
        );
        assert_eq!(
            sim.pools.live_total(),
            0,
            "split the simulator before interning control blocks"
        );
        assert_eq!(
            owner.len(),
            sim.components.len(),
            "owner table must cover every component id"
        );
        for (idx, &own) in owner.iter().enumerate() {
            if sim.components.is_vacant(idx) {
                continue;
            }
            assert!(
                (own as usize) < shards,
                "installed component c{idx} assigned to nonexistent shard {own}"
            );
        }

        let owner = Arc::new(owner);
        let base_now = sim.now;
        let base_delivered = sim.delivered;
        let mut parts: Vec<Simulator<M>> = (0..shards)
            .map(|me| {
                let mut part = Simulator::with_capacity(64);
                part.now = base_now;
                part.shard_env = Some(ShardEnv {
                    me: me as u32,
                    owner: Arc::clone(&owner),
                    outboxes: (0..shards).map(|_| Vec::new()).collect(),
                    lookahead_to: Arc::clone(&lookaheads[me]),
                });
                part
            })
            .collect();
        for (idx, entry) in sim.components.into_boxes().into_iter().enumerate() {
            let own = owner[idx];
            let mut entry = Some(entry);
            for (s, part) in parts.iter_mut().enumerate() {
                let slot = if s as u32 == own {
                    part.components.add(entry.take().expect("moved once"))
                } else {
                    part.components.reserve()
                };
                debug_assert_eq!(slot, idx, "shard arenas must stay index-aligned");
            }
        }
        // Speculation starts at a few conservative windows: enough to
        // hide the barrier gap, small enough that an early rollback is
        // cheap. Self-tuning takes it from here.
        let window = min_lookahead * 4;
        ShardedSimulator {
            shards: parts,
            owner,
            lookaheads,
            min_lookahead,
            base_delivered,
            sync_rounds: AtomicU64::new(0),
            delivered_live: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            lanes: (0..shards)
                .map(|_| ShardLaneStats { window, ..ShardLaneStats::default() })
                .collect(),
            exec: ExecMode::default(),
            trace_cfg: TraceConfig::off(),
            wall: (0..shards).map(|_| WallLane::new(false)).collect(),
        }
    }

    /// Install (or disable) event tracing on every shard simulator.
    /// Each shard's records are stamped with its shard id; harvest the
    /// merged set with [`take_trace`](Self::take_trace). Also arms the
    /// wall-clock worker profilers when
    /// [`TraceConfig::wall_profile`] is set (threaded modes only).
    ///
    /// Replaces any existing sinks, discarding unharvested records.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.trace_cfg = cfg;
        for (me, shard) in self.shards.iter_mut().enumerate() {
            shard.set_trace(cfg, me as u32);
        }
        self.wall = (0..self.shards.len())
            .map(|_| WallLane::new(cfg.wall_profile))
            .collect();
    }

    /// Harvest every shard's captured records, in shard order (merge
    /// them with `bluedbm_trace::TraceDoc::merge`). Sinks stay
    /// installed; sequence numbering keeps running.
    pub fn take_trace(&mut self) -> Vec<TracePart> {
        self.shards.iter_mut().map(Simulator::take_trace).collect()
    }

    /// The per-shard wall-clock profiles (spin/park/execute split),
    /// accumulated across [`run`](Self::run) calls. All-zero unless
    /// [`TraceConfig::wall_profile`] was set and a threaded mode ran.
    pub fn wall_profiles(&self) -> Vec<WallLaneProfile> {
        self.wall.iter().map(WallLane::profile).collect()
    }

    /// Choose where [`run`](Self::run) executes the window protocol.
    /// Purely a scheduling decision — results are bit-identical across
    /// modes. The default, [`ExecMode::Auto`], spawns worker threads
    /// only when the host has a core per shard.
    pub fn set_exec_mode(&mut self, exec: ExecMode) {
        self.exec = exec;
    }

    /// The current [`ExecMode`].
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The minimum conservative window size — the smallest off-diagonal
    /// entry of the lookahead matrix (for a uniform matrix, exactly the
    /// `lookahead` given to [`ShardedSimulator::from_simulator`]).
    pub fn lookahead(&self) -> SimTime {
        self.min_lookahead
    }

    /// The per-pair lookahead from shard `src` to shard `dst` —
    /// the minimum latency any message from `src` may cross with.
    ///
    /// # Panics
    ///
    /// Panics if either shard index is out of range.
    pub fn lookahead_between(&self, src: usize, dst: usize) -> SimTime {
        self.lookaheads[src][dst]
    }

    /// The shard owning component `id`, or `None` for a
    /// reserved-but-uninstalled id.
    pub fn owner_of(&self, id: ComponentId) -> Option<usize> {
        match self.owner.get(id.index()).copied() {
            Some(UNOWNED) | None => None,
            Some(s) => Some(s as usize),
        }
    }

    /// Current simulated time: the frontier of the furthest-advanced
    /// shard, which after [`run`](Self::run) is the timestamp of the
    /// globally last event — exactly the sequential engine's clock.
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total events delivered across all shards (plus any delivered
    /// before the split). Well-defined at any point in any exec mode:
    /// while a threaded run has the shard simulators out on their
    /// worker threads, this reads the per-round counters the workers
    /// publish, so the value is always a consistent
    /// committed-through-some-round total (speculative work is never
    /// visible here).
    pub fn events_delivered(&self) -> u64 {
        if self.shards.is_empty() {
            // Mid-threaded-run: the simulators are on the workers.
            let live: u64 = self
                .delivered_live
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .sum();
            return self.base_delivered + live;
        }
        self.base_delivered + self.shards.iter().map(|s| s.events_delivered()).sum::<u64>()
    }

    /// Cumulative synchronization rounds executed by
    /// [`run`](Self::run): one all-to-all mailbox/horizon exchange per
    /// round, identical on every worker and across every [`ExecMode`]
    /// (the optimistic rounds stage their exchanges from committed
    /// state, so they count the same rounds the conservative protocol
    /// would). Published once per round, so the value is well-defined
    /// mid-run. Divide into wall time to see what the window protocol
    /// itself costs.
    pub fn sync_rounds(&self) -> u64 {
        self.sync_rounds.load(Ordering::Relaxed)
    }

    /// Per-shard execution statistics — speculative events committed
    /// and rolled back, rollback counts, the live speculation windows,
    /// spin/park tallies — plus the cumulative sync-round count.
    /// Counters accumulate across [`run`](Self::run) calls.
    pub fn shard_stats(&self) -> ShardStats {
        ShardStats {
            sync_rounds: self.sync_rounds(),
            shards: self.lanes.clone(),
        }
    }

    /// Pin every shard's speculation window to `w` (used by
    /// [`ExecMode::Optimistic`]; the other modes never speculate).
    /// Self-tuning resumes from the pinned value on the next rollback
    /// or committed window. `W = 0` disables speculation outright —
    /// the optimistic rounds degenerate to the conservative protocol
    /// (and a zero window is never raised, because tuning only runs
    /// after a speculative round).
    pub fn set_speculation_window(&mut self, w: SimTime) {
        for lane in &mut self.lanes {
            lane.window = w;
        }
    }

    /// Events currently pending across all shards.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.pending_events()).sum()
    }

    /// Number of component ids (identical in every shard).
    pub fn component_count(&self) -> usize {
        self.owner.len()
    }

    /// Typed shared access to a component's state, routed to its owning
    /// shard.
    pub fn component<C: Component<M>>(&self, id: ComponentId) -> Option<&C> {
        self.shards[self.owner_of(id)?].component::<C>(id)
    }

    /// Typed exclusive access to a component's state.
    pub fn component_mut<C: Component<M>>(&mut self, id: ComponentId) -> Option<&mut C> {
        let shard = self.owner_of(id)?;
        self.shards[shard].component_mut::<C>(id)
    }

    /// The [`PageStore`] segment of one shard — payload staging must
    /// target the store of the shard that owns the consuming component.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn page_store(&self, shard: usize) -> &PageStore {
        self.shards[shard].page_store()
    }

    /// Exclusive access to one shard's [`PageStore`] segment.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn page_store_mut(&mut self, shard: usize) -> &mut PageStore {
        self.shards[shard].page_store_mut()
    }

    /// Pages currently live across every shard's store segment.
    pub fn live_pages(&self) -> usize {
        self.shards.iter().map(|s| s.page_store().live_pages()).sum()
    }

    /// Leak audit over every shard's page and pool segments — the
    /// sharded analogue of
    /// [`PageStore::assert_quiescent`] +
    /// [`PoolStore::assert_quiescent`].
    ///
    /// # Panics
    ///
    /// Panics if any shard still holds live pages or interned control
    /// blocks.
    pub fn assert_quiescent(&self) {
        for shard in &self.shards {
            shard.page_store().assert_quiescent();
            shard.pool_store().assert_quiescent();
        }
    }

    /// Schedule `msg` for delivery to `to` at `delay` from the global
    /// clock (external injection, the sharded counterpart of
    /// [`Simulator::schedule`]). The event is placed directly in the
    /// owning shard's queues — external injection happens between runs,
    /// so no lookahead constraint applies.
    ///
    /// # Panics
    ///
    /// Panics if `to` was never installed.
    pub fn schedule<T: Into<M>>(&mut self, delay: SimTime, to: ComponentId, msg: T) {
        let at = self.now() + delay;
        let shard = self
            .owner_of(to)
            .unwrap_or_else(|| panic!("message scheduled to uninstalled component {to:?}"));
        self.shards[shard].push_arrival(at, to, msg.into());
    }

}

impl<M: ShardMessage + Clone> ShardedSimulator<M> {
    /// Run to global quiescence: execute the window protocol — on
    /// worker threads, cooperatively, or with speculation, per the
    /// [`ExecMode`] — until no shard knows of any pending event. The
    /// explicitly threaded modes ([`ExecMode::Threads`],
    /// [`ExecMode::Optimistic`]) pin each worker to its own core on
    /// Linux; [`ExecMode::Auto`] leaves placement to the OS.
    ///
    /// # Panics
    ///
    /// Re-raises the first root-cause panic of any shard worker
    /// (component panics, lookahead violations, stale handles, missing
    /// [`Component::snapshot`] support under
    /// [`ExecMode::Optimistic`]).
    pub fn run(&mut self) {
        let n = self.shards.len();
        if n == 1 {
            // One shard is the sequential engine; there is no barrier
            // gap to speculate into.
            self.shards[0].run();
            return;
        }
        // Spin-probe for exchanges only when the host has a core per
        // worker; on oversubscribed hosts probing burns the very
        // timeslice the peer needs, so workers park immediately.
        let cores_per_shard =
            std::thread::available_parallelism().is_ok_and(|p| p.get() >= n);
        let threads = match self.exec {
            ExecMode::Threads | ExecMode::Optimistic => true,
            ExecMode::Cooperative => false,
            ExecMode::Auto => cores_per_shard,
        };
        if !threads {
            run_cooperative(
                &mut self.shards,
                &self.lookaheads,
                &self.sync_rounds,
                &self.delivered_live,
            );
            return;
        }
        let optimistic = self.exec == ExecMode::Optimistic;
        // Only the explicitly threaded modes pin: Auto picked threads
        // because the host happens to have the cores, not because the
        // user asked for a fixed thread layout.
        let pin = matches!(self.exec, ExecMode::Threads | ExecMode::Optimistic);
        // Per ordered pair (src, dst): one mailbox channel.
        let mut txs: Vec<Vec<Option<Sender<Exchange<M>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<Exchange<M>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let (tx, rx) = unbounded();
                txs[src][dst] = Some(tx);
                rxs[dst][src] = Some(rx);
            }
        }
        let sims: Vec<Simulator<M>> = self.shards.drain(..).collect();
        let lanes: Vec<ShardLaneStats> = std::mem::take(&mut self.lanes);
        let walls: Vec<WallLane> = std::mem::take(&mut self.wall);
        let lookaheads = &self.lookaheads;
        let min_lookahead = self.min_lookahead;
        let spin = cores_per_shard;
        let rounds_base = self.sync_rounds.load(Ordering::Relaxed);
        let rounds_ctr = &self.sync_rounds;
        let delivered_live = &self.delivered_live;
        let result = crossbeam::scope(|scope| {
            let handles: Vec<_> = sims
                .into_iter()
                .zip(lanes.into_iter().zip(walls))
                .zip(txs.drain(..).zip(rxs.drain(..)))
                .enumerate()
                .map(|(me, ((sim, (lane, wall)), (tx_row, rx_row)))| {
                    let lookaheads = Arc::clone(lookaheads);
                    let cfg = WorkerCfg {
                        me,
                        spin,
                        optimistic,
                        pin,
                        min_lookahead,
                        rounds_base,
                    };
                    let shared = SharedCounters {
                        rounds: rounds_ctr,
                        delivered: &delivered_live[me],
                    };
                    scope.spawn(move |_| {
                        worker(cfg, shared, sim, lane, wall, tx_row, rx_row, lookaheads)
                    })
                })
                .collect();
            let mut shards = Vec::with_capacity(n);
            let mut lanes = Vec::with_capacity(n);
            let mut walls = Vec::with_capacity(n);
            let mut panics = Vec::new();
            for handle in handles {
                match handle.join() {
                    Ok((sim, lane, wall)) => {
                        shards.push(sim);
                        lanes.push(lane);
                        walls.push(wall);
                    }
                    Err(payload) => panics.push(payload),
                }
            }
            (shards, lanes, walls, panics)
        });
        match result {
            Ok((shards, lanes, walls, panics)) => {
                if let Some(payload) = pick_root_cause(panics) {
                    std::panic::resume_unwind(payload);
                }
                self.shards = shards;
                self.lanes = lanes;
                self.wall = walls;
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// A worker that dies because a *peer* disconnected panics with this
/// marker, so the coordinator can surface the root cause instead.
const PEER_LOST: &str = "mailbox peer shard terminated";

/// Prefer a payload that is not the secondary "peer disconnected" panic.
fn pick_root_cause(
    mut panics: Vec<Box<dyn Any + Send + 'static>>,
) -> Option<Box<dyn Any + Send + 'static>> {
    if panics.is_empty() {
        return None;
    }
    let is_secondary = |p: &Box<dyn Any + Send + 'static>| {
        p.downcast_ref::<String>().is_some_and(|s| s.contains(PEER_LOST))
            || p.downcast_ref::<&str>().is_some_and(|s| s.contains(PEER_LOST))
    };
    let root = panics
        .iter()
        .position(|p| !is_secondary(p))
        .unwrap_or(0);
    Some(panics.swap_remove(root))
}

fn min_opt(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Receive one exchange with spin-then-park backoff. With free cores,
/// barrier mates usually answer within microseconds, so a brief
/// `spin_loop` window followed by a few `try_recv` + `yield_now`
/// probes skips the futex round trip of a blocking park on most
/// rounds. On an oversubscribed host (`spin == false` — fewer cores
/// than shards) a waiting peer cannot be making progress while we
/// burn its timeslice, so probing only adds context switches: park
/// immediately and let the scheduler run the peer.
fn recv_spin<M: ShardMessage>(
    rx: &Receiver<Exchange<M>>,
    spin: bool,
    lane: &mut ShardLaneStats,
    wall: &mut WallLane,
) -> Result<Exchange<M>, ()> {
    use crossbeam::channel::TryRecvError;
    let spin_stamp = wall.stamp();
    if spin {
        for probe in 0..40u32 {
            match rx.try_recv() {
                Ok(exchange) => {
                    lane.spins += 1;
                    wall.add_spin(spin_stamp);
                    return Ok(exchange);
                }
                Err(TryRecvError::Disconnected) => return Err(()),
                Err(TryRecvError::Empty) => {
                    if probe < 32 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
    lane.parks += 1;
    wall.add_spin(spin_stamp);
    let park_stamp = wall.stamp();
    let got = rx.recv().map_err(|_| ());
    wall.add_park(park_stamp);
    got
}

/// Per-worker configuration, fixed for the whole run.
struct WorkerCfg {
    me: usize,
    spin: bool,
    optimistic: bool,
    pin: bool,
    min_lookahead: SimTime,
    rounds_base: u64,
}

/// Counters a worker publishes once per round so the façade's
/// [`ShardedSimulator::sync_rounds`] and
/// [`ShardedSimulator::events_delivered`] stay well-defined mid-run.
#[derive(Clone, Copy)]
struct SharedCounters<'a> {
    rounds: &'a AtomicU64,
    delivered: &'a AtomicU64,
}

/// One in-flight speculative window: the horizon it executed to, the
/// sequence floor its checkpoint reserved (where a committing merge
/// splices the arrivals), and the delivery count at the checkpoint
/// (for the commit/rollback tallies).
struct SpecWindow {
    horizon: SimTime,
    chk_seq: u64,
    base_delivered: u64,
}

/// Additive increase after a fully committed window: half a lookahead
/// more speculation, capped at 32 lookaheads so a quiet phase cannot
/// inflate the window (and the eventual rollback cost) without bound.
fn window_grow(w: SimTime, min_lookahead: SimTime) -> SimTime {
    (w + min_lookahead / 2).min(min_lookahead * 32)
}

/// Multiplicative decrease after a rollback: halve, floored at a
/// quarter lookahead so the window can climb back once the straggler
/// phase passes.
fn window_shrink(w: SimTime, min_lookahead: SimTime) -> SimTime {
    (w / 2).max(min_lookahead / 4)
}

/// Drain the shard's outboxes into per-destination parcel batches and
/// capture the exchange frontier data (queue frontier, per-destination
/// minima). Always called on fully committed state — at the bottom of a
/// round, after commit/rollback has resolved — which is what keeps an
/// optimistic round's exchange bit-identical to a conservative one's.
fn stage_exchange<M: ShardMessage>(
    sim: &mut Simulator<M>,
    me: usize,
    outgoing: &mut [Vec<Parcel<M>>],
) -> (Option<SimTime>, Arc<Vec<Option<SimTime>>>) {
    let n = outgoing.len();
    let mut out_mins: Vec<Option<SimTime>> = vec![None; n];
    for (dst, batch) in outgoing.iter_mut().enumerate() {
        if dst == me {
            continue;
        }
        let env = sim.shard_env.as_mut().expect("shard env installed");
        let mut raw: Vec<Outbound<M>> = std::mem::take(&mut env.outboxes[dst]);
        let flushed = raw.len() as u64;
        for mut out in raw.drain(..) {
            out_mins[dst] = min_opt(out_mins[dst], Some(out.at));
            let detached = out.msg.detach(&mut sim.pages, &mut sim.pools);
            batch.push(Parcel {
                at: out.at,
                sent_at: out.sent_at,
                seq: out.seq,
                to: out.to,
                msg: out.msg,
                detached,
            });
        }
        sim.shard_env.as_mut().expect("shard env installed").outboxes[dst] = raw;
        if flushed > 0 {
            let now_ps = sim.now.as_ps();
            sim.trace.record(
                now_ps,
                TraceCat::Mailbox,
                TraceKind::Instant,
                "flush",
                dst as u32,
                flushed,
                0,
            );
        }
    }
    (sim.queues.next_at(), Arc::new(out_mins))
}

/// One shard's worker loop: exchange mailboxes + horizons with every
/// peer, agree (identically, with no coordinator) on the next window,
/// execute it — optionally speculating into the exchange gap — and
/// repeat until the global horizon is empty. Returns the shard
/// simulator (so the façade can be reassembled) and the shard's
/// accumulated statistics.
///
/// The exchange for each round is **staged** at the bottom of the
/// previous round, from fully committed state, and only *mailed* at the
/// top of the next — so a conservative round and an optimistic round
/// put bit-identical data on the wire, and speculation lives entirely
/// in the gap between the send and the matching receives (where a
/// conservative worker would spin or park).
#[allow(clippy::too_many_arguments)] // one-caller worker entry point; bundling would just rename the list
fn worker<M: ShardMessage + Clone>(
    cfg: WorkerCfg,
    shared: SharedCounters<'_>,
    mut sim: Simulator<M>,
    mut lane: ShardLaneStats,
    mut wall: WallLane,
    txs: Vec<Option<Sender<Exchange<M>>>>,
    rxs: Vec<Option<Receiver<Exchange<M>>>>,
    lookaheads: Arc<Vec<Arc<[SimTime]>>>,
) -> (Simulator<M>, ShardLaneStats, WallLane) {
    let WorkerCfg { me, spin, optimistic, pin, min_lookahead, rounds_base } = cfg;
    if pin {
        // Pure performance (cache affinity across the per-round spin
        // windows); failure means "run unpinned", never an error.
        let _ = affinity::pin_to_core(me);
    }
    let n = txs.len();
    let mut rounds = 0u64;
    // Round-persistent merge and horizon buffers: allocated once, reused
    // every round (the protocol runs thousands of rounds on busy
    // workloads, so per-round allocation is pure overhead).
    let mut outgoing: Vec<Vec<Parcel<M>>> = (0..n).map(|_| Vec::new()).collect();
    let mut queue_nexts: Vec<Option<SimTime>> = vec![None; n];
    let mut all_out_mins: Vec<Option<Arc<Vec<Option<SimTime>>>>> = vec![None; n];
    let mut arrivals: Vec<(usize, Parcel<M>)> = Vec::new();
    let mut horizons: Vec<Option<SimTime>> = vec![None; n];
    // `earliest[t]` is the fixed-point estimate `E_t` (see module doc).
    let mut earliest: Vec<Option<SimTime>> = vec![None; n];
    // The previous round's safe bound: everything below it is committed,
    // so it is where a speculative window may start.
    let mut last_bound: Option<SimTime> = None;
    // Stage round one's exchange (first-round outboxes are empty, but
    // external injections sit in the queues and set the frontier).
    let (mut staged_queue_next, mut staged_out_mins) =
        stage_exchange(&mut sim, me, &mut outgoing);
    loop {
        // Mail the staged exchange. Sends never block (unbounded), so
        // the all-to-all cannot deadlock; a send can only fail if the
        // peer died, and the matching recv below turns that into the
        // PEER_LOST panic.
        for dst in 0..n {
            if dst == me {
                continue;
            }
            let parcels = std::mem::take(&mut outgoing[dst]);
            let _ = txs[dst].as_ref().expect("channel to every peer").send(Exchange {
                parcels,
                queue_next: staged_queue_next,
                out_mins: Arc::clone(&staged_out_mins),
            });
        }
        queue_nexts[me] = staged_queue_next;
        all_out_mins[me] = Some(Arc::clone(&staged_out_mins));
        // Speculate into the barrier gap: the mail is in flight, the
        // peers' answers have not arrived, and a conservative worker
        // would idle. Checkpoint, then run local events up to `W` past
        // the committed bound. Cross-shard sends buffer in the outboxes
        // (drained when the exchange was staged, so currently empty) —
        // nothing speculative is ever mailed, hence no anti-messages.
        let mut spec: Option<SpecWindow> = None;
        if optimistic && !lane.window.is_zero() {
            if let Some(bound) = last_bound {
                let horizon = bound + lane.window;
                if staged_queue_next.is_some_and(|q| q < horizon) {
                    // The window-open span precedes the checkpoint so a
                    // rollback erases the window's *event* records but
                    // keeps the window itself visible in the trace.
                    let now_ps = sim.now.as_ps();
                    sim.trace.record(
                        now_ps,
                        TraceCat::Spec,
                        TraceKind::SpanBegin,
                        "window",
                        me as u32,
                        horizon.as_ps(),
                        0,
                    );
                    let chk_seq = sim.checkpoint_begin();
                    let base_delivered = sim.events_delivered();
                    let stamp = wall.stamp();
                    sim.run_before(horizon);
                    wall.add_execute(stamp);
                    spec = Some(SpecWindow { horizon, chk_seq, base_delivered });
                }
            }
        }
        // Receive every peer's exchange.
        for src in 0..n {
            if src == me {
                continue;
            }
            let exchange = recv_spin(
                rxs[src].as_ref().expect("channel from every peer"),
                spin,
                &mut lane,
                &mut wall,
            )
            .unwrap_or_else(|()| panic!("shard {me}: {PEER_LOST} (shard {src})"));
            queue_nexts[src] = exchange.queue_next;
            all_out_mins[src] = Some(exchange.out_mins);
            arrivals.extend(exchange.parcels.into_iter().map(|p| (src, p)));
        }
        // Every shard's exact *post-merge* horizon, computed identically
        // by every worker from the exchanged frontiers: its queue plus
        // every parcel just mailed to it. After the merge nothing is in
        // flight, which is what makes the reactive fixed point below
        // sound.
        let mut all_empty = true;
        for t in 0..n {
            let mailed = (0..n)
                .filter(|&r| r != t)
                .filter_map(|r| {
                    all_out_mins[r]
                        .as_ref()
                        .and_then(|mins| mins.get(t).copied().flatten())
                })
                .min();
            horizons[t] = min_opt(queue_nexts[t], mailed);
            all_empty &= horizons[t].is_none();
        }
        if all_empty {
            // Unreachable with a live checkpoint: speculation requires a
            // local frontier below the horizon, which makes our own
            // post-merge horizon non-empty.
            debug_assert!(spec.is_none(), "speculated into a globally empty horizon");
            return (sim, lane, wall);
        }
        rounds += 1;
        shared.rounds.fetch_max(rounds_base + rounds, Ordering::Relaxed);
        // The Chandy–Misra–Bryant safe bound generalized to the per-pair
        // matrix. Nothing is in flight after the merge, so shard `t`'s
        // earliest possible next event is the least fixed point of
        //
        //   E_t = min(h_t, min_{r != t}(E_r + L[r][t]))
        //
        // — its own queued work, or the earliest chain of cross-shard
        // reactions that could reach it. Computed by relaxation over the
        // matrix (Bellman–Ford on the shard graph, at most n-1 passes);
        // every worker runs the identical computation, so no
        // coordinator is needed. Everything strictly below
        // `min_{s != me}(E_s + L[s][me])` is already in our queues —
        // run it.
        earliest.copy_from_slice(&horizons);
        for _ in 1..n {
            let mut changed = false;
            for t in 0..n {
                for r in 0..n {
                    if r == t {
                        continue;
                    }
                    if let Some(er) = earliest[r] {
                        let via = er + lookaheads[r][t];
                        if earliest[t].is_none_or(|e| via < e) {
                            earliest[t] = Some(via);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let bound = (0..n)
            .filter(|&s| s != me)
            .filter_map(|s| earliest[s].map(|e| e + lookaheads[s][me]))
            .min();
        // Deterministic merge order: arrival instant, then send instant
        // (the sequential engine's tiebreak — its sequence numbers
        // increase with send time), then source shard, then the
        // source's own send order.
        arrivals.sort_by_key(|(src, p)| (p.at, p.sent_at, *src, p.seq));
        // Resolve the speculative window against the true bound.
        if let Some(win) = spec.take() {
            let straggler = arrivals.first().is_some_and(|(_, p)| p.at < win.horizon);
            let safe = bound.is_some_and(|b| win.horizon <= b);
            let delta = sim.events_delivered() - win.base_delivered;
            if safe && !straggler {
                // The window is exactly the execution a conservative
                // round performs: everything below the horizon was safe
                // and no arrival interleaves below it. Keep the work and
                // splice the arrivals at the sequence numbers the
                // checkpoint reserved — below every event speculation
                // created, above every event that predates it — so ties
                // order exactly as a conservative merge-then-run round.
                sim.checkpoint_commit();
                let now_ps = sim.now.as_ps();
                sim.trace.record(
                    now_ps, TraceCat::Spec, TraceKind::Instant, "commit", me as u32, delta, 0,
                );
                sim.trace.record(
                    now_ps, TraceCat::Spec, TraceKind::SpanEnd, "window", me as u32, delta, 0,
                );
                lane.committed_events += delta;
                lane.window = window_grow(lane.window, min_lookahead);
                for (i, (_, mut parcel)) in arrivals.drain(..).enumerate() {
                    parcel
                        .msg
                        .attach(parcel.detached, &mut sim.pages, &mut sim.pools);
                    sim.push_arrival_at_seq(
                        parcel.at,
                        parcel.to,
                        parcel.msg,
                        win.chk_seq + i as u64,
                    );
                }
            } else {
                // The bound stopped short of the horizon, or a straggler
                // arrival lands inside it: undo everything. The buffered
                // speculative sends are exactly the outbox contents, so
                // clearing them is the entire anti-message story.
                sim.checkpoint_rollback();
                let now_ps = sim.now.as_ps();
                sim.trace.record(
                    now_ps, TraceCat::Spec, TraceKind::Instant, "rollback", me as u32, delta, 0,
                );
                sim.trace.record(
                    now_ps, TraceCat::Spec, TraceKind::SpanEnd, "window", me as u32, delta, 0,
                );
                let env = sim.shard_env.as_mut().expect("shard env installed");
                for outbox in env.outboxes.iter_mut() {
                    outbox.clear();
                }
                lane.rolled_back_events += delta;
                lane.rollbacks += 1;
                lane.window = window_shrink(lane.window, min_lookahead);
            }
        }
        // Arrivals not spliced by a commit merge the conservative way.
        for (_, mut parcel) in arrivals.drain(..) {
            parcel
                .msg
                .attach(parcel.detached, &mut sim.pages, &mut sim.pools);
            sim.push_arrival(parcel.at, parcel.to, parcel.msg);
        }
        // Run (the rest of) the window conservatively.
        if let Some(bound) = bound {
            let stamp = wall.stamp();
            sim.run_before(bound);
            wall.add_execute(stamp);
        }
        // Stage the next round's exchange from the now-committed state
        // and publish the committed counters.
        last_bound = bound;
        (staged_queue_next, staged_out_mins) = stage_exchange(&mut sim, me, &mut outgoing);
        shared.delivered.store(sim.events_delivered(), Ordering::Relaxed);
    }
}

/// Cooperative single-thread execution of the identical window
/// protocol: the round structure, the deterministic merge order and the
/// per-pair safe bounds are exactly those of [`worker`] — only the
/// mailboxes are plain vectors instead of channels, and the "workers"
/// take turns on the calling thread. Every delivery is therefore
/// bit-identical to a threaded run.
///
/// This is what makes sharded runs cheap on oversubscribed hosts: with
/// fewer cores than shards the threaded protocol cannot overlap any
/// work, so its only marginal cost is the futex park/unpark context
/// switch per worker per round — which this path removes entirely.
///
/// Rounds and per-shard deliveries are published to the façade's
/// counters as they happen, exactly like the threaded workers, so
/// `sync_rounds()` / `events_delivered()` have the same mid-run
/// semantics in every mode.
fn run_cooperative<M: ShardMessage>(
    sims: &mut [Simulator<M>],
    lookaheads: &[Arc<[SimTime]>],
    rounds_ctr: &AtomicU64,
    delivered_live: &[AtomicU64],
) {
    let n = sims.len();
    // Same round-persistent buffers as the threaded worker, held once
    // for all shards: outgoing[src][dst] parcels, frontier tables,
    // merge staging, fixed-point estimates.
    let mut outgoing: Vec<Vec<Vec<Parcel<M>>>> =
        (0..n).map(|_| (0..n).map(|_| Vec::new()).collect()).collect();
    let mut out_mins: Vec<Vec<Option<SimTime>>> = vec![vec![None; n]; n];
    let mut queue_nexts: Vec<Option<SimTime>> = vec![None; n];
    let mut arrivals: Vec<(usize, Parcel<M>)> = Vec::new();
    let mut horizons: Vec<Option<SimTime>> = vec![None; n];
    let mut earliest: Vec<Option<SimTime>> = vec![None; n];
    loop {
        // Exchange phase. Frontiers are captured for *every* shard
        // before *any* shard merges, exactly like the all-to-all send
        // in the threaded round.
        for src in 0..n {
            let sim = &mut sims[src];
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                let env = sim.shard_env.as_mut().expect("shard env installed");
                let mut raw: Vec<Outbound<M>> = std::mem::take(&mut env.outboxes[dst]);
                let flushed = raw.len() as u64;
                for mut out in raw.drain(..) {
                    out_mins[src][dst] = min_opt(out_mins[src][dst], Some(out.at));
                    let detached = out.msg.detach(&mut sim.pages, &mut sim.pools);
                    outgoing[src][dst].push(Parcel {
                        at: out.at,
                        sent_at: out.sent_at,
                        seq: out.seq,
                        to: out.to,
                        msg: out.msg,
                        detached,
                    });
                }
                sim.shard_env.as_mut().expect("shard env installed").outboxes[dst] = raw;
                if flushed > 0 {
                    let now_ps = sim.now.as_ps();
                    sim.trace.record(
                        now_ps,
                        TraceCat::Mailbox,
                        TraceKind::Instant,
                        "flush",
                        dst as u32,
                        flushed,
                        0,
                    );
                }
            }
            queue_nexts[src] = sim.queues.next_at();
        }
        // Merge phase: per destination, the worker's deterministic
        // (arrival, send time, source shard, source seq) order.
        for dst in 0..n {
            for (src, from_src) in outgoing.iter_mut().enumerate() {
                if src == dst {
                    continue;
                }
                arrivals.extend(from_src[dst].drain(..).map(|p| (src, p)));
            }
            arrivals.sort_by_key(|(src, p)| (p.at, p.sent_at, *src, p.seq));
            let sim = &mut sims[dst];
            for (src, mut parcel) in arrivals.drain(..) {
                // The send site already asserts this (`Ctx::send`); keep
                // a second line of defense at the merge so a future
                // bypass of that path still can't deliver a parcel that
                // breaks the window bound the fixed point relies on.
                debug_assert!(
                    parcel.at >= parcel.sent_at + lookaheads[src][dst],
                    "lookahead violation at cooperative merge: shard {src} -> shard {dst} \
                     parcel arrives at {:?} but was sent at {:?}, below the pair \
                     lookahead {:?}",
                    parcel.at,
                    parcel.sent_at,
                    lookaheads[src][dst],
                );
                parcel
                    .msg
                    .attach(parcel.detached, &mut sim.pages, &mut sim.pools);
                sim.push_arrival(parcel.at, parcel.to, parcel.msg);
            }
        }
        // Post-merge horizons and termination, as in the worker.
        let mut all_empty = true;
        for t in 0..n {
            let mailed = (0..n)
                .filter(|&r| r != t)
                .filter_map(|r| out_mins[r][t])
                .min();
            horizons[t] = min_opt(queue_nexts[t], mailed);
            all_empty &= horizons[t].is_none();
        }
        for row in out_mins.iter_mut() {
            row.fill(None);
        }
        if all_empty {
            return;
        }
        rounds_ctr.fetch_add(1, Ordering::Relaxed);
        // The identical E_t fixed point (see the worker), then each
        // shard executes its window in turn.
        earliest.copy_from_slice(&horizons);
        for _ in 1..n {
            let mut changed = false;
            for t in 0..n {
                for r in 0..n {
                    if r == t {
                        continue;
                    }
                    if let Some(er) = earliest[r] {
                        let via = er + lookaheads[r][t];
                        if earliest[t].is_none_or(|e| via < e) {
                            earliest[t] = Some(via);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (me, sim) in sims.iter_mut().enumerate() {
            let bound = (0..n)
                .filter(|&s| s != me)
                .filter_map(|s| earliest[s].map(|e| e + lookaheads[s][me]))
                .min();
            if let Some(bound) = bound {
                sim.run_before(bound);
            }
            delivered_live[me].store(sim.events_delivered(), Ordering::Relaxed);
        }
    }
}

impl<M: ShardMessage> fmt::Debug for ShardedSimulator<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSimulator")
            .field("shards", &self.shards.len())
            .field("components", &self.owner.len())
            .field("min_lookahead", &self.min_lookahead)
            .field("now", &self.now())
            .field("delivered", &self.events_delivered())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Ctx;
    use crate::pagestore::PageRef;

    const HOP: SimTime = SimTime::us(1);

    /// Test protocol: a counter bounce with a fixed latency, plus a
    /// page-carrying shape to exercise relocation.
    #[derive(Clone)]
    enum TMsg {
        Val(u64),
        Page(PageRef),
    }

    impl ShardMessage for TMsg {
        type Detached = Option<Vec<u8>>;

        fn detach(&mut self, pages: &mut PageStore, _pools: &mut PoolStore) -> Option<Vec<u8>> {
            match self {
                TMsg::Val(_) => None,
                TMsg::Page(page) => Some(pages.take(*page)),
            }
        }

        fn attach(
            &mut self,
            detached: Option<Vec<u8>>,
            pages: &mut PageStore,
            _pools: &mut PoolStore,
        ) {
            if let TMsg::Page(page) = self {
                *page = pages.alloc_from(&detached.expect("page luggage"));
            }
        }
    }

    /// Bounces `Val(n)` to `peer` with `delay` until `n` hits zero,
    /// logging `(now, n)`.
    #[derive(Clone)]
    struct Bouncer {
        peer: ComponentId,
        delay: SimTime,
        log: Vec<(SimTime, u64)>,
    }

    impl Component<TMsg> for Bouncer {
        crate::clone_snapshot!();

        fn handle(&mut self, ctx: &mut Ctx<'_, TMsg>, msg: TMsg) {
            let TMsg::Val(n) = msg else { panic!("Val expected") };
            self.log.push((ctx.now(), n));
            if n > 0 {
                ctx.send(self.peer, self.delay, TMsg::Val(n - 1));
            }
        }
    }

    fn bounce_world() -> (Simulator<TMsg>, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        sim.install(a, Bouncer { peer: b, delay: HOP, log: vec![] });
        sim.install(b, Bouncer { peer: a, delay: HOP * 3, log: vec![] });
        (sim, a, b)
    }

    #[test]
    fn sharded_matches_sequential_bounce() {
        let (mut seq, a, b) = bounce_world();
        seq.schedule(SimTime::ZERO, a, TMsg::Val(100));
        seq.run();

        let (sim, a2, b2) = bounce_world();
        let mut sharded = ShardedSimulator::from_simulator(sim, vec![0, 1], 2, HOP);
        sharded.schedule(SimTime::ZERO, a2, TMsg::Val(100));
        sharded.run();

        assert_eq!(sharded.events_delivered(), seq.events_delivered());
        assert_eq!(sharded.now(), seq.now());
        assert_eq!(
            sharded.component::<Bouncer>(a2).unwrap().log,
            seq.component::<Bouncer>(a).unwrap().log,
        );
        assert_eq!(
            sharded.component::<Bouncer>(b2).unwrap().log,
            seq.component::<Bouncer>(b).unwrap().log,
        );
    }

    #[test]
    fn sharded_runs_are_repeatable() {
        let run = || {
            let (sim, a, b) = bounce_world();
            let mut sharded = ShardedSimulator::from_simulator(sim, vec![0, 1], 2, HOP);
            sharded.schedule(SimTime::ZERO, a, TMsg::Val(57));
            sharded.run();
            (
                sharded.events_delivered(),
                sharded.now(),
                sharded.component::<Bouncer>(a).unwrap().log.clone(),
                sharded.component::<Bouncer>(b).unwrap().log.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    /// Sink that records every `Val` in delivery order.
    #[derive(Clone)]
    struct Sink {
        got: Vec<(SimTime, u64)>,
    }

    impl Component<TMsg> for Sink {
        crate::clone_snapshot!();

        fn handle(&mut self, ctx: &mut Ctx<'_, TMsg>, msg: TMsg) {
            let TMsg::Val(n) = msg else { panic!("Val expected") };
            self.got.push((ctx.now(), n));
        }
    }

    /// Fires a burst of `Val`s at `sink` with per-message delays on
    /// arrival of a kick.
    #[derive(Clone)]
    struct Burster {
        sink: ComponentId,
        shots: Vec<(SimTime, u64)>,
    }

    impl Component<TMsg> for Burster {
        crate::clone_snapshot!();

        fn handle(&mut self, ctx: &mut Ctx<'_, TMsg>, _msg: TMsg) {
            for &(delay, v) in &self.shots {
                ctx.send(self.sink, delay, TMsg::Val(v));
            }
        }
    }

    #[test]
    fn simultaneous_cross_shard_arrivals_merge_deterministically() {
        // Shards 1 and 2 each mail the shard-0 sink two events arriving
        // at the same instant; a same-instant *local* burst joins them.
        // Merge order at t=2us must be: local events first (sent at
        // t=2us... no — sent at 0 with delay 2us) — everything is sent
        // at t=0, so the (arrival, send time) key ties across all five
        // and the deterministic tiebreak is (source shard, send order),
        // with the sink's own shard-0 events keeping their local order
        // ahead of barrier-merged mail.
        let mut sim = Simulator::new();
        let sink = sim.reserve();
        let b1 = sim.add_component(Burster {
            sink,
            shots: vec![(HOP * 2, 10), (HOP * 2, 11)],
        });
        let b2 = sim.add_component(Burster {
            sink,
            shots: vec![(HOP * 2, 20), (HOP * 2, 21)],
        });
        let b0 = sim.add_component(Burster {
            sink,
            shots: vec![(HOP * 2, 1), (HOP * 2, 2)],
        });
        sim.install(sink, Sink { got: vec![] });
        // sink id 0 -> shard 0, b1 -> shard 1, b2 -> shard 2, b0 -> shard 0.
        let mut sharded =
            ShardedSimulator::from_simulator(sim, vec![0, 1, 2, 0], 3, HOP);
        sharded.schedule(SimTime::ZERO, b1, TMsg::Val(0));
        sharded.schedule(SimTime::ZERO, b2, TMsg::Val(0));
        sharded.schedule(SimTime::ZERO, b0, TMsg::Val(0));
        sharded.run();
        let got = &sharded.component::<Sink>(sink).unwrap().got;
        let values: Vec<u64> = got.iter().map(|&(_, v)| v).collect();
        // Local (shard 0) events keep their pre-merge queue position;
        // mailbox arrivals follow in (source shard, send order) order.
        assert_eq!(values, vec![1, 2, 10, 11, 20, 21]);
        assert!(got.iter().all(|&(at, _)| at == HOP * 2));
    }

    #[test]
    fn zero_delay_self_loop_stays_in_shard() {
        // Zero-delay sends *within* a shard are legal under any
        // lookahead — only cross-shard messages owe the window bound.
        #[derive(Clone)]
        struct SelfLoop {
            left: u64,
            done_to: ComponentId,
        }
        impl Component<TMsg> for SelfLoop {
            crate::clone_snapshot!();

            fn handle(&mut self, ctx: &mut Ctx<'_, TMsg>, msg: TMsg) {
                let TMsg::Val(n) = msg else { panic!("Val expected") };
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send_self(SimTime::ZERO, TMsg::Val(n + 1));
                } else {
                    ctx.send(self.done_to, HOP, TMsg::Val(n));
                }
            }
        }
        let mut sim = Simulator::new();
        let sink = sim.reserve();
        let looper = sim.add_component(SelfLoop { left: 500, done_to: sink });
        sim.install(sink, Sink { got: vec![] });
        let mut sharded = ShardedSimulator::from_simulator(sim, vec![1, 0], 2, HOP);
        sharded.schedule(SimTime::ZERO, looper, TMsg::Val(0));
        sharded.run();
        let got = &sharded.component::<Sink>(sink).unwrap().got;
        assert_eq!(got, &vec![(HOP, 500)]);
        assert_eq!(sharded.events_delivered(), 502);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn cross_shard_send_below_lookahead_panics() {
        let mut sim = Simulator::new();
        let sink = sim.reserve();
        let b = sim.add_component(Burster {
            sink,
            shots: vec![(SimTime::ZERO, 1)], // zero-delay *cross-shard* send
        });
        sim.install(sink, Sink { got: vec![] });
        let mut sharded = ShardedSimulator::from_simulator(sim, vec![0, 1], 2, HOP);
        sharded.schedule(SimTime::ZERO, b, TMsg::Val(0));
        sharded.run();
    }

    #[test]
    fn pages_relocate_across_shards() {
        /// Allocates a page in its own shard and mails the handle.
        #[derive(Clone)]
        struct Producer {
            to: ComponentId,
        }
        impl Component<TMsg> for Producer {
            crate::clone_snapshot!();

            fn handle(&mut self, ctx: &mut Ctx<'_, TMsg>, _msg: TMsg) {
                let page = ctx.pages().alloc_from(b"cross-shard page payload");
                ctx.send(self.to, HOP, TMsg::Page(page));
            }
        }
        /// Consumes the relocated page from its own shard's store.
        #[derive(Clone)]
        struct Consumer {
            seen: Vec<Vec<u8>>,
        }
        impl Component<TMsg> for Consumer {
            crate::clone_snapshot!();

            fn handle(&mut self, ctx: &mut Ctx<'_, TMsg>, msg: TMsg) {
                let TMsg::Page(page) = msg else { panic!("Page expected") };
                self.seen.push(ctx.pages().take(page));
            }
        }
        for exec in [
            ExecMode::Auto,
            ExecMode::Threads,
            ExecMode::Cooperative,
            ExecMode::Optimistic,
        ] {
            let mut sim = Simulator::new();
            let consumer = sim.reserve();
            let producer = sim.add_component(Producer { to: consumer });
            sim.install(consumer, Consumer { seen: vec![] });
            let mut sharded = ShardedSimulator::from_simulator(sim, vec![0, 1], 2, HOP);
            sharded.set_exec_mode(exec);
            sharded.schedule(SimTime::ZERO, producer, TMsg::Val(0));
            sharded.run();
            assert_eq!(
                sharded.component::<Consumer>(consumer).unwrap().seen,
                vec![b"cross-shard page payload".to_vec()],
                "{exec:?}"
            );
            // The producing shard's segment was drained by detach, the
            // consuming shard's by the consumer: globally quiescent.
            sharded.assert_quiescent();
        }
    }

    #[test]
    fn scheduling_between_runs_continues_the_clock() {
        let (sim, a, b) = bounce_world();
        let mut sharded = ShardedSimulator::from_simulator(sim, vec![0, 1], 2, HOP);
        sharded.schedule(SimTime::ZERO, a, TMsg::Val(3));
        sharded.run();
        let after_first = sharded.now();
        assert!(after_first > SimTime::ZERO);
        sharded.schedule(SimTime::ZERO, b, TMsg::Val(2));
        sharded.run();
        assert!(sharded.now() > after_first);
        assert_eq!(sharded.events_delivered(), 4 + 3);
        let _ = (a, b);
    }

    #[test]
    #[should_panic(expected = "uninstalled component")]
    fn cross_shard_send_to_vacant_slot_panics() {
        let mut sim = Simulator::new();
        let vacant = sim.reserve();
        let b = sim.add_component(Burster {
            sink: vacant,
            shots: vec![(HOP, 1)],
        });
        let mut sharded = ShardedSimulator::from_simulator(sim, vec![UNOWNED, 0], 2, HOP);
        sharded.schedule(SimTime::ZERO, b, TMsg::Val(0));
        sharded.run();
    }

    /// Three-party bounce for the matrix tests: a -> b -> c -> a with
    /// distinct latencies, so a non-uniform matrix is honest.
    fn triangle_world() -> (Simulator<TMsg>, [ComponentId; 3]) {
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        let c = sim.reserve();
        sim.install(a, Bouncer { peer: b, delay: HOP, log: vec![] });
        sim.install(b, Bouncer { peer: c, delay: HOP * 4, log: vec![] });
        sim.install(c, Bouncer { peer: a, delay: HOP * 2, log: vec![] });
        (sim, [a, b, c])
    }

    #[test]
    fn non_uniform_matrix_matches_sequential() {
        let (mut seq, [a, b, c]) = triangle_world();
        seq.schedule(SimTime::ZERO, a, TMsg::Val(60));
        seq.run();

        // Honest per-pair matrix: each entry is the latency of the one
        // link that crosses that pair (generous where no link exists —
        // b never sends to a directly, etc.).
        let la = |u: u64| HOP * u;
        let matrix = vec![
            vec![SimTime::ZERO, la(1), la(3)],
            vec![la(6), SimTime::ZERO, la(4)],
            vec![la(2), la(6), SimTime::ZERO],
        ];
        let (sim, [a2, b2, c2]) = triangle_world();
        let mut sharded = ShardedSimulator::with_lookaheads(sim, vec![0, 1, 2], 3, matrix);
        assert_eq!(sharded.lookahead(), la(1));
        assert_eq!(sharded.lookahead_between(1, 0), la(6));
        sharded.schedule(SimTime::ZERO, a2, TMsg::Val(60));
        sharded.run();

        assert_eq!(sharded.events_delivered(), seq.events_delivered());
        assert_eq!(sharded.now(), seq.now());
        for (s, q) in [(a2, a), (b2, b), (c2, c)] {
            assert_eq!(
                sharded.component::<Bouncer>(s).unwrap().log,
                seq.component::<Bouncer>(q).unwrap().log,
            );
        }
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn send_below_pair_lookahead_panics() {
        // The global minimum (0 -> 1 at HOP) would admit this send; the
        // *pair* lookahead 1 -> 0 of 3*HOP must still catch it.
        let mut sim = Simulator::new();
        let sink = sim.reserve();
        let b = sim.add_component(Burster {
            sink,
            shots: vec![(HOP * 2, 1)],
        });
        sim.install(sink, Sink { got: vec![] });
        let matrix = vec![
            vec![SimTime::ZERO, HOP],
            vec![HOP * 3, SimTime::ZERO],
        ];
        let mut sharded = ShardedSimulator::with_lookaheads(sim, vec![0, 1], 2, matrix);
        sharded.schedule(SimTime::ZERO, b, TMsg::Val(0));
        sharded.run();
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn send_below_pair_lookahead_panics_cooperative() {
        // Same violation as above, but with Cooperative rounds forced:
        // the check must hold in both exec modes (send-site assert,
        // backed by the merge-phase debug assertion that names the
        // offending shard pair).
        let mut sim = Simulator::new();
        let sink = sim.reserve();
        let b = sim.add_component(Burster {
            sink,
            shots: vec![(HOP * 2, 1)],
        });
        sim.install(sink, Sink { got: vec![] });
        let matrix = vec![
            vec![SimTime::ZERO, HOP],
            vec![HOP * 3, SimTime::ZERO],
        ];
        let mut sharded = ShardedSimulator::with_lookaheads(sim, vec![0, 1], 2, matrix);
        sharded.set_exec_mode(ExecMode::Cooperative);
        sharded.schedule(SimTime::ZERO, b, TMsg::Val(0));
        sharded.run();
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_off_diagonal_lookahead_rejected() {
        let (sim, _) = triangle_world();
        let matrix = vec![
            vec![SimTime::ZERO, HOP, HOP],
            vec![HOP, SimTime::ZERO, SimTime::ZERO],
            vec![HOP, HOP, SimTime::ZERO],
        ];
        let _ = ShardedSimulator::with_lookaheads(sim, vec![0, 1, 2], 3, matrix);
    }

    #[test]
    #[should_panic(expected = "one lookahead row per shard")]
    fn wrong_matrix_shape_rejected() {
        let (sim, _) = triangle_world();
        let matrix = vec![vec![SimTime::ZERO, HOP], vec![HOP, SimTime::ZERO]];
        let _ = ShardedSimulator::with_lookaheads(sim, vec![0, 1, 2], 3, matrix);
    }

    #[test]
    fn threaded_and_cooperative_modes_are_bit_identical() {
        // Same world, same injection, opposite ExecMode forced: every
        // observable — delivery logs with timestamps, event totals,
        // clock, round count — must match exactly, because the modes
        // only move the identical rounds between threads.
        let run = |exec: ExecMode| {
            let (sim, [a, b, c]) = triangle_world();
            let la = |u: u64| HOP * u;
            let matrix = vec![
                vec![SimTime::ZERO, la(1), la(3)],
                vec![la(6), SimTime::ZERO, la(4)],
                vec![la(2), la(6), SimTime::ZERO],
            ];
            let mut sharded = ShardedSimulator::with_lookaheads(sim, vec![0, 1, 2], 3, matrix);
            sharded.set_exec_mode(exec);
            assert_eq!(sharded.exec_mode(), exec);
            sharded.schedule(SimTime::ZERO, a, TMsg::Val(60));
            sharded.run();
            (
                sharded.events_delivered(),
                sharded.now(),
                sharded.sync_rounds(),
                [a, b, c].map(|id| sharded.component::<Bouncer>(id).unwrap().log.clone()),
            )
        };
        assert_eq!(run(ExecMode::Threads), run(ExecMode::Cooperative));
    }

    #[test]
    fn cooperative_mode_relocates_pages_and_stays_quiescent() {
        let (sim, a, _) = bounce_world();
        let mut sharded = ShardedSimulator::from_simulator(sim, vec![0, 1], 2, HOP);
        sharded.set_exec_mode(ExecMode::Cooperative);
        sharded.schedule(SimTime::ZERO, a, TMsg::Val(25));
        sharded.run();
        assert_eq!(sharded.events_delivered(), 26);
        sharded.assert_quiescent();
    }

    #[test]
    fn optimistic_mode_is_bit_identical_to_every_other_mode() {
        let run = |exec: ExecMode| {
            let (sim, [a, b, c]) = triangle_world();
            let la = |u: u64| HOP * u;
            let matrix = vec![
                vec![SimTime::ZERO, la(1), la(3)],
                vec![la(6), SimTime::ZERO, la(4)],
                vec![la(2), la(6), SimTime::ZERO],
            ];
            let mut sharded = ShardedSimulator::with_lookaheads(sim, vec![0, 1, 2], 3, matrix);
            sharded.set_exec_mode(exec);
            sharded.schedule(SimTime::ZERO, a, TMsg::Val(60));
            sharded.run();
            (
                sharded.events_delivered(),
                sharded.now(),
                sharded.sync_rounds(),
                [a, b, c].map(|id| sharded.component::<Bouncer>(id).unwrap().log.clone()),
            )
        };
        let base = run(ExecMode::Cooperative);
        assert_eq!(run(ExecMode::Threads), base);
        // Speculation may commit or roll back round by round, but the
        // committed results — logs with timestamps, totals, clock, even
        // the round count — must be exactly the conservative ones.
        assert_eq!(run(ExecMode::Optimistic), base);
    }

    #[test]
    fn counters_agree_across_exec_modes_and_successive_runs() {
        // `sync_rounds()` / `events_delivered()` are published per round
        // in every mode, accumulate across run() calls, and agree across
        // modes on the same workload.
        let observe = |exec: ExecMode| {
            let (sim, a, b) = bounce_world();
            let mut sharded = ShardedSimulator::from_simulator(sim, vec![0, 1], 2, HOP);
            sharded.set_exec_mode(exec);
            sharded.schedule(SimTime::ZERO, a, TMsg::Val(30));
            sharded.run();
            let mid = (sharded.sync_rounds(), sharded.events_delivered());
            sharded.schedule(SimTime::ZERO, b, TMsg::Val(11));
            sharded.run();
            let end = (sharded.sync_rounds(), sharded.events_delivered());
            assert!(
                end.0 > mid.0 && end.1 > mid.1,
                "{exec:?}: counters must accumulate across runs ({mid:?} -> {end:?})"
            );
            (mid, end)
        };
        let base = observe(ExecMode::Cooperative);
        assert_eq!(observe(ExecMode::Threads), base);
        assert_eq!(observe(ExecMode::Optimistic), base);
        assert_eq!(observe(ExecMode::Auto), base);
    }

    /// Counts down `left` local steps of `HOP / 4`, cycling a stashed
    /// page through the store on every step — so a rollback must
    /// restore component state *and* page slots in lockstep.
    #[derive(Clone)]
    struct Churner {
        left: u64,
        stash: Option<PageRef>,
        log: Vec<(SimTime, u64)>,
    }

    impl Component<TMsg> for Churner {
        crate::clone_snapshot!();

        fn handle(&mut self, ctx: &mut Ctx<'_, TMsg>, msg: TMsg) {
            let TMsg::Val(n) = msg else { panic!("Val expected") };
            self.log.push((ctx.now(), n));
            if let Some(page) = self.stash.take() {
                let bytes = ctx.pages().take(page);
                assert_eq!(bytes, self.left.to_le_bytes(), "stashed page survived intact");
            }
            if self.left > 0 {
                self.left -= 1;
                self.stash = Some(ctx.pages().alloc_from(&self.left.to_le_bytes()));
                ctx.send_self(HOP / 4, TMsg::Val(n + 1));
            }
        }
    }

    fn churn_world() -> (Simulator<TMsg>, ComponentId, ComponentId) {
        let mut sim = Simulator::new();
        let churner = sim.reserve();
        let kicker = sim.add_component(Burster {
            sink: churner,
            shots: vec![(HOP * 3, 999)],
        });
        // Long enough (100 * HOP of local work, ~2 * HOP of bound
        // advance per round) that after the straggler's rollbacks have
        // shrunk the window, plenty of windows remain to commit.
        sim.install(churner, Churner { left: 400, stash: None, log: vec![] });
        (sim, churner, kicker)
    }

    #[test]
    fn straggler_below_speculated_horizon_forces_rollback() {
        let (mut seq, churner, kicker) = churn_world();
        seq.schedule(SimTime::ZERO, churner, TMsg::Val(0));
        seq.schedule(SimTime::ZERO, kicker, TMsg::Val(0));
        seq.run();

        let (sim, churner2, kicker2) = churn_world();
        let mut sharded = ShardedSimulator::from_simulator(sim, vec![0, 1], 2, HOP);
        sharded.set_exec_mode(ExecMode::Optimistic);
        // A huge pinned window guarantees shard 0 speculates far past
        // the kicker's parcel (which arrives at 3 * HOP): a straggler
        // below the speculated horizon, forcing a rollback. The window
        // then shrinks multiplicatively until later windows commit.
        sharded.set_speculation_window(HOP * 100);
        sharded.schedule(SimTime::ZERO, churner2, TMsg::Val(0));
        sharded.schedule(SimTime::ZERO, kicker2, TMsg::Val(0));
        sharded.run();

        let stats = sharded.shard_stats();
        let lane = &stats.shards[0];
        assert!(lane.rollbacks >= 1, "straggler must roll the window back: {stats:?}");
        assert!(lane.rolled_back_events > 0, "{stats:?}");
        assert!(lane.committed_events > 0, "shrunken windows must commit: {stats:?}");
        assert!(lane.window < HOP * 100, "rollbacks must shrink the window: {stats:?}");
        assert_eq!(sharded.events_delivered(), seq.events_delivered());
        assert_eq!(sharded.now(), seq.now());
        assert_eq!(
            sharded.component::<Churner>(churner2).unwrap().log,
            seq.component::<Churner>(churner).unwrap().log,
        );
        // Rollback must leave no speculative page behind.
        sharded.assert_quiescent();
    }

    #[test]
    fn zero_window_optimistic_degenerates_to_conservative() {
        let (sim, a, _) = bounce_world();
        let mut sharded = ShardedSimulator::from_simulator(sim, vec![0, 1], 2, HOP);
        sharded.set_exec_mode(ExecMode::Optimistic);
        sharded.set_speculation_window(SimTime::ZERO);
        sharded.schedule(SimTime::ZERO, a, TMsg::Val(40));
        sharded.run();
        let stats = sharded.shard_stats();
        for lane in &stats.shards {
            assert_eq!(lane.committed_events, 0, "{stats:?}");
            assert_eq!(lane.rolled_back_events, 0, "{stats:?}");
            assert_eq!(lane.rollbacks, 0, "{stats:?}");
            assert_eq!(lane.window, SimTime::ZERO, "a zero window is never raised");
        }
        let (sim2, a2, _) = bounce_world();
        let mut conservative = ShardedSimulator::from_simulator(sim2, vec![0, 1], 2, HOP);
        conservative.set_exec_mode(ExecMode::Threads);
        conservative.schedule(SimTime::ZERO, a2, TMsg::Val(40));
        conservative.run();
        assert_eq!(sharded.events_delivered(), conservative.events_delivered());
        assert_eq!(sharded.now(), conservative.now());
        assert_eq!(sharded.sync_rounds(), conservative.sync_rounds());
    }

    #[test]
    fn single_shard_degenerates_to_sequential() {
        let (mut seq, a, _) = bounce_world();
        seq.schedule(SimTime::ZERO, a, TMsg::Val(9));
        seq.run();
        let (sim, a2, _) = bounce_world();
        let mut one = ShardedSimulator::from_simulator(sim, vec![0, 0], 1, HOP);
        one.schedule(SimTime::ZERO, a2, TMsg::Val(9));
        one.run();
        assert_eq!(one.events_delivered(), seq.events_delivered());
        assert_eq!(one.now(), seq.now());
    }
}
