//! Deterministic pseudo-randomness for the simulation kernel.
//!
//! The kernel must be reproducible run-to-run, so it carries its own small
//! PRNG (xoshiro256** seeded via SplitMix64) rather than depending on an
//! external crate with thread-local state. Workload *generators* in
//! `bluedbm-workloads` may use `rand`; device models use this.

use std::fmt;

/// A seedable, deterministic PRNG (xoshiro256**).
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl fmt::Debug for Rng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rng").finish_non_exhaustive()
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; the internal state is expanded with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` (Lemire's method, debiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Debiased multiply-shift.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        // Avoid ln(0).
        let u = 1.0 - self.unit_f64();
        -mean * u.ln()
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly choose an element.
    ///
    /// Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

/// A Zipf(n, s) sampler over `{0, 1, .., n-1}` using inverse-CDF lookup.
///
/// Power-law popularity is the access pattern of the paper's motivating
/// workloads (social graphs, twitter feeds); the graph generator uses this
/// to produce skewed degree distributions.
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::rng::{Rng, Zipf};
///
/// let mut rng = Rng::new(7);
/// let zipf = Zipf::new(1000, 1.0);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero elements");
        assert!(s.is_finite() && s >= 0.0, "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when there is exactly one rank (degenerate sampler).
    pub fn is_empty(&self) -> bool {
        false // constructor rejects n == 0
    }

    /// Draw one rank (0 = most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.unit_f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = Rng::new(124);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_bounds() {
        let mut rng = Rng::new(2);
        for _ in 0..100 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval_with_sane_mean() {
        let mut rng = Rng::new(3);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(5);
        const N: usize = 50_000;
        let sum: f64 = (0..N).map(|_| rng.exponential(50.0)).sum();
        let mean = sum / N as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean was {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Rng::new(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Probability all 13 bytes are zero is negligible.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle moved something");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = Rng::new(8);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = Rng::new(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = Rng::new(10);
        let zipf = Zipf::new(100, 1.0);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
        // Rank 0 of Zipf(100, 1.0) has probability 1/H(100) ~ 0.192.
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((p0 - 0.192).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let mut rng = Rng::new(11);
        let zipf = Zipf::new(10, 0.0);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.02, "p = {p}");
        }
        assert_eq!(zipf.len(), 10);
    }
}
