//! The flattened component arena backing a [`Simulator`]'s component
//! table.
//!
//! Components are heterogeneous trait objects, so each one necessarily
//! lives behind its own `Box`; what the arena flattens away is everything
//! *around* the box. The seed kernel stored `Vec<Option<Box<dyn
//! Component>>>` and the dispatcher `take()`-moved the component out of
//! its slot for the duration of every handler call (to split the borrow
//! against the event queues), writing it back afterwards — two `Option`
//! moves plus a discriminant check on the hottest line of the simulator.
//!
//! [`ComponentArena`] stores the boxes **densely**: every slot always
//! holds an installed component, with reserved-but-uninstalled slots
//! occupied by a [`Vacant`] sentinel that panics on delivery. Fetching
//! the component for dispatch is a single bounds-checked index returning
//! `&mut dyn Component<M>`; the borrow split against the event queues is
//! expressed through disjoint `Simulator` fields instead of moving state.
//! Indices are stable for the lifetime of the simulation (components are
//! never removed), and iteration walks a contiguous `Vec` of thin
//! pointers.
//!
//! The arena speaks raw `usize` indices; [`Simulator`] wraps them in
//! [`ComponentId`](crate::engine::ComponentId)s at its public surface.
//!
//! [`Simulator`]: crate::engine::Simulator

use std::any::Any;

use crate::engine::{Component, Ctx, Message};

/// Sentinel occupying a reserved slot until [`ComponentArena::install`]
/// replaces it. Delivery to a vacant slot is a wiring bug and panics.
struct Vacant;

impl<M: Message> Component<M> for Vacant {
    fn handle(&mut self, ctx: &mut Ctx<'_, M>, _msg: M) {
        panic!(
            "message sent to uninstalled component {:?}",
            ctx.self_id()
        );
    }
}

/// Dense, stable-index storage for a simulation's components.
pub(crate) struct ComponentArena<M: Message> {
    entries: Vec<Box<dyn Component<M>>>,
}

impl<M: Message> ComponentArena<M> {
    pub(crate) fn new() -> Self {
        ComponentArena {
            entries: Vec::new(),
        }
    }

    /// Number of slots (installed + reserved).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Append an installed component; returns its stable index.
    pub(crate) fn add(&mut self, component: Box<dyn Component<M>>) -> usize {
        self.entries.push(component);
        self.entries.len() - 1
    }

    /// Append a vacant slot; returns its stable index.
    pub(crate) fn reserve(&mut self) -> usize {
        self.entries.push(Box::new(Vacant));
        self.entries.len() - 1
    }

    /// `true` if `index` exists and still holds the [`Vacant`] sentinel.
    pub(crate) fn is_vacant(&self, index: usize) -> bool {
        self.entries
            .get(index)
            .is_some_and(|c| (c.as_ref() as &dyn Any).is::<Vacant>())
    }

    /// Install a component into a reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already installed (or out of range).
    pub(crate) fn install(&mut self, index: usize, component: Box<dyn Component<M>>) {
        assert!(
            self.is_vacant(index),
            "component slot c{index} already installed"
        );
        self.entries[index] = component;
    }

    /// The hot-path fetch: one bounds-checked index, no `Option` moves.
    /// Vacant slots are returned as the sentinel, whose handler panics
    /// with the uninstalled-component diagnostic on delivery.
    #[inline]
    pub(crate) fn get_mut(&mut self, index: usize) -> &mut dyn Component<M> {
        self.entries[index].as_mut()
    }

    /// Shared access, `None` when out of range. Vacant slots come back as
    /// the sentinel; callers downcasting to a concrete type observe them
    /// as absent, exactly like the old `Option` table.
    #[inline]
    pub(crate) fn get(&self, index: usize) -> Option<&dyn Component<M>> {
        self.entries.get(index).map(|c| c.as_ref())
    }

    /// Exclusive access, `None` when out of range.
    #[inline]
    pub(crate) fn get_mut_checked(&mut self, index: usize) -> Option<&mut dyn Component<M>> {
        self.entries.get_mut(index).map(|c| c.as_mut())
    }

    /// Dense iteration over every slot in index order (vacant slots
    /// included, as the sentinel).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &dyn Component<M>> {
        self.entries.iter().map(|c| c.as_ref())
    }

    /// Dismantle the arena into its boxes, in index order (vacant slots
    /// come out as the sentinel). Used by the sharded runtime to deal an
    /// already-built component graph onto per-shard arenas.
    pub(crate) fn into_boxes(self) -> Vec<Box<dyn Component<M>>> {
        self.entries
    }

    /// Number of slots holding a real component (dense sweep; excludes
    /// reserved-but-uninstalled slots).
    pub(crate) fn installed_count(&self) -> usize {
        self.iter()
            .filter(|c| !(*c as &dyn Any).is::<Vacant>())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Unit(u32);
    impl Component<u32> for Unit {
        fn handle(&mut self, _ctx: &mut Ctx<'_, u32>, msg: u32) {
            self.0 += msg;
        }
    }

    #[test]
    fn add_reserve_install_lifecycle() {
        let mut arena = ComponentArena::<u32>::new();
        let a = arena.add(Box::new(Unit(0)));
        let r = arena.reserve();
        assert_eq!((a, r), (0, 1));
        assert!(!arena.is_vacant(a));
        assert!(arena.is_vacant(r));
        arena.install(r, Box::new(Unit(7)));
        assert!(!arena.is_vacant(r));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_rejected() {
        let mut arena = ComponentArena::<u32>::new();
        let r = arena.reserve();
        arena.install(r, Box::new(Unit(0)));
        arena.install(r, Box::new(Unit(1)));
    }

    #[test]
    fn dense_iteration_visits_every_slot_in_order() {
        let mut arena = ComponentArena::<u32>::new();
        arena.add(Box::new(Unit(0)));
        arena.reserve();
        arena.add(Box::new(Unit(2)));
        let kinds: Vec<bool> = (0..arena.len())
            .map(|i| arena.is_vacant(i))
            .collect();
        assert_eq!(kinds, vec![false, true, false]);
        assert_eq!(arena.iter().count(), 3);
        assert_eq!(arena.installed_count(), 2);
    }

    #[test]
    fn out_of_range_is_none_not_panic() {
        let mut arena = ComponentArena::<u32>::new();
        assert!(arena.get(3).is_none());
        assert!(arena.get_mut_checked(3).is_none());
        assert!(!arena.is_vacant(3));
    }
}
