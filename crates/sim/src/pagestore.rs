//! The simulator-owned page store: fixed-size payload buffers behind
//! small generation-tagged handles.
//!
//! BlueDBM's host interface hands software a fixed pool of page buffers
//! with free-queue discipline (paper Section 3.3); the hardware moves
//! *buffer indices*, never page contents. [`PageStore`] is that idea
//! applied to the whole simulation: page payloads live in a slab owned by
//! the [`Simulator`](crate::engine::Simulator), and messages carry an
//! 8-byte [`PageRef`] instead of an inline `Vec<u8>`. A page crosses the
//! flash controller, the splitter, the storage network and the PCIe link
//! as one handle copy per hop; the bytes are written once at the
//! producer and read once at the consumer.
//!
//! Handles are **generation-tagged**: every slot carries a counter that
//! bumps on free, and a [`PageRef`] is only valid while its generation
//! matches. Use-after-free and double-free therefore panic immediately
//! with the offending handle, instead of silently aliasing a recycled
//! buffer — the DES analogue of the hardware rule that a buffer index
//! must not be reused while the DMA engine still owns it.
//!
//! The store also audits leaks: components are expected to free (or
//! [`take`](PageStore::take)) every page they consume, and
//! [`assert_quiescent`](PageStore::assert_quiescent) panics at
//! simulation end if any page is still live — a leaked page means some
//! handler dropped a handle on the floor, which in the real system would
//! permanently shrink the 128-buffer pool.

use std::fmt;

/// Handle to one page in a [`PageStore`]: a slot index plus the slot
/// generation the handle was minted under. Eight bytes, `Copy` — this is
/// what messages carry instead of page contents.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRef {
    idx: u32,
    gen: u32,
}

impl PageRef {
    /// The slot index (diagnostics; not an accessor into the store).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }

    /// The generation this handle was minted under.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

impl fmt::Debug for PageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}g{}", self.idx, self.gen)
    }
}

/// One slab slot: the buffer (capacity retained across reuse), the live
/// length of the current page, and the generation counter.
#[derive(Clone)]
struct PageSlot {
    buf: Box<[u8]>,
    len: u32,
    gen: u32,
    live: bool,
}

/// One mutation of a store's free-list stack, journalled during
/// speculation so rollback can replay the exact inverse sequence. Shared
/// with [`crate::pool`], whose free lists have the same pure-stack
/// discipline. Logging the *operations* instead of cloning the stack is
/// what keeps checkpoints O(touched) — the kv workload's free lists run
/// to ~10^5 entries and a checkpoint opens every sync round.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FreeListOp {
    /// `pop()` returned this index; rollback pushes it back.
    Popped(u32),
    /// An index was pushed; rollback pops it.
    Pushed,
}

/// Undo journal for one speculation window over a [`PageStore`]. Slots
/// are captured copy-on-write: the first mutation of a pre-checkpoint
/// slot clones it into `saved`; slots created during speculation
/// (`idx >= slots_len`) are simply truncated away on rollback. Free-list
/// mutations replay in reverse through `free_ops`. Exact restoration of
/// slot indices matters here — unlike event-arena slots, a [`PageRef`]'s
/// index is stored in component state and digests, so re-execution must
/// re-allocate the very same slots.
struct PageJournal {
    slots_len: usize,
    live: usize,
    peak_live: usize,
    allocs: u64,
    frees: u64,
    free_ops: Vec<FreeListOp>,
    saved: Vec<(u32, PageSlot)>,
}

/// Slab of page buffers with free-list reuse and generation-tagged
/// handles. Owned by the simulator; components reach it through
/// [`Ctx::pages`](crate::engine::Ctx::pages).
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::PageStore;
///
/// let mut store = PageStore::new();
/// let page = store.alloc_from(b"page contents");
/// assert_eq!(store.get(page), b"page contents");
/// let copied = store.take(page); // copy out + free in one step
/// assert_eq!(copied, b"page contents");
/// store.assert_quiescent(); // nothing leaked
/// ```
#[derive(Default)]
pub struct PageStore {
    slots: Vec<PageSlot>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
    allocs: u64,
    frees: u64,
    /// Open speculation journal, if any (see [`checkpoint_begin`]).
    ///
    /// [`checkpoint_begin`]: PageStore::checkpoint_begin
    journal: Option<Box<PageJournal>>,
    /// Persistent already-saved marker per slot, reset via the journal's
    /// saved list on commit/rollback — never re-zeroed wholesale, so a
    /// checkpoint costs O(slots touched), not O(slot count).
    saved_mark: Vec<bool>,
}

impl PageStore {
    /// An empty store. Slots are created on demand and reused through the
    /// free list, so steady-state load allocates no new buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the slot for a handle, panicking on stale generations.
    #[inline]
    fn slot(&self, r: PageRef) -> &PageSlot {
        let slot = &self.slots[r.idx as usize];
        assert!(
            slot.live && slot.gen == r.gen,
            "stale page handle {r:?} (slot is at g{}, {})",
            slot.gen,
            if slot.live { "live" } else { "free" },
        );
        slot
    }

    /// Allocate a page of `len` bytes with **unspecified contents** (the
    /// producer is expected to overwrite it; freshly created slots happen
    /// to be zeroed, reused ones carry the previous page's bytes). This
    /// is the fast path for payloads that are filled immediately, e.g.
    /// flash read data.
    pub fn alloc(&mut self, len: usize) -> PageRef {
        let len32 = u32::try_from(len).expect("page length fits u32");
        let idx = match self.free.pop() {
            Some(idx) => {
                if self.journal.is_some() {
                    self.journal_free_op(FreeListOp::Popped(idx));
                    self.journal_slot(idx);
                }
                let slot = &mut self.slots[idx as usize];
                debug_assert!(!slot.live);
                if slot.buf.len() < len {
                    slot.buf = vec![0u8; len].into_boxed_slice();
                }
                slot.len = len32;
                slot.live = true;
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("slot index fits u32");
                self.slots.push(PageSlot {
                    buf: vec![0u8; len].into_boxed_slice(),
                    len: len32,
                    gen: 0,
                    live: true,
                });
                idx
            }
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.allocs += 1;
        PageRef {
            idx,
            gen: self.slots[idx as usize].gen,
        }
    }

    /// Allocate a zero-filled page of `len` bytes.
    pub fn alloc_zeroed(&mut self, len: usize) -> PageRef {
        let r = self.alloc(len);
        self.slots[r.idx as usize].buf[..len].fill(0);
        r
    }

    /// Allocate a page holding a copy of `data`.
    pub fn alloc_from(&mut self, data: &[u8]) -> PageRef {
        let r = self.alloc(data.len());
        self.slots[r.idx as usize].buf[..data.len()].copy_from_slice(data);
        r
    }

    /// The page contents.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (freed, or from a recycled slot).
    #[inline]
    pub fn get(&self, r: PageRef) -> &[u8] {
        let slot = self.slot(r);
        &slot.buf[..slot.len as usize]
    }

    /// Mutable page contents (the producer's fill path).
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    #[inline]
    pub fn get_mut(&mut self, r: PageRef) -> &mut [u8] {
        self.slot(r); // validate
        if self.journal.is_some() {
            self.journal_slot(r.idx);
        }
        let slot = &mut self.slots[r.idx as usize];
        &mut slot.buf[..slot.len as usize]
    }

    /// Length of the page behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    #[inline]
    pub fn len(&self, r: PageRef) -> usize {
        self.slot(r).len as usize
    }

    /// `true` while `r` refers to a live page (its slot has not been
    /// freed or recycled). Freed handles stay invalid forever: the slot
    /// generation has moved on.
    #[inline]
    pub fn is_live(&self, r: PageRef) -> bool {
        self.slots
            .get(r.idx as usize)
            .is_some_and(|s| s.live && s.gen == r.gen)
    }

    /// Return a page to the free list; the handle (and any copy of it)
    /// becomes stale.
    ///
    /// # Panics
    ///
    /// Panics on double free or a stale handle.
    pub fn free(&mut self, r: PageRef) {
        self.slot(r); // validate
        if self.journal.is_some() {
            self.journal_slot(r.idx);
            self.journal_free_op(FreeListOp::Pushed);
        }
        let slot = &mut self.slots[r.idx as usize];
        slot.live = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        self.live -= 1;
        self.frees += 1;
    }

    /// Copy the page out and free it — the "software consumed the
    /// buffer" idiom at the simulation boundary.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn take(&mut self, r: PageRef) -> Vec<u8> {
        let data = self.get(r).to_vec();
        self.free(r);
        data
    }

    /// Copy-on-write capture: save slot `idx` into the open journal the
    /// first time speculation touches it. Slots born during the
    /// speculation (`idx >= slots_len`) are never saved — rollback just
    /// truncates them.
    #[inline]
    fn journal_slot(&mut self, idx: u32) {
        let j = self.journal.as_deref_mut().expect("journal is open");
        let i = idx as usize;
        if i >= j.slots_len || self.saved_mark[i] {
            return;
        }
        self.saved_mark[i] = true;
        j.saved.push((idx, self.slots[i].clone()));
    }

    #[inline]
    fn journal_free_op(&mut self, op: FreeListOp) {
        self.journal
            .as_deref_mut()
            .expect("journal is open")
            .free_ops
            .push(op);
    }

    /// Open a speculation checkpoint. Until the matching
    /// [`checkpoint_commit`](Self::checkpoint_commit) or
    /// [`checkpoint_rollback`](Self::checkpoint_rollback), every slot
    /// mutation is captured copy-on-write and every free-list push/pop is
    /// journalled.
    pub(crate) fn checkpoint_begin(&mut self) {
        debug_assert!(self.journal.is_none(), "nested page-store checkpoint");
        if self.saved_mark.len() < self.slots.len() {
            self.saved_mark.resize(self.slots.len(), false);
        }
        self.journal = Some(Box::new(PageJournal {
            slots_len: self.slots.len(),
            live: self.live,
            peak_live: self.peak_live,
            allocs: self.allocs,
            frees: self.frees,
            free_ops: Vec::new(),
            saved: Vec::new(),
        }));
    }

    /// Close the checkpoint, keeping all speculative mutations.
    pub(crate) fn checkpoint_commit(&mut self) {
        let j = *self.journal.take().expect("commit without checkpoint");
        for (idx, _slot) in &j.saved {
            self.saved_mark[*idx as usize] = false;
        }
    }

    /// Close the checkpoint and restore the store exactly: replay the
    /// free-list ops in reverse, drop slots born during the speculation,
    /// reinstate every saved slot (contents, length, generation and
    /// liveness) and rewind the counters.
    pub(crate) fn checkpoint_rollback(&mut self) {
        let j = *self.journal.take().expect("rollback without checkpoint");
        for op in j.free_ops.into_iter().rev() {
            match op {
                FreeListOp::Popped(idx) => self.free.push(idx),
                FreeListOp::Pushed => {
                    self.free.pop().expect("journalled push to undo");
                }
            }
        }
        self.slots.truncate(j.slots_len);
        for (idx, slot) in j.saved {
            self.saved_mark[idx as usize] = false;
            self.slots[idx as usize] = slot;
        }
        self.live = j.live;
        self.peak_live = j.peak_live;
        self.allocs = j.allocs;
        self.frees = j.frees;
    }

    /// Pages currently live (allocated and not yet freed).
    #[inline]
    pub fn live_pages(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously live pages.
    #[inline]
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total allocations performed.
    #[inline]
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Slots ever created (live + free); stays flat under steady-state
    /// load thanks to the free list.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Leak audit: panics unless every allocated page has been freed.
    /// Call at simulation end — a live page here means a handler dropped
    /// a handle without consuming it, which in the real system would
    /// permanently shrink the buffer pool.
    ///
    /// # Panics
    ///
    /// Panics if any page is still live, naming the first few leaked
    /// slots.
    pub fn assert_quiescent(&self) {
        if self.live == 0 {
            return;
        }
        let leaked: Vec<PageRef> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live)
            .take(8)
            .map(|(i, s)| PageRef {
                idx: i as u32,
                gen: s.gen,
            })
            .collect();
        panic!(
            "page store is not quiescent: {} page(s) leaked (first: {:?}; {} allocs / {} frees)",
            self.live, leaked, self.allocs, self.frees
        );
    }
}

impl fmt::Debug for PageStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageStore")
            .field("slots", &self.slots.len())
            .field("live", &self.live)
            .field("peak_live", &self.peak_live)
            .field("allocs", &self.allocs)
            .field("frees", &self.frees)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_free_round_trip() {
        let mut s = PageStore::new();
        let a = s.alloc_from(b"hello");
        let b = s.alloc_zeroed(3);
        assert_eq!(s.get(a), b"hello");
        assert_eq!(s.get(b), &[0, 0, 0]);
        assert_eq!(s.len(a), 5);
        assert_eq!(s.live_pages(), 2);
        s.get_mut(b).copy_from_slice(b"abc");
        assert_eq!(s.take(b), b"abc");
        s.free(a);
        assert_eq!(s.live_pages(), 0);
        s.assert_quiescent();
    }

    #[test]
    fn slots_are_reused_with_fresh_generations() {
        let mut s = PageStore::new();
        let a = s.alloc_from(&[1, 2, 3, 4]);
        let idx = a.index();
        s.free(a);
        let b = s.alloc_from(&[9]);
        assert_eq!(b.index(), idx, "free list must recycle the slot");
        assert_ne!(b.generation(), a.generation());
        assert!(!s.is_live(a));
        assert!(s.is_live(b));
        assert_eq!(s.get(b), &[9], "shorter page must not expose old bytes");
        assert_eq!(s.slot_count(), 1);
        s.free(b);
    }

    #[test]
    fn steady_state_reuse_keeps_slab_flat() {
        let mut s = PageStore::new();
        for i in 0..10_000u64 {
            let r = s.alloc_from(&i.to_le_bytes());
            assert_eq!(s.get(r), &i.to_le_bytes());
            s.free(r);
        }
        assert_eq!(s.slot_count(), 1);
        assert_eq!(s.peak_live(), 1);
        s.assert_quiescent();
    }

    #[test]
    fn buffers_grow_to_fit_larger_reallocations() {
        let mut s = PageStore::new();
        let a = s.alloc_from(&[7; 16]);
        s.free(a);
        let b = s.alloc_from(&[8; 64]);
        assert_eq!(s.get(b), &[8; 64]);
        s.free(b);
    }

    #[test]
    #[should_panic(expected = "stale page handle")]
    fn double_free_panics() {
        let mut s = PageStore::new();
        let a = s.alloc(4);
        s.free(a);
        s.free(a);
    }

    #[test]
    #[should_panic(expected = "stale page handle")]
    fn use_after_free_panics() {
        let mut s = PageStore::new();
        let a = s.alloc(4);
        s.free(a);
        let _ = s.get(a);
    }

    #[test]
    #[should_panic(expected = "stale page handle")]
    fn recycled_slot_rejects_old_handle() {
        let mut s = PageStore::new();
        let a = s.alloc(4);
        s.free(a);
        let _b = s.alloc(4); // same slot, new generation
        let _ = s.get(a);
    }

    #[test]
    #[should_panic(expected = "not quiescent")]
    fn leak_audit_catches_live_pages() {
        let mut s = PageStore::new();
        let _leaked = s.alloc(8);
        s.assert_quiescent();
    }

    #[test]
    fn checkpoint_rollback_restores_slots_free_list_and_counters() {
        let mut s = PageStore::new();
        let keep = s.alloc_from(b"committed");
        let doomed = s.alloc_from(b"scratch");
        s.free(doomed); // slot 1 is on the free list at the checkpoint
        let (live, peak, allocs) = (s.live_pages(), s.peak_live(), s.allocs());

        s.checkpoint_begin();
        // Mutate a pre-checkpoint page, reuse the freed slot, free a
        // pre-checkpoint page, and grow the slab — every journalled path.
        s.get_mut(keep).copy_from_slice(b"clobbered");
        let reused = s.alloc_from(b"reused slot bytes");
        assert_eq!(reused.index(), doomed.index());
        let fresh = s.alloc_from(b"fresh slot");
        s.free(keep);
        assert!(s.is_live(fresh));
        s.checkpoint_rollback();

        assert_eq!(s.get(keep), b"committed", "contents restored");
        assert!(!s.is_live(reused), "speculative reuse undone");
        assert!(!s.is_live(fresh), "speculative slot dropped");
        assert_eq!(s.slot_count(), 2, "slab truncated to checkpoint size");
        assert_eq!(
            (s.live_pages(), s.peak_live(), s.allocs()),
            (live, peak, allocs),
            "counters rewound"
        );
        // The freed slot must be reusable exactly as before: same index,
        // same generation sequence as a run that never speculated.
        let again = s.alloc_from(b"again");
        assert_eq!(again.index(), doomed.index());
        assert_eq!(again.generation(), reused.generation());
        s.free(again);
        s.free(keep);
        s.assert_quiescent();
    }

    #[test]
    fn checkpoint_commit_keeps_speculative_state() {
        let mut s = PageStore::new();
        let a = s.alloc_from(b"aa");
        s.checkpoint_begin();
        let b = s.alloc_from(b"bb");
        s.free(a);
        s.checkpoint_commit();
        assert!(!s.is_live(a));
        assert_eq!(s.get(b), b"bb");
        // A later checkpoint round must re-save the same slots (the
        // saved marks were cleared on commit).
        s.checkpoint_begin();
        s.get_mut(b).copy_from_slice(b"xx");
        s.checkpoint_rollback();
        assert_eq!(s.get(b), b"bb");
        s.free(b);
        s.assert_quiescent();
    }
}
