//! Measurement primitives: counters, latency histograms, throughput meters.
//!
//! Every experiment in the reproduction reports either a latency
//! distribution (Figures 11, 12, 20) or a sustained throughput (Figures 11,
//! 13, 16–19, 21); these types are the shared instrumentation the device
//! models record into.

use std::fmt;

use crate::time::SimTime;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::stats::Counter;
///
/// let mut reads = Counter::new();
/// reads.add(3);
/// reads.inc();
/// assert_eq!(reads.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Add one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean/min/max tracker (Welford's algorithm for the variance).
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::stats::MeanTracker;
///
/// let mut m = MeanTracker::new();
/// for x in [1.0, 2.0, 3.0] { m.record(x); }
/// assert_eq!(m.mean(), 2.0);
/// assert_eq!(m.min(), Some(1.0));
/// assert_eq!(m.max(), Some(3.0));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanTracker {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A log-bucketed latency histogram with percentile queries.
///
/// Buckets are `(exponent, 16 linear sub-buckets)` over nanosecond values,
/// giving a bounded relative error (< ~6%) at any magnitude from 1 ns to
/// hours — good enough to report p50/p99 storage latencies without storing
/// every sample.
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::stats::Histogram;
/// use bluedbm_sim::time::SimTime;
///
/// let mut h = Histogram::new();
/// for us in [50, 55, 60, 500] {
///     h.record(SimTime::us(us));
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.5) >= SimTime::us(50));
/// assert!(h.max() >= SimTime::us(500));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    // Index = bucket; value = count. Bucket for value v (in ns):
    // v < 16 -> v; otherwise 16 linear sub-buckets per power of two.
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

const SUB: u64 = 16;

fn bucket_of(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros() as u64; // floor(log2(ns)), >= 4
    let sub = (ns >> (exp - 4)) & (SUB - 1);
    ((exp - 3) * SUB + sub) as usize
}

fn bucket_lower_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let exp = idx / SUB + 3;
    let sub = idx % SUB;
    (1 << exp) + (sub << (exp - 4))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, t: SimTime) {
        let ns = t.as_ns();
        let idx = bucket_of(ns);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::ns((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Exact minimum sample (zero when empty).
    pub fn min(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::ns(self.min_ns)
        }
    }

    /// Exact maximum sample (zero when empty).
    pub fn max(&self) -> SimTime {
        SimTime::ns(self.max_ns)
    }

    /// Approximate `p`-th percentile (`p` in `[0, 1]`), as the lower bound
    /// of the bucket containing that rank. Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> SimTime {
        assert!((0.0..=1.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimTime::ns(bucket_lower_bound(idx));
            }
        }
        SimTime::ns(self.max_ns)
    }

    /// Pre-digest the histogram into the fixed percentile points the
    /// metrics registry reports (`bluedbm_trace::HistogramSummary`).
    pub fn summary(&self) -> bluedbm_trace::HistogramSummary {
        bluedbm_trace::HistogramSummary {
            count: self.count,
            mean_ps: self.mean().as_ps(),
            min_ps: self.min().as_ps(),
            max_ps: self.max().as_ps(),
            p50_ps: self.percentile(0.50).as_ps(),
            p99_ps: self.percentile(0.99).as_ps(),
            p999_ps: self.percentile(0.999).as_ps(),
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.max()
        )
    }
}

/// Byte-throughput meter: total bytes over the observation interval.
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::stats::Throughput;
/// use bluedbm_sim::time::SimTime;
///
/// let mut tp = Throughput::new();
/// tp.record(SimTime::ms(1), 1_000_000);
/// tp.record(SimTime::ms(2), 1_000_000);
/// // 2 MB in 2 ms = 1 GB/s.
/// assert!((tp.bytes_per_sec() - 1e9).abs() / 1e9 < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Throughput {
    bytes: u64,
    ops: u64,
    last: SimTime,
}

impl Throughput {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` completed at time `at` (times must be non-decreasing
    /// across calls for the rate to be meaningful).
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        self.bytes += bytes;
        self.ops += 1;
        self.last = self.last.max(at);
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Timestamp of the last completion.
    pub fn last_completion(&self) -> SimTime {
        self.last
    }

    /// Bytes per second over `[0, last_completion]` (0.0 when no time has
    /// passed).
    pub fn bytes_per_sec(&self) -> f64 {
        let secs = self.last.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / secs
        }
    }

    /// Operations per second over `[0, last_completion]`.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.last.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn mean_tracker_statistics() {
        let mut m = MeanTracker::new();
        assert_eq!(m.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!((m.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn bucket_round_trip_ordering() {
        // Bucket lower bounds must be monotone and bucket_of must map each
        // lower bound to its own bucket.
        let mut prev = 0;
        for idx in 0..400 {
            let lb = bucket_lower_bound(idx);
            assert!(lb >= prev, "lower bounds must be monotone");
            assert_eq!(bucket_of(lb), idx, "lb {lb} should land in bucket {idx}");
            prev = lb;
        }
    }

    #[test]
    fn histogram_relative_error_bounded() {
        let mut h = Histogram::new();
        let v = SimTime::us(57); // 57_000 ns, deep in log territory
        h.record(v);
        let p = h.percentile(0.5);
        let err = (v.as_ns() as f64 - p.as_ns() as f64).abs() / v.as_ns() as f64;
        assert!(err < 0.0625, "relative error {err} too large");
    }

    #[test]
    fn histogram_percentiles_ordered() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::us(i));
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 >= SimTime::us(450) && p50 <= SimTime::us(550));
        assert!(p99 >= SimTime::us(900));
        assert_eq!(h.min(), SimTime::us(1));
        assert_eq!(h.max(), SimTime::us(1000));
    }

    #[test]
    fn histogram_empty_behaviour() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.percentile(0.99), SimTime::ZERO);
        assert_eq!(h.min(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_percentile_validates() {
        Histogram::new().percentile(1.5);
    }

    #[test]
    fn histogram_display_is_nonempty() {
        let mut h = Histogram::new();
        h.record(SimTime::us(50));
        let s = h.to_string();
        assert!(s.contains("n=1"));
    }

    #[test]
    fn throughput_rates() {
        let mut tp = Throughput::new();
        for i in 1..=10u64 {
            tp.record(SimTime::ms(i), 8192);
        }
        assert_eq!(tp.total_bytes(), 81_920);
        assert_eq!(tp.ops(), 10);
        assert_eq!(tp.last_completion(), SimTime::ms(10));
        assert!((tp.ops_per_sec() - 1000.0).abs() < 1e-9);
        let expect = 81_920.0 / 0.010;
        assert!((tp.bytes_per_sec() - expect).abs() < 1e-6);
    }

    #[test]
    fn throughput_empty_is_zero() {
        let tp = Throughput::new();
        assert_eq!(tp.bytes_per_sec(), 0.0);
        assert_eq!(tp.ops_per_sec(), 0.0);
    }
}
