//! # bluedbm-sim
//!
//! The discrete-event simulation (DES) substrate used by every hardware
//! model in the BlueDBM reproduction. The paper's artifact is an FPGA
//! system; this crate provides the clock, event queue, resource contention
//! primitives, statistics and deterministic randomness that let the rest of
//! the workspace model that hardware in software.
//!
//! The kernel is dependency-free and fully deterministic: events have a
//! total order (time, then insertion sequence), and all randomness flows
//! from explicitly seeded [`rng::Rng`] instances.
//!
//! ## Example
//!
//! ```rust
//! use bluedbm_sim::engine::{Component, Ctx, Simulator};
//! use bluedbm_sim::time::SimTime;
//! use std::any::Any;
//!
//! /// A component that counts the pings it receives.
//! struct Counter { pings: u64 }
//! struct Ping;
//!
//! impl Component for Counter {
//!     fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Box<dyn Any>) {
//!         if msg.downcast::<Ping>().is_ok() {
//!             self.pings += 1;
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new();
//! let id = sim.add_component(Counter { pings: 0 });
//! sim.schedule(SimTime::us(5), id, Ping);
//! sim.schedule(SimTime::us(9), id, Ping);
//! sim.run();
//! assert_eq!(sim.component::<Counter>(id).unwrap().pings, 2);
//! assert_eq!(sim.now(), SimTime::us(9));
//! ```

pub mod engine;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Component, ComponentId, Ctx, Simulator};
pub use resource::{MultiResource, SerialResource};
pub use rng::Rng;
pub use stats::{Counter, Histogram, MeanTracker, Throughput};
pub use time::{Bandwidth, SimTime};
