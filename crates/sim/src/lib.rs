//! # bluedbm-sim
//!
//! The discrete-event simulation (DES) substrate used by every hardware
//! model in the BlueDBM reproduction. The paper's artifact is an FPGA
//! system; this crate provides the clock, event queue, resource contention
//! primitives, statistics and deterministic randomness that let the rest of
//! the workspace model that hardware in software.
//!
//! The kernel is fully deterministic: events have a total order (time,
//! then insertion sequence), and all randomness flows from explicitly
//! seeded [`rng::Rng`] instances. Event tracing (the `bluedbm_trace`
//! sink reachable from [`Ctx::trace`]) is part of that contract — a
//! captured trace is bit-identical across reruns and engines, and a
//! disabled sink costs one predictable branch per entry point.
//!
//! ## Typed messages
//!
//! A [`Simulator<M>`] is generic over its **message type** `M`: one
//! concrete type (usually an enum) carrying every payload the components
//! of that simulation exchange. Messages travel inline through the event
//! queue — no `Box`, no `dyn Any`, no downcasting — so the per-event cost
//! is a slab write plus a `(time, seq, slot)` entry insertion into a
//! four-ary index heap, and same-instant sends skip the heap entirely.
//! Components live in a flattened arena (one bounds-checked index per
//! fetch), and the bulk runners drain same-instant trains addressed to
//! one component in a single borrow — components can intercept whole
//! trains via [`Component::handle_batch`].
//!
//! Each hardware crate defines a protocol enum for its own components
//! (`bluedbm_flash::FlashMsg`, `bluedbm_net::NetMsg<B>`,
//! `bluedbm_host::HostMsg<B>`) plus a protocol trait that any composed
//! message type implements. The workspace-wide composition lives in
//! `bluedbm_core::Msg`; single-subsystem simulations (unit tests,
//! microbenches, network-only experiments) instantiate the kernel
//! directly over the subsystem's own enum.
//!
//! ## Page payloads travel by handle
//!
//! "Inline" is for *control* fields. Bulk payloads (flash pages) live in
//! the simulator-owned [`PageStore`] and cross the system as 8-byte,
//! generation-tagged [`PageRef`] handles: the producer allocates and
//! fills a page once (`ctx.pages().alloc_from(..)`), every hop moves
//! only the handle, and the single consumer frees it
//! (`ctx.pages().take(..)` to copy out, or `free`). Stale handles and
//! double frees panic immediately; leaks are caught by
//! [`PageStore::assert_quiescent`] at simulation end. This keeps message
//! enums cache-line-sized (`bluedbm_core::Msg` asserts `<= 64` bytes at
//! compile time) and makes fixed buffer budgets — the paper's 128
//! host-interface page buffers, `bluedbm_host::BufferPool` — enforceable
//! as capacity views over the one shared store.
//!
//! Verbose **control blocks** (per-hop wire records, remote requests)
//! get the same treatment through the typed [`PoolStore`]
//! ([`Ctx::pools`]): intern once, move the 8-byte [`PoolRef`], the one
//! consumer takes the object back out — steady-state traffic on those
//! paths allocates nothing.
//!
//! ## Sharded parallel execution
//!
//! [`ShardedSimulator`] runs a partitioned component graph on N worker
//! threads under a conservative (lookahead-based) synchronization
//! protocol with per-pair mailboxes, deterministic barrier merges, and
//! per-shard store segments. Sharded runs are bit-for-bit repeatable
//! and observably identical to the sequential engine — see the
//! [`shard`] module docs for the partitioning rules, the lookahead
//! derivation, and the precise determinism contract. Message types opt
//! in via [`ShardMessage`] (or the [`PlainMessage`] marker when they
//! carry no store handles).
//!
//! ### Adding a new message variant
//!
//! 1. Define the payload struct and add a variant for it to the owning
//!    crate's protocol enum (plus a `From<Payload>` impl for ergonomic
//!    `ctx.send(to, delay, payload)` call sites). Carry bulk data as a
//!    [`PageRef`] into the simulator's [`PageStore`], never as an inline
//!    `Vec<u8>`, and decide which component is the handle's one consumer
//!    (who frees it).
//! 2. Handle the variant in the receiving component's
//!    [`Component::handle`] `match`; unknown variants should `panic!` —
//!    they indicate mis-wiring, not a runtime condition.
//! 3. If the payload must cross the workspace composition, add the
//!    corresponding arm to `bluedbm_core::Msg`'s `From`/protocol impls.
//!    `Msg` is **flat** (one discriminant level) and budgeted: the
//!    compile-time assertion in `bluedbm_core::msg` fails the build if
//!    the new variant pushes `size_of::<Msg>()` past 64 bytes — slim the
//!    variant (handles, interned cold metadata) rather than raising the
//!    budget.
//! 4. If the variant carries a [`PageRef`] or [`PoolRef`], extend
//!    `bluedbm_core::Msg`'s [`ShardMessage`] impl (`detach`/`attach`)
//!    so the payload relocates when the message crosses a shard
//!    boundary; handle-free variants need nothing.
//!
//! ## Example
//!
//! ```rust
//! use bluedbm_sim::engine::{Component, Ctx, Simulator};
//! use bluedbm_sim::time::SimTime;
//!
//! /// The message protocol of this little simulation.
//! enum Msg {
//!     Ping,
//!     Pong { hops: u64 },
//! }
//!
//! /// A component that answers pings.
//! struct Counter { pings: u64 }
//!
//! impl Component<Msg> for Counter {
//!     fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
//!         match msg {
//!             Msg::Ping => {
//!                 self.pings += 1;
//!                 ctx.send_self(SimTime::us(1), Msg::Pong { hops: self.pings });
//!             }
//!             Msg::Pong { .. } => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new();
//! let id = sim.add_component(Counter { pings: 0 });
//! sim.schedule(SimTime::us(5), id, Msg::Ping);
//! sim.schedule(SimTime::us(9), id, Msg::Ping);
//! sim.run();
//! assert_eq!(sim.component::<Counter>(id).unwrap().pings, 2);
//! assert_eq!(sim.now(), SimTime::us(10)); // last ping's pong
//! ```

pub mod affinity;
mod arena;
pub mod engine;
pub mod fxhash;
pub mod pagestore;
pub mod pool;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use engine::{Batch, Component, ComponentId, Ctx, Message, Simulator};
pub use pagestore::{PageRef, PageStore};
pub use pool::{Pool, PoolRef, PoolStore};
pub use resource::{MultiResource, SerialResource};
pub use rng::Rng;
pub use shard::{ExecMode, PlainMessage, ShardLaneStats, ShardMessage, ShardStats, ShardedSimulator};
pub use stats::{Counter, Histogram, MeanTracker, Throughput};
pub use time::{Bandwidth, SimTime};

// Re-exported so downstream crates can configure and harvest tracing
// without a direct `bluedbm_trace` dependency line.
pub use bluedbm_trace::{
    HistogramSummary, MetricsDoc, MetricsNode, MetricsRegistry, TraceCat, TraceConfig, TraceDoc,
    TracePart, TraceSink, Tracer, WallLaneProfile, DRIVER_SHARD, STABLE_CATEGORIES,
};
