//! Worker-core pinning for the sharded runtime.
//!
//! The conservative and optimistic shard engines run one worker thread
//! per shard, exchanging mailboxes through spin-then-park channels every
//! sync round (~tens of thousands of rounds on sub-lookahead
//! topologies). Letting the OS migrate those workers between cores costs
//! twice: the spin windows lose their cached peer state, and a migration
//! in the middle of a round turns the whole barrier into a cache-miss
//! storm. [`pin_to_core`] pins the calling thread to one core via a raw
//! `sched_setaffinity` syscall — raw because this workspace deliberately
//! has no libc dependency — and compiles to a no-op off Linux.
//!
//! Pinning is pure performance: it never affects simulation results (the
//! determinism contract in [`crate::shard`] is scheduling-independent),
//! so the no-op fallback loses nothing but speed.
//!
//! The [`std::thread::available_parallelism`] probe below reads host
//! state, like the `ExecMode::Auto` probe in [`crate::shard`]; both
//! sites are allowlisted for detlint's `no-wallclock` rule because they
//! only ever gate *how* the identical event schedule executes, never
//! what it computes.

/// Largest CPU index representable in the affinity mask passed to the
/// kernel (1024 CPUs, the conventional `cpu_set_t` size).
const MASK_WORDS: usize = 16;

/// Pin the calling thread to `core` (modulo the host's available
/// parallelism, so shard indices map onto real cores on any machine).
/// Returns `true` if the kernel accepted the mask; `false` on
/// non-Linux/unsupported targets or if the syscall failed — callers
/// treat failure as "run unpinned", never as an error.
pub fn pin_to_core(core: usize) -> bool {
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cpus <= 1 {
        // Nothing to distribute over; pinning would only fight the OS.
        return false;
    }
    pin_to_core_raw(core % cpus)
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
fn pin_to_core_raw(core: usize) -> bool {
    if core >= MASK_WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[core / 64] |= 1u64 << (core % 64);
    // sched_setaffinity(pid = 0 → calling thread, cpusetsize, mask).
    let ret = unsafe {
        sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr() as usize)
    };
    ret == 0
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn pin_to_core_raw(_core: usize) -> bool {
    false
}

/// Raw `sched_setaffinity` syscall. The workspace carries no libc crate,
/// so the two supported Linux architectures invoke the kernel directly;
/// the syscall only constrains where *this* thread may be scheduled.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sched_setaffinity(pid: usize, cpusetsize: usize, mask: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203usize => ret, // __NR_sched_setaffinity
            in("rdi") pid,
            in("rsi") cpusetsize,
            in("rdx") mask,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sched_setaffinity(pid: usize, cpusetsize: usize, mask: usize) -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc 0",
            inlateout("x0") pid => ret,
            in("x1") cpusetsize,
            in("x2") mask,
            in("x8") 122usize, // __NR_sched_setaffinity
            options(nostack),
        );
    }
    ret
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_infallible_to_call() {
        // Whatever the host, pin_to_core must return (not crash); on a
        // multi-core Linux host it should succeed for core 0.
        let pinned = pin_to_core(0);
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) && cpus > 1
        {
            assert!(pinned, "sched_setaffinity failed on a multi-core host");
        }
        // Out-of-range indices wrap onto real cores rather than failing.
        let _ = pin_to_core(usize::MAX);
    }
}
