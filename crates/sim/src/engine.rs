//! The discrete-event engine: typed messages, components and the event
//! queue.
//!
//! Hardware blocks (flash controllers, network switches, DMA engines, ...)
//! are modelled as [`Component`]s registered with a [`Simulator`]. They
//! communicate exclusively by scheduling messages to each other's
//! [`ComponentId`]s with a non-negative delay; the engine delivers messages
//! in a total order (time, then scheduling sequence), which makes every run
//! deterministic.
//!
//! ## The typed message kernel
//!
//! A simulation is instantiated over one concrete message type `M`
//! (typically an enum composing every protocol in the model — see
//! `bluedbm_core::Msg` for the workspace-wide instance). Messages travel
//! **inline**: no per-message heap allocation, no `Box<dyn Any>`, no
//! downcast on delivery — a component receives `M` by value and matches on
//! it. This is the hot path of every experiment, so its layout is tuned:
//!
//! * pending events live in a **slab arena** (`Vec` + free list) that is
//!   reused for the whole run, and the priority queue itself is a
//!   **four-ary index heap** of small `(time, seq, slot)` keys — sifting
//!   moves 16-byte keys, never payloads, and the shallower 4-ary tree
//!   halves the pointer-chasing depth of a binary heap;
//! * **same-instant sends** (`delay == 0`, the dominant pattern in
//!   command-forwarding chains) bypass the heap entirely through a FIFO
//!   fast queue: because a handler's sends always carry the newest
//!   sequence numbers at the current instant, appending to that queue
//!   keeps it globally sorted by `(time, seq)` and the dispatcher only
//!   has to compare its head with the heap root.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// Marker for types usable as a simulation's message type. Blanket-implemented
/// for every sized `'static` type, so plain structs and enums qualify as-is.
pub trait Message: Sized + 'static {}

impl<T: Sized + 'static> Message for T {}

/// Handle to a component registered with a [`Simulator`].
///
/// Ids are small dense integers, assigned in registration order, so they
/// can be stored freely in routing tables and config structures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(usize);

impl ComponentId {
    /// The raw index (useful for building lookup tables keyed by id).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A hardware block in a simulation over message type `M`.
///
/// Implementors receive every message addressed to them via
/// [`Component::handle`] and respond by scheduling further messages through
/// the [`Ctx`]. The `Any` supertrait enables typed access to component
/// state after (or during) a run via [`Simulator::component`].
pub trait Component<M: Message>: Any {
    /// Process one message delivered at `ctx.now()`.
    ///
    /// Message variants a component is not wired for indicate a wiring
    /// bug, not a runtime condition, so models here `panic!` loudly on
    /// them.
    fn handle(&mut self, ctx: &mut Ctx<'_, M>, msg: M);
}

/// Total delivery order: time first, then scheduling sequence. `seq` is
/// unique per event, so the order is total and runs are deterministic.
///
/// The derived lexicographic `Ord` **is** the queue order (this type
/// replaces the old `Scheduled` struct whose manual `Ord`/`PartialEq`
/// pair disagreed about which fields participate).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct EventKey {
    at: SimTime,
    seq: u64,
}

/// One entry of the four-ary index heap: the order key plus the arena
/// slot holding the payload. Payloads never move during sifting.
#[derive(Clone, Copy)]
struct HeapEntry {
    key: EventKey,
    slot: u32,
}

/// Arena slot: either a pending event's payload or a free-list link.
enum Slot<M> {
    Free { next: u32 },
    Full { to: ComponentId, msg: M },
}

/// Same-instant event held in the heap-bypass FIFO.
struct FastEvent<M> {
    key: EventKey,
    to: ComponentId,
    msg: M,
}

const NO_SLOT: u32 = u32::MAX;

/// The event queues: the four-ary index heap + payload arena for future
/// events, and the FIFO fast queue for same-instant ones. Split out of
/// [`Simulator`] so a running handler's [`Ctx`] can push events directly
/// (the executing component is temporarily moved out of the component
/// table, so no aliasing is possible) — each send is a single inline
/// move, with no intermediate outbox copy.
struct Queues<M> {
    /// Four-ary min-heap of `(key, slot)` entries.
    heap: Vec<HeapEntry>,
    /// Payload arena; freed slots chain through `free_head`.
    slots: Vec<Slot<M>>,
    free_head: u32,
    /// Same-instant sends, globally sorted by `(at, seq)` by construction.
    fast: VecDeque<FastEvent<M>>,
    seq: u64,
}

impl<M: Message> Queues<M> {
    fn with_capacity(events: usize) -> Self {
        Queues {
            heap: Vec::with_capacity(events),
            slots: Vec::with_capacity(events),
            free_head: NO_SLOT,
            fast: VecDeque::with_capacity(events.min(256)),
            seq: 0,
        }
    }

    #[inline]
    fn alloc_slot(&mut self, to: ComponentId, msg: M) -> u32 {
        let head = self.free_head;
        if head == NO_SLOT {
            self.slots.push(Slot::Full { to, msg });
            (self.slots.len() - 1) as u32
        } else {
            match self.slots[head as usize] {
                Slot::Free { next } => self.free_head = next,
                Slot::Full { .. } => unreachable!("free list points at a full slot"),
            }
            self.slots[head as usize] = Slot::Full { to, msg };
            head
        }
    }

    #[inline]
    fn take_slot(&mut self, slot: u32) -> (ComponentId, M) {
        let prev = std::mem::replace(
            &mut self.slots[slot as usize],
            Slot::Free {
                next: self.free_head,
            },
        );
        self.free_head = slot;
        match prev {
            Slot::Full { to, msg } => (to, msg),
            Slot::Free { .. } => unreachable!("heap entry points at a free slot"),
        }
    }

    /// Enqueue one event. `now` is the current instant: events landing
    /// exactly on it take the heap-bypass FIFO (their keys are strictly
    /// larger than anything already queued at `now`, so appending
    /// preserves the fast queue's global `(at, seq)` order).
    #[inline]
    fn push(&mut self, now: SimTime, at: SimTime, to: ComponentId, msg: M) {
        let key = EventKey { at, seq: self.seq };
        self.seq += 1;
        if at == now {
            self.fast.push_back(FastEvent { key, to, msg });
        } else {
            let slot = self.alloc_slot(to, msg);
            self.heap.push(HeapEntry { key, slot });
            let last = self.heap.len() - 1;
            sift_up(&mut self.heap, last);
        }
    }

    /// Pop the globally next event, if any: the smaller of the fast-queue
    /// head and the heap root.
    #[inline]
    fn pop_next(&mut self) -> Option<(EventKey, ComponentId, M)> {
        let take_fast = match (self.fast.front(), self.heap.first()) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(f), Some(h)) => f.key <= h.key,
        };
        if take_fast {
            let f = self.fast.pop_front().expect("checked non-empty");
            Some((f.key, f.to, f.msg))
        } else {
            let e = pop_root(&mut self.heap).expect("checked non-empty");
            let (to, msg) = self.take_slot(e.slot);
            Some((e.key, to, msg))
        }
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    fn next_at(&self) -> Option<SimTime> {
        match (self.fast.front(), self.heap.first()) {
            (None, None) => None,
            (Some(f), None) => Some(f.key.at),
            (None, Some(h)) => Some(h.key.at),
            (Some(f), Some(h)) => Some(f.key.at.min(h.key.at)),
        }
    }
}

/// Execution context passed to [`Component::handle`].
///
/// Lets the running component read the clock and schedule messages. Sends
/// are sequenced after every event already queued at the current instant,
/// so a handler never receives its own same-instant sends before the
/// dispatcher has finished the surrounding event.
pub struct Ctx<'a, M: Message> {
    now: SimTime,
    self_id: ComponentId,
    queues: &'a mut Queues<M>,
}

impl<M: Message> Ctx<'_, M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently executing.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedule `msg` for delivery to `to` after `delay` (zero is allowed;
    /// same-instant messages are delivered in send order).
    #[inline]
    pub fn send<T: Into<M>>(&mut self, to: ComponentId, delay: SimTime, msg: T) {
        self.queues.push(self.now, self.now + delay, to, msg.into());
    }

    /// Schedule a message back to the executing component — the idiom for
    /// modelling internal latency (e.g. "finish this NAND read in 50 µs").
    #[inline]
    pub fn send_self<T: Into<M>>(&mut self, delay: SimTime, msg: T) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }
}

/// The event-driven simulator over message type `M`.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulator<M: Message> {
    now: SimTime,
    delivered: u64,
    queues: Queues<M>,
    components: Vec<Option<Box<dyn Component<M>>>>,
}

impl<M: Message> Default for Simulator<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Message> Simulator<M> {
    /// An empty simulator at time zero.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// An empty simulator with room for `events` pending events before
    /// any queue reallocation.
    pub fn with_capacity(events: usize) -> Self {
        Simulator {
            now: SimTime::ZERO,
            delivered: 0,
            queues: Queues::with_capacity(events),
            components: Vec::new(),
        }
    }

    /// Current simulated time (the timestamp of the last delivered event,
    /// or the `until` argument of the last bounded run).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of registered components.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Events currently pending (heap plus fast queue).
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queues.heap.len() + self.queues.fast.len()
    }

    /// Size of the payload arena (slots ever allocated, free or full).
    /// Stays flat under steady-state load thanks to the free list; exposed
    /// for capacity introspection and the kernel's own regression tests.
    #[inline]
    pub fn arena_slots(&self) -> usize {
        self.queues.slots.len()
    }

    /// Register a component and return its id.
    pub fn add_component<C: Component<M>>(&mut self, component: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(Box::new(component)));
        id
    }

    /// Reserve an id without installing a component yet.
    ///
    /// Component graphs are frequently cyclic (a switch needs the link's
    /// id, the link needs the switch's); reserving ids first breaks the
    /// cycle. Sending to a reserved-but-uninstalled id panics at delivery.
    pub fn reserve(&mut self) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(None);
        id
    }

    /// Install a component into a previously [`reserve`](Self::reserve)d slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied.
    pub fn install<C: Component<M>>(&mut self, id: ComponentId, component: C) {
        let slot = &mut self.components[id.0];
        assert!(slot.is_none(), "component slot {id:?} already installed");
        *slot = Some(Box::new(component));
    }

    /// Typed shared access to a component's state.
    ///
    /// Returns `None` if `id` holds no component or the concrete type is
    /// not `C`. This is how experiment drivers read statistics out of
    /// models after a run.
    pub fn component<C: Component<M>>(&self, id: ComponentId) -> Option<&C> {
        let c = self.components.get(id.0)?.as_deref()?;
        (c as &dyn Any).downcast_ref::<C>()
    }

    /// Typed exclusive access to a component's state.
    pub fn component_mut<C: Component<M>>(&mut self, id: ComponentId) -> Option<&mut C> {
        let c = self.components.get_mut(id.0)?.as_deref_mut()?;
        (c as &mut dyn Any).downcast_mut::<C>()
    }

    /// Schedule `msg` for delivery to `to` at `delay` from now (external
    /// injection; components use [`Ctx::send`]).
    ///
    /// Shares [`Ctx::send`]'s insertion path — the fast-queue append is
    /// safe here too, because any events still pending in the fast queue
    /// sit at the current instant and this send's sequence number is
    /// newer than theirs.
    #[inline]
    pub fn schedule<T: Into<M>>(&mut self, delay: SimTime, to: ComponentId, msg: T) {
        self.queues.push(self.now, self.now + delay, to, msg.into());
    }

    /// Run one handler; its sends land in the queues directly.
    fn dispatch(&mut self, at: SimTime, to: ComponentId, msg: M) {
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.delivered += 1;

        let mut component = self.components[to.0]
            .take()
            .unwrap_or_else(|| panic!("message sent to uninstalled component {to:?}"));
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: to,
                queues: &mut self.queues,
            };
            component.handle(&mut ctx, msg);
        }
        self.components[to.0] = Some(component);
    }

    /// Deliver the next event, if any. Returns `false` when the queue is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the event targets a reserved slot that was never
    /// [`install`](Self::install)ed.
    pub fn step(&mut self) -> bool {
        match self.queues.pop_next() {
            Some((key, to, msg)) => {
                self.dispatch(key.at, to, msg);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue is empty or the next event is after `until`;
    /// then advance the clock to exactly `until`.
    ///
    /// Events scheduled at exactly `until` are delivered. The bound is
    /// enforced with a single O(1) head comparison per event — the heap is
    /// not re-searched between deliveries.
    pub fn run_until(&mut self, until: SimTime) {
        while self.queues.next_at().is_some_and(|at| at <= until) {
            let (key, to, msg) = self.queues.pop_next().expect("next_at saw an event");
            self.dispatch(key.at, to, msg);
        }
        debug_assert!(self.now <= until);
        self.now = until;
    }

    /// Run until the queue empties or `max_events` more events have been
    /// delivered. Returns the number actually delivered — a guard against
    /// accidental livelock in model development.
    pub fn run_limited(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// `true` if no events remain.
    pub fn is_idle(&self) -> bool {
        self.queues.heap.is_empty() && self.queues.fast.is_empty()
    }
}

/// Restore the heap property upward from `i` (4-ary: parent of `i` is
/// `(i - 1) / 4`). Moves a hole instead of swapping: one store per level
/// plus the final placement.
#[inline]
fn sift_up(heap: &mut [HeapEntry], mut i: usize) {
    let entry = heap[i];
    while i > 0 {
        let parent = (i - 1) / 4;
        if entry.key < heap[parent].key {
            heap[i] = heap[parent];
            i = parent;
        } else {
            break;
        }
    }
    heap[i] = entry;
}

/// Restore the heap property downward from the root after placing `entry`
/// there conceptually (children of `i` are `4i + 1 ..= 4i + 4`).
#[inline]
fn sift_down(heap: &mut [HeapEntry], entry: HeapEntry) {
    let len = heap.len();
    let mut i = 0;
    loop {
        let first = 4 * i + 1;
        if first >= len {
            break;
        }
        let last = (first + 4).min(len);
        let mut min = first;
        let mut min_key = heap[first].key;
        for (offset, e) in heap[first + 1..last].iter().enumerate() {
            if e.key < min_key {
                min = first + 1 + offset;
                min_key = e.key;
            }
        }
        if min_key < entry.key {
            heap[i] = heap[min];
            i = min;
        } else {
            break;
        }
    }
    heap[i] = entry;
}

/// Pop the minimum entry of the 4-ary heap.
#[inline]
fn pop_root(heap: &mut Vec<HeapEntry>) -> Option<HeapEntry> {
    let last = heap.pop()?;
    if heap.is_empty() {
        return Some(last);
    }
    let root = heap[0];
    sift_down(heap, last);
    Some(root)
}

impl<M: Message> fmt::Debug for Simulator<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("components", &self.components.len())
            .field("pending_events", &self.pending_events())
            .field("delivered", &self.delivered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        received: Vec<(SimTime, u32)>,
        reply_to: Option<ComponentId>,
        reply_delay: SimTime,
    }

    impl Echo {
        fn sink() -> Self {
            Echo {
                received: vec![],
                reply_to: None,
                reply_delay: SimTime::ns(100),
            }
        }

        fn replying(to: ComponentId) -> Self {
            Echo {
                received: vec![],
                reply_to: Some(to),
                reply_delay: SimTime::ns(100),
            }
        }
    }

    struct Num(u32);

    impl Component<Num> for Echo {
        fn handle(&mut self, ctx: &mut Ctx<'_, Num>, msg: Num) {
            let Num(n) = msg;
            self.received.push((ctx.now(), n));
            if let Some(to) = self.reply_to {
                ctx.send(to, self.reply_delay, Num(n + 1));
            }
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        sim.schedule(SimTime::us(3), id, Num(3));
        sim.schedule(SimTime::us(1), id, Num(1));
        sim.schedule(SimTime::us(2), id, Num(2));
        sim.run();
        let echo = sim.component::<Echo>(id).unwrap();
        let values: Vec<u32> = echo.received.iter().map(|&(_, n)| n).collect();
        assert_eq!(values, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::us(3));
        assert_eq!(sim.events_delivered(), 3);
    }

    #[test]
    fn same_instant_fifo_order() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        for n in 0..10 {
            sim.schedule(SimTime::us(5), id, Num(n));
        }
        sim.run();
        let echo = sim.component::<Echo>(id).unwrap();
        let values: Vec<u32> = echo.received.iter().map(|&(_, n)| n).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_fifo_order_under_fast_path() {
        // A fan-out chain built from zero-delay sends: one component
        // relays each message to a sink at delay zero, twice. The fast
        // queue must interleave with heap events without reordering any
        // same-instant FIFO.
        struct Relay {
            to: ComponentId,
        }
        impl Component<Num> for Relay {
            fn handle(&mut self, ctx: &mut Ctx<'_, Num>, Num(n): Num) {
                ctx.send(self.to, SimTime::ZERO, Num(2 * n));
                ctx.send(self.to, SimTime::ZERO, Num(2 * n + 1));
            }
        }
        let mut sim = Simulator::new();
        let sink = sim.reserve();
        let relay = sim.add_component(Relay { to: sink });
        sim.install(sink, Echo::sink());
        for n in 0..8 {
            // Mix of instants: four at t=1us, four at t=2us.
            sim.schedule(SimTime::us(1 + u64::from(n) % 2), relay, Num(n));
        }
        sim.run();
        let echo = sim.component::<Echo>(sink).unwrap();
        let values: Vec<u32> = echo.received.iter().map(|&(_, n)| n).collect();
        // t=1us carries inputs 0,2,4,6 in schedule order; t=2us carries
        // 1,3,5,7. Each input n fans out to (2n, 2n+1) in send order.
        assert_eq!(
            values,
            vec![0, 1, 4, 5, 8, 9, 12, 13, 2, 3, 6, 7, 10, 11, 14, 15]
        );
        // All instants visited in order.
        assert!(echo.received.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn deterministic_across_runs() {
        // Same wiring and inputs => identical event count and final
        // clock, run twice from scratch.
        fn run_once() -> (u64, SimTime) {
            let mut sim = Simulator::new();
            let a = sim.reserve();
            let b = sim.reserve();
            sim.install(a, Echo::replying(b));
            let mut eb = Echo::replying(a);
            eb.reply_delay = SimTime::ns(70);
            sim.install(b, eb);
            for n in 0..5 {
                sim.schedule(SimTime::ns(u64::from(n) * 13), a, Num(n));
            }
            sim.run_limited(5_000);
            (sim.events_delivered(), sim.now())
        }
        let first = run_once();
        let second = run_once();
        assert_eq!(first, second);
        assert_eq!(first.0, 5_000);
    }

    #[test]
    fn arena_free_list_reuses_slots() {
        // A two-party ping-pong keeps at most one event in flight, so the
        // arena must stay at a single slot no matter how many events pass
        // through the heap.
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        sim.install(a, Echo::replying(b));
        sim.install(b, Echo::replying(a));
        sim.schedule(SimTime::ZERO, a, Num(0));
        let delivered = sim.run_limited(10_000);
        assert_eq!(delivered, 10_000);
        assert_eq!(
            sim.arena_slots(),
            1,
            "steady one-in-flight load must not grow the arena"
        );
    }

    #[test]
    fn ping_pong_between_components() {
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        sim.install(a, Echo::replying(b));
        sim.install(b, Echo::sink());
        sim.schedule(SimTime::ZERO, a, Num(7));
        sim.run();
        assert_eq!(
            sim.component::<Echo>(a).unwrap().received,
            vec![(SimTime::ZERO, 7)]
        );
        assert_eq!(
            sim.component::<Echo>(b).unwrap().received,
            vec![(SimTime::ns(100), 8)]
        );
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        sim.schedule(SimTime::us(1), id, Num(1));
        sim.schedule(SimTime::us(10), id, Num(2));
        sim.run_until(SimTime::us(5));
        assert_eq!(sim.now(), SimTime::us(5));
        assert_eq!(sim.component::<Echo>(id).unwrap().received.len(), 1);
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(sim.component::<Echo>(id).unwrap().received.len(), 2);
    }

    #[test]
    fn run_until_delivers_events_at_boundary() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        sim.schedule(SimTime::us(5), id, Num(1));
        sim.run_until(SimTime::us(5));
        assert_eq!(sim.component::<Echo>(id).unwrap().received.len(), 1);
    }

    #[test]
    fn run_limited_bounds_work() {
        // Two components ping-ponging forever.
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        sim.install(a, Echo::replying(b));
        sim.install(b, Echo::replying(a));
        sim.schedule(SimTime::ZERO, a, Num(0));
        let delivered = sim.run_limited(101);
        assert_eq!(delivered, 101);
        assert!(!sim.is_idle());
    }

    #[test]
    fn typed_access_rejects_wrong_type() {
        struct Other;
        impl Component<Num> for Other {
            fn handle(&mut self, _ctx: &mut Ctx<'_, Num>, _msg: Num) {}
        }
        let mut sim = Simulator::<Num>::new();
        let id = sim.add_component(Other);
        assert!(sim.component::<Echo>(id).is_none());
        assert!(sim.component::<Other>(id).is_some());
        assert!(sim.component_mut::<Other>(id).is_some());
    }

    #[test]
    #[should_panic(expected = "uninstalled component")]
    fn sending_to_reserved_slot_panics() {
        let mut sim = Simulator::<Num>::new();
        let id = sim.reserve();
        sim.schedule(SimTime::ZERO, id, Num(0));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_panics() {
        let mut sim = Simulator::<Num>::new();
        let id = sim.add_component(Echo::sink());
        sim.install(id, Echo::sink());
    }

    #[test]
    fn heap_stress_random_interleaving_stays_ordered() {
        // Many events at pseudo-random times must still come out in
        // (time, seq) order through the 4-ary heap.
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        let mut t = 1u64;
        for n in 0..500u32 {
            t = t.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            sim.schedule(SimTime::ns(t % 10_000), id, Num(n));
        }
        sim.run();
        let echo = sim.component::<Echo>(id).unwrap();
        assert_eq!(echo.received.len(), 500);
        assert!(echo.received.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
