//! The discrete-event engine: typed messages, components and the event
//! queue.
//!
//! Hardware blocks (flash controllers, network switches, DMA engines, ...)
//! are modelled as [`Component`]s registered with a [`Simulator`]. They
//! communicate exclusively by scheduling messages to each other's
//! [`ComponentId`]s with a non-negative delay; the engine delivers messages
//! in a total order (time, then scheduling sequence), which makes every run
//! deterministic.
//!
//! ## The typed message kernel
//!
//! A simulation is instantiated over one concrete message type `M`
//! (typically an enum composing every protocol in the model — see
//! `bluedbm_core::Msg` for the workspace-wide instance). Messages travel
//! **inline**: no per-message heap allocation, no `Box<dyn Any>`, no
//! downcast on delivery — a component receives `M` by value and matches on
//! it. This is the hot path of every experiment, so its layout is tuned:
//!
//! * pending events live in a **slab arena** (`Vec` + free list) that is
//!   reused for the whole run, and the priority queue itself is a
//!   **four-ary index heap** of small `(time, seq, slot)` entries — a
//!   64-bit time, a 64-bit sequence number and a 32-bit slot index, 24
//!   bytes per entry after alignment — so sifting moves those fixed-size
//!   entries, never payloads, and the shallower 4-ary tree halves the
//!   pointer-chasing depth of a binary heap;
//! * **same-instant sends** (`delay == 0`, the dominant pattern in
//!   command-forwarding chains) bypass the heap entirely through a FIFO
//!   fast queue: because a handler's sends always carry the newest
//!   sequence numbers at the current instant, appending to that queue
//!   keeps it globally sorted by `(time, seq)` and the dispatcher only
//!   has to compare its head with the heap root;
//! * components live in a **flattened arena** (see [`crate::arena`]):
//!   every slot always holds an installed component (reserved slots hold
//!   a panicking sentinel), so the dispatcher's component fetch is a
//!   single bounds-checked index — no `Option` discriminant, no
//!   move-out/move-back around the handler call;
//! * [`Simulator::run`] and [`Simulator::run_until`] use **batched
//!   dispatch**: when consecutive queue heads target the same component
//!   at the same instant (a command-forwarding *train*), the whole train
//!   is drained in one borrow of that component — one arena fetch and one
//!   virtual call per train instead of per event. Components opt into
//!   train-level processing via [`Component::handle_batch`]; the default
//!   implementation falls back to per-message [`Component::handle`], so
//!   batching is transparent to existing models and never changes
//!   delivery order;
//! * bulk payloads (flash pages) live in the simulator-owned
//!   [`PageStore`] and cross the system as 8-byte
//!   [`PageRef`](crate::PageRef) handles, so messages stay
//!   cache-line-sized — [`Ctx::pages`] is the component-side window into
//!   the store, and [`ComponentId`] is a `u32` for the same reason.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use bluedbm_trace::{TraceCat, TraceConfig, TraceKind, TracePart, TraceSink, Tracer};

use crate::arena::ComponentArena;
use crate::pagestore::PageStore;
use crate::pool::PoolStore;
use crate::time::SimTime;

/// Marker for types usable as a simulation's message type. Blanket-implemented
/// for every sized `'static` type, so plain structs and enums qualify as-is.
pub trait Message: Sized + 'static {}

impl<T: Sized + 'static> Message for T {}

/// Handle to a component registered with a [`Simulator`].
///
/// Ids are small dense integers, assigned in registration order, so they
/// can be stored freely in routing tables and config structures. Stored
/// as a `u32` so queue entries stay compact — four billion components is
/// far past any simulation this kernel will host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// The raw index (useful for building lookup tables keyed by id).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    fn from_index(index: usize) -> Self {
        ComponentId(u32::try_from(index).expect("component count fits u32"))
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A hardware block in a simulation over message type `M`.
///
/// Implementors receive every message addressed to them via
/// [`Component::handle`] and respond by scheduling further messages through
/// the [`Ctx`]. The `Any` supertrait enables typed access to component
/// state after (or during) a run via [`Simulator::component`]; the `Send`
/// supertrait lets the sharded runtime (see [`crate::shard`]) move whole
/// shards onto worker threads — components are still only ever touched by
/// one thread at a time, so this costs implementors nothing beyond not
/// holding `Rc`s.
pub trait Component<M: Message>: Any + Send {
    /// Process one message delivered at `ctx.now()`.
    ///
    /// Message variants a component is not wired for indicate a wiring
    /// bug, not a runtime condition, so models here `panic!` loudly on
    /// them.
    fn handle(&mut self, ctx: &mut Ctx<'_, M>, msg: M);

    /// Opt-in hook for **batched dispatch**: process a train of messages
    /// all delivered to this component at `ctx.now()`, in delivery order.
    ///
    /// The dispatcher calls this (instead of per-message [`handle`])
    /// whenever consecutive queue heads target the same component at the
    /// same instant, so hot components can hoist per-message overhead
    /// (the `match` on the protocol enum, field reloads) out of the inner
    /// loop. [`Batch::next`] yields messages lazily, straight off the
    /// event queues — there is no intermediate train buffer — so
    /// zero-delay self-sends emitted *while* draining join the running
    /// train when they are globally next. Implementations must process
    /// messages in yield order; they may stop early — whatever they leave
    /// stays queued and is dispatched normally, so semantics never depend
    /// on how much of the train a component consumes.
    ///
    /// The default implementation is exactly the per-message fallback,
    /// which makes batching behaviourally invisible to components that do
    /// not opt in.
    ///
    /// [`handle`]: Component::handle
    fn handle_batch(&mut self, ctx: &mut Ctx<'_, M>, batch: &mut Batch<M>) {
        while let Some(msg) = batch.next(ctx) {
            self.handle(ctx, msg);
        }
    }

    /// Capture this component's state for speculative execution (see
    /// [`crate::shard`]'s `ExecMode::Optimistic`). The optimistic runtime
    /// snapshots a component lazily, right before the first speculative
    /// event is delivered to it; if the speculation later proves wrong the
    /// snapshot is handed back through [`restore`](Component::restore).
    ///
    /// `Clone` components implement the pair with one line,
    /// `bluedbm_sim::clone_snapshot!();`, inside their `Component` impl.
    /// Components with non-`Clone` state (interior journals, shared
    /// resources) implement the hooks manually; the default implementation
    /// panics with the concrete type name so an unprepared component
    /// surfaces loudly the first time it is speculated into, rather than
    /// silently corrupting a rollback.
    ///
    /// Takes `&mut self` so implementations may install an internal undo
    /// journal instead of deep-copying (the flash array does this: pages
    /// are copy-on-write journalled rather than cloned wholesale).
    fn snapshot(&mut self) -> Box<dyn Any + Send> {
        panic!(
            "component {} cannot be speculated: no snapshot/restore implementation \
             (add `bluedbm_sim::clone_snapshot!();` to its Component impl if it is \
             Clone, or implement the hooks manually)",
            std::any::type_name::<Self>()
        )
    }

    /// Reinstate the state captured by the matching
    /// [`snapshot`](Component::snapshot) call, discarding every mutation
    /// made since. Called exactly once per snapshot, and only on rollback.
    fn restore(&mut self, snapshot: Box<dyn Any + Send>) {
        let _ = snapshot;
        panic!(
            "component {} has a snapshot but no restore implementation",
            std::any::type_name::<Self>()
        )
    }

    /// Notification that the speculation a [`snapshot`](Component::snapshot)
    /// guarded has committed, so the captured state can be dropped. The
    /// matching snapshot box itself is dropped by the runtime; this hook
    /// exists for implementations that journal internally (the default is
    /// a no-op, which is right for `clone_snapshot!` components).
    fn discard_snapshot(&mut self) {}
}

/// Implements [`Component::snapshot`] / [`Component::restore`] for a
/// `Clone` component: the snapshot is a plain clone, restore moves it
/// back. Expand inside the `Component` impl block:
///
/// ```ignore
/// impl Component<Msg> for Router {
///     bluedbm_sim::clone_snapshot!();
///     fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) { /* ... */ }
/// }
/// ```
#[macro_export]
macro_rules! clone_snapshot {
    () => {
        fn snapshot(&mut self) -> ::std::boxed::Box<dyn ::std::any::Any + Send> {
            ::std::boxed::Box::new(::std::clone::Clone::clone(self))
        }

        fn restore(&mut self, snapshot: ::std::boxed::Box<dyn ::std::any::Any + Send>) {
            *self = *snapshot
                .downcast::<Self>()
                .expect("snapshot type matches the component that took it");
        }
    };
}

/// A train of same-instant messages addressed to one component, handed to
/// [`Component::handle_batch`]. [`next`](Batch::next) lazily pops the
/// globally next event off the queues for as long as it continues the
/// train (same instant, same component), so a train is consumed with zero
/// buffering or copying.
pub struct Batch<M: Message> {
    to: ComponentId,
    /// The already-popped event that opened the train.
    head: Option<M>,
    /// Fast-queue events already verified to continue the train: while
    /// this run lasts, [`next`](Batch::next) is a bare `pop_front` — the
    /// train-match comparison is amortized to one scan per run.
    run: usize,
    /// Messages yielded so far (the dispatcher's delivery accounting).
    taken: u64,
}

impl<M: Message> Batch<M> {
    /// The next message of the train, or `None` once the globally next
    /// event no longer continues it. Takes the `Ctx` because the train is
    /// read straight off the queues the context also schedules into.
    #[inline]
    pub fn next(&mut self, ctx: &mut Ctx<'_, M>) -> Option<M> {
        if let Some(m) = self.head.take() {
            self.taken += 1;
            return Some(m);
        }
        if self.run > 0 {
            // Pre-verified by the last scan: pop without re-comparing.
            self.run -= 1;
            self.taken += 1;
            let f = ctx.queues.fast.pop_front().expect("scanned run entry");
            return Some(f.msg);
        }
        self.run = ctx.queues.scan_fast_run(ctx.now, self.to);
        if self.run > 0 {
            self.run -= 1;
            self.taken += 1;
            let f = ctx.queues.fast.pop_front().expect("scanned run entry");
            return Some(f.msg);
        }
        // No fast run: the train continues only if the heap root matches.
        let msg = ctx.queues.pop_heap_if(ctx.now, self.to);
        self.taken += msg.is_some() as u64;
        msg
    }
}

/// Total delivery order: time first, then scheduling sequence. `seq` is
/// unique per event, so the order is total and runs are deterministic.
///
/// The derived lexicographic `Ord` **is** the queue order (this type
/// replaces the old `Scheduled` struct whose manual `Ord`/`PartialEq`
/// pair disagreed about which fields participate).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct EventKey {
    at: SimTime,
    seq: u64,
}

/// One entry of the four-ary index heap: the order key plus the arena
/// slot holding the payload. Payloads never move during sifting.
#[derive(Clone, Copy)]
struct HeapEntry {
    key: EventKey,
    slot: u32,
}

/// Arena slot: either a pending event's payload or a free-list link.
enum Slot<M> {
    Free { next: u32 },
    Full { to: ComponentId, msg: M },
}

/// Same-instant event held in the heap-bypass FIFO.
struct FastEvent<M> {
    key: EventKey,
    to: ComponentId,
    msg: M,
}

const NO_SLOT: u32 = u32::MAX;

/// Sequence-number gap opened at a speculation checkpoint (see
/// [`Queues::begin_journal`]). Events created while speculating get
/// sequence numbers at least this far above the checkpoint, so the commit
/// path can splice barrier-merged arrivals *between* pre-speculation
/// events and speculation-created ones — reproducing the conservative
/// engine's arrivals-before-window-sends tie order exactly. Only relative
/// sequence order is observable (the cross-shard merge key never compares
/// sequence numbers from different shards), so the jump itself is
/// invisible. 2^32 leaves room for 2^32 barrier arrivals per round and
/// ~2^31 rounds per run — orders of magnitude past any workload here.
pub(crate) const SEQ_GAP: u64 = 1 << 32;

/// Undo log for speculative execution of the event queues. Everything a
/// speculation can do to the queues is covered by two facts:
///
/// * **Pops**: any event popped whose sequence number predates the
///   checkpoint (`seq < floor`) is a pre-speculation event that must come
///   back on rollback, so it is cloned into `popped` (with its original
///   key) as it leaves. Events created *during* speculation carry
///   `seq >= floor + SEQ_GAP` and are simply deleted on rollback.
/// * **Pushes**: identified by the same sequence test — no logging needed.
///
/// The fast queue needs no journalling at all: it is provably empty at
/// every checkpoint (the shard executor checkpoints only between events,
/// and same-instant sends are always drained before the executor returns).
struct QueueJournal<M> {
    /// The sequence counter at checkpoint time; the pre/post divider.
    floor: u64,
    /// How to clone a popped pre-speculation message. Captured as a bare
    /// fn pointer at checkpoint time (which requires `M: Clone`) so the
    /// pop paths themselves stay free of a `Clone` bound.
    clone_fn: fn(&M) -> M,
    /// Pre-speculation events popped during speculation, original keys
    /// preserved.
    popped: Vec<(EventKey, ComponentId, M)>,
}

/// The event queues: the four-ary index heap + payload arena for future
/// events, and the FIFO fast queue for same-instant ones. Split out of
/// [`Simulator`] so a running handler's [`Ctx`] can push events directly
/// (the queues and the component arena are disjoint `Simulator` fields,
/// so the executing component's `&mut` borrow never aliases them) — each
/// send is a single inline move, with no intermediate outbox copy.
pub(crate) struct Queues<M> {
    /// Four-ary min-heap of `(key, slot)` entries.
    heap: Vec<HeapEntry>,
    /// Payload arena; freed slots chain through `free_head`.
    slots: Vec<Slot<M>>,
    free_head: u32,
    /// Same-instant sends, globally sorted by `(at, seq)` by construction.
    fast: VecDeque<FastEvent<M>>,
    pub(crate) seq: u64,
    /// Active speculation undo log, if a checkpoint is open. Boxed so the
    /// conservative hot path pays one pointer of space and a null test.
    journal: Option<Box<QueueJournal<M>>>,
}

impl<M: Message> Queues<M> {
    fn with_capacity(events: usize) -> Self {
        Queues {
            heap: Vec::with_capacity(events),
            slots: Vec::with_capacity(events),
            free_head: NO_SLOT,
            fast: VecDeque::with_capacity(events.min(256)),
            seq: 0,
            journal: None,
        }
    }

    #[inline]
    fn alloc_slot(&mut self, to: ComponentId, msg: M) -> u32 {
        let head = self.free_head;
        if head == NO_SLOT {
            self.slots.push(Slot::Full { to, msg });
            (self.slots.len() - 1) as u32
        } else {
            match self.slots[head as usize] {
                Slot::Free { next } => self.free_head = next,
                Slot::Full { .. } => unreachable!("free list points at a full slot"),
            }
            self.slots[head as usize] = Slot::Full { to, msg };
            head
        }
    }

    #[inline]
    fn take_slot(&mut self, slot: u32) -> (ComponentId, M) {
        let prev = std::mem::replace(
            &mut self.slots[slot as usize],
            Slot::Free {
                next: self.free_head,
            },
        );
        self.free_head = slot;
        match prev {
            Slot::Full { to, msg } => (to, msg),
            Slot::Free { .. } => unreachable!("heap entry points at a free slot"),
        }
    }

    /// Enqueue one event. `now` is the current instant: events landing
    /// exactly on it take the heap-bypass FIFO (their keys are strictly
    /// larger than anything already queued at `now`, so appending
    /// preserves the fast queue's global `(at, seq)` order).
    #[inline]
    fn push(&mut self, now: SimTime, at: SimTime, to: ComponentId, msg: M) {
        if at == now {
            let key = EventKey { at, seq: self.seq };
            self.seq += 1;
            self.fast.push_back(FastEvent { key, to, msg });
        } else {
            self.push_heap(at, to, msg);
        }
    }

    /// Enqueue one event straight into the index heap, bypassing the
    /// same-instant FIFO. Used for cross-shard arrivals, which are merged
    /// at a window barrier: the fast queue's append-only ordering
    /// argument assumes sends happen at the current instant, which does
    /// not hold for them.
    #[inline]
    pub(crate) fn push_heap(&mut self, at: SimTime, to: ComponentId, msg: M) {
        let key = EventKey { at, seq: self.seq };
        self.seq += 1;
        let slot = self.alloc_slot(to, msg);
        self.heap.push(HeapEntry { key, slot });
        let last = self.heap.len() - 1;
        sift_up(&mut self.heap, last);
    }

    /// Pop the globally next event, if any: the smaller of the fast-queue
    /// head and the heap root.
    #[inline]
    fn pop_next(&mut self) -> Option<(EventKey, ComponentId, M)> {
        let take_fast = match (self.fast.front(), self.heap.first()) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(f), Some(h)) => f.key <= h.key,
        };
        if take_fast {
            let f = self.fast.pop_front().expect("checked non-empty");
            Some((f.key, f.to, f.msg))
        } else {
            let e = pop_root(&mut self.heap).expect("checked non-empty");
            let (to, msg) = self.take_slot(e.slot);
            self.journal_pop(e.key, to, &msg);
            Some((e.key, to, msg))
        }
    }

    /// Record a heap pop in the speculation journal when one is open and
    /// the event predates the checkpoint. Fast-queue pops never need this:
    /// every fast event was created at the current instant, i.e. during
    /// the speculation itself.
    #[inline]
    fn journal_pop(&mut self, key: EventKey, to: ComponentId, msg: &M) {
        if let Some(j) = self.journal.as_deref_mut() {
            if key.seq < j.floor {
                j.popped.push((key, to, (j.clone_fn)(msg)));
            }
        }
    }

    /// Destination of the event stored in `slot` (which must be full).
    #[inline]
    fn slot_target(&self, slot: u32) -> ComponentId {
        match self.slots[slot as usize] {
            Slot::Full { to, .. } => to,
            Slot::Free { .. } => unreachable!("heap entry points at a free slot"),
        }
    }

    /// `true` if the globally next event is addressed to `to` at exactly
    /// `at` — the train-extension test of the batched dispatcher.
    #[inline]
    fn next_matches(&self, at: SimTime, to: ComponentId) -> bool {
        match (self.fast.front(), self.heap.first()) {
            (None, None) => false,
            (Some(f), None) => f.key.at == at && f.to == to,
            (None, Some(h)) => h.key.at == at && self.slot_target(h.slot) == to,
            (Some(f), Some(h)) => {
                if f.key <= h.key {
                    f.key.at == at && f.to == to
                } else {
                    h.key.at == at && self.slot_target(h.slot) == to
                }
            }
        }
    }

    /// Count the prefix of fast-queue events that continue the `(at,
    /// to)` train: addressed to `to` and globally next, i.e. ordered
    /// before the heap root. Fast-queue entries all sit at the current
    /// instant, so only a heap root at the same instant (with an older
    /// sequence number) can order ahead of them.
    fn scan_fast_run(&self, at: SimTime, to: ComponentId) -> usize {
        let seq_limit = match self.heap.first() {
            Some(h) => {
                debug_assert!(h.key.at >= at, "heap root precedes the current instant");
                if h.key.at == at {
                    h.key.seq
                } else {
                    u64::MAX
                }
            }
            None => u64::MAX,
        };
        self.fast
            .iter()
            .take_while(|f| f.to == to && f.key.seq < seq_limit && f.key.at == at)
            .count()
    }

    /// Pop the heap root only if it is globally next and continues the
    /// `(at, to)` train. Callers drain the matching fast run first; a
    /// fast-queue head that is still pending here either precedes the
    /// root (train over) or follows it (root may continue the train).
    fn pop_heap_if(&mut self, at: SimTime, to: ComponentId) -> Option<M> {
        let h = self.heap.first()?;
        if h.key.at != at || self.slot_target(h.slot) != to {
            return None;
        }
        if let Some(f) = self.fast.front() {
            if f.key < h.key {
                return None;
            }
        }
        let e = pop_root(&mut self.heap).expect("checked non-empty");
        let (_, msg) = self.take_slot(e.slot);
        self.journal_pop(e.key, to, &msg);
        Some(msg)
    }

    /// Open a speculation checkpoint: start the pop journal and jump the
    /// sequence counter by [`SEQ_GAP`] so speculation-created events are
    /// recognizable (and commit can splice arrivals below them). Returns
    /// the checkpoint sequence number.
    fn begin_journal(&mut self, clone_fn: fn(&M) -> M) -> u64 {
        debug_assert!(self.journal.is_none(), "nested speculation checkpoint");
        debug_assert!(
            self.fast.is_empty(),
            "checkpoint with same-instant events still queued"
        );
        let floor = self.seq;
        self.seq = floor + SEQ_GAP;
        self.journal = Some(Box::new(QueueJournal {
            floor,
            clone_fn,
            popped: Vec::new(),
        }));
        floor
    }

    /// Close the checkpoint, keeping all speculative work. The sequence
    /// counter stays in the gapped region — only relative order is
    /// observable.
    fn commit_journal(&mut self) {
        debug_assert!(self.journal.is_some(), "commit without checkpoint");
        self.journal = None;
    }

    /// Close the checkpoint and restore the queues exactly as they were:
    /// delete every speculation-created event (freeing its payload slot),
    /// re-insert every journalled pre-checkpoint pop under its original
    /// key, and rewind the sequence counter.
    fn rollback_journal(&mut self) {
        let j = *self.journal.take().expect("rollback without checkpoint");
        debug_assert!(
            self.fast.is_empty(),
            "speculation left same-instant events queued"
        );
        let mut i = 0;
        while i < self.heap.len() {
            if self.heap[i].key.seq >= j.floor {
                let e = self.heap.swap_remove(i);
                let _ = self.take_slot(e.slot);
            } else {
                i += 1;
            }
        }
        for (key, to, msg) in j.popped {
            let slot = self.alloc_slot(to, msg);
            self.heap.push(HeapEntry { key, slot });
        }
        // Swap-removal and re-insertion scrambled the array: rebuild the
        // heap property in one bottom-up pass.
        for i in 1..self.heap.len() {
            sift_up(&mut self.heap, i);
        }
        self.seq = j.floor;
    }

    /// Enqueue a heap event under a caller-chosen sequence number without
    /// touching the counter. Commit-path only: barrier arrivals are
    /// spliced in at reserved sequence numbers between the checkpoint
    /// floor and the [`SEQ_GAP`] region (the caller guarantees
    /// uniqueness).
    fn push_heap_at_seq(&mut self, at: SimTime, to: ComponentId, msg: M, seq: u64) {
        let key = EventKey { at, seq };
        let slot = self.alloc_slot(to, msg);
        self.heap.push(HeapEntry { key, slot });
        let last = self.heap.len() - 1;
        sift_up(&mut self.heap, last);
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub(crate) fn next_at(&self) -> Option<SimTime> {
        match (self.fast.front(), self.heap.first()) {
            (None, None) => None,
            (Some(f), None) => Some(f.key.at),
            (None, Some(h)) => Some(h.key.at),
            (Some(f), Some(h)) => Some(f.key.at.min(h.key.at)),
        }
    }
}

/// Sentinel in a shard-ownership table for component ids that were
/// reserved but never installed (sends to them panic, mirroring the
/// sequential engine's delivery-time panic).
pub(crate) const UNOWNED: u32 = u32::MAX;

/// One cross-shard send, parked in the sending shard's outbox until the
/// next window barrier. `(at, seq, to, msg)` is the mailbox entry the
/// receiving shard merges on; `sent_at` refines same-instant merges so
/// they follow send order, like the sequential engine's global sequence.
pub(crate) struct Outbound<M> {
    pub(crate) at: SimTime,
    pub(crate) sent_at: SimTime,
    pub(crate) seq: u64,
    pub(crate) to: ComponentId,
    pub(crate) msg: M,
}

/// The sharded runtime's per-shard view: who owns every component id,
/// which shard this is, the outgoing mailboxes, and the lookahead
/// promise. Present only on shard member simulators (see
/// [`crate::shard::ShardedSimulator`]); `None` on a plain [`Simulator`],
/// whose send path then never pays more than one branch.
pub(crate) struct ShardEnv<M> {
    pub(crate) me: u32,
    pub(crate) owner: Arc<Vec<u32>>,
    /// Outgoing mailbox per destination shard (the self slot stays empty).
    pub(crate) outboxes: Vec<Vec<Outbound<M>>>,
    /// This shard's row of the per-pair lookahead matrix: the model's
    /// promise that a message to shard `r` takes at least
    /// `lookahead_to[r]` to arrive. The conservative execution bounds
    /// rest on it, so it is asserted at the send site.
    pub(crate) lookahead_to: Arc<[SimTime]>,
}

/// Execution context passed to [`Component::handle`].
///
/// Lets the running component read the clock and schedule messages. Sends
/// are sequenced after every event already queued at the current instant,
/// so a handler never receives its own same-instant sends before the
/// dispatcher has finished the surrounding event.
pub struct Ctx<'a, M: Message> {
    now: SimTime,
    self_id: ComponentId,
    queues: &'a mut Queues<M>,
    pages: &'a mut PageStore,
    pools: &'a mut PoolStore,
    shard: Option<&'a mut ShardEnv<M>>,
    trace: &'a mut TraceSink,
}

impl<M: Message> Ctx<'_, M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently executing.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// The trace emission handle, clock-bound to the current instant.
    /// One branch and a no-op unless tracing was enabled on the
    /// simulator (see [`Simulator::set_trace`]).
    #[inline]
    pub fn trace(&mut self) -> Tracer<'_> {
        self.trace.at(self.now.as_ps())
    }

    /// The simulator-owned [`PageStore`]: allocate payload pages here and
    /// send the returned [`crate::PageRef`] handles through messages
    /// instead of inline byte buffers. See the [`crate::pagestore`] docs
    /// for the ownership discipline (every page must eventually be freed
    /// by its consumer).
    #[inline]
    pub fn pages(&mut self) -> &mut PageStore {
        self.pages
    }

    /// The simulator-owned control-block [`PoolStore`]: intern verbose
    /// control objects (per-hop wire records, remote requests) here and
    /// send the 8-byte [`crate::PoolRef`] instead of a `Box`. See the
    /// [`crate::pool`] docs for the ownership discipline (exactly one
    /// consumer [`take`](crate::pool::Pool::take)s each block).
    #[inline]
    pub fn pools(&mut self) -> &mut PoolStore {
        self.pools
    }

    /// Schedule `msg` for delivery to `to` after `delay` (zero is allowed;
    /// same-instant messages are delivered in send order).
    ///
    /// Under the sharded runtime a send to a component owned by another
    /// shard is diverted into that shard's mailbox instead of the local
    /// queues; it must be delayed by at least the per-pair lookahead for
    /// that destination shard (the conservative contract every execution
    /// bound rests on), which is asserted here.
    #[inline]
    pub fn send<T: Into<M>>(&mut self, to: ComponentId, delay: SimTime, msg: T) {
        let at = self.now + delay;
        if let Some(env) = self.shard.as_deref_mut() {
            let dst = env.owner[to.index()];
            if dst != env.me {
                assert!(
                    dst != UNOWNED,
                    "message sent to uninstalled component {to:?}"
                );
                assert!(
                    delay >= env.lookahead_to[dst as usize],
                    "lookahead violation: shard {} sent to {to:?} (shard {dst}) with \
                     delay {delay}, below the pair lookahead {}; cross-shard paths \
                     must have latency >= their pair's lookahead",
                    env.me,
                    env.lookahead_to[dst as usize],
                );
                let seq = self.queues.seq;
                self.queues.seq += 1;
                env.outboxes[dst as usize].push(Outbound {
                    at,
                    sent_at: self.now,
                    seq,
                    to,
                    msg: msg.into(),
                });
                return;
            }
        }
        self.queues.push(self.now, at, to, msg.into());
    }

    /// Schedule a message back to the executing component — the idiom for
    /// modelling internal latency (e.g. "finish this NAND read in 50 µs").
    #[inline]
    pub fn send_self<T: Into<M>>(&mut self, delay: SimTime, msg: T) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }
}

/// Per-checkpoint simulator state that is not covered by the queue/store
/// journals: the clock, the delivery counter, and the lazily captured
/// component snapshots.
struct SpecCheckpoint {
    now: SimTime,
    delivered: u64,
    /// `(arena index, snapshot)` for every component that handled at
    /// least one speculative event, in first-touch order.
    touched: Vec<(usize, Box<dyn Any + Send>)>,
    /// Dense already-touched marker, indexed by arena slot.
    seen: Vec<bool>,
}

/// The event-driven simulator over message type `M`.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulator<M: Message> {
    pub(crate) now: SimTime,
    pub(crate) delivered: u64,
    pub(crate) queues: Queues<M>,
    pub(crate) components: ComponentArena<M>,
    pub(crate) pages: PageStore,
    pub(crate) pools: PoolStore,
    /// Set only when this simulator is one shard of a
    /// [`crate::shard::ShardedSimulator`].
    pub(crate) shard_env: Option<ShardEnv<M>>,
    /// Open speculation checkpoint, if the optimistic shard runtime is
    /// mid-window. `None` on every conservative/sequential path.
    spec: Option<Box<SpecCheckpoint>>,
    /// This simulator's trace sink; disabled (and unallocated) by
    /// default, so the dispatch hot path pays one predictable branch.
    pub(crate) trace: TraceSink,
}

impl<M: Message> Default for Simulator<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Message> Simulator<M> {
    /// An empty simulator at time zero.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// An empty simulator with room for `events` pending events before
    /// any queue reallocation.
    pub fn with_capacity(events: usize) -> Self {
        Simulator {
            now: SimTime::ZERO,
            delivered: 0,
            queues: Queues::with_capacity(events),
            components: ComponentArena::new(),
            pages: PageStore::new(),
            pools: PoolStore::new(),
            shard_env: None,
            spec: None,
            trace: TraceSink::disabled(),
        }
    }

    /// Shared access to the simulator-owned [`PageStore`] (leak audits,
    /// occupancy introspection).
    #[inline]
    pub fn page_store(&self) -> &PageStore {
        &self.pages
    }

    /// Exclusive access to the [`PageStore`] — how experiment drivers
    /// stage page payloads before injecting messages, and harvest them
    /// after a run.
    #[inline]
    pub fn page_store_mut(&mut self) -> &mut PageStore {
        &mut self.pages
    }

    /// Shared access to the simulator-owned control-block [`PoolStore`]
    /// (leak audits, occupancy introspection).
    #[inline]
    pub fn pool_store(&self) -> &PoolStore {
        &self.pools
    }

    /// Exclusive access to the [`PoolStore`] — how experiment drivers
    /// stage interned control blocks before injecting messages.
    #[inline]
    pub fn pool_store_mut(&mut self) -> &mut PoolStore {
        &mut self.pools
    }

    /// Install (or disable) event tracing per `cfg`. Records are stamped
    /// with `shard` — `0` for a standalone simulator; the sharded
    /// runtime passes each member's shard id, and driver-side sinks use
    /// [`bluedbm_trace::DRIVER_SHARD`].
    ///
    /// Replaces any existing sink, discarding unharvested records.
    pub fn set_trace(&mut self, cfg: TraceConfig, shard: u32) {
        self.trace = TraceSink::new(cfg, shard);
    }

    /// Shared access to the trace sink (enabled/capture introspection).
    #[inline]
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// Exclusive access to the trace sink — how experiment drivers emit
    /// records from outside a component handler.
    #[inline]
    pub fn trace_sink_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Harvest the records captured so far (the sink stays installed and
    /// its sequence numbering keeps running).
    pub fn take_trace(&mut self) -> TracePart {
        self.trace.take()
    }

    /// Size in bytes of one fast-queue entry (the same-instant FIFO's
    /// element: key + target + inline message). Recorded into the bench
    /// trajectory so payload-slimming regressions are visible.
    #[inline]
    pub fn fast_queue_entry_bytes() -> usize {
        std::mem::size_of::<FastEvent<M>>()
    }

    /// Size in bytes of one index-heap entry (`(time, seq, slot)`).
    #[inline]
    pub fn heap_entry_bytes() -> usize {
        std::mem::size_of::<HeapEntry>()
    }

    /// Current simulated time (the timestamp of the last delivered event,
    /// or the `until` argument of the last bounded run).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of registered components (installed + reserved slots).
    #[inline]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of slots whose component is actually installed (a dense
    /// arena sweep; reserved-but-empty slots are excluded).
    pub fn installed_components(&self) -> usize {
        self.components.installed_count()
    }

    /// Events currently pending (heap plus fast queue).
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queues.heap.len() + self.queues.fast.len()
    }

    /// Size of the payload arena (slots ever allocated, free or full).
    /// Stays flat under steady-state load thanks to the free list; exposed
    /// for capacity introspection and the kernel's own regression tests.
    #[inline]
    pub fn arena_slots(&self) -> usize {
        self.queues.slots.len()
    }

    /// Register a component and return its id.
    pub fn add_component<C: Component<M>>(&mut self, component: C) -> ComponentId {
        ComponentId::from_index(self.components.add(Box::new(component)))
    }

    /// Reserve an id without installing a component yet.
    ///
    /// Component graphs are frequently cyclic (a switch needs the link's
    /// id, the link needs the switch's); reserving ids first breaks the
    /// cycle. Sending to a reserved-but-uninstalled id panics at delivery.
    pub fn reserve(&mut self) -> ComponentId {
        ComponentId::from_index(self.components.reserve())
    }

    /// Install a component into a previously [`reserve`](Self::reserve)d slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied.
    pub fn install<C: Component<M>>(&mut self, id: ComponentId, component: C) {
        self.components.install(id.index(), Box::new(component));
    }

    /// Typed shared access to a component's state.
    ///
    /// Returns `None` if `id` holds no component or the concrete type is
    /// not `C`. This is how experiment drivers read statistics out of
    /// models after a run.
    pub fn component<C: Component<M>>(&self, id: ComponentId) -> Option<&C> {
        let c = self.components.get(id.index())?;
        (c as &dyn Any).downcast_ref::<C>()
    }

    /// Typed exclusive access to a component's state.
    pub fn component_mut<C: Component<M>>(&mut self, id: ComponentId) -> Option<&mut C> {
        let c = self.components.get_mut_checked(id.index())?;
        (c as &mut dyn Any).downcast_mut::<C>()
    }

    /// Schedule `msg` for delivery to `to` at `delay` from now (external
    /// injection; components use [`Ctx::send`]).
    ///
    /// Shares [`Ctx::send`]'s insertion path — the fast-queue append is
    /// safe here too, because any events still pending in the fast queue
    /// sit at the current instant and this send's sequence number is
    /// newer than theirs.
    #[inline]
    pub fn schedule<T: Into<M>>(&mut self, delay: SimTime, to: ComponentId, msg: T) {
        self.queues.push(self.now, self.now + delay, to, msg.into());
    }

    /// Run one handler; its sends land in the queues directly. The
    /// component fetch is a single bounds-checked arena index; reserved
    /// slots hold a sentinel whose handler raises the
    /// uninstalled-component panic.
    fn dispatch(&mut self, at: SimTime, to: ComponentId, msg: M) {
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.delivered += 1;

        if self.spec.is_some() {
            self.spec_touch(to.index());
        }
        self.trace.record(
            at.as_ps(),
            TraceCat::Dispatch,
            TraceKind::Instant,
            "event",
            to.index() as u32,
            1,
            0,
        );
        let component = self.components.get_mut(to.index());
        let mut ctx = Ctx {
            now: at,
            self_id: to,
            queues: &mut self.queues,
            pages: &mut self.pages,
            pools: &mut self.pools,
            shard: self.shard_env.as_mut(),
            trace: &mut self.trace,
        };
        component.handle(&mut ctx, msg);
    }

    /// Deliver one event and, when the following queue heads continue at
    /// the same instant toward the same component, the whole train behind
    /// it in a single borrow of that component.
    ///
    /// Batching never reorders anything: [`Batch::next`] yields exactly
    /// the maximal prefix of the global `(time, seq)` order addressed to
    /// one component. Messages a handler sends *while* draining carry
    /// newer sequence numbers, so they sort after everything already
    /// queued at this instant — when they end up globally next they join
    /// the train, in the same place per-event dispatch would deliver
    /// them.
    fn dispatch_train(&mut self, at: SimTime, to: ComponentId, msg: M) {
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;

        if self.spec.is_some() {
            self.spec_touch(to.index());
        }
        let component = self.components.get_mut(to.index());
        let mut ctx = Ctx {
            now: at,
            self_id: to,
            queues: &mut self.queues,
            pages: &mut self.pages,
            pools: &mut self.pools,
            shard: self.shard_env.as_mut(),
            trace: &mut self.trace,
        };
        if !ctx.queues.next_matches(at, to) {
            // Singleton event: plain per-message dispatch.
            self.delivered += 1;
            ctx.trace
                .record(at.as_ps(), TraceCat::Dispatch, TraceKind::Instant, "event", to.index() as u32, 1, 0);
            component.handle(&mut ctx, msg);
            return;
        }

        let mut batch = Batch {
            to,
            head: Some(msg),
            run: 0,
            taken: 0,
        };
        ctx.trace
            .record(at.as_ps(), TraceCat::Dispatch, TraceKind::Instant, "train", to.index() as u32, 0, 0);
        component.handle_batch(&mut ctx, &mut batch);
        self.delivered += batch.taken;
        // A batch handler may stop before taking even the head; deliver
        // it per-message then (anything else it skipped is still queued
        // and simply dispatches as the next train). No event is ever
        // dropped.
        if let Some(rest) = batch.head.take() {
            self.delivered += 1;
            component.handle(&mut ctx, rest);
        }
    }

    /// Deliver the next event, if any. Returns `false` when the queue is
    /// empty.
    ///
    /// Always delivers exactly one event (no train batching), which is
    /// what makes [`run_limited`](Self::run_limited)'s event accounting
    /// precise; the bulk runners below batch instead. Both paths produce
    /// identical delivery order and totals.
    ///
    /// # Panics
    ///
    /// Panics if the event targets a reserved slot that was never
    /// [`install`](Self::install)ed.
    pub fn step(&mut self) -> bool {
        match self.queues.pop_next() {
            Some((key, to, msg)) => {
                self.dispatch(key.at, to, msg);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue is empty, draining same-component
    /// same-instant trains in one component borrow each.
    pub fn run(&mut self) {
        while let Some((key, to, msg)) = self.queues.pop_next() {
            self.dispatch_train(key.at, to, msg);
        }
    }

    /// Run until the queue is empty or the next event is after `until`;
    /// then advance the clock to exactly `until`.
    ///
    /// Events scheduled at exactly `until` are delivered. The bound is
    /// enforced with a single O(1) head comparison per train — the heap
    /// is not re-searched between deliveries, and every event of a train
    /// shares the head's timestamp, so the bound holds for all of it.
    pub fn run_until(&mut self, until: SimTime) {
        while self.queues.next_at().is_some_and(|at| at <= until) {
            let (key, to, msg) = self.queues.pop_next().expect("next_at saw an event");
            self.dispatch_train(key.at, to, msg);
        }
        debug_assert!(self.now <= until);
        self.now = until;
    }

    /// Run every event strictly before `end`, draining trains as
    /// [`run`](Self::run) does, and leave the clock at the last delivered
    /// event. The sharded runtime's window executor: the strict bound is
    /// what makes the conservative window `[start, end)` half-open, so an
    /// event at exactly `end` waits for the next window (after the
    /// mailbox barrier that may deliver cross-shard events at `end`).
    pub(crate) fn run_before(&mut self, end: SimTime) {
        while self.queues.next_at().is_some_and(|at| at < end) {
            let (key, to, msg) = self.queues.pop_next().expect("next_at saw an event");
            self.dispatch_train(key.at, to, msg);
        }
    }

    /// Enqueue one cross-shard arrival (already payload-attached) under a
    /// fresh local sequence number. Arrivals always go through the index
    /// heap: the fast queue's append-only ordering argument assumes sends
    /// happen at the current instant, which barrier-merged arrivals
    /// violate.
    pub(crate) fn push_arrival(&mut self, at: SimTime, to: ComponentId, msg: M) {
        debug_assert!(
            at >= self.now,
            "arrival predates the shard clock: at={at} now={} to={to:?}",
            self.now
        );
        self.queues.push_heap(at, to, msg);
    }

    /// Enqueue one cross-shard arrival under a caller-reserved sequence
    /// number. Commit path of the optimistic runtime: arrivals merged at
    /// a barrier *after* a window was speculated must still order before
    /// the speculation's own sends on same-instant ties, exactly as they
    /// would have in the conservative engine (where the merge happens
    /// before the window runs). The caller passes sequence numbers from
    /// the reserved band `[checkpoint, checkpoint + arrival count)`,
    /// which sits below the [`SEQ_GAP`]-shifted speculative band.
    pub(crate) fn push_arrival_at_seq(&mut self, at: SimTime, to: ComponentId, msg: M, seq: u64) {
        debug_assert!(
            at >= self.now,
            "arrival predates the shard clock: at={at} now={} to={to:?}",
            self.now
        );
        self.queues.push_heap_at_seq(at, to, msg, seq);
    }

    /// First-touch component journalling for speculative execution: the
    /// first time a speculation delivers to arena slot `idx`, capture the
    /// component's snapshot.
    #[cold]
    fn spec_touch(&mut self, idx: usize) {
        let spec = self.spec.as_deref_mut().expect("speculation is open");
        if spec.seen[idx] {
            return;
        }
        spec.seen[idx] = true;
        let snap = self.components.get_mut(idx).snapshot();
        spec.touched.push((idx, snap));
    }

    /// Keep all speculative work done since
    /// [`checkpoint_begin`](Self::checkpoint_begin): drop the queue/store
    /// journals and the component snapshots (notifying journalling
    /// components via [`Component::discard_snapshot`]).
    pub(crate) fn checkpoint_commit(&mut self) {
        let spec = self.spec.take().expect("commit without checkpoint");
        for (idx, _snap) in &spec.touched {
            self.components.get_mut(*idx).discard_snapshot();
        }
        self.queues.commit_journal();
        self.pages.checkpoint_commit();
        self.pools.checkpoint_commit();
        self.trace.journal_commit();
    }

    /// Discard all speculative work done since
    /// [`checkpoint_begin`](Self::checkpoint_begin): restore the clock,
    /// the delivery counter, every touched component, the event queues
    /// and both payload stores to their checkpoint state, bit for bit.
    pub(crate) fn checkpoint_rollback(&mut self) {
        let spec = self.spec.take().expect("rollback without checkpoint");
        self.now = spec.now;
        self.delivered = spec.delivered;
        for (idx, snap) in spec.touched {
            self.components.get_mut(idx).restore(snap);
        }
        self.queues.rollback_journal();
        self.pages.checkpoint_rollback();
        self.pools.checkpoint_rollback();
        self.trace.journal_rollback();
    }

    /// Run until the queue empties or `max_events` more events have been
    /// delivered. Returns the number actually delivered — a guard against
    /// accidental livelock in model development.
    pub fn run_limited(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// `true` if no events remain.
    pub fn is_idle(&self) -> bool {
        self.queues.heap.is_empty() && self.queues.fast.is_empty()
    }
}

impl<M: Message + Clone> Simulator<M> {
    /// Open a speculation checkpoint covering the clock, the delivery
    /// counter, the event queues, both payload stores and (lazily, on
    /// first delivery) every component the speculation touches. Returns
    /// the checkpoint sequence number, whose reserved band the commit
    /// path splices barrier arrivals into (see
    /// [`push_arrival_at_seq`](Self::push_arrival_at_seq)).
    ///
    /// `M: Clone` is needed because pre-checkpoint events popped during
    /// the speculation must be clonable back into the queue on rollback;
    /// the bound is captured here as a fn pointer so the pop hot paths
    /// stay unbounded.
    pub(crate) fn checkpoint_begin(&mut self) -> u64 {
        debug_assert!(self.spec.is_none(), "nested speculation checkpoint");
        let chk_seq = self.queues.begin_journal(M::clone);
        self.pages.checkpoint_begin();
        self.pools.checkpoint_begin();
        self.trace.journal_begin();
        self.spec = Some(Box::new(SpecCheckpoint {
            now: self.now,
            delivered: self.delivered,
            touched: Vec::new(),
            seen: vec![false; self.components.len()],
        }));
        chk_seq
    }
}

/// Restore the heap property upward from `i` (4-ary: parent of `i` is
/// `(i - 1) / 4`). Moves a hole instead of swapping: one store per level
/// plus the final placement.
#[inline]
fn sift_up(heap: &mut [HeapEntry], mut i: usize) {
    let entry = heap[i];
    while i > 0 {
        let parent = (i - 1) / 4;
        if entry.key < heap[parent].key {
            heap[i] = heap[parent];
            i = parent;
        } else {
            break;
        }
    }
    heap[i] = entry;
}

/// Restore the heap property downward from the root after placing `entry`
/// there conceptually (children of `i` are `4i + 1 ..= 4i + 4`).
#[inline]
fn sift_down(heap: &mut [HeapEntry], entry: HeapEntry) {
    let len = heap.len();
    let mut i = 0;
    loop {
        let first = 4 * i + 1;
        if first >= len {
            break;
        }
        let last = (first + 4).min(len);
        let mut min = first;
        let mut min_key = heap[first].key;
        for (offset, e) in heap[first + 1..last].iter().enumerate() {
            if e.key < min_key {
                min = first + 1 + offset;
                min_key = e.key;
            }
        }
        if min_key < entry.key {
            heap[i] = heap[min];
            i = min;
        } else {
            break;
        }
    }
    heap[i] = entry;
}

/// Pop the minimum entry of the 4-ary heap.
#[inline]
fn pop_root(heap: &mut Vec<HeapEntry>) -> Option<HeapEntry> {
    let last = heap.pop()?;
    if heap.is_empty() {
        return Some(last);
    }
    let root = heap[0];
    sift_down(heap, last);
    Some(root)
}

impl<M: Message> fmt::Debug for Simulator<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("components", &self.components.len())
            .field("installed", &self.components.installed_count())
            .field("pending_events", &self.pending_events())
            .field("delivered", &self.delivered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        received: Vec<(SimTime, u32)>,
        reply_to: Option<ComponentId>,
        reply_delay: SimTime,
    }

    impl Echo {
        fn sink() -> Self {
            Echo {
                received: vec![],
                reply_to: None,
                reply_delay: SimTime::ns(100),
            }
        }

        fn replying(to: ComponentId) -> Self {
            Echo {
                received: vec![],
                reply_to: Some(to),
                reply_delay: SimTime::ns(100),
            }
        }
    }

    struct Num(u32);

    impl Component<Num> for Echo {
        fn handle(&mut self, ctx: &mut Ctx<'_, Num>, msg: Num) {
            let Num(n) = msg;
            self.received.push((ctx.now(), n));
            if let Some(to) = self.reply_to {
                ctx.send(to, self.reply_delay, Num(n + 1));
            }
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        sim.schedule(SimTime::us(3), id, Num(3));
        sim.schedule(SimTime::us(1), id, Num(1));
        sim.schedule(SimTime::us(2), id, Num(2));
        sim.run();
        let echo = sim.component::<Echo>(id).unwrap();
        let values: Vec<u32> = echo.received.iter().map(|&(_, n)| n).collect();
        assert_eq!(values, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::us(3));
        assert_eq!(sim.events_delivered(), 3);
    }

    #[test]
    fn same_instant_fifo_order() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        for n in 0..10 {
            sim.schedule(SimTime::us(5), id, Num(n));
        }
        sim.run();
        let echo = sim.component::<Echo>(id).unwrap();
        let values: Vec<u32> = echo.received.iter().map(|&(_, n)| n).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_fifo_order_under_fast_path() {
        // A fan-out chain built from zero-delay sends: one component
        // relays each message to a sink at delay zero, twice. The fast
        // queue must interleave with heap events without reordering any
        // same-instant FIFO.
        struct Relay {
            to: ComponentId,
        }
        impl Component<Num> for Relay {
            fn handle(&mut self, ctx: &mut Ctx<'_, Num>, Num(n): Num) {
                ctx.send(self.to, SimTime::ZERO, Num(2 * n));
                ctx.send(self.to, SimTime::ZERO, Num(2 * n + 1));
            }
        }
        let mut sim = Simulator::new();
        let sink = sim.reserve();
        let relay = sim.add_component(Relay { to: sink });
        sim.install(sink, Echo::sink());
        for n in 0..8 {
            // Mix of instants: four at t=1us, four at t=2us.
            sim.schedule(SimTime::us(1 + u64::from(n) % 2), relay, Num(n));
        }
        sim.run();
        let echo = sim.component::<Echo>(sink).unwrap();
        let values: Vec<u32> = echo.received.iter().map(|&(_, n)| n).collect();
        // t=1us carries inputs 0,2,4,6 in schedule order; t=2us carries
        // 1,3,5,7. Each input n fans out to (2n, 2n+1) in send order.
        assert_eq!(
            values,
            vec![0, 1, 4, 5, 8, 9, 12, 13, 2, 3, 6, 7, 10, 11, 14, 15]
        );
        // All instants visited in order.
        assert!(echo.received.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn deterministic_across_runs() {
        // Same wiring and inputs => identical event count and final
        // clock, run twice from scratch.
        fn run_once() -> (u64, SimTime) {
            let mut sim = Simulator::new();
            let a = sim.reserve();
            let b = sim.reserve();
            sim.install(a, Echo::replying(b));
            let mut eb = Echo::replying(a);
            eb.reply_delay = SimTime::ns(70);
            sim.install(b, eb);
            for n in 0..5 {
                sim.schedule(SimTime::ns(u64::from(n) * 13), a, Num(n));
            }
            sim.run_limited(5_000);
            (sim.events_delivered(), sim.now())
        }
        let first = run_once();
        let second = run_once();
        assert_eq!(first, second);
        assert_eq!(first.0, 5_000);
    }

    #[test]
    fn arena_free_list_reuses_slots() {
        // A two-party ping-pong keeps at most one event in flight, so the
        // arena must stay at a single slot no matter how many events pass
        // through the heap.
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        sim.install(a, Echo::replying(b));
        sim.install(b, Echo::replying(a));
        sim.schedule(SimTime::ZERO, a, Num(0));
        let delivered = sim.run_limited(10_000);
        assert_eq!(delivered, 10_000);
        assert_eq!(
            sim.arena_slots(),
            1,
            "steady one-in-flight load must not grow the arena"
        );
    }

    #[test]
    fn ping_pong_between_components() {
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        sim.install(a, Echo::replying(b));
        sim.install(b, Echo::sink());
        sim.schedule(SimTime::ZERO, a, Num(7));
        sim.run();
        assert_eq!(
            sim.component::<Echo>(a).unwrap().received,
            vec![(SimTime::ZERO, 7)]
        );
        assert_eq!(
            sim.component::<Echo>(b).unwrap().received,
            vec![(SimTime::ns(100), 8)]
        );
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        sim.schedule(SimTime::us(1), id, Num(1));
        sim.schedule(SimTime::us(10), id, Num(2));
        sim.run_until(SimTime::us(5));
        assert_eq!(sim.now(), SimTime::us(5));
        assert_eq!(sim.component::<Echo>(id).unwrap().received.len(), 1);
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(sim.component::<Echo>(id).unwrap().received.len(), 2);
    }

    #[test]
    fn run_until_delivers_events_at_boundary() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        sim.schedule(SimTime::us(5), id, Num(1));
        sim.run_until(SimTime::us(5));
        assert_eq!(sim.component::<Echo>(id).unwrap().received.len(), 1);
    }

    #[test]
    fn run_limited_bounds_work() {
        // Two components ping-ponging forever.
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        sim.install(a, Echo::replying(b));
        sim.install(b, Echo::replying(a));
        sim.schedule(SimTime::ZERO, a, Num(0));
        let delivered = sim.run_limited(101);
        assert_eq!(delivered, 101);
        assert!(!sim.is_idle());
    }

    #[test]
    fn typed_access_rejects_wrong_type() {
        struct Other;
        impl Component<Num> for Other {
            fn handle(&mut self, _ctx: &mut Ctx<'_, Num>, _msg: Num) {}
        }
        let mut sim = Simulator::<Num>::new();
        let id = sim.add_component(Other);
        assert!(sim.component::<Echo>(id).is_none());
        assert!(sim.component::<Other>(id).is_some());
        assert!(sim.component_mut::<Other>(id).is_some());
    }

    #[test]
    #[should_panic(expected = "uninstalled component")]
    fn sending_to_reserved_slot_panics() {
        let mut sim = Simulator::<Num>::new();
        let id = sim.reserve();
        sim.schedule(SimTime::ZERO, id, Num(0));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_panics() {
        let mut sim = Simulator::<Num>::new();
        let id = sim.add_component(Echo::sink());
        sim.install(id, Echo::sink());
    }

    /// Records how each message reached it: via a train batch or a
    /// per-message dispatch.
    struct BatchProbe {
        log: Vec<(u32, bool)>,
        batches: u64,
        /// Max messages to consume per `handle_batch` call (`usize::MAX`
        /// = all of them).
        consume_limit: usize,
    }

    impl BatchProbe {
        fn new() -> Self {
            BatchProbe {
                log: vec![],
                batches: 0,
                consume_limit: usize::MAX,
            }
        }
    }

    impl Component<Num> for BatchProbe {
        fn handle(&mut self, _ctx: &mut Ctx<'_, Num>, Num(n): Num) {
            self.log.push((n, false));
        }

        fn handle_batch(&mut self, ctx: &mut Ctx<'_, Num>, batch: &mut Batch<Num>) {
            self.batches += 1;
            for _ in 0..self.consume_limit {
                match batch.next(ctx) {
                    Some(Num(n)) => self.log.push((n, true)),
                    None => break,
                }
            }
        }
    }

    #[test]
    fn same_instant_trains_arrive_as_one_batch() {
        let mut sim = Simulator::new();
        let a = sim.add_component(BatchProbe::new());
        let b = sim.add_component(BatchProbe::new());
        // Global order at t=1us: a, a, b, a — the first two form a train,
        // the b interleave breaks it, the last a is a singleton.
        sim.schedule(SimTime::us(1), a, Num(0));
        sim.schedule(SimTime::us(1), a, Num(1));
        sim.schedule(SimTime::us(1), b, Num(2));
        sim.schedule(SimTime::us(1), a, Num(3));
        sim.run();
        let pa = sim.component::<BatchProbe>(a).unwrap();
        assert_eq!(pa.log, vec![(0, true), (1, true), (3, false)]);
        assert_eq!(pa.batches, 1);
        let pb = sim.component::<BatchProbe>(b).unwrap();
        assert_eq!(pb.log, vec![(2, false)]);
        assert_eq!(sim.events_delivered(), 4);
    }

    #[test]
    fn partially_consumed_batch_leaves_the_rest_queued() {
        let mut sim = Simulator::new();
        let mut probe = BatchProbe::new();
        probe.consume_limit = 2;
        let id = sim.add_component(probe);
        for n in 0..5 {
            sim.schedule(SimTime::us(1), id, Num(n));
        }
        sim.run();
        let p = sim.component::<BatchProbe>(id).unwrap();
        // The handler takes two per call; what it leaves stays queued, so
        // the five events arrive as trains of 2 + 2 and a singleton — in
        // the original order, with nothing dropped.
        assert_eq!(
            p.log,
            vec![(0, true), (1, true), (2, true), (3, true), (4, false)]
        );
        assert_eq!(p.batches, 2);
        assert_eq!(sim.events_delivered(), 5);
    }

    #[test]
    fn batch_handler_taking_nothing_still_delivers_everything() {
        let mut sim = Simulator::new();
        let mut probe = BatchProbe::new();
        probe.consume_limit = 0;
        let id = sim.add_component(probe);
        for n in 0..3 {
            sim.schedule(SimTime::us(1), id, Num(n));
        }
        sim.run();
        let p = sim.component::<BatchProbe>(id).unwrap();
        // The refusing batch handler forces the per-message fallback for
        // every train head; order and totals are untouched.
        assert_eq!(p.log, vec![(0, false), (1, false), (2, false)]);
        assert_eq!(sim.events_delivered(), 3);
    }

    #[test]
    fn zero_delay_sends_during_a_batch_join_the_running_train() {
        // A component that, while draining a train, emits one zero-delay
        // self-send per scheduled message: the emissions sort after
        // everything already queued at this instant — exactly where
        // per-event dispatch would deliver them — and, being globally
        // next when the original train runs dry, extend the same batch.
        struct Echoing {
            seen: Vec<u32>,
            trains: Vec<usize>,
            budget: u32,
        }
        impl Component<Num> for Echoing {
            fn handle(&mut self, ctx: &mut Ctx<'_, Num>, Num(n): Num) {
                self.seen.push(n);
                if self.budget > 0 {
                    self.budget -= 1;
                    ctx.send_self(SimTime::ZERO, Num(100 + n));
                }
                self.trains.push(1);
            }

            fn handle_batch(&mut self, ctx: &mut Ctx<'_, Num>, batch: &mut Batch<Num>) {
                let mut train = 0;
                while let Some(Num(n)) = batch.next(ctx) {
                    train += 1;
                    self.seen.push(n);
                    if self.budget > 0 {
                        self.budget -= 1;
                        ctx.send_self(SimTime::ZERO, Num(100 + n));
                    }
                }
                self.trains.push(train);
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add_component(Echoing {
            seen: vec![],
            trains: vec![],
            budget: 3,
        });
        for n in 0..3 {
            sim.schedule(SimTime::ZERO, id, Num(n));
        }
        sim.run();
        let e = sim.component::<Echoing>(id).unwrap();
        assert_eq!(e.seen, vec![0, 1, 2, 100, 101, 102]);
        assert_eq!(e.trains, vec![6], "echoes extend the same train");
        assert_eq!(sim.events_delivered(), 6);
    }

    #[test]
    fn step_and_run_deliver_identically() {
        // The per-event path (step) and the batched path (run) must agree
        // on order, count and final clock for a workload mixing trains,
        // interleaves and zero-delay fan-out.
        fn build() -> (Simulator<Num>, ComponentId) {
            struct Relay {
                to: ComponentId,
            }
            impl Component<Num> for Relay {
                fn handle(&mut self, ctx: &mut Ctx<'_, Num>, Num(n): Num) {
                    ctx.send(self.to, SimTime::ZERO, Num(2 * n));
                    ctx.send(self.to, SimTime::ZERO, Num(2 * n + 1));
                }
            }
            let mut sim = Simulator::new();
            let sink = sim.reserve();
            let relay = sim.add_component(Relay { to: sink });
            sim.install(sink, Echo::sink());
            for n in 0..12 {
                sim.schedule(SimTime::ns(u64::from(n % 3) * 10), relay, Num(n));
            }
            (sim, sink)
        }
        let (mut batched, sink_b) = build();
        batched.run();
        let (mut stepped, sink_s) = build();
        while stepped.step() {}
        assert_eq!(
            batched.component::<Echo>(sink_b).unwrap().received,
            stepped.component::<Echo>(sink_s).unwrap().received,
        );
        assert_eq!(batched.events_delivered(), stepped.events_delivered());
        assert_eq!(batched.now(), stepped.now());
    }

    #[test]
    fn run_until_batches_trains_only_within_bound() {
        let mut sim = Simulator::new();
        let id = sim.add_component(BatchProbe::new());
        for n in 0..4 {
            sim.schedule(SimTime::us(1), id, Num(n));
        }
        for n in 4..6 {
            sim.schedule(SimTime::us(9), id, Num(n));
        }
        sim.run_until(SimTime::us(5));
        let p = sim.component::<BatchProbe>(id).unwrap();
        assert_eq!(p.log, vec![(0, true), (1, true), (2, true), (3, true)]);
        assert_eq!(sim.now(), SimTime::us(5));
        sim.run();
        let p = sim.component::<BatchProbe>(id).unwrap();
        assert_eq!(p.log.len(), 6);
        assert_eq!(p.batches, 2);
    }

    #[test]
    fn pages_travel_by_handle_between_components() {
        use crate::pagestore::PageRef;

        struct PageMsg(PageRef);

        /// Allocates a page, fills it, ships the handle.
        struct Producer {
            to: ComponentId,
        }
        impl Component<PageMsg> for Producer {
            fn handle(&mut self, ctx: &mut Ctx<'_, PageMsg>, PageMsg(kick): PageMsg) {
                ctx.pages().free(kick);
                let page = ctx.pages().alloc_from(b"payload bytes");
                ctx.send(self.to, SimTime::us(1), PageMsg(page));
            }
        }

        /// Consumes (copies out + frees) every page it receives.
        struct Consumer {
            seen: Vec<Vec<u8>>,
        }
        impl Component<PageMsg> for Consumer {
            fn handle(&mut self, ctx: &mut Ctx<'_, PageMsg>, PageMsg(page): PageMsg) {
                self.seen.push(ctx.pages().take(page));
            }
        }

        let mut sim = Simulator::new();
        let consumer = sim.reserve();
        let producer = sim.add_component(Producer { to: consumer });
        sim.install(consumer, Consumer { seen: vec![] });
        let kick = sim.page_store_mut().alloc(1);
        sim.schedule(SimTime::ZERO, producer, PageMsg(kick));
        sim.run();
        assert_eq!(
            sim.component::<Consumer>(consumer).unwrap().seen,
            vec![b"payload bytes".to_vec()]
        );
        sim.page_store().assert_quiescent();
    }

    #[test]
    fn entry_size_accessors_report_compact_layouts() {
        // A zero-sized message: the fast-queue entry is the fixed
        // overhead alone (16-byte key + 4-byte target, padded).
        assert_eq!(Simulator::<()>::heap_entry_bytes(), 24);
        assert!(Simulator::<()>::fast_queue_entry_bytes() <= 24);
    }

    #[test]
    fn heap_stress_random_interleaving_stays_ordered() {
        // Many events at pseudo-random times must still come out in
        // (time, seq) order through the 4-ary heap.
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo::sink());
        let mut t = 1u64;
        for n in 0..500u32 {
            t = t.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            sim.schedule(SimTime::ns(t % 10_000), id, Num(n));
        }
        sim.run();
        let echo = sim.component::<Echo>(id).unwrap();
        assert_eq!(echo.received.len(), 500);
        assert!(echo.received.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
