//! The discrete-event engine: components, messages and the event queue.
//!
//! Hardware blocks (flash controllers, network switches, DMA engines, ...)
//! are modelled as [`Component`]s registered with a [`Simulator`]. They
//! communicate exclusively by scheduling messages to each other's
//! [`ComponentId`]s with a non-negative delay; the engine delivers messages
//! in a total order (time, then scheduling sequence), which makes every run
//! deterministic.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// Handle to a component registered with a [`Simulator`].
///
/// Ids are small dense integers, assigned in registration order, so they
/// can be stored freely in routing tables and config structures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(usize);

impl ComponentId {
    /// The raw index (useful for building lookup tables keyed by id).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A hardware block in the simulation.
///
/// Implementors receive every message addressed to them via
/// [`Component::handle`] and respond by scheduling further messages through
/// the [`Ctx`]. The `Any` supertrait enables typed access to component
/// state after (or during) a run via [`Simulator::component`].
pub trait Component: Any {
    /// Process one message delivered at `ctx.now()`.
    ///
    /// Unrecognized message types should be ignored or `panic!` — a panic
    /// indicates a wiring bug, not a runtime condition, so models here
    /// generally prefer to panic loudly.
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Box<dyn Any>);
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    to: ComponentId,
    msg: Box<dyn Any>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Execution context passed to [`Component::handle`].
///
/// Lets the running component read the clock and schedule messages; sends
/// are buffered and committed to the event queue when the handler returns,
/// so a handler never observes its own same-instant sends.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: ComponentId,
    outbox: &'a mut Vec<(SimTime, ComponentId, Box<dyn Any>)>,
}

impl Ctx<'_> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently executing.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedule `msg` for delivery to `to` after `delay` (zero is allowed;
    /// same-instant messages are delivered in send order).
    pub fn send<M: Any>(&mut self, to: ComponentId, delay: SimTime, msg: M) {
        self.outbox.push((self.now + delay, to, Box::new(msg)));
    }

    /// Schedule a message back to the executing component — the idiom for
    /// modelling internal latency (e.g. "finish this NAND read in 50 µs").
    pub fn send_self<M: Any>(&mut self, delay: SimTime, msg: M) {
        self.send(self.self_id, delay, msg);
    }

    /// Schedule an already-boxed message (used when forwarding payloads
    /// whose concrete type the forwarder does not know).
    pub fn send_boxed(&mut self, to: ComponentId, delay: SimTime, msg: Box<dyn Any>) {
        self.outbox.push((self.now + delay, to, msg));
    }
}

/// The event-driven simulator.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    delivered: u64,
    heap: BinaryHeap<Scheduled>,
    components: Vec<Option<Box<dyn Component>>>,
    outbox: Vec<(SimTime, ComponentId, Box<dyn Any>)>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// An empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            delivered: 0,
            heap: BinaryHeap::new(),
            components: Vec::new(),
            outbox: Vec::new(),
        }
    }

    /// Current simulated time (the timestamp of the last delivered event,
    /// or the `until` argument of the last bounded run).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of registered components.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Register a component and return its id.
    pub fn add_component<C: Component>(&mut self, component: C) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(Box::new(component)));
        id
    }

    /// Reserve an id without installing a component yet.
    ///
    /// Component graphs are frequently cyclic (a switch needs the link's
    /// id, the link needs the switch's); reserving ids first breaks the
    /// cycle. Sending to a reserved-but-uninstalled id panics at delivery.
    pub fn reserve(&mut self) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(None);
        id
    }

    /// Install a component into a previously [`reserve`](Self::reserve)d slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already occupied.
    pub fn install<C: Component>(&mut self, id: ComponentId, component: C) {
        let slot = &mut self.components[id.0];
        assert!(slot.is_none(), "component slot {id:?} already installed");
        *slot = Some(Box::new(component));
    }

    /// Typed shared access to a component's state.
    ///
    /// Returns `None` if `id` holds no component or the concrete type is
    /// not `C`. This is how experiment drivers read statistics out of
    /// models after a run.
    pub fn component<C: Component>(&self, id: ComponentId) -> Option<&C> {
        let c = self.components.get(id.0)?.as_deref()?;
        (c as &dyn Any).downcast_ref::<C>()
    }

    /// Typed exclusive access to a component's state.
    pub fn component_mut<C: Component>(&mut self, id: ComponentId) -> Option<&mut C> {
        let c = self.components.get_mut(id.0)?.as_deref_mut()?;
        (c as &mut dyn Any).downcast_mut::<C>()
    }

    /// Schedule `msg` for delivery to `to` at absolute-time-from-now
    /// `delay` (external injection; components use [`Ctx::send`]).
    pub fn schedule<M: Any>(&mut self, delay: SimTime, to: ComponentId, msg: M) {
        let at = self.now + delay;
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            to,
            msg: Box::new(msg),
        });
        self.seq += 1;
    }

    /// Deliver the next event, if any. Returns `false` when the queue is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if the event targets a reserved slot that was never
    /// [`install`](Self::install)ed.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.heap.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.delivered += 1;

        let mut component = self.components[ev.to.0]
            .take()
            .unwrap_or_else(|| panic!("message sent to uninstalled component {:?}", ev.to));
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.to,
                outbox: &mut self.outbox,
            };
            component.handle(&mut ctx, ev.msg);
        }
        self.components[ev.to.0] = Some(component);

        for (at, to, msg) in self.outbox.drain(..) {
            self.heap.push(Scheduled {
                at,
                seq: self.seq,
                to,
                msg,
            });
            self.seq += 1;
        }
        true
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue is empty or the next event is after `until`;
    /// then advance the clock to exactly `until`.
    ///
    /// Events scheduled at exactly `until` are delivered.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(ev) = self.heap.peek() {
            if ev.at > until {
                break;
            }
            self.step();
        }
        debug_assert!(self.now <= until);
        self.now = until;
    }

    /// Run until the queue empties or `max_events` more events have been
    /// delivered. Returns the number actually delivered — a guard against
    /// accidental livelock in model development.
    pub fn run_limited(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// `true` if no events remain.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("components", &self.components.len())
            .field("pending_events", &self.heap.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        received: Vec<(SimTime, u32)>,
        reply_to: Option<ComponentId>,
    }
    struct Num(u32);

    impl Component for Echo {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Box<dyn Any>) {
            let Num(n) = *msg.downcast::<Num>().expect("unexpected message type");
            self.received.push((ctx.now(), n));
            if let Some(to) = self.reply_to {
                ctx.send(to, SimTime::ns(100), Num(n + 1));
            }
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo {
            received: vec![],
            reply_to: None,
        });
        sim.schedule(SimTime::us(3), id, Num(3));
        sim.schedule(SimTime::us(1), id, Num(1));
        sim.schedule(SimTime::us(2), id, Num(2));
        sim.run();
        let echo = sim.component::<Echo>(id).unwrap();
        let values: Vec<u32> = echo.received.iter().map(|&(_, n)| n).collect();
        assert_eq!(values, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::us(3));
        assert_eq!(sim.events_delivered(), 3);
    }

    #[test]
    fn same_instant_fifo_order() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo {
            received: vec![],
            reply_to: None,
        });
        for n in 0..10 {
            sim.schedule(SimTime::us(5), id, Num(n));
        }
        sim.run();
        let echo = sim.component::<Echo>(id).unwrap();
        let values: Vec<u32> = echo.received.iter().map(|&(_, n)| n).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ping_pong_between_components() {
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        sim.install(
            a,
            Echo {
                received: vec![],
                reply_to: Some(b),
            },
        );
        sim.install(
            b,
            Echo {
                received: vec![],
                reply_to: None,
            },
        );
        sim.schedule(SimTime::ZERO, a, Num(7));
        sim.run();
        assert_eq!(sim.component::<Echo>(a).unwrap().received, vec![(SimTime::ZERO, 7)]);
        assert_eq!(
            sim.component::<Echo>(b).unwrap().received,
            vec![(SimTime::ns(100), 8)]
        );
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo {
            received: vec![],
            reply_to: None,
        });
        sim.schedule(SimTime::us(1), id, Num(1));
        sim.schedule(SimTime::us(10), id, Num(2));
        sim.run_until(SimTime::us(5));
        assert_eq!(sim.now(), SimTime::us(5));
        assert_eq!(sim.component::<Echo>(id).unwrap().received.len(), 1);
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(sim.component::<Echo>(id).unwrap().received.len(), 2);
    }

    #[test]
    fn run_until_delivers_events_at_boundary() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo {
            received: vec![],
            reply_to: None,
        });
        sim.schedule(SimTime::us(5), id, Num(1));
        sim.run_until(SimTime::us(5));
        assert_eq!(sim.component::<Echo>(id).unwrap().received.len(), 1);
    }

    #[test]
    fn run_limited_bounds_work() {
        // Two components ping-ponging forever.
        let mut sim = Simulator::new();
        let a = sim.reserve();
        let b = sim.reserve();
        sim.install(
            a,
            Echo {
                received: vec![],
                reply_to: Some(b),
            },
        );
        sim.install(
            b,
            Echo {
                received: vec![],
                reply_to: Some(a),
            },
        );
        sim.schedule(SimTime::ZERO, a, Num(0));
        let delivered = sim.run_limited(101);
        assert_eq!(delivered, 101);
        assert!(!sim.is_idle());
    }

    #[test]
    fn typed_access_rejects_wrong_type() {
        struct Other;
        impl Component for Other {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, _msg: Box<dyn Any>) {}
        }
        let mut sim = Simulator::new();
        let id = sim.add_component(Other);
        assert!(sim.component::<Echo>(id).is_none());
        assert!(sim.component::<Other>(id).is_some());
        assert!(sim.component_mut::<Other>(id).is_some());
    }

    #[test]
    #[should_panic(expected = "uninstalled component")]
    fn sending_to_reserved_slot_panics() {
        let mut sim = Simulator::new();
        let id = sim.reserve();
        sim.schedule(SimTime::ZERO, id, Num(0));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_panics() {
        let mut sim = Simulator::new();
        let id = sim.add_component(Echo {
            received: vec![],
            reply_to: None,
        });
        sim.install(
            id,
            Echo {
                received: vec![],
                reply_to: None,
            },
        );
    }
}
