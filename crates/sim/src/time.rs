//! Simulated time and bandwidth arithmetic.
//!
//! Time is kept in integer **picoseconds** so that the smallest interesting
//! quantum in the BlueDBM model — a 16-byte (128-bit) flit crossing a
//! 10 Gbps serial link, i.e. 12.8 ns — is represented exactly and accrues
//! no rounding error over millions of flits. A `u64` of picoseconds covers
//! about 213 days of simulated time, far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in picoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators treat it uniformly (this mirrors how hardware
/// models compute `ready_at = now + service_time`).
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::time::SimTime;
///
/// let hop = SimTime::ns(480);
/// assert_eq!(hop * 5, SimTime::us(2) + SimTime::ns(400));
/// assert_eq!(SimTime::us(1).as_ns(), 1_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant / empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time in seconds: {s}");
        SimTime((s * 1e12).round() as u64)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid time in us: {us}");
        SimTime((us * 1e6).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns [`SimTime::ZERO`] instead of
    /// underflowing.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.6}s", ps as f64 / 1e12)
        }
    }
}

/// A data rate, stored as bytes per second.
///
/// Used by every device model to convert transfer sizes into service times:
/// the 10 Gbps serial links, the 1.6 GB/s PCIe DMA path, per-bus NAND
/// transfer rates, and so on.
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::time::{Bandwidth, SimTime};
///
/// let link = Bandwidth::gbits(10.0);
/// // A 128-bit flit takes exactly 12.8 ns at 10 Gbps.
/// assert_eq!(link.time_for(16), SimTime::ps(12_800));
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive.
    #[inline]
    pub fn bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "invalid bandwidth: {bytes_per_sec}"
        );
        Bandwidth(bytes_per_sec)
    }

    /// From gigabits per second (network convention, 10^9 bits).
    #[inline]
    pub fn gbits(gbps: f64) -> Self {
        Self::bytes_per_sec(gbps * 1e9 / 8.0)
    }

    /// From gigabytes per second (10^9 bytes — the convention the paper
    /// uses for flash and PCIe throughput).
    #[inline]
    pub fn gb(gb_per_sec: f64) -> Self {
        Self::bytes_per_sec(gb_per_sec * 1e9)
    }

    /// From megabytes per second (10^6 bytes).
    #[inline]
    pub fn mb(mb_per_sec: f64) -> Self {
        Self::bytes_per_sec(mb_per_sec * 1e6)
    }

    /// The rate in bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in gigabits per second.
    #[inline]
    pub fn as_gbits(self) -> f64 {
        self.0 * 8.0 / 1e9
    }

    /// The rate in gigabytes per second.
    #[inline]
    pub fn as_gb(self) -> f64 {
        self.0 / 1e9
    }

    /// Time to move `bytes` at this rate, rounded to the nearest
    /// picosecond.
    #[inline]
    pub fn time_for(self, bytes: u64) -> SimTime {
        // detlint::allow(float-sim-time): f64 has 53 exact mantissa bits —
        // deterministic for every reachable byte count, and conformance
        // digests are pinned to this formula.
        SimTime::ps((bytes as f64 * 1e12 / self.0).round() as u64)
    }

    /// Scale the rate by a dimensionless factor (e.g. protocol efficiency).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[inline]
    pub fn scale(self, factor: f64) -> Bandwidth {
        Self::bytes_per_sec(self.0 * factor)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2}GB/s", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2}MB/s", self.0 / 1e6)
        } else {
            write!(f, "{:.0}B/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::ns(1), SimTime::ps(1_000));
        assert_eq!(SimTime::us(1), SimTime::ns(1_000));
        assert_eq!(SimTime::ms(1), SimTime::us(1_000));
        assert_eq!(SimTime::secs(1), SimTime::ms(1_000));
    }

    #[test]
    fn float_round_trips() {
        // detlint::allow(float-sim-time): exercising the float bridge itself
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t, SimTime::ms(1_500));
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        // detlint::allow(float-sim-time): ditto
        assert_eq!(SimTime::from_us_f64(0.48), SimTime::ns(480));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::us(3);
        let b = SimTime::us(2);
        assert_eq!(a + b, SimTime::us(5));
        assert_eq!(a - b, SimTime::us(1));
        assert_eq!(b * 4, SimTime::us(8));
        assert_eq!(a / 3, SimTime::us(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::us(1) - SimTime::us(2);
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(SimTime::us).sum();
        assert_eq!(total, SimTime::us(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::ZERO.to_string(), "0s");
        assert_eq!(SimTime::ps(500).to_string(), "500ps");
        assert_eq!(SimTime::ns(480).to_string(), "480.000ns");
        assert_eq!(SimTime::us(50).to_string(), "50.000us");
        assert_eq!(SimTime::ms(3).to_string(), "3.000ms");
        assert_eq!(SimTime::secs(2).to_string(), "2.000000s");
    }

    #[test]
    fn flit_time_is_exact() {
        // The load-bearing case for picosecond resolution: a 128-bit flit
        // at 10 Gbps must serialize in exactly 12.8 ns.
        assert_eq!(Bandwidth::gbits(10.0).time_for(16), SimTime::ps(12_800));
    }

    #[test]
    fn bandwidth_units() {
        let pcie = Bandwidth::gb(1.6);
        assert!((pcie.as_gb() - 1.6).abs() < 1e-12);
        assert!((Bandwidth::gbits(10.0).as_gbits() - 10.0).abs() < 1e-12);
        assert_eq!(Bandwidth::mb(600.0).time_for(600_000_000), SimTime::secs(1));
    }

    #[test]
    fn bandwidth_scale() {
        let raw = Bandwidth::gbits(10.0);
        let goodput = raw.scale(0.82);
        assert!((goodput.as_gbits() - 8.2).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::gb(2.4).to_string(), "2.40GB/s");
        assert_eq!(Bandwidth::mb(600.0).to_string(), "600.00MB/s");
    }

    #[test]
    fn page_transfer_times_match_paper_envelope() {
        // An 8 KiB page over one 1.2 GB/s flash card: ~6.8 us.
        let card = Bandwidth::gb(1.2);
        let t = card.time_for(8192);
        assert!(t > SimTime::us(6) && t < SimTime::us(7));
    }
}
