//! Deterministic fast hashing for simulation-internal maps.
//!
//! The hot paths index many small maps per delivered event — router
//! per-flow sequence tables, flash tag tables, node pending maps, the
//! KV directory — all keyed by small integers or short byte strings.
//! `std`'s default SipHash spends more time hashing those keys than the
//! map spends probing, and its per-map random seed makes iteration
//! order vary across processes. This module provides the classic
//! Fx-style multiply-rotate hash instead: a few cycles per word, fully
//! deterministic (fixed seed), which also keeps any accidental
//! iteration-order dependence bit-repeatable across runs and hosts.
//!
//! Not DoS-resistant — these maps hold simulation state keyed by the
//! model itself, never by untrusted external input.

// detlint::allow(no-std-hasher): the definition site of the Fx aliases
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`]: drop-in for simulation-internal
/// state (construct with `FxHashMap::default()`).
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Multiplicative word-at-a-time hasher (the rustc / Firefox "Fx"
/// construction): `hash = (hash.rotl(5) ^ word) * K` per 8-byte word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / golden ratio, forced odd — spreads consecutive small
/// integers (the dominant key shape here) across the whole word.
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        if let Some(chunk) = bytes.first_chunk::<2>() {
            self.add(u64::from(u16::from_le_bytes(*chunk)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&b"page-key".as_slice()), hash_of(&b"page-key".as_slice()));
        // Pinned value: the hash is part of no contract, but a change
        // here flags an accidental algorithm edit.
        assert_eq!(hash_of(&0u64), 0);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hashes: FxHashSet<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000, "consecutive keys must not collide");
    }

    #[test]
    fn tail_bytes_reach_the_hash() {
        // Keys differing only in a trailing byte (past the 8-byte
        // chunks) must hash differently.
        assert_ne!(hash_of(&b"0123456789".as_slice()), hash_of(&b"012345678A".as_slice()));
        assert_ne!(hash_of(&b"01234".as_slice()), hash_of(&b"01235".as_slice()));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Vec<u8>, u32> = FxHashMap::default();
        for i in 0u32..100 {
            m.insert(format!("key-{i}").into_bytes(), i);
        }
        for i in 0u32..100 {
            assert_eq!(m.get(format!("key-{i}").as_bytes()), Some(&i));
        }
    }
}
