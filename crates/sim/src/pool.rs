//! Simulator-owned typed control-block pools: slab interning for the
//! boxed control-plane objects that ride messages.
//!
//! The [`PageStore`](crate::pagestore::PageStore) removed bulk payloads
//! from messages; this module does the same for *control blocks* — the
//! verbose metadata structs (a network packet's per-hop wire record, a
//! remote request) that would otherwise need a heap `Box` per instance to
//! fit the 64-byte message budget. A producer
//! [`intern`](Pool::intern)s the object into the simulator-owned
//! [`Pool`] for its type and sends the 8-byte, generation-tagged
//! [`PoolRef`]; each hop moves the handle; the single consumer
//! [`take`](Pool::take)s the object back out. The slab's free list makes
//! steady-state traffic allocation-free, exactly like the flash
//! controller's finish-slot slab in PR 3 — generalized so the producer
//! and consumer can be *different* components (the finish-slot pattern
//! only covers self-sends).
//!
//! Pools are grouped in a [`PoolStore`] keyed by the interned type, owned
//! by the [`Simulator`](crate::engine::Simulator) and reached through
//! [`Ctx::pools`](crate::engine::Ctx::pools). Handles are
//! generation-tagged, so stale use and double `take` panic immediately,
//! and [`PoolStore::assert_quiescent`] audits leaks at simulation end —
//! the same discipline as page handles.

use std::any::{Any, TypeId};
use crate::fxhash::FxHashMap;
use std::fmt;
use std::marker::PhantomData;

use crate::pagestore::FreeListOp;

/// Handle to one interned control block: slot index plus the generation
/// it was minted under. Eight bytes plus a zero-sized type tag, `Copy` —
/// this is what messages carry instead of a `Box`.
pub struct PoolRef<T> {
    idx: u32,
    gen: u32,
    // `fn() -> T` keeps the handle `Send`/`Sync`/`Copy` regardless of `T`.
    _type: PhantomData<fn() -> T>,
}

impl<T> PoolRef<T> {
    /// The slot index (diagnostics only).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }
}

impl<T> Clone for PoolRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PoolRef<T> {}

impl<T> PartialEq for PoolRef<T> {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx && self.gen == other.gen
    }
}
impl<T> Eq for PoolRef<T> {}

impl<T> fmt::Debug for PoolRef<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}g{}", self.idx, self.gen)
    }
}

#[derive(Clone)]
struct PoolSlot<T> {
    val: Option<T>,
    gen: u32,
}

/// Undo journal for one speculation window over a [`Pool`]: the same
/// copy-on-write slot capture + reversed free-list replay as the page
/// store's journal (see [`crate::pagestore`]). Exact slot restoration
/// matters: a [`PoolRef`]'s index is stored in component state and
/// digests, so rolled-back work must re-intern into the same slots.
struct PoolJournal<T> {
    slots_len: usize,
    live: usize,
    interned: u64,
    free_ops: Vec<FreeListOp>,
    saved: Vec<(u32, PoolSlot<T>)>,
}

/// Slab of interned `T`s with free-list reuse and generation-tagged
/// handles. Obtained from a [`PoolStore`].
pub struct Pool<T> {
    slots: Vec<PoolSlot<T>>,
    free: Vec<u32>,
    live: usize,
    interned: u64,
    /// Open speculation journal, if any.
    journal: Option<Box<PoolJournal<T>>>,
    /// Persistent already-saved marker per slot (cleared via the saved
    /// list, never wholesale — checkpoints cost O(touched)).
    saved_mark: Vec<bool>,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            interned: 0,
            journal: None,
            saved_mark: Vec::new(),
        }
    }
}

impl<T: Clone> Pool<T> {
    /// Intern `val`, returning its handle. Steady-state traffic recycles
    /// freed slots, so no allocation happens after warm-up.
    pub fn intern(&mut self, val: T) -> PoolRef<T> {
        self.live += 1;
        self.interned += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                if self.journal.is_some() {
                    self.journal_free_op(FreeListOp::Popped(idx));
                    self.journal_slot(idx);
                }
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.val.is_none());
                slot.val = Some(val);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("pool index fits u32");
                self.slots.push(PoolSlot { val: Some(val), gen: 0 });
                idx
            }
        };
        PoolRef {
            idx,
            gen: self.slots[idx as usize].gen,
            _type: PhantomData,
        }
    }

    /// Copy-on-write capture of slot `idx` into the open journal (first
    /// speculative touch only; speculation-born slots are truncated on
    /// rollback instead).
    #[inline]
    fn journal_slot(&mut self, idx: u32) {
        let j = self.journal.as_deref_mut().expect("journal is open");
        let i = idx as usize;
        if i >= j.slots_len || self.saved_mark[i] {
            return;
        }
        self.saved_mark[i] = true;
        j.saved.push((idx, self.slots[i].clone()));
    }

    #[inline]
    fn journal_free_op(&mut self, op: FreeListOp) {
        self.journal
            .as_deref_mut()
            .expect("journal is open")
            .free_ops
            .push(op);
    }

    /// Open a speculation checkpoint over this pool.
    fn checkpoint_begin(&mut self) {
        debug_assert!(self.journal.is_none(), "nested pool checkpoint");
        if self.saved_mark.len() < self.slots.len() {
            self.saved_mark.resize(self.slots.len(), false);
        }
        self.journal = Some(Box::new(PoolJournal {
            slots_len: self.slots.len(),
            live: self.live,
            interned: self.interned,
            free_ops: Vec::new(),
            saved: Vec::new(),
        }));
    }

    /// Close the checkpoint, keeping speculative mutations. No-op when no
    /// checkpoint is open (a pool created *during* the speculation).
    fn checkpoint_commit(&mut self) {
        let Some(j) = self.journal.take() else { return };
        for (idx, _slot) in &j.saved {
            self.saved_mark[*idx as usize] = false;
        }
    }

    /// Close the checkpoint and restore the pool exactly.
    fn checkpoint_rollback(&mut self) {
        let j = *self.journal.take().expect("rollback without checkpoint");
        for op in j.free_ops.into_iter().rev() {
            match op {
                FreeListOp::Popped(idx) => self.free.push(idx),
                FreeListOp::Pushed => {
                    self.free.pop().expect("journalled push to undo");
                }
            }
        }
        self.slots.truncate(j.slots_len);
        for (idx, slot) in j.saved {
            self.saved_mark[idx as usize] = false;
            self.slots[idx as usize] = slot;
        }
        self.live = j.live;
        self.interned = j.interned;
    }

    /// Exclusive access to the interned object (in-place re-stamping).
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    #[inline]
    pub fn get_mut(&mut self, r: PoolRef<T>) -> &mut T {
        self.check(r);
        if self.journal.is_some() {
            self.journal_slot(r.idx);
        }
        self.slots[r.idx as usize].val.as_mut().expect("checked live")
    }

    /// Move the object out, freeing its slot; the handle (and any copy)
    /// becomes stale.
    ///
    /// # Panics
    ///
    /// Panics on double take or a stale handle.
    pub fn take(&mut self, r: PoolRef<T>) -> T {
        self.check(r);
        if self.journal.is_some() {
            self.journal_slot(r.idx);
            self.journal_free_op(FreeListOp::Pushed);
        }
        let slot = &mut self.slots[r.idx as usize];
        let val = slot.val.take().expect("checked live");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        self.live -= 1;
        val
    }
}

impl<T> Pool<T> {
    #[inline]
    fn check(&self, r: PoolRef<T>) -> &PoolSlot<T> {
        let slot = &self.slots[r.idx as usize];
        assert!(
            slot.val.is_some() && slot.gen == r.gen,
            "stale pool handle {r:?} (slot is at g{}, {})",
            slot.gen,
            if slot.val.is_some() { "live" } else { "free" },
        );
        slot
    }

    /// Shared access to the interned object.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (taken, or from a recycled slot).
    #[inline]
    pub fn get(&self, r: PoolRef<T>) -> &T {
        self.check(r).val.as_ref().expect("checked live")
    }

    /// Objects currently interned.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total interns performed.
    #[inline]
    pub fn interned(&self) -> u64 {
        self.interned
    }

    /// Slots ever created (live + free); flat under steady-state load.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

/// Type-erased view of one pool, for store-wide audits and the
/// speculation checkpoint fan-out. `T: Clone` is a construction-time
/// bound (every interned type is a plain control block), which is what
/// lets the type-erased checkpoint hooks exist at all — Rust has no
/// specialization to add them conditionally later.
trait AnyPool: Any + Send {
    fn live(&self) -> usize;
    fn type_name(&self) -> &'static str;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn as_any(&self) -> &dyn Any;
    fn checkpoint_begin(&mut self);
    fn checkpoint_commit(&mut self);
    fn checkpoint_rollback(&mut self);
}

impl<T: Clone + Send + 'static> AnyPool for Pool<T> {
    fn live(&self) -> usize {
        self.live
    }
    fn type_name(&self) -> &'static str {
        std::any::type_name::<T>()
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn checkpoint_begin(&mut self) {
        Pool::checkpoint_begin(self);
    }
    fn checkpoint_commit(&mut self) {
        Pool::checkpoint_commit(self);
    }
    fn checkpoint_rollback(&mut self) {
        Pool::checkpoint_rollback(self);
    }
}

/// All of a simulator's control-block pools, keyed by interned type.
/// Owned by the [`Simulator`](crate::engine::Simulator); components reach
/// it through [`Ctx::pools`](crate::engine::Ctx::pools).
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::PoolStore;
///
/// #[derive(Clone)] // interned types checkpoint copy-on-write
/// struct Req { op: u64 }
///
/// let mut pools = PoolStore::new();
/// let r = pools.intern(Req { op: 9 });
/// assert_eq!(pools.get(r).op, 9);
/// let req = pools.take(r); // the one consumer
/// assert_eq!(req.op, 9);
/// pools.assert_quiescent(); // nothing leaked
/// ```
#[derive(Default)]
pub struct PoolStore {
    pools: FxHashMap<TypeId, Box<dyn AnyPool>>,
    /// The set of pools that existed when the open speculation
    /// checkpoint was taken. Pools created *during* speculation have no
    /// journal; rollback removes them wholesale.
    spec_pools: Option<Vec<TypeId>>,
}

impl PoolStore {
    /// An empty store; per-type pools are created on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pool for `T`, created on first access. Interned types must be
    /// `Clone` so the optimistic shard runtime can checkpoint pools
    /// copy-on-write (see [`crate::shard`]); every control block here is
    /// a plain data struct, so the bound costs nothing.
    pub fn of<T: Clone + Send + 'static>(&mut self) -> &mut Pool<T> {
        self.pools
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::<Pool<T>>::default())
            .as_any_mut()
            .downcast_mut::<Pool<T>>()
            .expect("pool stored under its own TypeId")
    }

    /// Intern `val` into the pool for its type.
    #[inline]
    pub fn intern<T: Clone + Send + 'static>(&mut self, val: T) -> PoolRef<T> {
        self.of::<T>().intern(val)
    }

    /// Shared access to an interned object.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale or its pool was never created.
    #[inline]
    pub fn get<T: Send + 'static>(&self, r: PoolRef<T>) -> &T {
        self.pools
            .get(&TypeId::of::<T>())
            .and_then(|p| p.as_any().downcast_ref::<Pool<T>>())
            .expect("no pool for this handle's type")
            .get(r)
    }

    /// The existing pool for `T`, with the same diagnostic panic as
    /// [`PoolStore::get`] when the pool was never created (and without
    /// leaving a spurious empty pool behind, as `of` would).
    #[inline]
    fn existing<T: Send + 'static>(&mut self) -> &mut Pool<T> {
        self.pools
            .get_mut(&TypeId::of::<T>())
            .and_then(|p| p.as_any_mut().downcast_mut::<Pool<T>>())
            .expect("no pool for this handle's type")
    }

    /// Exclusive access to an interned object.
    ///
    /// # Panics
    ///
    /// As for [`PoolStore::get`].
    #[inline]
    pub fn get_mut<T: Clone + Send + 'static>(&mut self, r: PoolRef<T>) -> &mut T {
        self.existing::<T>().get_mut(r)
    }

    /// Move an interned object out, freeing its slot.
    ///
    /// # Panics
    ///
    /// As for [`PoolStore::get`], plus double takes.
    #[inline]
    pub fn take<T: Clone + Send + 'static>(&mut self, r: PoolRef<T>) -> T {
        self.existing::<T>().take(r)
    }

    /// Open a speculation checkpoint across every pool.
    pub(crate) fn checkpoint_begin(&mut self) {
        debug_assert!(self.spec_pools.is_none(), "nested pool-store checkpoint");
        let mut types = Vec::with_capacity(self.pools.len());
        for (ty, pool) in self.pools.iter_mut() {
            types.push(*ty);
            pool.checkpoint_begin();
        }
        self.spec_pools = Some(types);
    }

    /// Close the checkpoint, keeping all speculative mutations
    /// (including pools first created during the speculation).
    pub(crate) fn checkpoint_commit(&mut self) {
        debug_assert!(self.spec_pools.is_some(), "commit without checkpoint");
        self.spec_pools = None;
        for pool in self.pools.values_mut() {
            pool.checkpoint_commit();
        }
    }

    /// Close the checkpoint and restore the store exactly: pools created
    /// during the speculation are removed wholesale, surviving pools roll
    /// back through their journals.
    pub(crate) fn checkpoint_rollback(&mut self) {
        let types = self.spec_pools.take().expect("rollback without checkpoint");
        self.pools.retain(|ty, _| types.contains(ty));
        for pool in self.pools.values_mut() {
            pool.checkpoint_rollback();
        }
    }

    /// Control blocks currently interned, across every pool.
    pub fn live_total(&self) -> usize {
        self.pools.values().map(|p| p.live()).sum()
    }

    /// Leak audit: panics unless every interned control block has been
    /// taken. Call at simulation end alongside
    /// [`PageStore::assert_quiescent`](crate::PageStore::assert_quiescent).
    ///
    /// # Panics
    ///
    /// Panics if any pool still holds live objects, naming the types.
    pub fn assert_quiescent(&self) {
        let leaked: Vec<(&'static str, usize)> = self
            .pools
            .values()
            .filter(|p| p.live() > 0)
            .map(|p| (p.type_name(), p.live()))
            .collect();
        assert!(
            leaked.is_empty(),
            "control-block pools are not quiescent: {leaked:?} still interned"
        );
    }
}

impl fmt::Debug for PoolStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolStore")
            .field("pools", &self.pools.len())
            .field("live_total", &self.live_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_get_take_round_trip() {
        let mut pools = PoolStore::new();
        let a = pools.intern(String::from("hello"));
        let b = pools.intern(42u64);
        assert_eq!(pools.get(a), "hello");
        assert_eq!(*pools.get(b), 42);
        pools.get_mut(a).push('!');
        assert_eq!(pools.take(a), "hello!");
        assert_eq!(pools.take(b), 42);
        pools.assert_quiescent();
    }

    #[test]
    fn slots_recycle_with_fresh_generations() {
        let mut pool = Pool::<u32>::default();
        let a = pool.intern(1);
        let idx = a.index();
        assert_eq!(pool.take(a), 1);
        let b = pool.intern(2);
        assert_eq!(b.index(), idx, "free list must recycle the slot");
        assert_ne!(a, b);
        assert_eq!(pool.slot_count(), 1);
        assert_eq!(pool.interned(), 2);
        pool.take(b);
    }

    #[test]
    fn steady_state_stays_flat() {
        let mut pool = Pool::<[u64; 6]>::default();
        for i in 0..10_000u64 {
            let r = pool.intern([i; 6]);
            assert_eq!(pool.get(r)[0], i);
            pool.take(r);
        }
        assert_eq!(pool.slot_count(), 1);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    #[should_panic(expected = "stale pool handle")]
    fn double_take_panics() {
        let mut pool = Pool::<u8>::default();
        let r = pool.intern(0);
        pool.take(r);
        pool.take(r);
    }

    #[test]
    #[should_panic(expected = "stale pool handle")]
    fn recycled_slot_rejects_old_handle() {
        let mut pool = Pool::<u8>::default();
        let a = pool.intern(0);
        pool.take(a);
        let _b = pool.intern(1);
        let _ = pool.get(a);
    }

    #[test]
    #[should_panic(expected = "not quiescent")]
    fn leak_audit_names_the_type() {
        let mut pools = PoolStore::new();
        let _leaked = pools.intern(3u16);
        pools.assert_quiescent();
    }

    #[test]
    fn pool_refs_are_copy_and_send() {
        fn assert_send_copy<T: Send + Copy>() {}
        assert_send_copy::<PoolRef<std::rc::Rc<u8>>>(); // even for !Send T
    }

    #[test]
    fn checkpoint_rollback_restores_pools_exactly() {
        let mut pools = PoolStore::new();
        let kept = pools.intern(String::from("committed"));
        let freed = pools.intern(String::from("scratch"));
        pools.take(freed);

        pools.checkpoint_begin();
        pools.get_mut(kept).push_str(" (clobbered)");
        let reused = pools.intern(String::from("reused"));
        assert_eq!(reused.index(), freed.index());
        let spec_typed = pools.intern(77u64); // pool born during speculation
        pools.take(kept);
        assert_eq!(*pools.get(spec_typed), 77);
        pools.checkpoint_rollback();

        assert_eq!(pools.get(kept), "committed", "contents restored");
        assert_eq!(pools.live_total(), 1, "speculative interns undone");
        // The speculation-born u64 pool is gone wholesale; re-interning
        // starts a fresh pool rather than tripping stale journals.
        let again = pools.intern(5u64);
        assert_eq!(*pools.get(again), 5);
        pools.take(again);
        // The freed String slot replays identically to a never-speculated
        // run: same index, same generation.
        let replay = pools.intern(String::from("replay"));
        assert_eq!(replay.index(), reused.index());
        pools.take(replay);
        pools.take(kept);
        pools.assert_quiescent();
    }

    #[test]
    fn checkpoint_commit_keeps_speculative_pools() {
        let mut pools = PoolStore::new();
        let a = pools.intern(1u64);
        pools.checkpoint_begin();
        pools.take(a);
        let b = pools.intern(String::from("born speculating"));
        pools.checkpoint_commit();
        assert_eq!(pools.get(b), "born speculating");
        // Committed state must checkpoint cleanly again (marks cleared,
        // the new pool now journals like any other).
        pools.checkpoint_begin();
        let c = pools.intern(String::from("round two"));
        pools.checkpoint_rollback();
        assert_eq!(pools.live_total(), 1);
        let replay = pools.intern(String::from("replay"));
        assert_eq!(replay.index(), c.index());
        pools.take(replay);
        pools.take(b);
        pools.assert_quiescent();
    }
}
