//! Contention primitives for serialized hardware resources.
//!
//! Many BlueDBM components are "one transfer at a time" devices: a NAND
//! bus, a serial link lane, a DMA engine. [`SerialResource`] models these
//! with a next-free-time discipline: a request arriving at `t` starts at
//! `max(t, next_free)` and occupies the resource for its service time.
//! [`MultiResource`] generalizes to `k` identical servers (e.g. the four
//! read DMA engines of the host interface).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// The time interval granted to one request on a resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grant {
    /// When service began (>= arrival time).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl Grant {
    /// Queueing delay experienced before service started.
    pub fn wait(&self, arrival: SimTime) -> SimTime {
        self.start.saturating_sub(arrival)
    }
}

/// A single-server FIFO resource with busy-time accounting.
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::resource::SerialResource;
/// use bluedbm_sim::time::SimTime;
///
/// let mut bus = SerialResource::new();
/// let a = bus.acquire(SimTime::ZERO, SimTime::us(10));
/// let b = bus.acquire(SimTime::us(2), SimTime::us(10));
/// assert_eq!(a.end, SimTime::us(10));
/// assert_eq!(b.start, SimTime::us(10)); // waited for a
/// assert_eq!(b.end, SimTime::us(20));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SerialResource {
    next_free: SimTime,
    busy: SimTime,
    grants: u64,
}

impl SerialResource {
    /// A resource that is free at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the resource for `service` starting no earlier than
    /// `arrival`. Requests must be issued in non-decreasing arrival order
    /// for FIFO semantics (callers in this workspace always do, since they
    /// issue from event handlers).
    pub fn acquire(&mut self, arrival: SimTime, service: SimTime) -> Grant {
        let start = arrival.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.busy += service;
        self.grants += 1;
        Grant { start, end }
    }

    /// The earliest time a new request could begin service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total busy time granted so far.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Utilization over `[0, horizon]` as a fraction in `[0, 1]`
    /// (clamped; meaningful when `horizon >= next_free`).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        (self.busy.as_ps() as f64 / horizon.as_ps() as f64).min(1.0)
    }
}

/// `k` identical servers fed from one FIFO queue.
///
/// Used for pooled engines: 4 DMA read engines, 4 Morris-Pratt search
/// engines per bus, and so on.
///
/// # Examples
///
/// ```rust
/// use bluedbm_sim::resource::MultiResource;
/// use bluedbm_sim::time::SimTime;
///
/// let mut dma = MultiResource::new(2);
/// let a = dma.acquire(SimTime::ZERO, SimTime::us(10));
/// let b = dma.acquire(SimTime::ZERO, SimTime::us(10));
/// let c = dma.acquire(SimTime::ZERO, SimTime::us(10));
/// assert_eq!(a.start, SimTime::ZERO);
/// assert_eq!(b.start, SimTime::ZERO);       // second server
/// assert_eq!(c.start, SimTime::us(10));     // waits for the first free server
/// ```
#[derive(Clone, Debug)]
pub struct MultiResource {
    /// Min-heap of per-server next-free times.
    servers: BinaryHeap<Reverse<SimTime>>,
    busy: SimTime,
    grants: u64,
}

impl MultiResource {
    /// Create a pool of `servers` identical servers, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "MultiResource needs at least one server");
        MultiResource {
            servers: (0..servers).map(|_| Reverse(SimTime::ZERO)).collect(),
            busy: SimTime::ZERO,
            grants: 0,
        }
    }

    /// Number of servers in the pool.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Reserve the earliest-free server for `service` starting no earlier
    /// than `arrival`.
    pub fn acquire(&mut self, arrival: SimTime, service: SimTime) -> Grant {
        let Reverse(free_at) = self.servers.pop().expect("pool is non-empty");
        let start = arrival.max(free_at);
        let end = start + service;
        self.servers.push(Reverse(end));
        self.busy += service;
        self.grants += 1;
        Grant { start, end }
    }

    /// The earliest time any server could begin a new request.
    pub fn next_free(&self) -> SimTime {
        self.servers.peek().map(|r| r.0).unwrap_or(SimTime::ZERO)
    }

    /// Total busy time across all servers.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Grants issued so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Mean per-server utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        let denom = horizon.as_ps() as f64 * self.servers.len() as f64;
        (self.busy.as_ps() as f64 / denom).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_back_to_back() {
        let mut r = SerialResource::new();
        let g1 = r.acquire(SimTime::ZERO, SimTime::us(5));
        let g2 = r.acquire(SimTime::us(1), SimTime::us(5));
        let g3 = r.acquire(SimTime::us(20), SimTime::us(5));
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g2.start, SimTime::us(5));
        assert_eq!(g2.wait(SimTime::us(1)), SimTime::us(4));
        // Idle gap before g3: starts at its arrival.
        assert_eq!(g3.start, SimTime::us(20));
        assert_eq!(r.busy_time(), SimTime::us(15));
        assert_eq!(r.grants(), 3);
    }

    #[test]
    fn serial_utilization() {
        let mut r = SerialResource::new();
        r.acquire(SimTime::ZERO, SimTime::us(25));
        assert!((r.utilization(SimTime::us(100)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn serial_saturated_throughput_matches_service_rate() {
        // 1000 requests of 10 us arriving at time zero: the last finishes
        // at exactly 10 ms — the resource is work-conserving.
        let mut r = SerialResource::new();
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            last = r.acquire(SimTime::ZERO, SimTime::us(10)).end;
        }
        assert_eq!(last, SimTime::ms(10));
        assert!((r.utilization(last) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_parallel_service() {
        let mut r = MultiResource::new(4);
        let ends: Vec<SimTime> = (0..8)
            .map(|_| r.acquire(SimTime::ZERO, SimTime::us(10)).end)
            .collect();
        // First four run in parallel, the next four queue behind them.
        assert!(ends[..4].iter().all(|&e| e == SimTime::us(10)));
        assert!(ends[4..].iter().all(|&e| e == SimTime::us(20)));
        assert_eq!(r.server_count(), 4);
        assert_eq!(r.grants(), 8);
    }

    #[test]
    fn multi_utilization_is_per_server() {
        let mut r = MultiResource::new(2);
        r.acquire(SimTime::ZERO, SimTime::us(10));
        // One of two servers busy for the full horizon: 50%.
        assert!((r.utilization(SimTime::us(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn multi_zero_servers_panics() {
        let _ = MultiResource::new(0);
    }

    #[test]
    fn multi_next_free_tracks_earliest_server() {
        let mut r = MultiResource::new(2);
        assert_eq!(r.next_free(), SimTime::ZERO);
        r.acquire(SimTime::ZERO, SimTime::us(10));
        assert_eq!(r.next_free(), SimTime::ZERO); // second server still free
        r.acquire(SimTime::ZERO, SimTime::us(4));
        assert_eq!(r.next_free(), SimTime::us(4));
    }
}
