//! Packets and link-layer parameters.

use bluedbm_sim::time::{Bandwidth, SimTime};

use crate::topology::NodeId;

/// Link-layer constants, with paper defaults.
///
/// # Examples
///
/// ```rust
/// use bluedbm_net::packet::NetParams;
///
/// let p = NetParams::paper();
/// // 8 KiB payload: goodput within a few percent of the measured 8.2 Gbps.
/// let gbps = 8192.0 * 8.0 / p.packet_time(8192).as_secs_f64() / 1e9;
/// assert!(gbps > 8.0 && gbps < 8.3, "{gbps}");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetParams {
    /// Raw lane rate (paper: 10 Gbps GTX/GTP transceivers).
    pub lane_bandwidth: Bandwidth,
    /// Fraction of the raw rate available to packet bytes after framing,
    /// 8b/10b-style coding and flow-control traffic. The paper measures
    /// 8.2 Gbps of goodput on a 10 Gbps lane: 0.82.
    pub efficiency: f64,
    /// Per-packet header bytes (route, endpoint, sequence, CRC).
    pub header_bytes: u32,
    /// Propagation + switch traversal per hop (paper: 0.48 µs).
    pub hop_latency: SimTime,
    /// Link-layer credits per lane: how many packets the receiver's
    /// ingress buffer holds. Senders stall at zero credits — the paper's
    /// token flow control.
    pub credits_per_lane: u32,
}

impl NetParams {
    /// Paper-calibrated parameters (Sections 5.2, 6.3).
    pub fn paper() -> Self {
        NetParams {
            lane_bandwidth: Bandwidth::gbits(10.0),
            efficiency: 0.82,
            header_bytes: 8,
            // detlint::allow(float-sim-time): paper-calibrated constant
            hop_latency: SimTime::from_us_f64(0.48),
            credits_per_lane: 16,
        }
    }

    /// Effective payload bandwidth of one lane.
    pub fn goodput(&self) -> Bandwidth {
        self.lane_bandwidth.scale(self.efficiency)
    }

    /// Time one packet of `payload_bytes` occupies a lane.
    pub fn packet_time(&self, payload_bytes: u32) -> SimTime {
        self.goodput()
            .time_for(u64::from(payload_bytes) + u64::from(self.header_bytes))
    }
}

impl Default for NetParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// One packet on the storage network, generic over the body type.
///
/// `payload_bytes` drives the timing model; `body` carries the actual
/// message object (a remote read request, a page of data, ...) for the
/// functional layer. The two are decoupled so control messages can be
/// "small" on the wire while still carrying rich Rust types — and the
/// body travels inline, not boxed.
#[derive(Clone, Debug)]
pub struct Packet<B> {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Logical endpoint (virtual channel) index.
    pub endpoint: u16,
    /// Size on the wire, excluding the header.
    pub payload_bytes: u32,
    /// Per-(endpoint, src) sequence number, for order checking.
    pub seq: u64,
    /// The message object delivered to the receiving endpoint.
    pub body: B,
}

impl<B> Packet<B> {
    /// Construct a packet; `seq` is usually filled by the sending router.
    pub fn new(src: NodeId, dst: NodeId, endpoint: u16, payload_bytes: u32, body: B) -> Self {
        Packet {
            src,
            dst,
            endpoint,
            payload_bytes,
            seq: 0,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_matches_paper() {
        let p = NetParams::paper();
        assert!((p.goodput().as_gbits() - 8.2).abs() < 1e-9);
    }

    #[test]
    fn packet_time_includes_header() {
        let p = NetParams::paper();
        let with = p.packet_time(1000);
        let without = p.goodput().time_for(1000);
        assert!(with > without);
    }

    #[test]
    fn small_packets_pay_proportionally_more_overhead() {
        let p = NetParams::paper();
        let small_rate = 16.0 / p.packet_time(16).as_secs_f64();
        let large_rate = 8192.0 / p.packet_time(8192).as_secs_f64();
        assert!(large_rate > small_rate);
    }

    #[test]
    fn packet_constructor() {
        let pkt = Packet::new(NodeId(1), NodeId(2), 3, 64, "hello");
        assert_eq!(pkt.src, NodeId(1));
        assert_eq!(pkt.dst, NodeId(2));
        assert_eq!(pkt.endpoint, 3);
        assert_eq!(pkt.seq, 0);
        assert_eq!(pkt.body, "hello");
    }
}
