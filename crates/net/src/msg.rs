//! The network subsystem's typed message protocol.
//!
//! [`NetMsg<B>`] is generic over the **packet body** type `B`: the payload
//! object the functional layer attaches to each packet (a remote read
//! request, a page of data, `()` for pure timing experiments). A network
//! simulation picks one body type; the workspace composition uses
//! `bluedbm_core::NetBody`.

use bluedbm_sim::Message;

use crate::router::{CreditReturn, E2eAck, NetRecv, NetSend, Wire};

/// Union of every message a network component sends or receives.
///
/// `Wire` is boxed: it stacks per-hop routing metadata (timing, credit
/// provenance) on top of the packet, which would otherwise dominate the
/// size of every composed message enum. The box is allocated once at
/// injection and **reused across every hop** of the packet's path, so
/// forwarding still allocates nothing.
#[derive(Debug)]
pub enum NetMsg<B> {
    /// Local sender asks its router to inject a packet.
    Send(NetSend<B>),
    /// Router delivers a packet to an endpoint consumer.
    Recv(NetRecv<B>),
    /// Router-to-router transfer (head arrival).
    Wire(Box<Wire<B>>),
    /// Link-layer credit returned by the downstream router.
    Credit(CreditReturn),
    /// End-to-end flow-control acknowledgement.
    Ack(E2eAck),
}

impl<B> NetMsg<B> {
    /// Variant name, for wiring-bug panics without a `Debug` bound on `B`.
    pub fn kind(&self) -> &'static str {
        match self {
            NetMsg::Send(_) => "NetSend",
            NetMsg::Recv(_) => "NetRecv",
            NetMsg::Wire(_) => "Wire",
            NetMsg::Credit(_) => "CreditReturn",
            NetMsg::Ack(_) => "E2eAck",
        }
    }
}

impl<B> From<NetSend<B>> for NetMsg<B> {
    #[inline]
    fn from(m: NetSend<B>) -> Self {
        NetMsg::Send(m)
    }
}

impl<B> From<NetRecv<B>> for NetMsg<B> {
    #[inline]
    fn from(m: NetRecv<B>) -> Self {
        NetMsg::Recv(m)
    }
}

/// Implemented by any simulation message type that embeds the network
/// protocol for one body type. Routers are generic over this trait, so
/// they run unchanged in a network-only simulation (`M = NetMsg<B>`) or
/// the full workspace composition.
pub trait NetProtocol: Message + From<NetMsg<Self::Body>> {
    /// The packet body type carried by this simulation's network.
    type Body: 'static;

    /// Extract the network view of this message.
    ///
    /// # Panics
    ///
    /// Implementations panic when the message is not a network message —
    /// delivery of a foreign protocol to a router is a wiring bug.
    fn into_net(self) -> NetMsg<Self::Body>;
}

impl<B: 'static> NetProtocol for NetMsg<B> {
    type Body = B;

    #[inline]
    fn into_net(self) -> NetMsg<B> {
        self
    }
}
