//! The network subsystem's typed message protocol.
//!
//! [`NetMsg<B>`] is generic over the **packet body** type `B`: the payload
//! object the functional layer attaches to each packet (a remote read
//! request, a page of data, `()` for pure timing experiments). A network
//! simulation picks one body type; the workspace composition uses
//! `bluedbm_core::NetBody`.

use bluedbm_sim::Message;

use crate::router::{CreditReturn, E2eAck, NetRecv, NetSend, WireRef};

/// Union of every message a network component sends or receives.
///
/// `Wire` rides as an interned handle: the per-hop routing record
/// (timing, credit provenance) stacked on top of the packet would
/// otherwise dominate the size of every composed message enum. The
/// record is interned into the simulator-owned control-block pool once
/// at injection, the 8-byte [`WireRef`] moves hop to hop, and the
/// delivering router takes it back out — so steady-state forwarding
/// *and injection* allocate nothing (the previous `Box` cost one heap
/// allocation per packet).
#[derive(Debug)]
pub enum NetMsg<B> {
    /// Local sender asks its router to inject a packet.
    Send(NetSend<B>),
    /// Router delivers a packet to an endpoint consumer.
    Recv(NetRecv<B>),
    /// Router-to-router transfer (head arrival), by pool handle.
    Wire(WireRef<B>),
    /// Link-layer credit returned by the downstream router.
    Credit(CreditReturn),
    /// End-to-end flow-control acknowledgement.
    Ack(E2eAck),
}

impl<B> NetMsg<B> {
    /// Variant name, for wiring-bug panics without a `Debug` bound on `B`.
    pub fn kind(&self) -> &'static str {
        match self {
            NetMsg::Send(_) => "NetSend",
            NetMsg::Recv(_) => "NetRecv",
            NetMsg::Wire(_) => "Wire",
            NetMsg::Credit(_) => "CreditReturn",
            NetMsg::Ack(_) => "E2eAck",
        }
    }
}

impl<B> From<NetSend<B>> for NetMsg<B> {
    #[inline]
    fn from(m: NetSend<B>) -> Self {
        NetMsg::Send(m)
    }
}

impl<B> From<NetRecv<B>> for NetMsg<B> {
    #[inline]
    fn from(m: NetRecv<B>) -> Self {
        NetMsg::Recv(m)
    }
}

/// Implemented by any simulation message type that embeds the network
/// protocol for one body type. Routers are generic over this trait, so
/// they run unchanged in a network-only simulation (`M = NetMsg<B>`) or
/// the full workspace composition.
pub trait NetProtocol: Message + From<NetMsg<Self::Body>> {
    /// The packet body type carried by this simulation's network.
    /// `Send` because wire records (and the packets inside them) are
    /// interned in the simulator-owned pool, whose entries must be able
    /// to migrate with a shard onto a worker thread; `Clone` because
    /// the optimistic sharded runtime journals pool slots it touches
    /// under a speculation checkpoint.
    type Body: Clone + Send + 'static;

    /// Extract the network view of this message.
    ///
    /// # Panics
    ///
    /// Implementations panic when the message is not a network message —
    /// delivery of a foreign protocol to a router is a wiring bug.
    fn into_net(self) -> NetMsg<Self::Body>;
}

impl<B: Clone + Send + 'static> NetProtocol for NetMsg<B> {
    type Body = B;

    #[inline]
    fn into_net(self) -> NetMsg<B> {
        self
    }
}
