//! Physical cabling of the storage network.
//!
//! A topology is a set of nodes, each with up to
//! [`Topology::MAX_PORTS`] = 8 serial ports (the fan-out of the paper's
//! flash board), and full-duplex cables between (node, port) pairs. The
//! paper's Figure 5 shows a distributed star, a mesh and a fat tree; the
//! builders here cover those shapes plus arbitrary edge lists loaded from
//! a "network configuration file" equivalent.

use std::fmt;

/// A storage node in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u16::try_from(v).expect("node index fits in u16"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A serial port on a node (0..8).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The cabling graph.
///
/// # Examples
///
/// ```rust
/// use bluedbm_net::topology::Topology;
///
/// let ring = Topology::ring(20, 4); // the paper's 20-node, 4-lane ring
/// assert_eq!(ring.node_count(), 20);
/// assert!(ring.is_connected());
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    /// `ports[n][p] = Some((m, q))` when port p of node n is cabled to
    /// port q of node m.
    ports: Vec<Vec<Option<(NodeId, PortId)>>>,
}

impl Topology {
    /// Physical port fan-out per node (paper Section 5.1: 8 SATA
    /// connectors pin out the serial ports).
    pub const MAX_PORTS: usize = 8;

    /// An edgeless topology over `nodes` nodes.
    pub fn empty(nodes: usize) -> Self {
        Topology {
            ports: vec![vec![None; Self::MAX_PORTS]; nodes],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.ports.len()
    }

    /// Add a full-duplex cable between the next free ports of `a` and `b`.
    /// Returns the (port on a, port on b) pair used.
    ///
    /// # Panics
    ///
    /// Panics if either node has no free port or `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> (PortId, PortId) {
        assert_ne!(a, b, "self-loops are not cables");
        let pa = self.free_port(a).expect("node a has a free port");
        let pb = self.free_port(b).expect("node b has a free port");
        self.ports[a.index()][pa.0 as usize] = Some((b, pb));
        self.ports[b.index()][pb.0 as usize] = Some((a, pa));
        (pa, pb)
    }

    fn free_port(&self, n: NodeId) -> Option<PortId> {
        self.ports[n.index()]
            .iter()
            .position(Option::is_none)
            .map(|p| PortId(p as u8))
    }

    /// Remaining free ports on `n`.
    pub fn free_ports(&self, n: NodeId) -> usize {
        self.ports[n.index()].iter().filter(|p| p.is_none()).count()
    }

    /// The remote end of (node, port), if cabled.
    pub fn peer(&self, n: NodeId, p: PortId) -> Option<(NodeId, PortId)> {
        self.ports[n.index()][p.0 as usize]
    }

    /// All cabled ports of `n` with their peers.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (PortId, NodeId)> + '_ {
        self.ports[n.index()]
            .iter()
            .enumerate()
            .filter_map(|(p, link)| link.map(|(m, _)| (PortId(p as u8), m)))
    }

    /// A ring of `n` nodes with `lanes` parallel cables between adjacent
    /// nodes (the paper discusses a 20-node ring with 4 lanes each way).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `lanes == 0`, or the lane count exceeds the port
    /// budget (`2 * lanes > 8` for n > 2).
    pub fn ring(n: usize, lanes: usize) -> Self {
        assert!(n >= 2 && lanes > 0);
        let mut t = Self::empty(n);
        for i in 0..n {
            let j = (i + 1) % n;
            if n == 2 && i == 1 {
                break; // avoid doubling the single edge
            }
            for _ in 0..lanes {
                t.connect(NodeId::from(i), NodeId::from(j));
            }
        }
        t
    }

    /// A line (open chain) of `n` nodes with `lanes` parallel cables per
    /// hop — the shape of the Figure 11 hop-count experiment.
    pub fn line(n: usize, lanes: usize) -> Self {
        assert!(n >= 2 && lanes > 0);
        let mut t = Self::empty(n);
        for i in 0..n - 1 {
            for _ in 0..lanes {
                t.connect(NodeId::from(i), NodeId::from(i + 1));
            }
        }
        t
    }

    /// A `w x h` 2-D mesh (Figure 5b).
    pub fn mesh2d(w: usize, h: usize) -> Self {
        assert!(w >= 1 && h >= 1 && w * h >= 2);
        let mut t = Self::empty(w * h);
        let id = |x: usize, y: usize| NodeId::from(y * w + x);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    t.connect(id(x, y), id(x + 1, y));
                }
                if y + 1 < h {
                    t.connect(id(x, y), id(x, y + 1));
                }
            }
        }
        t
    }

    /// A distributed star (Figure 5a): `hubs` fully-interconnected hub
    /// nodes, remaining nodes attached round-robin to hubs.
    ///
    /// # Panics
    ///
    /// Panics if `hubs == 0` or `hubs > n`.
    pub fn star(n: usize, hubs: usize) -> Self {
        assert!(hubs > 0 && hubs <= n);
        let mut t = Self::empty(n);
        for a in 0..hubs {
            for b in a + 1..hubs {
                t.connect(NodeId::from(a), NodeId::from(b));
            }
        }
        for leaf in hubs..n {
            t.connect(NodeId::from(leaf), NodeId::from(leaf % hubs));
        }
        t
    }

    /// A complete tree of the given `fanout` and `levels` (levels >= 1;
    /// one level is a single node). Every node is a storage node; inner
    /// nodes route for their subtrees.
    ///
    /// # Panics
    ///
    /// Panics if the fanout would exceed the port budget (a non-root
    /// inner node needs `fanout + 1` ports) or `levels == 0`.
    pub fn tree(fanout: usize, levels: usize) -> Self {
        assert!(levels >= 1 && fanout >= 1);
        assert!(
            fanout < Self::MAX_PORTS,
            "inner nodes need fanout+1 <= 8 ports"
        );
        let mut starts = Vec::with_capacity(levels);
        let mut at = 0;
        let mut w = 1;
        for _ in 0..levels {
            starts.push(at);
            at += w;
            w *= fanout;
        }
        let total = at;
        let mut t = Self::empty(total);
        for level in 1..levels {
            let parent_start = starts[level - 1];
            let start = starts[level];
            let width = fanout.pow(level as u32);
            for i in 0..width {
                let child = NodeId::from(start + i);
                let parent = NodeId::from(parent_start + i / fanout);
                t.connect(parent, child);
            }
        }
        t
    }

    /// A two-level fat tree (Figure 5c): every leaf cabled to every
    /// spine, giving `spines` disjoint shortest paths between any two
    /// leaves (deterministic routing spreads endpoints across them).
    ///
    /// Nodes `0..spines` are spines; `spines..spines+leaves` are leaves.
    ///
    /// # Panics
    ///
    /// Panics if the port budget is exceeded (`spines <= 8` and
    /// `leaves <= 8`).
    pub fn fat_tree(leaves: usize, spines: usize) -> Self {
        assert!(leaves >= 2 && spines >= 1);
        assert!(
            spines <= Self::MAX_PORTS && leaves <= Self::MAX_PORTS,
            "full bipartite cabling is limited by the 8-port fan-out"
        );
        let mut t = Self::empty(spines + leaves);
        for leaf in 0..leaves {
            for spine in 0..spines {
                t.connect(NodeId::from(spines + leaf), NodeId::from(spine));
            }
        }
        t
    }

    /// Build from an explicit edge list (the paper's network configuration
    /// file). Each `(a, b, lanes)` adds `lanes` parallel cables.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a node `>= n` or exhausts a port
    /// budget.
    pub fn from_edges(n: usize, edges: &[(usize, usize, usize)]) -> Self {
        let mut t = Self::empty(n);
        for &(a, b, lanes) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            for _ in 0..lanes {
                t.connect(NodeId::from(a), NodeId::from(b));
            }
        }
        t
    }

    /// `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for (_, v) in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// BFS hop distances from `src` to every node (`u32::MAX` if
    /// unreachable).
    pub fn distances_from(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count()];
        dist[src.index()] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            for (_, v) in self.neighbors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Number of cables whose endpoints land in different shards under
    /// `partition` (`partition[n]` = shard of node `n`). Parallel lanes
    /// count individually — each is a cable that crosses the cut.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not cover every node.
    pub fn cut_cables(&self, partition: &[u32]) -> usize {
        assert_eq!(partition.len(), self.node_count(), "one shard per node");
        let mut crossings = 0;
        for n in 0..self.node_count() {
            for (_, m) in self.neighbors(NodeId::from(n)) {
                if partition[n] != partition[m.index()] {
                    crossings += 1;
                }
            }
        }
        // Every cable was seen from both ends.
        crossings / 2
    }

    /// Minimum hop distance between every pair of shards under
    /// `partition`: `d[s][r]` = min over nodes `a` of shard `s`, `b` of
    /// shard `r` of the hop distance `a -> b` (0 on the diagonal,
    /// `u32::MAX` between mutually unreachable or empty shards).
    /// Computed with one multi-source BFS per shard.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not cover every node or names a shard
    /// `>= shards`.
    pub fn shard_distances(&self, partition: &[u32], shards: usize) -> Vec<Vec<u32>> {
        assert_eq!(partition.len(), self.node_count(), "one shard per node");
        assert!(
            partition.iter().all(|&s| (s as usize) < shards),
            "partition names a shard out of range"
        );
        let mut out = vec![vec![u32::MAX; shards]; shards];
        for (s, row) in out.iter_mut().enumerate() {
            // Multi-source BFS from every node of shard `s`.
            let mut dist = vec![u32::MAX; self.node_count()];
            let mut queue = std::collections::VecDeque::new();
            for n in 0..self.node_count() {
                if partition[n] as usize == s {
                    dist[n] = 0;
                    queue.push_back(NodeId::from(n));
                }
            }
            while let Some(u) = queue.pop_front() {
                for (_, v) in self.neighbors(u) {
                    if dist[v.index()] == u32::MAX {
                        dist[v.index()] = dist[u.index()] + 1;
                        queue.push_back(v);
                    }
                }
            }
            for n in 0..self.node_count() {
                if dist[n] < row[partition[n] as usize] {
                    row[partition[n] as usize] = dist[n];
                }
            }
        }
        out
    }

    /// A latency-aware node → shard partition that minimizes the number
    /// of cut cables. Two deterministic candidates — the index-band
    /// split (optimal on lines, rings and row-major mesh strips) and a
    /// balanced region growth from k-center seeds (better on irregular
    /// graphs) — are each refined with greedy boundary moves plus
    /// pairwise Kernighan–Lin sweeps, and the cheaper result wins.
    /// Fewer cut cables means less cross-shard mail, and the surviving
    /// far shard pairs keep large per-pair lookaheads
    /// ([`Topology::shard_distances`]), so the conservative engine
    /// synchronizes less often.
    ///
    /// Fully deterministic (ties break on the lowest node index). Every
    /// shard in `0..shards` is inhabited. For `shards >= node count`,
    /// degenerates to one node per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or the topology has no nodes.
    pub fn min_cut_partition(&self, shards: usize) -> Vec<u32> {
        assert!(shards > 0, "at least one shard");
        let n = self.node_count();
        assert!(n > 0, "partitioning an empty topology");
        if shards >= n {
            return (0..n).map(|i| i as u32).collect();
        }
        // Balanced index bands via the spread formula (every shard
        // inhabited even when `shards` does not divide `n`).
        let band: Vec<u32> = (0..n).map(|i| (i * shards / n) as u32).collect();
        let mut best: Option<(usize, u64, Vec<u32>)> = None;
        for mut candidate in [band, self.grown_partition(shards)] {
            self.refine_partition(&mut candidate, shards);
            let cut = self.cut_cables(&candidate);
            let imbalance: u64 = {
                let mut sizes = vec![0u64; shards];
                for &s in &candidate {
                    sizes[s as usize] += 1;
                }
                sizes.iter().map(|&s| s * s).sum()
            };
            if best
                .as_ref()
                .is_none_or(|(bc, bi, _)| (cut, imbalance) < (*bc, *bi))
            {
                best = Some((cut, imbalance, candidate));
            }
        }
        best.expect("at least one candidate").2
    }

    /// Balanced region growth: k-center seeds (greedy farthest-first
    /// from node 0), then repeatedly give the smallest region the next
    /// adjacent unassigned node; stragglers disconnected from every
    /// seed land in the smallest shard.
    fn grown_partition(&self, shards: usize) -> Vec<u32> {
        let n = self.node_count();
        let mut seeds: Vec<NodeId> = vec![NodeId(0)];
        // Min and sum of distances to the chosen seeds, per node.
        let mut seed_dist = self.distances_from(NodeId(0));
        let mut seed_sum: Vec<u64> = seed_dist
            .iter()
            .map(|&d| if d == u32::MAX { u64::MAX } else { u64::from(d) })
            .collect();
        while seeds.len() < shards {
            let mut best: Option<usize> = None;
            let mut best_key = (0u64, 0u64);
            for i in 0..n {
                // Primary: farthest from the nearest seed (k-center).
                // Secondary: farthest in total — on ties this prefers a
                // fresh extreme (e.g. the remaining corner of a mesh)
                // over a central node. Unreachable nodes (disconnected
                // topologies) rank above any finite distance.
                let rank = if seed_dist[i] == u32::MAX {
                    u64::MAX
                } else {
                    u64::from(seed_dist[i])
                };
                let key = (rank, seed_sum[i]);
                if seeds.iter().all(|s| s.index() != i) && (best.is_none() || key > best_key) {
                    best = Some(i);
                    best_key = key;
                }
            }
            let next = NodeId::from(best.expect("shards < node count"));
            for (i, d) in self.distances_from(next).into_iter().enumerate() {
                seed_dist[i] = seed_dist[i].min(d);
                let d = if d == u32::MAX { u64::MAX } else { u64::from(d) };
                seed_sum[i] = seed_sum[i].saturating_add(d);
            }
            seeds.push(next);
        }
        const UNASSIGNED: u32 = u32::MAX;
        let mut assign = vec![UNASSIGNED; n];
        let mut sizes = vec![0usize; shards];
        let mut frontiers: Vec<std::collections::VecDeque<NodeId>> =
            (0..shards).map(|_| std::collections::VecDeque::new()).collect();
        for (s, &seed) in seeds.iter().enumerate() {
            assign[seed.index()] = s as u32;
            sizes[s] += 1;
            frontiers[s].push_back(seed);
        }
        let mut assigned = shards;
        while assigned < n {
            // The smallest region with any frontier left grows next.
            let Some(s) = (0..shards)
                .filter(|&s| !frontiers[s].is_empty())
                .min_by_key(|&s| (sizes[s], s))
            else {
                break; // disconnected remainder: handled below
            };
            let mut grew = false;
            while let Some(u) = frontiers[s].pop_front() {
                let next = self
                    .neighbors(u)
                    .map(|(_, v)| v)
                    .filter(|v| assign[v.index()] == UNASSIGNED)
                    .min();
                if let Some(v) = next {
                    assign[v.index()] = s as u32;
                    sizes[s] += 1;
                    assigned += 1;
                    // `u` may have more unassigned neighbors.
                    frontiers[s].push_front(u);
                    frontiers[s].push_back(v);
                    grew = true;
                    break;
                }
            }
            if !grew && frontiers.iter().all(std::collections::VecDeque::is_empty) {
                break;
            }
        }
        for a in assign.iter_mut() {
            if *a == UNASSIGNED {
                let s = (0..shards).min_by_key(|&s| (sizes[s], s)).expect("shards > 0");
                *a = s as u32;
                sizes[s] += 1;
            }
        }
        assign
    }

    /// Iterated refinement: greedy single-node boundary moves (strict
    /// cut reduction, balance-respecting), then a Kernighan–Lin sweep
    /// over every shard pair. Each accepted change strictly reduces the
    /// cut, so the loop terminates; the round cap bounds the worst case.
    fn refine_partition(&self, assign: &mut [u32], shards: usize) {
        for _ in 0..4 {
            let mut improved = self.greedy_moves(assign, shards);
            for a in 0..shards as u32 {
                for b in a + 1..shards as u32 {
                    improved |= self.kl_pass(assign, a, b);
                }
            }
            if !improved {
                break;
            }
        }
    }

    /// One sweep of single-node migrations: move a node to a
    /// neighboring shard when that strictly reduces its cut cables
    /// without growing a larger shard or emptying its own.
    fn greedy_moves(&self, assign: &mut [u32], shards: usize) -> bool {
        let n = self.node_count();
        let mut sizes = vec![0usize; shards];
        for &s in assign.iter() {
            sizes[s as usize] += 1;
        }
        let mut moved_any = false;
        for _ in 0..8 {
            let mut moved = false;
            for u in 0..n {
                let a = assign[u] as usize;
                if sizes[a] <= 1 {
                    continue;
                }
                let mut degree = vec![0usize; shards];
                for (_, v) in self.neighbors(NodeId::from(u)) {
                    degree[assign[v.index()] as usize] += 1;
                }
                let Some(b) = (0..shards)
                    .filter(|&b| b != a && degree[b] > degree[a] && sizes[a] >= sizes[b])
                    .max_by_key(|&b| (degree[b], std::cmp::Reverse(b)))
                else {
                    continue;
                };
                assign[u] = b as u32;
                sizes[a] -= 1;
                sizes[b] += 1;
                moved = true;
                moved_any = true;
            }
            if !moved {
                break;
            }
        }
        moved_any
    }

    /// `D`-value of `u` for a Kernighan–Lin pass over shards `a`/`b`:
    /// lanes to the opposite pass shard minus lanes to its own. Edges to
    /// shards outside the pair stay cut either way, so they don't count.
    fn kl_d(&self, assign: &[u32], a: u32, b: u32, u: usize) -> i64 {
        let own = assign[u];
        let other = if own == a { b } else { a };
        let mut d = 0i64;
        for (_, v) in self.neighbors(NodeId::from(u)) {
            let s = assign[v.index()];
            if s == own {
                d -= 1;
            } else if s == other {
                d += 1;
            }
        }
        d
    }

    /// One Kernighan–Lin sweep between shards `a` and `b`: greedily swap
    /// the highest-`D` unlocked node of each side (swaps keep both sizes
    /// exact), allowing transient cut increases, then keep the best
    /// prefix. Returns whether the cut strictly improved.
    fn kl_pass(&self, assign: &mut [u32], a: u32, b: u32) -> bool {
        let n = self.node_count();
        let mut d = vec![0i64; n];
        for u in 0..n {
            if assign[u] == a || assign[u] == b {
                d[u] = self.kl_d(assign, a, b, u);
            }
        }
        let count_a = assign.iter().filter(|&&s| s == a).count();
        let count_b = assign.iter().filter(|&&s| s == b).count();
        let max_swaps = count_a.min(count_b).min(128);
        let mut locked = vec![false; n];
        let mut swaps: Vec<(usize, usize)> = Vec::new();
        let (mut cum, mut best_cum, mut best_len) = (0i64, 0i64, 0usize);
        for _ in 0..max_swaps {
            let pick = |side: u32, assign: &[u32], locked: &[bool], d: &[i64]| {
                let mut best: Option<usize> = None;
                for u in 0..n {
                    if assign[u] == side && !locked[u] && best.is_none_or(|w| d[u] > d[w]) {
                        best = Some(u);
                    }
                }
                best
            };
            let Some(u) = pick(a, assign, &locked, &d) else { break };
            let Some(v) = pick(b, assign, &locked, &d) else { break };
            let lanes_uv = self
                .neighbors(NodeId::from(u))
                .filter(|&(_, m)| m.index() == v)
                .count() as i64;
            let gain = d[u] + d[v] - 2 * lanes_uv;
            assign[u] = b;
            assign[v] = a;
            locked[u] = true;
            locked[v] = true;
            swaps.push((u, v));
            cum += gain;
            if cum > best_cum {
                best_cum = cum;
                best_len = swaps.len();
            }
            for w in self
                .neighbors(NodeId::from(u))
                .chain(self.neighbors(NodeId::from(v)))
                .map(|(_, m)| m.index())
            {
                if !locked[w] && (assign[w] == a || assign[w] == b) {
                    d[w] = self.kl_d(assign, a, b, w);
                }
            }
        }
        // Roll back everything past the best prefix.
        for &(u, v) in &swaps[best_len..] {
            assign[u] = a;
            assign[v] = b;
        }
        best_cum > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape() {
        let t = Topology::ring(20, 4);
        for n in 0..20 {
            let id = NodeId::from(n);
            assert_eq!(t.free_ports(id), 0, "4 lanes each way fill 8 ports");
            let neighbors: bluedbm_sim::fxhash::FxHashSet<NodeId> =
                t.neighbors(id).map(|(_, m)| m).collect();
            assert_eq!(neighbors.len(), 2);
        }
        assert!(t.is_connected());
    }

    #[test]
    fn two_node_ring_does_not_double_edges() {
        let t = Topology::ring(2, 2);
        assert_eq!(t.neighbors(NodeId(0)).count(), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn line_distances() {
        let t = Topology::line(6, 1);
        let d = t.distances_from(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn mesh_shape_and_distances() {
        let t = Topology::mesh2d(3, 3);
        assert!(t.is_connected());
        let d = t.distances_from(NodeId(0));
        // Manhattan distance on the grid.
        assert_eq!(d[8], 4); // (2,2)
        assert_eq!(d[4], 2); // (1,1)
    }

    #[test]
    fn star_connects_leaves_through_hubs() {
        let t = Topology::star(10, 2);
        assert!(t.is_connected());
        let d = t.distances_from(NodeId(2)); // a leaf on hub 0
        assert_eq!(d[0], 1);
        // leaf 3 hangs off hub 1: leaf2 -> hub0 -> hub1 -> leaf3.
        assert_eq!(d[3], 3);
    }

    #[test]
    fn from_edges_with_lanes() {
        let t = Topology::from_edges(3, &[(0, 1, 1), (0, 2, 2)]);
        assert_eq!(t.neighbors(NodeId(0)).count(), 3);
        assert_eq!(t.free_ports(NodeId(0)), 5);
        assert!(t.is_connected());
    }

    #[test]
    fn peer_is_symmetric() {
        let mut t = Topology::empty(2);
        let (pa, pb) = t.connect(NodeId(0), NodeId(1));
        assert_eq!(t.peer(NodeId(0), pa), Some((NodeId(1), pb)));
        assert_eq!(t.peer(NodeId(1), pb), Some((NodeId(0), pa)));
    }

    #[test]
    #[should_panic(expected = "free port")]
    fn port_budget_enforced() {
        let mut t = Topology::empty(2);
        for _ in 0..9 {
            t.connect(NodeId(0), NodeId(1));
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut t = Topology::empty(2);
        t.connect(NodeId(0), NodeId(0));
    }

    #[test]
    fn tree_shape_and_distances() {
        let t = Topology::tree(3, 3); // 1 + 3 + 9 nodes
        assert_eq!(t.node_count(), 13);
        assert!(t.is_connected());
        let d = t.distances_from(NodeId(0));
        // Children at 1..=3 (1 hop), grandchildren at 4..=12 (2 hops).
        assert!((1..=3).all(|i| d[i] == 1));
        assert!((4..=12).all(|i| d[i] == 2));
        // Leaf to a cousin leaf crosses the root: 4 hops.
        let dl = t.distances_from(NodeId(4));
        assert_eq!(dl[12], 4);
        // Single-level tree degenerates to one node.
        assert_eq!(Topology::tree(4, 1).node_count(), 1);
    }

    #[test]
    fn fat_tree_gives_spine_many_disjoint_paths() {
        use crate::routing::RoutingTable;
        let t = Topology::fat_tree(4, 3);
        assert_eq!(t.node_count(), 7);
        assert!(t.is_connected());
        // Any two leaves are 2 hops apart through a spine.
        let d = t.distances_from(NodeId(3));
        for leaf in &d[4..7] {
            assert_eq!(*leaf, 2);
        }
        // Deterministic routing spreads endpoints across all 3 spines.
        let table = RoutingTable::compute(&t);
        let spines_used: bluedbm_sim::fxhash::FxHashSet<NodeId> = (0..8u16)
            .map(|ep| {
                let port = table.next_port(NodeId(3), NodeId(6), ep).unwrap();
                t.peer(NodeId(3), port).unwrap().0
            })
            .collect();
        assert_eq!(spines_used.len(), 3, "all spines carry traffic");
    }

    #[test]
    #[should_panic(expected = "8-port fan-out")]
    fn fat_tree_respects_port_budget() {
        let _ = Topology::fat_tree(9, 3);
    }

    #[test]
    fn disconnected_detected() {
        let t = Topology::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        assert!(!t.is_connected());
        let d = t.distances_from(NodeId(0));
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn cut_cables_counts_lanes() {
        let t = Topology::ring(4, 2); // 2 lanes per hop
        // Contiguous halves cut exactly two hops = four cables.
        assert_eq!(t.cut_cables(&[0, 0, 1, 1]), 4);
        // Alternating shards cut every hop.
        assert_eq!(t.cut_cables(&[0, 1, 0, 1]), 8);
        assert_eq!(t.cut_cables(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn shard_distances_on_a_line() {
        let t = Topology::line(6, 1);
        // Shards [0,0 | 1,1 | 2,2]: adjacent pairs touch (distance 1),
        // the end pair is 0 -> 2 at distance... n2 of shard 0 to n4 of
        // shard 2 is 2 hops.
        let d = t.shard_distances(&[0, 0, 1, 1, 2, 2], 3);
        assert_eq!(d[0][0], 0);
        assert_eq!(d[0][1], 1);
        assert_eq!(d[1][2], 1);
        assert_eq!(d[0][2], 3); // n1 -> n4
        assert_eq!(d[2][0], 3); // symmetric
    }

    #[test]
    fn shard_distances_disconnected_is_max() {
        let t = Topology::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let d = t.shard_distances(&[0, 0, 1, 1], 2);
        assert_eq!(d[0][1], u32::MAX);
        assert_eq!(d[1][0], u32::MAX);
    }

    #[test]
    fn min_cut_partition_is_balanced_contiguous_and_cheap() {
        for (topo, shards) in [
            (Topology::ring(20, 4), 4),
            (Topology::mesh2d(8, 8), 4),
            (Topology::mesh2d(8, 8), 2),
            (Topology::line(9, 2), 3),
        ] {
            let n = topo.node_count();
            let partition = topo.min_cut_partition(shards);
            assert_eq!(partition.len(), n);
            // Every shard inhabited, sizes within 2x of perfect balance.
            let mut sizes = vec![0usize; shards];
            for &s in &partition {
                sizes[s as usize] += 1;
            }
            assert!(sizes.iter().all(|&sz| sz > 0), "empty shard in {sizes:?}");
            let ideal = n.div_ceil(shards);
            assert!(
                sizes.iter().all(|&sz| sz <= 2 * ideal),
                "lopsided partition {sizes:?}"
            );
            // No worse than the node-band split it replaces.
            let per = n.div_ceil(shards);
            let band: Vec<u32> = (0..n).map(|i| (i / per) as u32).collect();
            assert!(
                topo.cut_cables(&partition) <= topo.cut_cables(&band),
                "min-cut ({}) worse than band ({}) on {shards} shards",
                topo.cut_cables(&partition),
                topo.cut_cables(&band)
            );
        }
    }

    #[test]
    fn min_cut_partition_mesh_quarters() {
        // On an even mesh the ideal 4-way cut is the two center seams
        // (8 + 8 = 16 cables); band partitioning cuts 3 full rows of 8
        // twice... (3 seams x 8 = 24). The partitioner must find
        // something at least as good as the quadrant cut.
        let t = Topology::mesh2d(8, 8);
        let partition = t.min_cut_partition(4);
        assert!(
            t.cut_cables(&partition) <= 16,
            "mesh8x8 4-way cut = {}",
            t.cut_cables(&partition)
        );
    }

    #[test]
    fn min_cut_partition_is_deterministic() {
        let t = Topology::mesh2d(5, 7);
        assert_eq!(t.min_cut_partition(4), t.min_cut_partition(4));
    }

    #[test]
    fn min_cut_partition_degenerate_cases() {
        let t = Topology::ring(4, 1);
        assert_eq!(t.min_cut_partition(1), vec![0, 0, 0, 0]);
        // shards >= nodes: one node per shard.
        assert_eq!(t.min_cut_partition(4), vec![0, 1, 2, 3]);
        assert_eq!(t.min_cut_partition(9), vec![0, 1, 2, 3]);
        // Disconnected halves land in different shards.
        let split = Topology::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let p = split.min_cut_partition(2);
        assert_eq!(p[0], p[1]);
        assert_eq!(p[2], p[3]);
        assert_ne!(p[0], p[2]);
    }
}
