//! Physical cabling of the storage network.
//!
//! A topology is a set of nodes, each with up to
//! [`Topology::MAX_PORTS`] = 8 serial ports (the fan-out of the paper's
//! flash board), and full-duplex cables between (node, port) pairs. The
//! paper's Figure 5 shows a distributed star, a mesh and a fat tree; the
//! builders here cover those shapes plus arbitrary edge lists loaded from
//! a "network configuration file" equivalent.

use std::fmt;

/// A storage node in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u16::try_from(v).expect("node index fits in u16"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A serial port on a node (0..8).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The cabling graph.
///
/// # Examples
///
/// ```rust
/// use bluedbm_net::topology::Topology;
///
/// let ring = Topology::ring(20, 4); // the paper's 20-node, 4-lane ring
/// assert_eq!(ring.node_count(), 20);
/// assert!(ring.is_connected());
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    /// `ports[n][p] = Some((m, q))` when port p of node n is cabled to
    /// port q of node m.
    ports: Vec<Vec<Option<(NodeId, PortId)>>>,
}

impl Topology {
    /// Physical port fan-out per node (paper Section 5.1: 8 SATA
    /// connectors pin out the serial ports).
    pub const MAX_PORTS: usize = 8;

    /// An edgeless topology over `nodes` nodes.
    pub fn empty(nodes: usize) -> Self {
        Topology {
            ports: vec![vec![None; Self::MAX_PORTS]; nodes],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.ports.len()
    }

    /// Add a full-duplex cable between the next free ports of `a` and `b`.
    /// Returns the (port on a, port on b) pair used.
    ///
    /// # Panics
    ///
    /// Panics if either node has no free port or `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId) -> (PortId, PortId) {
        assert_ne!(a, b, "self-loops are not cables");
        let pa = self.free_port(a).expect("node a has a free port");
        let pb = self.free_port(b).expect("node b has a free port");
        self.ports[a.index()][pa.0 as usize] = Some((b, pb));
        self.ports[b.index()][pb.0 as usize] = Some((a, pa));
        (pa, pb)
    }

    fn free_port(&self, n: NodeId) -> Option<PortId> {
        self.ports[n.index()]
            .iter()
            .position(Option::is_none)
            .map(|p| PortId(p as u8))
    }

    /// Remaining free ports on `n`.
    pub fn free_ports(&self, n: NodeId) -> usize {
        self.ports[n.index()].iter().filter(|p| p.is_none()).count()
    }

    /// The remote end of (node, port), if cabled.
    pub fn peer(&self, n: NodeId, p: PortId) -> Option<(NodeId, PortId)> {
        self.ports[n.index()][p.0 as usize]
    }

    /// All cabled ports of `n` with their peers.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (PortId, NodeId)> + '_ {
        self.ports[n.index()]
            .iter()
            .enumerate()
            .filter_map(|(p, link)| link.map(|(m, _)| (PortId(p as u8), m)))
    }

    /// A ring of `n` nodes with `lanes` parallel cables between adjacent
    /// nodes (the paper discusses a 20-node ring with 4 lanes each way).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `lanes == 0`, or the lane count exceeds the port
    /// budget (`2 * lanes > 8` for n > 2).
    pub fn ring(n: usize, lanes: usize) -> Self {
        assert!(n >= 2 && lanes > 0);
        let mut t = Self::empty(n);
        for i in 0..n {
            let j = (i + 1) % n;
            if n == 2 && i == 1 {
                break; // avoid doubling the single edge
            }
            for _ in 0..lanes {
                t.connect(NodeId::from(i), NodeId::from(j));
            }
        }
        t
    }

    /// A line (open chain) of `n` nodes with `lanes` parallel cables per
    /// hop — the shape of the Figure 11 hop-count experiment.
    pub fn line(n: usize, lanes: usize) -> Self {
        assert!(n >= 2 && lanes > 0);
        let mut t = Self::empty(n);
        for i in 0..n - 1 {
            for _ in 0..lanes {
                t.connect(NodeId::from(i), NodeId::from(i + 1));
            }
        }
        t
    }

    /// A `w x h` 2-D mesh (Figure 5b).
    pub fn mesh2d(w: usize, h: usize) -> Self {
        assert!(w >= 1 && h >= 1 && w * h >= 2);
        let mut t = Self::empty(w * h);
        let id = |x: usize, y: usize| NodeId::from(y * w + x);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    t.connect(id(x, y), id(x + 1, y));
                }
                if y + 1 < h {
                    t.connect(id(x, y), id(x, y + 1));
                }
            }
        }
        t
    }

    /// A distributed star (Figure 5a): `hubs` fully-interconnected hub
    /// nodes, remaining nodes attached round-robin to hubs.
    ///
    /// # Panics
    ///
    /// Panics if `hubs == 0` or `hubs > n`.
    pub fn star(n: usize, hubs: usize) -> Self {
        assert!(hubs > 0 && hubs <= n);
        let mut t = Self::empty(n);
        for a in 0..hubs {
            for b in a + 1..hubs {
                t.connect(NodeId::from(a), NodeId::from(b));
            }
        }
        for leaf in hubs..n {
            t.connect(NodeId::from(leaf), NodeId::from(leaf % hubs));
        }
        t
    }

    /// A complete tree of the given `fanout` and `levels` (levels >= 1;
    /// one level is a single node). Every node is a storage node; inner
    /// nodes route for their subtrees.
    ///
    /// # Panics
    ///
    /// Panics if the fanout would exceed the port budget (a non-root
    /// inner node needs `fanout + 1` ports) or `levels == 0`.
    pub fn tree(fanout: usize, levels: usize) -> Self {
        assert!(levels >= 1 && fanout >= 1);
        assert!(
            fanout < Self::MAX_PORTS,
            "inner nodes need fanout+1 <= 8 ports"
        );
        let mut starts = Vec::with_capacity(levels);
        let mut at = 0;
        let mut w = 1;
        for _ in 0..levels {
            starts.push(at);
            at += w;
            w *= fanout;
        }
        let total = at;
        let mut t = Self::empty(total);
        for level in 1..levels {
            let parent_start = starts[level - 1];
            let start = starts[level];
            let width = fanout.pow(level as u32);
            for i in 0..width {
                let child = NodeId::from(start + i);
                let parent = NodeId::from(parent_start + i / fanout);
                t.connect(parent, child);
            }
        }
        t
    }

    /// A two-level fat tree (Figure 5c): every leaf cabled to every
    /// spine, giving `spines` disjoint shortest paths between any two
    /// leaves (deterministic routing spreads endpoints across them).
    ///
    /// Nodes `0..spines` are spines; `spines..spines+leaves` are leaves.
    ///
    /// # Panics
    ///
    /// Panics if the port budget is exceeded (`spines <= 8` and
    /// `leaves <= 8`).
    pub fn fat_tree(leaves: usize, spines: usize) -> Self {
        assert!(leaves >= 2 && spines >= 1);
        assert!(
            spines <= Self::MAX_PORTS && leaves <= Self::MAX_PORTS,
            "full bipartite cabling is limited by the 8-port fan-out"
        );
        let mut t = Self::empty(spines + leaves);
        for leaf in 0..leaves {
            for spine in 0..spines {
                t.connect(NodeId::from(spines + leaf), NodeId::from(spine));
            }
        }
        t
    }

    /// Build from an explicit edge list (the paper's network configuration
    /// file). Each `(a, b, lanes)` adds `lanes` parallel cables.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a node `>= n` or exhausts a port
    /// budget.
    pub fn from_edges(n: usize, edges: &[(usize, usize, usize)]) -> Self {
        let mut t = Self::empty(n);
        for &(a, b, lanes) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            for _ in 0..lanes {
                t.connect(NodeId::from(a), NodeId::from(b));
            }
        }
        t
    }

    /// `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for (_, v) in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// BFS hop distances from `src` to every node (`u32::MAX` if
    /// unreachable).
    pub fn distances_from(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count()];
        dist[src.index()] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            for (_, v) in self.neighbors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape() {
        let t = Topology::ring(20, 4);
        for n in 0..20 {
            let id = NodeId::from(n);
            assert_eq!(t.free_ports(id), 0, "4 lanes each way fill 8 ports");
            let neighbors: std::collections::HashSet<NodeId> =
                t.neighbors(id).map(|(_, m)| m).collect();
            assert_eq!(neighbors.len(), 2);
        }
        assert!(t.is_connected());
    }

    #[test]
    fn two_node_ring_does_not_double_edges() {
        let t = Topology::ring(2, 2);
        assert_eq!(t.neighbors(NodeId(0)).count(), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn line_distances() {
        let t = Topology::line(6, 1);
        let d = t.distances_from(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn mesh_shape_and_distances() {
        let t = Topology::mesh2d(3, 3);
        assert!(t.is_connected());
        let d = t.distances_from(NodeId(0));
        // Manhattan distance on the grid.
        assert_eq!(d[8], 4); // (2,2)
        assert_eq!(d[4], 2); // (1,1)
    }

    #[test]
    fn star_connects_leaves_through_hubs() {
        let t = Topology::star(10, 2);
        assert!(t.is_connected());
        let d = t.distances_from(NodeId(2)); // a leaf on hub 0
        assert_eq!(d[0], 1);
        // leaf 3 hangs off hub 1: leaf2 -> hub0 -> hub1 -> leaf3.
        assert_eq!(d[3], 3);
    }

    #[test]
    fn from_edges_with_lanes() {
        let t = Topology::from_edges(3, &[(0, 1, 1), (0, 2, 2)]);
        assert_eq!(t.neighbors(NodeId(0)).count(), 3);
        assert_eq!(t.free_ports(NodeId(0)), 5);
        assert!(t.is_connected());
    }

    #[test]
    fn peer_is_symmetric() {
        let mut t = Topology::empty(2);
        let (pa, pb) = t.connect(NodeId(0), NodeId(1));
        assert_eq!(t.peer(NodeId(0), pa), Some((NodeId(1), pb)));
        assert_eq!(t.peer(NodeId(1), pb), Some((NodeId(0), pa)));
    }

    #[test]
    #[should_panic(expected = "free port")]
    fn port_budget_enforced() {
        let mut t = Topology::empty(2);
        for _ in 0..9 {
            t.connect(NodeId(0), NodeId(1));
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut t = Topology::empty(2);
        t.connect(NodeId(0), NodeId(0));
    }

    #[test]
    fn tree_shape_and_distances() {
        let t = Topology::tree(3, 3); // 1 + 3 + 9 nodes
        assert_eq!(t.node_count(), 13);
        assert!(t.is_connected());
        let d = t.distances_from(NodeId(0));
        // Children at 1..=3 (1 hop), grandchildren at 4..=12 (2 hops).
        assert!((1..=3).all(|i| d[i] == 1));
        assert!((4..=12).all(|i| d[i] == 2));
        // Leaf to a cousin leaf crosses the root: 4 hops.
        let dl = t.distances_from(NodeId(4));
        assert_eq!(dl[12], 4);
        // Single-level tree degenerates to one node.
        assert_eq!(Topology::tree(4, 1).node_count(), 1);
    }

    #[test]
    fn fat_tree_gives_spine_many_disjoint_paths() {
        use crate::routing::RoutingTable;
        let t = Topology::fat_tree(4, 3);
        assert_eq!(t.node_count(), 7);
        assert!(t.is_connected());
        // Any two leaves are 2 hops apart through a spine.
        let d = t.distances_from(NodeId(3));
        for leaf in &d[4..7] {
            assert_eq!(*leaf, 2);
        }
        // Deterministic routing spreads endpoints across all 3 spines.
        let table = RoutingTable::compute(&t);
        let spines_used: std::collections::HashSet<NodeId> = (0..8u16)
            .map(|ep| {
                let port = table.next_port(NodeId(3), NodeId(6), ep).unwrap();
                t.peer(NodeId(3), port).unwrap().0
            })
            .collect();
        assert_eq!(spines_used.len(), 3, "all spines carry traffic");
    }

    #[test]
    #[should_panic(expected = "8-port fan-out")]
    fn fat_tree_respects_port_budget() {
        let _ = Topology::fat_tree(9, 3);
    }

    #[test]
    fn disconnected_detected() {
        let t = Topology::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        assert!(!t.is_connected());
        let d = t.distances_from(NodeId(0));
        assert_eq!(d[2], u32::MAX);
    }
}
