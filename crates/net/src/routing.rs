//! Deterministic per-endpoint routing (paper Section 3.2.3).
//!
//! For every (source node, destination node, endpoint) the network uses
//! one fixed path. Different endpoints to the same destination may use
//! different — equally short — paths, which spreads traffic over parallel
//! links while preserving per-endpoint FIFO order (the paper's Figure 6
//! invariant; taking it further would require expensive completion
//! buffers in the storage device).
//!
//! There is no discovery protocol (the paper relies on a network
//! configuration file); tables are computed offline from the
//! [`Topology`] by BFS and endpoint-indexed selection among equal-cost
//! next hops.

use crate::topology::{NodeId, PortId, Topology};

/// Precomputed next-hop tables for every node.
///
/// # Examples
///
/// ```rust
/// use bluedbm_net::routing::RoutingTable;
/// use bluedbm_net::topology::{NodeId, Topology};
///
/// let topo = Topology::ring(4, 2);
/// let table = RoutingTable::compute(&topo);
/// let port = table.next_port(NodeId(0), NodeId(2), 0).unwrap();
/// let (hop, _) = topo.peer(NodeId(0), port).unwrap();
/// assert!(hop == NodeId(1) || hop == NodeId(3)); // either way around
/// ```
#[derive(Clone, Debug)]
pub struct RoutingTable {
    /// `candidates[src][dst]` = ports of `src` that begin a shortest path
    /// to `dst` (empty when unreachable or src == dst).
    candidates: Vec<Vec<Vec<PortId>>>,
    /// `hops[src][dst]` = shortest-path length.
    hops: Vec<Vec<u32>>,
}

impl RoutingTable {
    /// Compute tables for `topo`.
    pub fn compute(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut hops = Vec::with_capacity(n);
        for src in 0..n {
            hops.push(topo.distances_from(NodeId::from(src)));
        }
        let mut candidates = vec![vec![Vec::new(); n]; n];
        for src in 0..n {
            for dst in 0..n {
                if src == dst || hops[src][dst] == u32::MAX {
                    continue;
                }
                let want = hops[src][dst] - 1;
                let mut ports: Vec<PortId> = topo
                    .neighbors(NodeId::from(src))
                    .filter(|(_, m)| hops[m.index()][dst] == want)
                    .map(|(p, _)| p)
                    .collect();
                ports.sort();
                candidates[src][dst] = ports;
            }
        }
        RoutingTable { candidates, hops }
    }

    /// The egress port node `src` uses toward `dst` for `endpoint`.
    ///
    /// Returns `None` when `src == dst` or `dst` is unreachable.
    pub fn next_port(&self, src: NodeId, dst: NodeId, endpoint: u16) -> Option<PortId> {
        let ports = &self.candidates[src.index()][dst.index()];
        if ports.is_empty() {
            None
        } else {
            Some(ports[endpoint as usize % ports.len()])
        }
    }

    /// Shortest-path hop count (`None` if unreachable).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        let h = self.hops[src.index()][dst.index()];
        (h != u32::MAX).then_some(h)
    }

    /// The full path an (endpoint, src, dst) flow takes, as a node list
    /// including both ends. Useful for tests and the EXPERIMENTS harness.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is unreachable from `src`.
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId, endpoint: u16) -> Vec<NodeId> {
        let mut path = vec![src];
        let mut here = src;
        while here != dst {
            let port = self
                .next_port(here, dst, endpoint)
                .expect("destination must be reachable");
            let (next, _) = topo.peer(here, port).expect("routed port is cabled");
            path.push(next);
            here = next;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_follow_shortest_paths() {
        let topo = Topology::ring(8, 1);
        let table = RoutingTable::compute(&topo);
        for src in 0..8 {
            for dst in 0..8 {
                if src == dst {
                    assert!(table.next_port(NodeId(src), NodeId(dst), 0).is_none());
                    continue;
                }
                let path = table.path(&topo, NodeId(src), NodeId(dst), 0);
                assert_eq!(
                    path.len() as u32 - 1,
                    table.hops(NodeId(src), NodeId(dst)).unwrap()
                );
                assert_eq!(*path.last().unwrap(), NodeId(dst));
            }
        }
    }

    #[test]
    fn endpoints_spread_across_parallel_lanes() {
        let topo = Topology::line(2, 4);
        let table = RoutingTable::compute(&topo);
        let ports: bluedbm_sim::fxhash::FxHashSet<PortId> = (0..8u16)
            .map(|e| table.next_port(NodeId(0), NodeId(1), e).unwrap())
            .collect();
        assert_eq!(ports.len(), 4, "4 lanes should all be used");
    }

    #[test]
    fn same_endpoint_same_path_always() {
        let topo = Topology::mesh2d(4, 4);
        let table = RoutingTable::compute(&topo);
        let p1 = table.path(&topo, NodeId(0), NodeId(15), 3);
        let p2 = table.path(&topo, NodeId(0), NodeId(15), 3);
        assert_eq!(p1, p2, "deterministic routing");
        // Mesh corner-to-corner is 6 hops.
        assert_eq!(p1.len(), 7);
    }

    #[test]
    fn different_endpoints_may_take_different_paths() {
        let topo = Topology::mesh2d(3, 3);
        let table = RoutingTable::compute(&topo);
        let paths: bluedbm_sim::fxhash::FxHashSet<Vec<NodeId>> = (0..8u16)
            .map(|e| table.path(&topo, NodeId(0), NodeId(8), e))
            .collect();
        assert!(paths.len() > 1, "equal-cost diversity should be exploited");
        for p in &paths {
            assert_eq!(p.len(), 5, "all chosen paths are still shortest");
        }
    }

    #[test]
    fn unreachable_is_none() {
        let topo = Topology::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let table = RoutingTable::compute(&topo);
        assert!(table.next_port(NodeId(0), NodeId(2), 0).is_none());
        assert!(table.hops(NodeId(0), NodeId(2)).is_none());
        assert_eq!(table.hops(NodeId(0), NodeId(1)), Some(1));
    }
}
