//! # bluedbm-net
//!
//! The BlueDBM *integrated storage network* (paper Section 3.2): a
//! packet-switched network of storage devices connected by low-latency
//! serial links, with
//!
//! * **token (credit) flow control** at the link layer — packets are never
//!   dropped; senders block when the receiver's buffer is full
//!   (Section 3.2.2);
//! * **deterministic per-endpoint routing** — all packets from one logical
//!   endpoint to one destination take the same path, so per-endpoint FIFO
//!   order holds end-to-end without completion buffers (Section 3.2.3,
//!   Figure 6);
//! * **configurable topology** — ring, mesh, star, or arbitrary cabling,
//!   limited only by the 8 physical ports per node (Figure 5);
//! * paper-calibrated timing: 10 Gbps per lane, 0.48 µs per hop, and an
//!   18% protocol overhead giving the measured 8.2 Gbps goodput
//!   (Section 6.3, Figure 11).
//!
//! The network is modelled with cut-through switching: a packet's head
//! moves hop to hop at `hop_latency` while each traversed lane is occupied
//! for the packet's full serialization time — which is exactly the
//! behaviour behind Figure 11's flat bandwidth-vs-hops curve.

pub mod msg;
pub mod packet;
pub mod router;
pub mod routing;
pub mod topology;

pub use msg::{NetMsg, NetProtocol};
pub use packet::{NetParams, Packet};
pub use router::{build_network, NetRecv, NetSend, Router, RouterStats};
pub use routing::RoutingTable;
pub use topology::{NodeId, PortId, Topology};
