//! The per-node network router: internal + external switch, link-layer
//! credit flow control, and endpoint delivery (paper Figure 4).
//!
//! One [`Router`] component models everything network-related inside one
//! BlueDBM storage device:
//!
//! * the **external switch** — forwards packets port-to-port along the
//!   deterministic route, one [`SerialResource`] lane per egress port;
//! * the **internal switch** — delivers packets addressed to this node to
//!   the registered logical endpoint consumers;
//! * **token flow control** — each egress port holds
//!   [`NetParams::credits_per_lane`] credits; transmission consumes one,
//!   and the downstream router returns it when the packet leaves its
//!   buffer. At zero credits the egress queue backs up instead of
//!   dropping — the paper's guarantee that "packets will not drop if the
//!   data rate is higher than what the network can manage".
//!
//! The router is generic over the packet body type `B` and speaks the
//! typed [`NetMsg<B>`] protocol — see [`crate::msg`].

use std::collections::VecDeque;

use bluedbm_sim::fxhash::FxHashMap;
use std::sync::Arc;

use bluedbm_sim::engine::{Batch, Component, ComponentId, Ctx, Simulator};
use bluedbm_sim::pool::PoolRef;
use bluedbm_sim::resource::SerialResource;
use bluedbm_sim::stats::Histogram;
use bluedbm_sim::time::SimTime;

use crate::msg::{NetMsg, NetProtocol};
use crate::packet::{NetParams, Packet};
use crate::routing::RoutingTable;
use crate::topology::{NodeId, PortId, Topology};

/// Ask the local router to send `body` to `(dst, endpoint)`.
///
/// Senders address this to their node's [`Router`]; the router stamps the
/// per-flow sequence number and routes it.
#[derive(Clone, Debug)]
pub struct NetSend<B> {
    /// Destination node.
    pub dst: NodeId,
    /// Logical endpoint (virtual channel).
    pub endpoint: u16,
    /// Wire size of the payload.
    pub payload_bytes: u32,
    /// Message object delivered at the far end.
    pub body: B,
}

impl<B> NetSend<B> {
    /// Convenience constructor.
    pub fn new(dst: NodeId, endpoint: u16, payload_bytes: u32, body: B) -> Self {
        NetSend {
            dst,
            endpoint,
            payload_bytes,
            body,
        }
    }
}

/// A packet delivered to an endpoint consumer.
#[derive(Clone, Debug)]
pub struct NetRecv<B> {
    /// Originating node.
    pub src: NodeId,
    /// Endpoint it arrived on.
    pub endpoint: u16,
    /// Per-(src, endpoint) sequence number — strictly increasing at the
    /// consumer thanks to deterministic routing.
    pub seq: u64,
    /// Wire size of the payload.
    pub payload_bytes: u32,
    /// End-to-end network latency (send accepted -> tail delivered).
    pub latency: SimTime,
    /// The message object.
    pub body: B,
}

/// Router-to-router transfer (head arrival of a packet). Public only
/// because it rides the [`NetMsg`] enum (as an interned [`WireRef`]) and
/// crosses shard boundaries; nothing outside the router constructs one.
#[derive(Clone, Debug)]
pub struct Wire<B> {
    packet: Packet<B>,
    /// Time between head and tail at this position (serialization time of
    /// the slowest traversed lane — uniform lanes make this the common
    /// packet time).
    tail_lag: SimTime,
    sent_at: SimTime,
    /// Upstream (router, its egress port) owed a credit, if any.
    via: Option<(ComponentId, PortId)>,
    /// The sending endpoint asked for an end-to-end acknowledgement.
    wants_ack: bool,
}

impl<B> Wire<B> {
    /// The functional body riding this packet. Exposed for cross-shard
    /// payload relocation: the sharded runtime takes a wire out of one
    /// shard's pool, relocates any store-backed payloads inside the
    /// body, and re-interns it at the destination shard.
    pub fn body_mut(&mut self) -> &mut B {
        &mut self.packet.body
    }
}

/// Handle to a [`Wire`] interned in the simulator-owned control-block
/// pool ([`bluedbm_sim::PoolStore`]). The wire record is interned once
/// at injection, the 8-byte handle moves hop to hop, and the delivering
/// router takes the record back out — steady-state packet traffic
/// allocates nothing (the old `Box<Wire>` cost one heap allocation per
/// packet).
pub type WireRef<B> = PoolRef<Wire<B>>;

/// Token returned by the downstream router when a packet leaves its
/// buffer. Public only because it rides the [`NetMsg`] enum.
#[derive(Clone, Debug)]
pub struct CreditReturn {
    port: PortId,
}

/// End-to-end acknowledgement: the destination endpoint consumed one
/// packet of this flow. Modelled as a minimal control packet travelling
/// back over the same number of hops. Public only because it rides the
/// [`NetMsg`] enum.
#[derive(Clone, Debug)]
pub struct E2eAck {
    endpoint: u16,
    dst: NodeId,
}

#[derive(Clone)]
struct Egress<B> {
    peer: ComponentId,
    credits: u32,
    lane: SerialResource,
    queue: VecDeque<WireRef<B>>,
}

/// Cumulative router statistics. `PartialEq` so the cross-engine
/// determinism suite can assert sharded and sequential runs observe the
/// exact same router behaviour.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Packets injected by local senders.
    pub injected: u64,
    /// Packets forwarded toward another node.
    pub forwarded: u64,
    /// Packets delivered to local endpoints.
    pub delivered: u64,
    /// Payload bytes delivered to local endpoints.
    pub delivered_bytes: u64,
    /// Transmissions that had to wait for a credit.
    pub credit_stalls: u64,
    /// End-to-end latency of packets delivered here.
    pub latency: Histogram,
    /// Per-flow FIFO violations observed at delivery (must stay 0).
    pub order_violations: u64,
}

/// Counter deltas accumulated across one dispatch train and applied to
/// [`RouterStats`] once per train (instead of once per message) — the
/// batched dispatcher's hoist of the router's hot-path bookkeeping.
/// Distribution samples (the latency histogram) still record per packet;
/// only the additive counters batch.
#[derive(Default)]
struct TrainCounters {
    injected: u64,
    forwarded: u64,
    delivered: u64,
    delivered_bytes: u64,
    credit_stalls: u64,
}

impl RouterStats {
    fn apply(&mut self, tc: TrainCounters) {
        self.injected += tc.injected;
        self.forwarded += tc.forwarded;
        self.delivered += tc.delivered;
        self.delivered_bytes += tc.delivered_bytes;
        self.credit_stalls += tc.credit_stalls;
    }

    /// Write the counters and latency percentiles into a metrics
    /// subtree (for the unified `bluedbm_trace::MetricsRegistry`).
    pub fn fill_metrics(&self, node: &mut bluedbm_trace::MetricsNode) {
        node.set("injected", self.injected);
        node.set("forwarded", self.forwarded);
        node.set("delivered", self.delivered);
        node.set("delivered_bytes", self.delivered_bytes);
        node.set("credit_stalls", self.credit_stalls);
        node.set("order_violations", self.order_violations);
        node.histogram("latency", &self.latency.summary());
    }
}

/// The per-node network component, generic over the packet body type.
/// Build a full network with [`build_network`].
///
/// `Clone` is the router's speculation snapshot (see
/// [`bluedbm_sim::engine::Component::snapshot`]): routing tables and the
/// peer list are shared `Arc`s, so a clone copies only the per-node
/// queues, sequence maps and statistics.
#[derive(Clone)]
pub struct Router<B> {
    node: NodeId,
    params: NetParams,
    routing: Arc<RoutingTable>,
    ports: Vec<Option<Egress<B>>>,
    endpoints: FxHashMap<u16, ComponentId>,
    next_seq: FxHashMap<(u16, NodeId), u64>,
    expect_seq: FxHashMap<(u16, NodeId), u64>,
    /// All routers in the network, indexed by node (for end-to-end
    /// flow-control acknowledgements).
    peers: Arc<Vec<ComponentId>>,
    /// Optional end-to-end credit budget per endpoint (paper
    /// Section 3.2.3: an endpoint "can be configured to only send data
    /// when there is space on the destination endpoint").
    e2e_credits: FxHashMap<u16, u32>,
    /// Outstanding unacknowledged packets per (endpoint, destination).
    e2e_outstanding: FxHashMap<(u16, NodeId), u32>,
    /// Sends waiting for an end-to-end credit.
    e2e_waiting: FxHashMap<(u16, NodeId), VecDeque<NetSend<B>>>,
    stats: RouterStats,
}

impl<B: Clone + Send + 'static> Router<B> {
    /// Register the consumer component for a logical endpoint. Packets
    /// arriving for `endpoint` are delivered to it as [`NetRecv`]s.
    pub fn register_endpoint(&mut self, endpoint: u16, consumer: ComponentId) {
        self.endpoints.insert(endpoint, consumer);
    }

    /// Enable end-to-end flow control for `endpoint` on this (sending)
    /// router: at most `credits` packets per destination may be
    /// unacknowledged. The paper leaves this per-endpoint choice to the
    /// developer — safety for receivers that may stall, at the cost of
    /// latency and flow-control traffic (Section 3.2.3).
    ///
    /// # Panics
    ///
    /// Panics if `credits == 0`.
    pub fn set_e2e_credits(&mut self, endpoint: u16, credits: u32) {
        assert!(credits > 0, "end-to-end flow control needs at least one credit");
        self.e2e_credits.insert(endpoint, credits);
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Number of wire flows this router has opened as a sender (distinct
    /// `(endpoint, destination)` pairs it has stamped sequence numbers
    /// for). Loopback sends never open a flow; exposed for diagnostics
    /// and the regression tests guarding that.
    pub fn send_flows(&self) -> usize {
        self.next_seq.len()
    }

    /// This router's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn transmit<M>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        port: PortId,
        wire: WireRef<B>,
        tc: &mut TrainCounters,
    ) where
        M: NetProtocol<Body = B>,
    {
        let egress = self.ports[port.0 as usize]
            .as_mut()
            .expect("route points at a cabled port");
        if egress.credits == 0 {
            tc.credit_stalls += 1;
            egress.queue.push_back(wire);
            return;
        }
        egress.credits -= 1;
        let (payload_bytes, via) = {
            let w = ctx.pools().get(wire);
            (w.packet.payload_bytes, w.via)
        };
        let ptime = self.params.packet_time(payload_bytes);
        let grant = egress.lane.acquire(ctx.now(), ptime);
        let peer = egress.peer;
        // Pay the upstream credit back when the tail leaves this router.
        if let Some((up, up_port)) = via {
            ctx.send(
                up,
                grant.end + self.params.hop_latency - ctx.now(),
                NetMsg::Credit(CreditReturn { port: up_port }),
            );
        }
        let me = ctx.self_id();
        // Re-stamp the hop fields in place: the record interned at
        // injection rides the whole path.
        let w = ctx.pools().get_mut(wire);
        w.tail_lag = ptime;
        w.via = Some((me, port));
        let delay = grant.start + self.params.hop_latency - ctx.now();
        ctx.send(peer, delay, NetMsg::Wire(wire));
    }

    fn route_or_deliver<M>(&mut self, ctx: &mut Ctx<'_, M>, wire: WireRef<B>, tc: &mut TrainCounters)
    where
        M: NetProtocol<Body = B>,
    {
        let (dst, endpoint, forwarding) = {
            let w = ctx.pools().get(wire);
            (w.packet.dst, w.packet.endpoint, w.via.is_some())
        };
        if dst == self.node {
            let wire = ctx.pools().take(wire);
            self.deliver(ctx, wire, tc);
            return;
        }
        let port = self
            .routing
            .next_port(self.node, dst, endpoint)
            .unwrap_or_else(|| panic!("no route from {} to {}", self.node, dst));
        if forwarding {
            tc.forwarded += 1;
        }
        self.transmit(ctx, port, wire, tc);
    }

    /// Terminal hop: the packet's journey ends here, so the caller takes
    /// the wire record back out of the pool.
    fn deliver<M>(&mut self, ctx: &mut Ctx<'_, M>, wire: Wire<B>, tc: &mut TrainCounters)
    where
        M: NetProtocol<Body = B>,
    {
        let tail_at = wire.tail_lag; // relative to now (head arrival)
        if let Some((up, up_port)) = wire.via {
            // Buffer slot frees once the tail has fully arrived.
            ctx.send(
                up,
                tail_at + self.params.hop_latency,
                NetMsg::Credit(CreditReturn { port: up_port }),
            );
        }
        let pkt = wire.packet;
        let key = (pkt.endpoint, pkt.src);
        let expect = self.expect_seq.entry(key).or_insert(0);
        if pkt.seq != *expect {
            self.stats.order_violations += 1;
        }
        *expect = pkt.seq + 1;

        let latency = ctx.now() + tail_at - wire.sent_at;
        tc.delivered += 1;
        tc.delivered_bytes += u64::from(pkt.payload_bytes);
        self.stats.latency.record(latency);

        if wire.wants_ack {
            // The flow-control packet travels back over the same number
            // of hops (modelled as a direct delayed message so control
            // traffic does not recursively consume credits).
            let hops = self
                .routing
                .hops(self.node, pkt.src)
                .expect("source is reachable: the packet just arrived");
            let ack_delay = tail_at
                + self.params.hop_latency * u64::from(hops)
                + self.params.packet_time(8);
            ctx.send(
                self.peers[pkt.src.index()],
                ack_delay,
                NetMsg::Ack(E2eAck {
                    endpoint: pkt.endpoint,
                    dst: self.node,
                }),
            );
        }
        if let Some(&consumer) = self.endpoints.get(&pkt.endpoint) {
            ctx.send(
                consumer,
                tail_at,
                NetMsg::Recv(NetRecv {
                    src: pkt.src,
                    endpoint: pkt.endpoint,
                    seq: pkt.seq,
                    payload_bytes: pkt.payload_bytes,
                    latency,
                    body: pkt.body,
                }),
            );
        }
    }

    /// Stamp and route one accepted send (past the end-to-end gate).
    fn inject<M>(&mut self, ctx: &mut Ctx<'_, M>, send: NetSend<B>, tc: &mut TrainCounters)
    where
        M: NetProtocol<Body = B>,
    {
        if send.dst == self.node {
            // Loopback through the internal switch: no wire time, and no
            // flow state — loopback is not part of any wire flow, so it
            // must not grow a `next_seq` counter it never uses.
            if let Some(&consumer) = self.endpoints.get(&send.endpoint) {
                ctx.send(
                    consumer,
                    SimTime::ZERO,
                    NetMsg::Recv(NetRecv {
                        src: self.node,
                        endpoint: send.endpoint,
                        seq: 0,
                        payload_bytes: send.payload_bytes,
                        latency: SimTime::ZERO,
                        body: send.body,
                    }),
                );
            }
            return;
        }
        let seq_key = (send.endpoint, send.dst);
        let seq = self.next_seq.entry(seq_key).or_insert(0);
        let packet = Packet {
            src: self.node,
            dst: send.dst,
            endpoint: send.endpoint,
            payload_bytes: send.payload_bytes,
            seq: *seq,
            body: send.body,
        };
        *seq += 1;
        let wants_ack = self.e2e_credits.contains_key(&packet.endpoint);
        // Interned once for the packet's whole life: the pool slot is
        // recycled when `deliver` takes it, so steady-state injection
        // allocates nothing (the old `Box` was one allocation per
        // packet).
        let sent_at = ctx.now();
        let wire = ctx.pools().intern(Wire {
            packet,
            tail_lag: SimTime::ZERO,
            sent_at,
            via: None,
            wants_ack,
        });
        self.route_or_deliver(ctx, wire, tc);
    }
}

impl<B: Clone + Send + 'static> Router<B> {
    /// Per-message logic shared by [`Component::handle`] and the batch
    /// hook. Additive statistics go through `tc`, which the dispatch
    /// entry points flush once per train.
    fn handle_net<M>(&mut self, ctx: &mut Ctx<'_, M>, msg: NetMsg<B>, tc: &mut TrainCounters)
    where
        M: NetProtocol<Body = B>,
    {
        match msg {
            NetMsg::Send(send) => {
                tc.injected += 1;
                if send.dst != self.node {
                    if let Some(&cap) = self.e2e_credits.get(&send.endpoint) {
                        let key = (send.endpoint, send.dst);
                        let outstanding = self.e2e_outstanding.entry(key).or_insert(0);
                        if *outstanding >= cap {
                            self.e2e_waiting.entry(key).or_default().push_back(send);
                            return;
                        }
                        *outstanding += 1;
                    }
                }
                self.inject(ctx, send, tc);
            }
            NetMsg::Ack(ack) => {
                let key = (ack.endpoint, ack.dst);
                let outstanding = self
                    .e2e_outstanding
                    .get_mut(&key)
                    .expect("ack for a flow this router opened");
                *outstanding -= 1;
                if let Some(next) = self
                    .e2e_waiting
                    .get_mut(&key)
                    .and_then(VecDeque::pop_front)
                {
                    *self.e2e_outstanding.get_mut(&key).expect("present") += 1;
                    self.inject(ctx, next, tc);
                }
            }
            NetMsg::Wire(wire) => self.route_or_deliver(ctx, wire, tc),
            NetMsg::Credit(credit) => {
                let egress = self.ports[credit.port.0 as usize]
                    .as_mut()
                    .expect("credit for a cabled port");
                egress.credits += 1;
                if let Some(wire) = egress.queue.pop_front() {
                    self.transmit(ctx, credit.port, wire, tc);
                }
            }
            other => panic!("router got an unexpected message: {}", other.kind()),
        }
    }
}

impl<M: NetProtocol> Component<M> for Router<M::Body> {
    bluedbm_sim::clone_snapshot!();

    fn handle(&mut self, ctx: &mut Ctx<'_, M>, msg: M) {
        let mut tc = TrainCounters::default();
        self.handle_net(ctx, msg.into_net(), &mut tc);
        self.stats.apply(tc);
    }

    /// Batched dispatch with the per-train hoist: bursts of same-instant
    /// injections and the credit/wire trains of a saturated lane drain in
    /// one borrow, and the additive statistics (injected / forwarded /
    /// delivered / bytes / stalls) hit the stats struct once per train
    /// instead of once per message.
    fn handle_batch(&mut self, ctx: &mut Ctx<'_, M>, batch: &mut Batch<M>) {
        let mut tc = TrainCounters::default();
        while let Some(msg) = batch.next(ctx) {
            self.handle_net(ctx, msg.into_net(), &mut tc);
        }
        self.stats.apply(tc);
    }
}

/// Instantiate one [`Router`] per node of `topo`, fully wired, and return
/// their component ids indexed by node.
///
/// # Examples
///
/// ```rust
/// use bluedbm_net::msg::NetMsg;
/// use bluedbm_net::packet::NetParams;
/// use bluedbm_net::router::build_network;
/// use bluedbm_net::topology::Topology;
/// use bluedbm_sim::engine::Simulator;
///
/// let mut sim = Simulator::<NetMsg<()>>::new();
/// let topo = Topology::ring(4, 1);
/// let routers = build_network(&mut sim, &topo, NetParams::paper());
/// assert_eq!(routers.len(), 4);
/// ```
pub fn build_network<M: NetProtocol>(
    sim: &mut Simulator<M>,
    topo: &Topology,
    params: NetParams,
) -> Vec<ComponentId> {
    let routing = Arc::new(RoutingTable::compute(topo));
    let ids: Vec<ComponentId> = (0..topo.node_count()).map(|_| sim.reserve()).collect();
    let peers = Arc::new(ids.clone());
    for n in 0..topo.node_count() {
        let node = NodeId::from(n);
        let ports = (0..Topology::MAX_PORTS)
            .map(|p| {
                topo.peer(node, PortId(p as u8)).map(|(m, _)| Egress {
                    peer: ids[m.index()],
                    credits: params.credits_per_lane,
                    lane: SerialResource::new(),
                    queue: VecDeque::new(),
                })
            })
            .collect();
        sim.install::<Router<M::Body>>(
            ids[n],
            Router {
                node,
                params,
                routing: Arc::clone(&routing),
                ports,
                endpoints: FxHashMap::default(),
                next_seq: FxHashMap::default(),
                expect_seq: FxHashMap::default(),
                peers: Arc::clone(&peers),
                e2e_credits: FxHashMap::default(),
                e2e_outstanding: FxHashMap::default(),
                e2e_waiting: FxHashMap::default(),
                stats: RouterStats::default(),
            },
        );
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestMsg = NetMsg<()>;

    /// Endpoint consumer that records arrivals.
    struct Sink {
        got: Vec<(NodeId, u64, SimTime)>,
        bytes: u64,
    }

    impl Sink {
        fn new() -> Self {
            Sink {
                got: vec![],
                bytes: 0,
            }
        }
    }

    impl Component<TestMsg> for Sink {
        fn handle(&mut self, _ctx: &mut Ctx<'_, TestMsg>, msg: TestMsg) {
            let NetMsg::Recv(r) = msg else {
                panic!("NetRecv expected")
            };
            self.got.push((r.src, r.seq, r.latency));
            self.bytes += u64::from(r.payload_bytes);
        }
    }

    fn sink_on(
        sim: &mut Simulator<TestMsg>,
        routers: &[ComponentId],
        node: usize,
        ep: u16,
    ) -> ComponentId {
        let sink = sim.add_component(Sink::new());
        sim.component_mut::<Router<()>>(routers[node])
            .unwrap()
            .register_endpoint(ep, sink);
        sink
    }

    #[test]
    fn single_hop_latency_matches_paper() {
        let mut sim = Simulator::new();
        let topo = Topology::line(2, 1);
        let routers = build_network(&mut sim, &topo, NetParams::paper());
        let sink = sink_on(&mut sim, &routers, 1, 0);
        sim.schedule(
            SimTime::ZERO,
            routers[0],
            NetSend::new(NodeId(1), 0, 16, ()),
        );
        sim.run();
        let s = sim.component::<Sink>(sink).unwrap();
        assert_eq!(s.got.len(), 1);
        let lat = s.got[0].2;
        // 0.48us hop + 24B serialization (~23ns at 8.2Gbps).
        assert!(lat >= SimTime::ns(480), "{lat}");
        assert!(lat < SimTime::ns(520), "{lat}");
    }

    #[test]
    fn latency_scales_linearly_with_hops() {
        let mut sim = Simulator::new();
        let topo = Topology::line(6, 1);
        let routers = build_network(&mut sim, &topo, NetParams::paper());
        let mut sinks = vec![];
        for hops in 1..=5usize {
            sinks.push(sink_on(&mut sim, &routers, hops, 7));
        }
        for hops in 1..=5usize {
            sim.schedule(
                SimTime::ZERO,
                routers[0],
                NetSend::new(NodeId::from(hops), 7, 16, ()),
            );
        }
        sim.run();
        let mut latencies = vec![];
        for (i, sink) in sinks.iter().enumerate() {
            let s = sim.component::<Sink>(*sink).unwrap();
            assert_eq!(s.got.len(), 1, "sink {i}");
            latencies.push(s.got[0].2);
        }
        for (i, lat) in latencies.iter().enumerate() {
            let hops = (i + 1) as u64;
            let per_hop = SimTime::ps(lat.as_ps() / hops);
            assert!(
                per_hop >= SimTime::ns(480) && per_hop < SimTime::ns(540),
                "hop {hops}: per-hop {per_hop}"
            );
        }
    }

    #[test]
    fn sustained_stream_approaches_goodput() {
        // Saturate one lane with back-to-back 8 KiB packets for 2 ms.
        let mut sim = Simulator::new();
        let topo = Topology::line(2, 1);
        let params = NetParams::paper();
        let routers = build_network(&mut sim, &topo, params);
        let sink = sink_on(&mut sim, &routers, 1, 0);
        const N: u32 = 250;
        for _ in 0..N {
            sim.schedule(
                SimTime::ZERO,
                routers[0],
                NetSend::new(NodeId(1), 0, 8192, ()),
            );
        }
        sim.run();
        let s = sim.component::<Sink>(sink).unwrap();
        assert_eq!(s.got.len(), N as usize);
        let gbps = s.bytes as f64 * 8.0 / sim.now().as_secs_f64() / 1e9;
        assert!(gbps > 7.9 && gbps <= 8.2, "goodput {gbps} Gbps");
    }

    #[test]
    fn per_flow_fifo_order_holds_across_mesh() {
        let mut sim = Simulator::new();
        let topo = Topology::mesh2d(3, 3);
        let routers = build_network(&mut sim, &topo, NetParams::paper());
        let sink = sink_on(&mut sim, &routers, 8, 2);
        // Interleave with traffic on other endpoints to shake the network.
        for e in 0..4u16 {
            sink_on(&mut sim, &routers, 8, 4 + e);
            for _ in 0..20 {
                sim.schedule(
                    SimTime::ZERO,
                    routers[0],
                    NetSend::new(NodeId(8), 4 + e, 4096, ()),
                );
            }
        }
        for _ in 0..50 {
            sim.schedule(
                SimTime::ZERO,
                routers[0],
                NetSend::new(NodeId(8), 2, 1024, ()),
            );
        }
        sim.run();
        let s = sim.component::<Sink>(sink).unwrap();
        let seqs: Vec<u64> = s.got.iter().map(|&(_, q, _)| q).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>(), "FIFO per endpoint");
        for r in &routers {
            assert_eq!(
                sim.component::<Router<()>>(*r).unwrap().stats().order_violations,
                0
            );
        }
    }

    #[test]
    fn credits_throttle_but_never_drop() {
        let mut sim = Simulator::new();
        let topo = Topology::line(3, 1);
        let params = NetParams {
            credits_per_lane: 1, // brutal: one packet in flight per lane
            ..NetParams::paper()
        };
        let routers = build_network(&mut sim, &topo, params);
        let sink = sink_on(&mut sim, &routers, 2, 0);
        const N: usize = 40;
        for _ in 0..N {
            sim.schedule(
                SimTime::ZERO,
                routers[0],
                NetSend::new(NodeId(2), 0, 8192, ()),
            );
        }
        sim.run();
        let s = sim.component::<Sink>(sink).unwrap();
        assert_eq!(s.got.len(), N, "no packet may be dropped");
        let r0 = sim.component::<Router<()>>(routers[0]).unwrap();
        assert!(r0.stats().credit_stalls > 0, "starved credits must stall");
    }

    #[test]
    fn credit_starvation_reduces_throughput() {
        let run = |credits: u32| -> f64 {
            let mut sim = Simulator::new();
            let topo = Topology::line(2, 1);
            let params = NetParams {
                credits_per_lane: credits,
                ..NetParams::paper()
            };
            let routers = build_network(&mut sim, &topo, params);
            let sink = sink_on(&mut sim, &routers, 1, 0);
            for _ in 0..100 {
                sim.schedule(
                    SimTime::ZERO,
                    routers[0],
                    NetSend::new(NodeId(1), 0, 512, ()),
                );
            }
            sim.run();
            let s = sim.component::<Sink>(sink).unwrap();
            s.bytes as f64 / sim.now().as_secs_f64()
        };
        // With one credit per 512B packet and a 0.48us hop, the
        // round-trip credit loop dominates; ample credits restore rate.
        assert!(run(16) > 1.5 * run(1));
    }

    #[test]
    fn loopback_is_immediate() {
        let mut sim = Simulator::new();
        let topo = Topology::line(2, 1);
        let routers = build_network(&mut sim, &topo, NetParams::paper());
        let sink = sink_on(&mut sim, &routers, 0, 0);
        sim.schedule(
            SimTime::ZERO,
            routers[0],
            NetSend::new(NodeId(0), 0, 8192, ()),
        );
        sim.run();
        let s = sim.component::<Sink>(sink).unwrap();
        assert_eq!(s.got.len(), 1);
        assert_eq!(s.got[0].2, SimTime::ZERO);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn loopback_burst_allocates_no_flow_state() {
        // A burst of loopback sends must not grow per-flow sequence
        // counters (the old inject stamped `(endpoint, self)` flow state
        // and then discarded the stamp), and a wire flow to the same
        // endpoint opened afterwards must still start at seq 0.
        let mut sim = Simulator::new();
        let topo = Topology::line(2, 1);
        let routers = build_network(&mut sim, &topo, NetParams::paper());
        let local = sink_on(&mut sim, &routers, 0, 5);
        let remote = sink_on(&mut sim, &routers, 1, 5);
        for _ in 0..10 {
            sim.schedule(
                SimTime::ZERO,
                routers[0],
                NetSend::new(NodeId(0), 5, 256, ()),
            );
        }
        sim.run();
        let r0 = sim.component::<Router<()>>(routers[0]).unwrap();
        assert_eq!(r0.send_flows(), 0, "loopback must not open a wire flow");
        let s = sim.component::<Sink>(local).unwrap();
        assert_eq!(s.got.len(), 10);
        assert!(s.got.iter().all(|&(_, seq, _)| seq == 0));

        sim.schedule(
            SimTime::ZERO,
            routers[0],
            NetSend::new(NodeId(1), 5, 256, ()),
        );
        sim.run();
        let s = sim.component::<Sink>(remote).unwrap();
        assert_eq!(s.got.len(), 1);
        assert_eq!(s.got[0].1, 0, "first wire packet of the flow is seq 0");
        let r0 = sim.component::<Router<()>>(routers[0]).unwrap();
        assert_eq!(r0.send_flows(), 1, "exactly the one remote flow");
        let r1 = sim.component::<Router<()>>(routers[1]).unwrap();
        assert_eq!(r1.stats().order_violations, 0);
    }

    #[test]
    fn parallel_lanes_double_aggregate_bandwidth() {
        let run = |lanes: usize| -> f64 {
            let mut sim = Simulator::new();
            let topo = Topology::line(2, lanes);
            let routers = build_network(&mut sim, &topo, NetParams::paper());
            // Two endpoints: deterministic routing spreads them.
            let s0 = sink_on(&mut sim, &routers, 1, 0);
            let s1 = sink_on(&mut sim, &routers, 1, 1);
            for _ in 0..120 {
                for e in 0..2u16 {
                    sim.schedule(
                        SimTime::ZERO,
                        routers[0],
                        NetSend::new(NodeId(1), e, 8192, ()),
                    );
                }
            }
            sim.run();
            let bytes = sim.component::<Sink>(s0).unwrap().bytes
                + sim.component::<Sink>(s1).unwrap().bytes;
            bytes as f64 / sim.now().as_secs_f64()
        };
        let one = run(1);
        let two = run(2);
        assert!(two > 1.8 * one, "1 lane {one:.3e} vs 2 lanes {two:.3e}");
    }

    #[test]
    fn e2e_flow_control_throttles_but_loses_nothing() {
        let run = |e2e: Option<u32>| -> (usize, SimTime) {
            let mut sim = Simulator::new();
            let topo = Topology::line(3, 1);
            let routers = build_network(&mut sim, &topo, NetParams::paper());
            let sink = sink_on(&mut sim, &routers, 2, 0);
            if let Some(credits) = e2e {
                sim.component_mut::<Router<()>>(routers[0])
                    .unwrap()
                    .set_e2e_credits(0, credits);
            }
            // Small packets: the e2e round trip dominates serialization,
            // making the latency cost of the safe mode visible.
            const N: usize = 30;
            for _ in 0..N {
                sim.schedule(
                    SimTime::ZERO,
                    routers[0],
                    NetSend::new(NodeId(2), 0, 512, ()),
                );
            }
            sim.run();
            let s = sim.component::<Sink>(sink).unwrap();
            (s.got.len(), sim.now())
        };
        let (n_off, t_off) = run(None);
        let (n_one, t_one) = run(Some(1));
        let (n_deep, t_deep) = run(Some(64));
        // Safety: nothing is dropped in any configuration.
        assert_eq!(n_off, 30);
        assert_eq!(n_one, 30);
        assert_eq!(n_deep, 30);
        // One credit serializes a full round trip per packet: much slower.
        assert!(
            t_one > t_off * 2,
            "e2e(1) {t_one} should be much slower than off {t_off}"
        );
        // Ample e2e credits cost only the ack traffic, not the rate.
        assert!(
            t_deep < t_off + (t_off / 2),
            "e2e(64) {t_deep} vs off {t_off}"
        );
    }

    #[test]
    fn e2e_ordering_preserved_under_throttling() {
        let mut sim = Simulator::new();
        let topo = Topology::line(2, 1);
        let routers = build_network(&mut sim, &topo, NetParams::paper());
        let sink = sink_on(&mut sim, &routers, 1, 3);
        sim.component_mut::<Router<()>>(routers[0])
            .unwrap()
            .set_e2e_credits(3, 2);
        for _ in 0..20 {
            sim.schedule(
                SimTime::ZERO,
                routers[0],
                NetSend::new(NodeId(1), 3, 2048, ()),
            );
        }
        sim.run();
        let s = sim.component::<Sink>(sink).unwrap();
        let seqs: Vec<u64> = s.got.iter().map(|&(_, q, _)| q).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
        let r1 = sim.component::<Router<()>>(routers[1]).unwrap();
        assert_eq!(r1.stats().order_violations, 0);
    }

    #[test]
    #[should_panic(expected = "at least one credit")]
    fn e2e_zero_credits_rejected() {
        let mut sim = Simulator::<TestMsg>::new();
        let topo = Topology::line(2, 1);
        let routers = build_network(&mut sim, &topo, NetParams::paper());
        sim.component_mut::<Router<()>>(routers[0])
            .unwrap()
            .set_e2e_credits(0, 0);
    }

    #[test]
    fn delivered_latency_histogram_populates() {
        let mut sim = Simulator::new();
        let topo = Topology::ring(4, 1);
        let routers = build_network(&mut sim, &topo, NetParams::paper());
        let _sink = sink_on(&mut sim, &routers, 2, 0);
        for _ in 0..10 {
            sim.schedule(
                SimTime::ZERO,
                routers[0],
                NetSend::new(NodeId(2), 0, 128, ()),
            );
        }
        sim.run();
        let r2 = sim.component::<Router<()>>(routers[2]).unwrap();
        assert_eq!(r2.stats().delivered, 10);
        assert!(r2.stats().latency.mean() >= SimTime::ns(900), "2 hops");
    }
}
