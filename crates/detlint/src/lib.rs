//! `bluedbm_detlint` — the workspace determinism-and-hot-path lint
//! pass.
//!
//! # Why this exists
//!
//! The whole value of this BlueDBM reproduction rests on one contract:
//! the sequential and sharded engines produce **bit-identical**
//! observable digests, which is what lets every speedup row in
//! `BENCH_engine.json` be trusted. That contract is enforced
//! dynamically by the conformance suites (`tests/kv_conformance.rs`,
//! `tests/sharded.rs`) — but a dynamic suite only catches a
//! nondeterminism source once it changes an observable on the inputs
//! the suite happens to drive. detlint rejects the *sources*
//! mechanically, before they reach the event stream:
//!
//! * `std::collections::HashMap`/`HashSet` seed `RandomState`
//!   per-process, so their iteration order varies across runs;
//! * wall-clock reads and host-entropy probes make behavior depend on
//!   the machine, not the seed;
//! * iterating any hash container while emitting events turns
//!   insertion order into event order — a silent cross-engine
//!   divergence under the sharded engine;
//! * float-derived `SimTime` construction makes simulated time depend
//!   on rounding.
//!
//! Because the workspace is offline (vendored `shims/` only — no `syn`
//! or dylint), the pass is self-contained: a small Rust lexer
//! ([`lexer`]), a brace-depth context tracker ([`context`]), and a
//! token-pattern rule set ([`rules`]).
//!
//! # Suppression
//!
//! A finding is suppressed by a line comment naming the rule it
//! silences, with a justification after it:
//!
//! ```text
//! // detlint::allow(no-std-hasher): independent std oracle on purpose
//! use std::collections::HashMap;
//!
//! let m = HashMap::new(); // detlint::allow(no-std-hasher): ditto
//! ```
//!
//! A standalone allow covers the next line with code; a trailing allow
//! covers its own line. Either form covers every finding of that rule
//! on the covered line. An allow that suppresses nothing is itself a
//! finding (`stale-allow`) — suppressions must not rot. To deliberately
//! keep one (e.g. in a fixture), stack `detlint::allow(stale-allow)`
//! on the line above it: that is the one rule whose allow targets the
//! next non-blank line even when that line is a comment.
//!
//! # What gets scanned
//!
//! Every `.rs` file under the workspace root except `target/`
//! (build output), `shims/` (vendored stand-ins for external crates —
//! not our code), `.git/`, and detlint's own `tests/fixtures/`
//! (deliberate violations driving the integration tests).
//!
//! # Adding a rule
//!
//! 1. Add a `RuleInfo` entry to [`rules::RULES`] — the id is the name
//!    `detlint::allow(…)` must use, so pick it once and keep it.
//! 2. Write the pass in [`rules`] as a `fn(tokens, &mut Vec<RawFinding>)`
//!    over the comment-stripped token stream, and call it from
//!    [`rules::run_rules`]. Use [`context`] if the rule is scoped to
//!    handler bodies; keep the match conservative — a missed site costs
//!    a review comment, a false positive costs an `allow` in clean code.
//! 3. Add one positive and one suppressed fixture under
//!    `tests/fixtures/` and extend the exact-finding-set assertions in
//!    `tests/fixtures.rs`. The stale-allow engine picks the new rule up
//!    automatically (any allow naming it that stops matching will be
//!    reported).
//! 4. If the tree has pre-existing findings, fix or justify them in the
//!    same change — `tests/lint_clean.rs` pins the tree clean.

pub mod context;
pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{Token, TokenKind};
use rules::{run_rules, RawFinding};

/// One reported (post-suppression) finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (see [`rules::RULES`]).
    pub rule: &'static str,
    /// Human message.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// The result of linting a tree.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// One parsed `detlint::allow(rule)` directive.
#[derive(Clone, Debug)]
struct Allow {
    /// Line the comment sits on.
    line: u32,
    /// The rule name inside the parentheses (may be unknown).
    rule: String,
    /// The line whose findings this allow suppresses (0 = nothing —
    /// e.g. an allow on the last line of the file).
    target: u32,
}

/// Extract `detlint::allow(…)` directives from a line comment's text.
fn parse_allow(text: &str) -> Option<String> {
    let at = text.find("detlint::allow(")?;
    let rest = &text[at + "detlint::allow(".len()..];
    let end = rest.find(')')?;
    Some(rest[..end].trim().to_string())
}

/// Lint one file's source text. `path_label` should be the
/// workspace-relative path with `/` separators (it is matched by the
/// `no-wallclock` allowlist and echoed into findings).
pub fn lint_source(path_label: &str, src: &str) -> Vec<Finding> {
    let tokens = lexer::lex(src);
    let code: Vec<Token> = tokens
        .iter()
        .filter(|t| !t.kind.is_comment())
        .cloned()
        .collect();

    // Lines that hold at least one code token (for allow targeting).
    let code_lines: BTreeSet<u32> = code.iter().map(|t| t.line).collect();
    // Non-blank source lines (targets for allow(stale-allow)).
    let nonblank: BTreeSet<u32> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, _)| i as u32 + 1)
        .collect();

    let mut allows: Vec<Allow> = tokens
        .iter()
        .filter_map(|t| match &t.kind {
            // Doc comments (`///` → text starts with `/`, `//!` → `!`)
            // are prose: mentioning the allow syntax in one must not
            // create a directive.
            TokenKind::LineComment(text)
                if !text.starts_with('/') && !text.starts_with('!') =>
            {
                parse_allow(text).map(|rule| Allow { line: t.line, rule, target: 0 })
            }
            _ => None,
        })
        .collect();
    for allow in &mut allows {
        let trailing = code_lines.contains(&allow.line);
        allow.target = if trailing {
            allow.line
        } else if allow.rule == "stale-allow" {
            // stale-allow findings sit on comment lines, so its allow
            // must be able to target one.
            nonblank.range(allow.line + 1..).next().copied().unwrap_or(0)
        } else {
            code_lines.range(allow.line + 1..).next().copied().unwrap_or(0)
        };
    }

    let raw: Vec<RawFinding> = run_rules(path_label, &code);

    // Apply suppressions; remember which allows earned their keep.
    let mut used = vec![false; allows.len()];
    let mut findings: Vec<Finding> = Vec::new();
    for f in &raw {
        let mut suppressed = false;
        for (ai, allow) in allows.iter().enumerate() {
            if allow.rule == f.rule && allow.target == f.line && allow.target != 0 {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            findings.push(Finding {
                file: path_label.to_string(),
                line: f.line,
                rule: f.rule,
                message: f.message.clone(),
            });
        }
    }

    // Stale allows: directives that matched nothing. Unknown rule names
    // are stale by definition (they can never match).
    let mut stale: Vec<Finding> = Vec::new();
    for (ai, allow) in allows.iter().enumerate() {
        if used[ai] || allow.rule == "stale-allow" {
            continue;
        }
        let message = if rules::is_rule(&allow.rule) {
            format!(
                "detlint::allow({}) suppresses nothing — the rule no longer fires on \
                 line {}; delete the allow",
                allow.rule, allow.target
            )
        } else {
            format!(
                "detlint::allow({}) names an unknown rule (see --list-rules); \
                 delete or fix the allow",
                allow.rule
            )
        };
        stale.push(Finding {
            file: path_label.to_string(),
            line: allow.line,
            rule: "stale-allow",
            message,
        });
    }
    // allow(stale-allow) suppresses stale findings; one that suppresses
    // nothing is itself stale (one level — no recursion).
    for (ai, allow) in allows.iter().enumerate() {
        if allow.rule != "stale-allow" {
            continue;
        }
        let before = stale.len();
        stale.retain(|f| f.line != allow.target || allow.target == 0);
        used[ai] = stale.len() != before;
        if !used[ai] {
            stale.push(Finding {
                file: path_label.to_string(),
                line: allow.line,
                rule: "stale-allow",
                message: "detlint::allow(stale-allow) suppresses nothing; delete the allow"
                    .to_string(),
            });
        }
    }
    findings.extend(stale);
    findings.sort();
    findings
}

/// Directories never scanned, by name, anywhere in the tree.
const SKIP_DIRS: [&str; 3] = ["target", "shims", ".git"];

fn should_skip_dir(path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return true;
    };
    if SKIP_DIRS.contains(&name) {
        return true;
    }
    // detlint's own fixtures are deliberate violations.
    name == "fixtures" && path.to_string_lossy().contains("detlint")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if !should_skip_dir(&path) {
                collect_rs_files(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `root` (see module docs for exclusions).
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut report = Report { findings: Vec::new(), files_scanned: files.len() };
    for path in files {
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        report.findings.extend(lint_source(&label, &src));
    }
    report.findings.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src = "use std::collections::HashMap; // detlint::allow(no-std-hasher): oracle\n";
        assert!(lint_source("t.rs", src).is_empty());
    }

    #[test]
    fn standalone_allow_suppresses_next_code_line() {
        let src = "// detlint::allow(no-std-hasher): oracle\n\
                   // (more prose in between is fine)\n\
                   use std::collections::HashMap;\n";
        assert!(lint_source("t.rs", src).is_empty());
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "// detlint::allow(no-wallclock): wrong rule\n\
                   use std::collections::HashMap;\n";
        let found = lint_source("t.rs", src);
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        // The stale allow (line 1) sorts before the surviving real
        // finding (line 2) — both must be reported.
        assert_eq!(rules, vec!["stale-allow", "no-std-hasher"]);
    }

    #[test]
    fn stale_allow_reported_and_suppressible() {
        let stale = "// detlint::allow(no-std-hasher): nothing here uses one\n\
                     fn clean() {}\n";
        let found = lint_source("t.rs", stale);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "stale-allow");
        assert_eq!(found[0].line, 1);

        let kept = "// detlint::allow(stale-allow): fixture keeps the stale allow below\n\
                    // detlint::allow(no-std-hasher): deliberately stale\n\
                    fn clean() {}\n";
        assert!(lint_source("t.rs", kept).is_empty(), "{:?}", lint_source("t.rs", kept));
    }

    #[test]
    fn unknown_rule_name_is_stale() {
        let src = "// detlint::allow(no-such-rule)\nfn f() {}\n";
        let found = lint_source("t.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "stale-allow");
        assert!(found[0].message.contains("unknown rule"));
    }

    #[test]
    fn one_allow_covers_all_findings_of_its_rule_on_the_line() {
        let src = "// detlint::allow(no-std-hasher): both types, one line, one allow\n\
                   use std::collections::{HashMap, HashSet};\n";
        assert!(lint_source("t.rs", src).is_empty());
    }

    #[test]
    fn doc_comment_mentioning_allow_is_inert() {
        let src = "/// Suppress with `// detlint::allow(no-std-hasher)` like so.\n\
                   //! Or `detlint::allow(no-wallclock)` in module docs.\n\
                   fn f() {}\n";
        assert!(lint_source("t.rs", src).is_empty(), "{:?}", lint_source("t.rs", src));
    }

    #[test]
    fn allow_inside_string_is_inert() {
        let src = "const S: &str = \"// detlint::allow(no-std-hasher)\";\n\
                   use std::collections::HashMap;\n";
        let found = lint_source("t.rs", src);
        assert_eq!(found.len(), 1, "allow text inside a string is not a directive");
        assert_eq!(found[0].rule, "no-std-hasher");
    }

    #[test]
    fn findings_display_format() {
        let src = "use std::collections::HashMap;\n";
        let found = lint_source("crates/x/src/lib.rs", src);
        let line = found[0].to_string();
        assert!(
            line.starts_with("crates/x/src/lib.rs:1: no-std-hasher: "),
            "{line}"
        );
    }
}
