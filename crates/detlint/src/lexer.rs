//! A minimal Rust lexer — just enough fidelity that the rule passes
//! never mistake the inside of a string, comment, or char literal for
//! code.
//!
//! The workspace is offline (no `syn`/`proc-macro2`/dylint), so detlint
//! carries its own tokenizer. It handles the constructs that defeat
//! naive regex linting:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), including doc blocks;
//! * plain, byte, and **raw** strings (`"…"`, `b"…"`, `r"…"`,
//!   `r#"…"#` with any hash depth, `br#"…"#`), which may contain `//`
//!   or `/*` without opening a comment;
//! * char literals vs lifetimes (`'a'` vs `'a`), escaped chars
//!   (`'\''`, `'\u{1F600}'`), and byte chars (`b'\n'`);
//! * numeric literals with enough shape (`0x1E`, `1e12`, `2.5`,
//!   `3f64`) for the float-vs-integer distinction rule R4 needs.
//!
//! Tokens carry the 1-based line they start on; comments are kept as
//! tokens because the suppression syntax (`// detlint::allow(rule)`)
//! lives in them.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokenKind,
}

/// Token classification — only as fine-grained as the rules require.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime(String),
    /// Numeric literal, verbatim text (`0x1E`, `1e12`, `2.5`).
    Num(String),
    /// String literal of any flavor (plain/byte/raw). Contents dropped.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`). Contents dropped.
    CharLit,
    /// Any single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// `// …` comment, text after the slashes preserved (allow syntax).
    LineComment(String),
    /// `/* … */` comment (possibly nested); contents preserved.
    BlockComment(String),
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` for comment tokens.
    pub fn is_comment(&self) -> bool {
        matches!(self, TokenKind::LineComment(_) | TokenKind::BlockComment(_))
    }
}

/// `true` if a numeric literal's text denotes a float (`2.5`, `1e12`,
/// `3f64`) rather than an integer (`7`, `0x1E`, `10u64`).
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0X") {
        return false;
    }
    text.contains('.')
        || text.contains(['e', 'E'])
        || text.ends_with("f32")
        || text.ends_with("f64")
}

/// Tokenize `src`. Unterminated constructs (string/comment running off
/// the end of the file) close at EOF rather than erroring — a linter
/// should keep going.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn push(&mut self, line: u32, kind: TokenKind) {
        self.out.push(Token { line, kind });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_whitespace() => self.i += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.quote(),
                _ if c.is_ascii_digit() => self.number(),
                _ if c.is_alphabetic() || c == '_' => self.word(),
                _ => {
                    self.push(self.line, TokenKind::Punct(c));
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        self.i += 2;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.i += 1;
        }
        self.push(start_line, TokenKind::LineComment(text));
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        self.i += 2;
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.i += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.i += 2;
                }
                (Some(c), _) => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    text.push(c);
                    self.i += 1;
                }
                (None, _) => break,
            }
        }
        self.push(start_line, TokenKind::BlockComment(text));
    }

    /// Plain or byte string body, starting at the opening `"`.
    fn string(&mut self) {
        let start_line = self.line;
        self.i += 1;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.i += 2,
                '"' => {
                    self.i += 1;
                    break;
                }
                _ => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.i += 1;
                }
            }
        }
        self.push(start_line, TokenKind::Str);
    }

    /// Raw string starting at the `#`s or `"` after an `r`/`br` prefix.
    fn raw_string(&mut self) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.i += 1;
        }
        if self.peek(0) != Some('"') {
            // `r#foo` raw identifier, not a string: emit the hashes as
            // punctuation and let the caller's ident stand.
            for _ in 0..hashes {
                self.push(self.line, TokenKind::Punct('#'));
            }
            return;
        }
        self.i += 1;
        'scan: while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
            }
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        self.i += 1;
                        continue 'scan;
                    }
                }
                self.i += 1 + hashes;
                self.push(start_line, TokenKind::Str);
                return;
            }
            self.i += 1;
        }
        self.push(start_line, TokenKind::Str);
    }

    /// `'` — char literal, byte-char continuation, or lifetime.
    fn quote(&mut self) {
        let start_line = self.line;
        if self.peek(1) == Some('\\') {
            // Escaped char literal: scan to the closing quote.
            self.i += 2;
            while let Some(c) = self.peek(0) {
                match c {
                    '\\' => self.i += 2,
                    '\'' => {
                        self.i += 1;
                        break;
                    }
                    _ => self.i += 1,
                }
            }
            self.push(start_line, TokenKind::CharLit);
            return;
        }
        if self.peek(2) == Some('\'') && self.peek(1) != Some('\'') {
            self.i += 3;
            self.push(start_line, TokenKind::CharLit);
            return;
        }
        if self
            .peek(1)
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            // Lifetime.
            self.i += 1;
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.i += 1;
                } else {
                    break;
                }
            }
            self.push(start_line, TokenKind::Lifetime(name));
            return;
        }
        self.push(start_line, TokenKind::Punct('\''));
        self.i += 1;
    }

    fn number(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        self.alnum_run(&mut text);
        // Fraction: a dot followed by a digit (so `0..n` stays a range).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.i += 1;
            self.alnum_run(&mut text);
        }
        // Signed exponent: `1e+12` / `2.5E-3`.
        if text.ends_with(['e', 'E'])
            && !text.starts_with("0x")
            && !text.starts_with("0X")
            && self.peek(0).is_some_and(|c| c == '+' || c == '-')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            text.push(self.peek(0).expect("sign peeked"));
            self.i += 1;
            self.alnum_run(&mut text);
        }
        self.push(start_line, TokenKind::Num(text));
    }

    fn alnum_run(&mut self, text: &mut String) {
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn word(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        self.alnum_run(&mut text);
        // String-literal prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
        // `b'x'`.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "rb", Some('"' | '#')) => {
                self.raw_string();
                // If raw_string bailed (raw identifier), keep the ident.
                if matches!(self.out.last().map(|t| &t.kind), Some(TokenKind::Str)) {
                    return;
                }
            }
            ("b", Some('"')) => {
                self.string();
                return;
            }
            ("b", Some('\'')) => {
                self.quote();
                // Reclassify a lifetime-looking `b'x` — cannot happen:
                // `b'` is always a byte char in practice; quote() only
                // returns Lifetime for `'ident` with no closing quote,
                // which we accept as-is.
                return;
            }
            _ => {}
        }
        self.push(start_line, TokenKind::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn raw_string_containing_line_comment_is_one_string() {
        let toks = kinds(r####"let s = r#"not // a comment"#; done"####);
        assert!(toks.contains(&TokenKind::Str));
        assert!(
            !toks.iter().any(|t| t.is_comment()),
            "// inside a raw string must not open a comment: {toks:?}"
        );
        assert_eq!(idents(r####"let s = r#"not // a comment"#; done"####), ["let", "s", "done"]);
    }

    #[test]
    fn raw_string_hash_depths() {
        // Depth 0, 1, and 2, the last containing a depth-1 terminator.
        assert_eq!(idents(r#"a r"x" b"#), ["a", "b"]);
        assert_eq!(idents(r##"a r#" "quoted" "# b"##), ["a", "b"]);
        assert_eq!(idents(r###"a r##"ends "# not yet"## b"###), ["a", "b"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("before /* outer /* inner */ still outer */ after");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("before".into()),
                TokenKind::BlockComment(" outer /* inner */ still outer ".into()),
                TokenKind::Ident("after".into()),
            ]
        );
    }

    #[test]
    fn block_comment_tracks_lines() {
        let toks = lex("/* a\n b\n c */ after");
        assert_eq!(toks[1].line, 3, "token after a multi-line comment");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'a'; let e = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t, TokenKind::Lifetime(_)))
            .collect();
        let chars = toks
            .iter()
            .filter(|t| matches!(t, TokenKind::CharLit))
            .count();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars, 2, "{toks:?}");
    }

    #[test]
    fn unicode_escape_char_literal() {
        let toks = kinds("let c = '\\u{1F600}'; after");
        assert!(toks.contains(&TokenKind::CharLit));
        assert!(toks.contains(&TokenKind::Ident("after".into())));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let a = b"bytes // here"; let c = b'\n'; done"#);
        assert!(
            !toks.iter().any(|t| t.is_comment()),
            "// inside a byte string must not open a comment"
        );
        assert_eq!(toks.iter().filter(|t| **t == TokenKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|t| **t == TokenKind::CharLit).count(), 1);
        let toks = kinds(r##"let a = br#"raw bytes /* x "#; done"##);
        assert!(!toks.iter().any(|t| t.is_comment()));
        assert!(toks.contains(&TokenKind::Ident("done".into())));
    }

    #[test]
    fn doc_comments_are_comments() {
        let toks = kinds("/// outer docs\n//! inner docs\n/** block docs */ code");
        assert_eq!(toks.iter().filter(|t| t.is_comment()).count(), 3);
        assert!(toks.contains(&TokenKind::Ident("code".into())));
    }

    #[test]
    fn escaped_quote_in_string() {
        let toks = kinds(r#"let s = "not \" /* yet"; after"#);
        assert!(!toks.iter().any(|t| t.is_comment()));
        assert!(toks.contains(&TokenKind::Ident("after".into())));
    }

    #[test]
    fn number_shapes() {
        let nums: Vec<String> = lex("7 0x1E 1e12 2.5 10u64 3f64 0..9 1e+3")
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Num(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["7", "0x1E", "1e12", "2.5", "10u64", "3f64", "0", "9", "1e+3"]);
        assert!(!is_float_literal("7"));
        assert!(!is_float_literal("0x1E"), "hex E is not an exponent");
        assert!(!is_float_literal("10u64"));
        assert!(is_float_literal("1e12"));
        assert!(is_float_literal("2.5"));
        assert!(is_float_literal("3f64"));
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn double_colon_is_two_puncts() {
        let toks = kinds("std::mem");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("std".into()),
                TokenKind::Punct(':'),
                TokenKind::Punct(':'),
                TokenKind::Ident("mem".into()),
            ]
        );
    }
}
