//! CLI for the workspace determinism lint pass.
//!
//! ```text
//! bluedbm_detlint [--rule <id>]... [--list-rules] [ROOT]
//! ```
//!
//! With no `ROOT`, lints the workspace containing the current
//! directory (found by walking up to a `Cargo.toml` declaring
//! `[workspace]`). Prints `file:line: rule: message` per finding and
//! exits 1 if any are unsuppressed, 0 otherwise, 2 on usage/I-O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bluedbm_detlint::rules::{is_rule, RULES};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage() {
    eprintln!(
        "usage: bluedbm_detlint [--rule <id>]... [--list-rules] [ROOT]\n\
         \n\
         Lints every .rs file under ROOT (default: enclosing cargo\n\
         workspace) for determinism hazards. Exits 1 on findings.\n\
         --rule <id>   only run the named rule (repeatable)\n\
         --list-rules  print the rule table and exit"
    );
}

fn main() -> ExitCode {
    let mut rule_filter: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for r in RULES {
                    println!("{:<24} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--rule" => {
                let Some(id) = args.next() else {
                    eprintln!("error: --rule needs an argument");
                    usage();
                    return ExitCode::from(2);
                };
                if !is_rule(&id) {
                    eprintln!("error: unknown rule `{id}` (see --list-rules)");
                    return ExitCode::from(2);
                }
                rule_filter.push(id);
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("error: unknown flag `{arg}`");
                usage();
                return ExitCode::from(2);
            }
            _ => {
                if root.replace(PathBuf::from(&arg)).is_some() {
                    eprintln!("error: more than one ROOT given");
                    usage();
                    return ExitCode::from(2);
                }
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("error: no ROOT given and no enclosing cargo workspace found");
            return ExitCode::from(2);
        }
    };
    if !root.is_dir() {
        eprintln!("error: {} is not a directory", root.display());
        return ExitCode::from(2);
    }

    let mut report = match bluedbm_detlint::lint_tree(Path::new(&root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if !rule_filter.is_empty() {
        report
            .findings
            .retain(|f| rule_filter.iter().any(|r| r == f.rule));
    }
    for f in &report.findings {
        println!("{f}");
    }
    if report.findings.is_empty() {
        eprintln!("detlint: {} files clean", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "detlint: {} finding(s) in {} files scanned",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
