//! The determinism + hot-path rule set.
//!
//! Every rule is a pure function from a file's code tokens (comments
//! already stripped) to raw findings; suppression (`detlint::allow`)
//! and stale-allow detection happen in the engine ([`crate::lint_source`]),
//! so rules here report *every* site they match.
//!
//! | id | what it rejects |
//! |----|-----------------|
//! | `no-std-hasher` | `std::collections::{HashMap,HashSet}` imports and constructions — use `bluedbm_sim::fxhash` |
//! | `no-wallclock` | `Instant::now` / `SystemTime` / `thread_rng` / `available_parallelism` (allowlisted: the `ExecMode::Auto` probe in `crates/sim/src/shard.rs`) |
//! | `map-iteration-order-leak` | iterating a hash container inside a `Component::handle`/`handle_batch` body that also sends |
//! | `float-sim-time` | constructing a `SimTime` from `f32`/`f64` arithmetic |
//! | `stale-allow` | a `detlint::allow` that suppresses nothing (emitted by the engine, not here) |

use crate::context::{handle_bodies, hash_container_names};
use crate::lexer::{is_float_literal, Token, TokenKind};

/// A rule's identity and one-line summary (for `--list-rules` and docs).
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable kebab-case id — the name `detlint::allow(…)` must use.
    pub id: &'static str,
    /// One-line human summary.
    pub summary: &'static str,
}

/// The rule registry, in report order.
pub const RULES: [RuleInfo; 5] = [
    RuleInfo {
        id: "no-std-hasher",
        summary: "std::collections::{HashMap,HashSet} (RandomState: nondeterministic \
                  iteration order) — use bluedbm_sim::fxhash",
    },
    RuleInfo {
        id: "no-wallclock",
        summary: "wall-clock / host-entropy source (Instant::now, SystemTime, thread_rng, \
                  available_parallelism) outside the allowlisted ExecMode::Auto probe",
    },
    RuleInfo {
        id: "map-iteration-order-leak",
        summary: "hash-container iteration inside a Component handle body that also sends \
                  — iteration order would leak into the event stream",
    },
    RuleInfo {
        id: "float-sim-time",
        summary: "SimTime constructed from f32/f64 arithmetic — float rounding must not \
                  feed simulated time",
    },
    RuleInfo {
        id: "stale-allow",
        summary: "a detlint::allow(…) whose rule no longer fires on its target line",
    },
];

/// `true` if `id` names a registered rule.
pub fn is_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One raw (pre-suppression) finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-based source line.
    pub line: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human message (no file/line prefix — the printer adds it).
    pub message: String,
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(|t| t.kind.ident())
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some(Token { kind: TokenKind::Punct(p), .. }) if *p == c)
}

fn path_sep(tokens: &[Token], i: usize) -> bool {
    punct_at(tokens, i, ':') && punct_at(tokens, i + 1, ':')
}

/// Run every non-engine rule over one file's code tokens.
/// `path_label` is the workspace-relative path with `/` separators
/// (used by the `no-wallclock` allowlist).
pub fn run_rules(path_label: &str, tokens: &[Token]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    no_std_hasher(tokens, &mut out);
    no_wallclock(path_label, tokens, &mut out);
    map_iteration_order_leak(tokens, &mut out);
    float_sim_time(tokens, &mut out);
    // One finding per (rule, line): a qualified-path construction would
    // otherwise report twice, and suppression is line-scoped anyway.
    out.sort();
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

/// R1: `std::collections::{HashMap,HashSet}` imports/paths, and bare
/// `HashMap::new()`-style constructions (which can only be the std
/// types — `FxHashMap` is constructed via `default()` and is a
/// distinct identifier).
fn no_std_hasher(tokens: &[Token], out: &mut Vec<RawFinding>) {
    let flagged = ["HashMap", "HashSet"];
    for i in 0..tokens.len() {
        // `std :: collections ::` then either the type or a `{…}` group.
        if ident_at(tokens, i) == Some("std")
            && path_sep(tokens, i + 1)
            && ident_at(tokens, i + 3) == Some("collections")
            && path_sep(tokens, i + 4)
        {
            let after = i + 6;
            if let Some(name) = ident_at(tokens, after) {
                if flagged.contains(&name) {
                    out.push(std_hasher_finding(tokens[after].line, name));
                }
            } else if punct_at(tokens, after, '{') {
                let mut j = after + 1;
                while j < tokens.len() && !punct_at(tokens, j, '}') {
                    if let Some(name) = ident_at(tokens, j) {
                        if flagged.contains(&name) {
                            out.push(std_hasher_finding(tokens[j].line, name));
                        }
                    }
                    j += 1;
                }
            }
        }
        // Bare `HashMap::new` / `HashSet::with_capacity` / `::from`,
        // including a turbofish (`HashMap::<K, V>::new`).
        if let Some(name) = ident_at(tokens, i) {
            if flagged.contains(&name) && path_sep(tokens, i + 1) {
                let mut j = i + 3;
                if punct_at(tokens, j, '<') {
                    let mut depth = 0i32;
                    while j < tokens.len() {
                        match tokens[j].kind {
                            TokenKind::Punct('<') => depth += 1,
                            TokenKind::Punct('>') => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if !path_sep(tokens, j) {
                        continue;
                    }
                    j += 2;
                }
                if matches!(ident_at(tokens, j), Some("new" | "with_capacity" | "from")) {
                    out.push(std_hasher_finding(tokens[i].line, name));
                }
            }
        }
    }
}

fn std_hasher_finding(line: u32, name: &str) -> RawFinding {
    RawFinding {
        line,
        rule: "no-std-hasher",
        message: format!(
            "std::collections::{name} uses RandomState (per-process seed, \
             nondeterministic iteration order); use bluedbm_sim::fxhash::Fx{name}"
        ),
    }
}

/// Sites where `no-wallclock` idents are part of the engine's own
/// contract and deliberately permitted without a per-site allow:
/// the `ExecMode::Auto` oversubscription probe and the worker-core
/// pinning module's core-count probe. Each entry is
/// (path suffix, identifier).
const WALLCLOCK_ALLOWLIST: [(&str, &str); 2] = [
    ("crates/sim/src/shard.rs", "available_parallelism"),
    ("crates/sim/src/affinity.rs", "available_parallelism"),
];

/// R2: wall-clock and host-entropy reads.
fn no_wallclock(path_label: &str, tokens: &[Token], out: &mut Vec<RawFinding>) {
    for i in 0..tokens.len() {
        let Some(name) = ident_at(tokens, i) else {
            continue;
        };
        let hit = match name {
            "Instant" => {
                path_sep(tokens, i + 1) && ident_at(tokens, i + 3) == Some("now")
            }
            "SystemTime" | "thread_rng" | "available_parallelism" => true,
            _ => false,
        };
        if !hit {
            continue;
        }
        if WALLCLOCK_ALLOWLIST
            .iter()
            .any(|(suffix, ident)| *ident == name && path_label.ends_with(suffix))
        {
            continue;
        }
        out.push(RawFinding {
            line: tokens[i].line,
            rule: "no-wallclock",
            message: format!(
                "`{name}` reads host state (wall clock / entropy / core count); \
                 simulated behavior must derive only from seeds and SimTime"
            ),
        });
    }
}

/// Methods whose call order follows the container's iteration order.
const ITERATING_METHODS: [&str; 8] = [
    "iter", "iter_mut", "keys", "values", "values_mut", "drain", "retain", "into_iter",
];

/// R3: hash-container iteration inside a `handle`/`handle_batch` body
/// that also sends. The iteration order of a hash container — even the
/// deterministic `Fx` ones, whose order is insertion-dependent — must
/// never decide the order of `send`s, or engines that insert in a
/// different order silently diverge.
fn map_iteration_order_leak(tokens: &[Token], out: &mut Vec<RawFinding>) {
    let containers = hash_container_names(tokens);
    if containers.is_empty() {
        return;
    }
    for (start, end) in handle_bodies(tokens) {
        let body = &tokens[start..end];
        let sends = (0..body.len()).any(|i| {
            matches!(ident_at(body, i), Some("send" | "send_at" | "send_self"))
                && punct_at(body, i + 1, '(')
        });
        if !sends {
            continue;
        }
        for i in 0..body.len() {
            let Some(name) = ident_at(body, i) else {
                continue;
            };
            if !containers.contains(name) {
                continue;
            }
            // `container.iter()` / `.keys()` / …
            if punct_at(body, i + 1, '.') {
                if let Some(method) = ident_at(body, i + 2) {
                    if ITERATING_METHODS.contains(&method) && punct_at(body, i + 3, '(') {
                        out.push(iteration_finding(body[i].line, name, method));
                        continue;
                    }
                }
            }
            // `for x in &container {` / `for x in container {`
            if punct_at(body, i + 1, '{') && preceded_by_for_in(body, i) {
                out.push(iteration_finding(body[i].line, name, "for-in"));
            }
        }
    }
}

/// `true` if the tokens immediately before `body[i]` are a `for … in`
/// iterating over it (allowing `&`, `mut`, `self`, `.` between).
fn preceded_by_for_in(body: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &body[j].kind {
            TokenKind::Punct('&' | '.') => continue,
            TokenKind::Ident(s) if s == "mut" || s == "self" => continue,
            TokenKind::Ident(s) if s == "in" => return true,
            _ => return false,
        }
    }
    false
}

fn iteration_finding(line: u32, name: &str, how: &str) -> RawFinding {
    RawFinding {
        line,
        rule: "map-iteration-order-leak",
        message: format!(
            "hash-container `{name}` iterated ({how}) inside a Component handle body \
             that also sends; iteration order would leak into the event stream — \
             iterate a sorted/indexed view instead"
        ),
    }
}

/// R4: `SimTime::<ctor>(…)` whose argument expression contains `f32`/
/// `f64` casts or float literals. The reporting direction (SimTime →
/// f64 for stats) stays legal; only float-derived *construction* of
/// simulated time is rejected.
fn float_sim_time(tokens: &[Token], out: &mut Vec<RawFinding>) {
    for i in 0..tokens.len() {
        if ident_at(tokens, i) != Some("SimTime") || !path_sep(tokens, i + 1) {
            continue;
        }
        let Some(_ctor) = ident_at(tokens, i + 3) else {
            continue;
        };
        if !punct_at(tokens, i + 4, '(') {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 4;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(s) if s == "f32" || s == "f64" => {
                    out.push(RawFinding {
                        line: tokens[i].line,
                        rule: "float-sim-time",
                        message: "SimTime constructed from f32/f64 arithmetic; derive \
                                  simulated time from integer math (float rounding is a \
                                  portability hazard on the determinism contract)"
                            .to_string(),
                    });
                    break;
                }
                TokenKind::Num(text) if is_float_literal(text) => {
                    out.push(RawFinding {
                        line: tokens[i].line,
                        rule: "float-sim-time",
                        message: "SimTime constructed from a float literal; derive \
                                  simulated time from integer math"
                            .to_string(),
                    });
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code_tokens(src: &str) -> Vec<Token> {
        lex(src).into_iter().filter(|t| !t.kind.is_comment()).collect()
    }

    fn hits(src: &str) -> Vec<(&'static str, u32)> {
        run_rules("test.rs", &code_tokens(src))
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn std_hasher_import_group_and_construction() {
        let src = "use std::collections::{HashMap, VecDeque};\n\
                   use std::collections::HashSet;\n\
                   fn f() { let m = HashMap::<u32, u32>::new(); let s = HashSet::with_capacity(4); }";
        // The two constructions on line 3 collapse to one finding:
        // reporting is one-per-(rule, line), matching allow scoping.
        assert_eq!(
            hits(src),
            vec![
                ("no-std-hasher", 1),
                ("no-std-hasher", 2),
                ("no-std-hasher", 3),
            ]
        );
    }

    #[test]
    fn fx_types_and_strings_are_clean() {
        let src = "use bluedbm_sim::fxhash::{FxHashMap, FxHashSet};\n\
                   fn f() { let m: FxHashMap<u32, u32> = FxHashMap::default(); }\n\
                   const DOC: &str = \"std::collections::HashMap::new()\";";
        assert!(hits(src).is_empty(), "{:?}", hits(src));
    }

    #[test]
    fn qualified_construction_reports_once_per_line() {
        let src = "fn f() { let m = std::collections::HashMap::new(); }";
        assert_eq!(hits(src), vec![("no-std-hasher", 1)]);
    }

    #[test]
    fn wallclock_idents() {
        let src = "fn f() -> bool {\n\
                   let t = std::time::Instant::now();\n\
                   let s = SystemTime::now();\n\
                   let r = thread_rng();\n\
                   std::thread::available_parallelism().is_ok()\n\
                   }";
        assert_eq!(
            hits(src),
            vec![
                ("no-wallclock", 2),
                ("no-wallclock", 3),
                ("no-wallclock", 4),
                ("no-wallclock", 5),
            ]
        );
    }

    #[test]
    fn wallclock_allowlist_is_path_scoped() {
        let src = "fn f() { let _ = std::thread::available_parallelism(); }";
        let toks = code_tokens(src);
        assert!(run_rules("crates/sim/src/shard.rs", &toks).is_empty());
        assert_eq!(run_rules("crates/net/src/router.rs", &toks).len(), 1);
    }

    #[test]
    fn iteration_leak_needs_send_and_iteration() {
        let with_send = "struct S { peers: FxHashMap<u32, u64> }\n\
             impl Component<M> for S {\n\
             fn handle(&mut self, ctx: &mut Ctx<'_, M>, m: M) {\n\
             for (p, c) in self.peers.iter() {\n\
             ctx.send(p, DELAY, M::C(c));\n\
             } } }";
        assert_eq!(hits(with_send), vec![("map-iteration-order-leak", 4)]);

        let no_send = with_send.replace("ctx.send(p, DELAY, M::C(c));", "let _ = (p, c);");
        assert!(hits(&no_send).is_empty(), "iteration without send is fine");

        let vec_iter = "struct S { order: Vec<u32> }\n\
             impl Component<M> for S {\n\
             fn handle(&mut self, ctx: &mut Ctx<'_, M>, m: M) {\n\
             for p in self.order.iter() { ctx.send(*p, DELAY, m); } } }";
        assert!(hits(vec_iter).is_empty(), "Vec iteration is ordered");
    }

    #[test]
    fn for_in_reference_iteration_detected() {
        let src = "struct S { peers: FxHashSet<u32> }\n\
             impl Component<M> for S {\n\
             fn handle_batch(&mut self, ctx: &mut Ctx<'_, M>, b: Batch<'_, M>) {\n\
             for p in &self.peers { ctx.send_at(*p, NOW, M::Tick); } } }";
        assert_eq!(hits(src), vec![("map-iteration-order-leak", 4)]);
    }

    #[test]
    fn float_sim_time_ctor_flagged_reporting_clean() {
        let src = "fn a(bytes: u64, bw: f64) -> SimTime { SimTime::ps((bytes as f64 / bw) as u64) }\n\
                   fn b() -> SimTime { SimTime::us(2) }\n\
                   fn c(t: SimTime) -> f64 { t.as_ns() as f64 / 1e3 }\n\
                   fn d() -> SimTime { SimTime::ns((X * 15) / 10) }";
        assert_eq!(hits(src), vec![("float-sim-time", 1)]);
    }

    #[test]
    fn float_literal_in_ctor_flagged() {
        let src = "fn f() -> SimTime { SimTime::ns((x * 1.5) as u64) }";
        assert_eq!(hits(src), vec![("float-sim-time", 1)]);
    }
}
