//! Line/token context tracking: which tokens sit inside a
//! `Component::handle`/`handle_batch` body, and which identifiers in a
//! file name hash-based containers.
//!
//! Both are brace-depth approximations over the token stream (detlint
//! has no type information), tuned to the workspace's idioms:
//!
//! * A *Component impl* is any `impl … Component … for … { … }` block —
//!   the `Component` and `for` identifiers must both appear in the impl
//!   header (before its opening brace). Inside one, the bodies of
//!   `fn handle(…) { … }` and `fn handle_batch(…) { … }` are recorded
//!   as token ranges.
//! * A *hash container name* is any identifier bound to a
//!   `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet` by type ascription
//!   (`field: FxHashMap<…>`) or by construction assignment
//!   (`x = FxHashMap::default()`), with arbitrary path prefixes.
//!   `Fx` maps are included deliberately: their iteration order is
//!   deterministic per run but *insertion-order dependent*, so it still
//!   must not leak into the event stream (insertion order may differ
//!   across Seq/Sharded engines).

use std::collections::BTreeSet;

use crate::lexer::{Token, TokenKind};

/// Identifiers that name a hash-based container type.
pub const HASH_CONTAINER_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(|t| t.kind.ident())
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some(Token { kind: TokenKind::Punct(p), .. }) if *p == c)
}

/// Index of the `}` matching the `{` at `open` (or the last token if
/// unbalanced — truncated input should not panic a linter).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Token index ranges (open-brace..close-brace, exclusive of both) of
/// every `handle`/`handle_batch` body inside a `Component` impl.
pub fn handle_bodies(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("impl") {
            i += 1;
            continue;
        }
        // The impl header runs to the first `{` (no braces occur in
        // trait/type grammar before the body).
        let Some(open_rel) = tokens[i..]
            .iter()
            .position(|t| t.kind == TokenKind::Punct('{'))
        else {
            break;
        };
        let open = i + open_rel;
        let header = &tokens[i + 1..open];
        let has = |name: &str| header.iter().any(|t| t.kind.ident() == Some(name));
        if !(has("Component") && has("for")) {
            i = open + 1;
            continue;
        }
        let close = matching_brace(tokens, open);
        let mut j = open + 1;
        while j < close {
            if ident_at(tokens, j) == Some("fn")
                && matches!(ident_at(tokens, j + 1), Some("handle" | "handle_batch"))
            {
                if let Some(rel) = tokens[j..close]
                    .iter()
                    .position(|t| t.kind == TokenKind::Punct('{'))
                {
                    let fn_open = j + rel;
                    let fn_close = matching_brace(tokens, fn_open);
                    out.push((fn_open + 1, fn_close));
                    j = fn_close + 1;
                    continue;
                }
            }
            j += 1;
        }
        i = close + 1;
    }
    out
}

/// Skip a `path::to::Type` starting at `i`; returns `(last_segment_ident,
/// index_after_path)` or `None` if `i` is not an identifier.
fn path_head(tokens: &[Token], mut i: usize) -> Option<(String, usize)> {
    let mut last = ident_at(tokens, i)?.to_string();
    i += 1;
    while punct_at(tokens, i, ':') && punct_at(tokens, i + 1, ':') {
        match ident_at(tokens, i + 2) {
            Some(seg) => {
                last = seg.to_string();
                i += 3;
            }
            None => break,
        }
    }
    Some((last, i))
}

/// Every identifier in the file bound to a hash-container type, by
/// ascription or construction (see module docs). File-scoped on
/// purpose: field declarations and handler bodies usually share a file,
/// and a false positive only costs an explicit `detlint::allow`.
pub fn hash_container_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..tokens.len() {
        let Some(name) = ident_at(tokens, i) else {
            continue;
        };
        // `name : Path::To::Type` (single colon — `::` is two tokens).
        if punct_at(tokens, i + 1, ':') && !punct_at(tokens, i + 2, ':') {
            if let Some((head, _)) = path_head(tokens, i + 2) {
                if HASH_CONTAINER_TYPES.contains(&head.as_str()) {
                    names.insert(name.to_string());
                }
            }
        }
        // `name = Path::To::Type::ctor(…)` — any path segment naming a
        // container type counts (the last segment is the constructor).
        if punct_at(tokens, i + 1, '=')
            && !punct_at(tokens, i + 2, '=')
            && !punct_at(tokens, i + 2, '>')
        {
            let mut j = i + 2;
            while let Some(seg) = ident_at(tokens, j) {
                if HASH_CONTAINER_TYPES.contains(&seg) {
                    names.insert(name.to_string());
                }
                if punct_at(tokens, j + 1, ':') && punct_at(tokens, j + 2, ':') {
                    j += 3;
                } else {
                    break;
                }
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_handle_bodies_only_in_component_impls() {
        let src = r#"
            impl Helper {
                fn handle(&mut self) { self.x += 1; }
            }
            impl Component<Msg> for Node {
                fn poke(&mut self) {}
                fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
                    inner();
                }
                fn handle_batch(&mut self, ctx: &mut Ctx<'_, Msg>, batch: Batch<'_, Msg>) {
                    drain();
                }
            }
        "#;
        let tokens = lex(src);
        let bodies = handle_bodies(&tokens);
        assert_eq!(bodies.len(), 2, "inherent-impl handle must not count");
        let texts: Vec<String> = bodies
            .iter()
            .map(|&(a, b)| {
                tokens[a..b]
                    .iter()
                    .filter_map(|t| t.kind.ident())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        assert!(texts[0].contains("inner"));
        assert!(texts[1].contains("drain"));
    }

    #[test]
    fn nested_braces_inside_handle_are_one_body() {
        let src = r#"
            impl Component<M> for X {
                fn handle(&mut self, ctx: &mut Ctx<'_, M>, m: M) {
                    if cond { a(); } else { b(); }
                    m.map(|v| { v + 1 });
                }
            }
            fn after() {}
        "#;
        let tokens = lex(src);
        let bodies = handle_bodies(&tokens);
        assert_eq!(bodies.len(), 1);
        let (a, b) = bodies[0];
        let text: Vec<&str> = tokens[a..b].iter().filter_map(|t| t.kind.ident()).collect();
        assert!(text.contains(&"cond") && text.contains(&"map"));
        assert!(!text.contains(&"after"));
    }

    #[test]
    fn container_names_by_ascription_and_construction() {
        let src = r#"
            struct S {
                pending: bluedbm_sim::fxhash::FxHashMap<u64, u32>,
                order: Vec<u64>,
            }
            fn f() {
                let mut seen: std::collections::HashSet<u8> = Default::default();
                let built = FxHashSet::default();
                let plain = Vec::new();
            }
        "#;
        let names = hash_container_names(&lex(src));
        assert!(names.contains("pending"));
        assert!(names.contains("seen"));
        assert!(names.contains("built"));
        assert!(!names.contains("order"));
        assert!(!names.contains("plain"));
    }

    #[test]
    fn equality_comparison_is_not_a_binding() {
        let names = hash_container_names(&lex("if a == FxHashMap::default() {}"));
        assert!(!names.contains("a"));
    }
}
