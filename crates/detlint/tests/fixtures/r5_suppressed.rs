// detlint fixture (R5 suppressed): a deliberately-stale allow kept via
// a stacked allow(stale-allow) guard on the line above it.

// detlint::allow(stale-allow): kept to document the migration history
// detlint::allow(no-std-hasher): stale on purpose — import migrated
use bluedbm_sim::fxhash::FxHashMap;

fn build() -> FxHashMap<u32, u32> {
    FxHashMap::default()
}
