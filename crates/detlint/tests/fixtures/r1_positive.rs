// detlint fixture (R1 positive): std hash containers flagged.

use std::collections::HashMap;
use std::collections::{BTreeMap, HashSet};

fn build() -> usize {
    let a: HashMap<u32, u32> = HashMap::new();
    let b = std::collections::HashSet::<u8>::with_capacity(4);
    let c: BTreeMap<u32, u32> = BTreeMap::new();
    a.len() + b.len() + c.len()
}
