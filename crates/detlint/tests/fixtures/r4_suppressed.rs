// detlint fixture (R4 suppressed): the same constructions, justified.

fn transfer_time(bytes: u64, gbps: f64) -> SimTime {
    // detlint::allow(float-sim-time): legacy formula, digests pinned
    SimTime::ps((bytes as f64 * 1e12 / gbps).round() as u64)
}

fn jitter() -> SimTime {
    SimTime::ns((BASE as f32 * 1.25) as u64) // detlint::allow(float-sim-time): ditto
}
