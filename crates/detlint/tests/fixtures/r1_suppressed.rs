// detlint fixture (R1 suppressed): every site carries an allow, in
// both the standalone and trailing forms.

// detlint::allow(no-std-hasher): fixture exercises the standalone form
use std::collections::HashMap;
use std::collections::HashSet; // detlint::allow(no-std-hasher): trailing form

fn build() -> usize {
    // detlint::allow(no-std-hasher): construction site
    let a: HashMap<u32, u32> = HashMap::new();
    let b = HashSet::<u8>::new(); // detlint::allow(no-std-hasher): ditto
    a.len() + b.len()
}
