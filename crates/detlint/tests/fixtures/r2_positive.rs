// detlint fixture (R2 positive): wall-clock / host-entropy reads.

fn probe() -> (u128, bool) {
    let t0 = std::time::Instant::now();
    let since = std::time::SystemTime::now();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let _ = since;
    (t0.elapsed().as_nanos(), cores > 1)
}

fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
