// detlint fixture (R2 path allowlist, positive): a bare core-count
// probe. Under an ordinary path label this is a no-wallclock finding;
// linted under the allowlisted `crates/sim/src/affinity.rs` label the
// identical source is clean (the engine's own pinning probe).

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}
