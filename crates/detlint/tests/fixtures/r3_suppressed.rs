// detlint fixture (R3 suppressed): the iterations below are justified
// (pretend the sends are order-independent acks), so each carries an
// allow naming map-iteration-order-leak.

struct Fanout {
    peers: FxHashMap<u32, u64>,
}

impl Component<Msg> for Fanout {
    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        // detlint::allow(map-iteration-order-leak): sends commute here
        for (peer, credit) in self.peers.iter() {
            ctx.send(*peer, FANOUT_DELAY, Msg::Credit(*credit));
        }
    }

    fn handle_batch(&mut self, ctx: &mut Ctx<'_, Msg>, batch: Batch<'_, Msg>) {
        for peer in &self.peers { // detlint::allow(map-iteration-order-leak): ditto
            ctx.send_at(peer.0, batch.now(), Msg::Tick);
        }
    }
}
