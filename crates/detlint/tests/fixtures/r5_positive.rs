// detlint fixture (R5 positive): allows that suppress nothing.

// detlint::allow(no-std-hasher): stale — the import below was migrated
use bluedbm_sim::fxhash::FxHashMap;

fn build() -> FxHashMap<u32, u32> {
    FxHashMap::default() // detlint::allow(no-wallclock): wrong rule for this line
}

// detlint::allow(not-a-rule): unknown rule names are stale by definition
fn noop() {}
