// detlint fixture (R3 positive): hash-container iteration order
// feeding the event stream from a Component handle body.

struct Fanout {
    peers: FxHashMap<u32, u64>,
}

impl Component<Msg> for Fanout {
    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        for (peer, credit) in self.peers.iter() {
            ctx.send(*peer, FANOUT_DELAY, Msg::Credit(*credit));
        }
    }

    fn handle_batch(&mut self, ctx: &mut Ctx<'_, Msg>, batch: Batch<'_, Msg>) {
        for peer in &self.peers {
            ctx.send_at(peer.0, batch.now(), Msg::Tick);
        }
    }
}
