// detlint fixture (R3 negative): TraceSink writes inside a Component
// handler are observation, not arbitration — a handler may iterate a
// hash container to emit trace records (the sink orders the merged
// trace by (time, shard, seq), and FxHashMap iteration is deterministic
// for a fixed key set) as long as no event send rides the iteration.

struct TracedProbe {
    occupancy: FxHashMap<u32, u64>,
}

impl Component<Msg> for TracedProbe {
    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        for (lane, depth) in self.occupancy.iter() {
            ctx.trace().counter(TraceCat::BufPool, "depth", *lane, *depth);
        }
        ctx.trace().span_begin(TraceCat::Dispatch, "probe", 0, 0, 0);
        for lane in self.occupancy.keys() {
            ctx.trace().instant(TraceCat::BufPool, "lane", *lane, 0, 0);
        }
        ctx.trace().span_end(TraceCat::Dispatch, "probe", 0, 0, 0);
    }
}
