// detlint fixture (R4 positive): float-derived SimTime construction.

fn transfer_time(bytes: u64, gbps: f64) -> SimTime {
    SimTime::ps((bytes as f64 * 1e12 / gbps).round() as u64)
}

fn jitter() -> SimTime {
    SimTime::ns((BASE as f32 * 1.25) as u64)
}
