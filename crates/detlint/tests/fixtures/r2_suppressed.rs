// detlint fixture (R2 suppressed): the same reads, each justified.

fn probe() -> (u128, bool) {
    let t0 = std::time::Instant::now(); // detlint::allow(no-wallclock): reporting only
    // detlint::allow(no-wallclock): never feeds SimTime
    let since = std::time::SystemTime::now();
    // detlint::allow(no-wallclock): capacity hint, not behavior
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let _ = since;
    (t0.elapsed().as_nanos(), cores > 1)
}

fn roll() -> u64 {
    let mut rng = thread_rng(); // detlint::allow(no-wallclock): test scaffolding
    rng.next_u64()
}
