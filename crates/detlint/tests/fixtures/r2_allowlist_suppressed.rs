// detlint fixture (R2 path allowlist, suppressed): the same probe
// with a per-site allow. Under an ordinary path label the allow is
// consumed and the file is clean; under the allowlisted
// `crates/sim/src/affinity.rs` label the finding never exists, so the
// very same allow is stale — the path allowlist and per-site allows
// must not be stacked.

fn cores() -> usize {
    // detlint::allow(no-wallclock): capacity probe, not behavior
    std::thread::available_parallelism().map_or(1, |p| p.get())
}
