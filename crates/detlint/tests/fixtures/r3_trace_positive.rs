// detlint fixture (R3, trace-adjacent positive): tracing beside a send
// does not excuse the send — hash-map iteration ordering the event
// stream still fires even when the loop also writes trace records.

struct TracedFanout {
    peers: FxHashMap<u32, u64>,
}

impl Component<Msg> for TracedFanout {
    fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        for (peer, credit) in self.peers.iter() {
            ctx.trace().instant(TraceCat::Dispatch, "fanout", *peer, *credit, 0);
            ctx.send(*peer, FANOUT_DELAY, Msg::Credit(*credit));
        }
    }
}
