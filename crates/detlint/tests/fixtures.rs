//! Exact-finding-set assertions over the fixture corpus: one positive
//! and one fully-suppressed fixture per rule. These pin both the rule
//! matchers and the allow-scoping semantics — a change that shifts any
//! finding by a line or drops a suppression fails here.

use std::path::{Path, PathBuf};

use bluedbm_detlint::{lint_source, lint_tree};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lint one fixture, returning `(line, rule)` pairs sorted.
fn lint_fixture(name: &str) -> Vec<(u32, &'static str)> {
    let path = fixtures_dir().join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    lint_source(&format!("tests/fixtures/{name}"), &src)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn r1_no_std_hasher() {
    assert_eq!(
        lint_fixture("r1_positive.rs"),
        vec![
            (3, "no-std-hasher"),
            (4, "no-std-hasher"),
            (7, "no-std-hasher"),
            (8, "no-std-hasher"),
        ]
    );
    assert_eq!(lint_fixture("r1_suppressed.rs"), vec![]);
}

#[test]
fn r2_no_wallclock() {
    assert_eq!(
        lint_fixture("r2_positive.rs"),
        vec![
            (4, "no-wallclock"),
            (5, "no-wallclock"),
            (6, "no-wallclock"),
            (12, "no-wallclock"),
        ]
    );
    assert_eq!(lint_fixture("r2_suppressed.rs"), vec![]);
}

/// Lint one fixture under an arbitrary path label (the path-suffix
/// allowlists key on the label, not the on-disk location).
fn lint_fixture_as(label: &str, name: &str) -> Vec<(u32, &'static str)> {
    let path = fixtures_dir().join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    lint_source(label, &src)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn r2_wallclock_path_allowlist() {
    // The engine's own probe sites (`ExecMode::Auto`, worker pinning)
    // are allowlisted by path suffix: the identical source fires under
    // an ordinary label and lints clean under the allowlisted one.
    assert_eq!(
        lint_fixture("r2_allowlist_positive.rs"),
        vec![(7, "no-wallclock")]
    );
    assert_eq!(
        lint_fixture_as("crates/sim/src/affinity.rs", "r2_allowlist_positive.rs"),
        vec![]
    );
    // A per-site allow composes the other way: consumed under an
    // ordinary label, *stale* under the allowlisted label (the finding
    // it would suppress never exists there) — so allowlisted paths
    // cannot accumulate rotting allow comments.
    assert_eq!(lint_fixture("r2_allowlist_suppressed.rs"), vec![]);
    assert_eq!(
        lint_fixture_as("crates/sim/src/affinity.rs", "r2_allowlist_suppressed.rs"),
        vec![(9, "stale-allow")]
    );
}

#[test]
fn r3_map_iteration_order_leak() {
    assert_eq!(
        lint_fixture("r3_positive.rs"),
        vec![
            (10, "map-iteration-order-leak"),
            (16, "map-iteration-order-leak"),
        ]
    );
    assert_eq!(lint_fixture("r3_suppressed.rs"), vec![]);
}

#[test]
fn r3_trace_writes_in_handlers_are_not_sends() {
    // The observability layer's whole premise: TraceSink writes inside
    // Component handlers are observation, not arbitration. Iterating a
    // hash container to emit trace records must lint clean — but the
    // moment an event send rides the same loop, R3 still fires.
    assert_eq!(lint_fixture("r3_trace_negative.rs"), vec![]);
    assert_eq!(
        lint_fixture("r3_trace_positive.rs"),
        vec![(11, "map-iteration-order-leak")]
    );
}

#[test]
fn r4_float_sim_time() {
    assert_eq!(
        lint_fixture("r4_positive.rs"),
        vec![(4, "float-sim-time"), (8, "float-sim-time")]
    );
    assert_eq!(lint_fixture("r4_suppressed.rs"), vec![]);
}

#[test]
fn r5_stale_allow() {
    assert_eq!(
        lint_fixture("r5_positive.rs"),
        vec![(3, "stale-allow"), (7, "stale-allow"), (10, "stale-allow")]
    );
    assert_eq!(lint_fixture("r5_suppressed.rs"), vec![]);
}

/// Pointing the tree walk directly at the fixture corpus must surface
/// the injected violations (this is the binary's nonzero-exit path:
/// `main` fails whenever `lint_tree` reports any finding).
#[test]
fn tree_walk_over_fixtures_reports_positives() {
    let report = lint_tree(&fixtures_dir()).expect("walk fixtures");
    assert_eq!(report.files_scanned, 14);
    let positives: Vec<&str> = report
        .findings
        .iter()
        .map(|f| f.file.as_str())
        .collect();
    assert!(!report.findings.is_empty());
    assert!(
        positives.iter().all(|f| f.contains("positive")),
        "suppressed fixtures must stay clean under the tree walk: {positives:?}"
    );
    // Every rule id appears at least once.
    for rule in bluedbm_detlint::rules::RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule.id),
            "no fixture finding for rule {}",
            rule.id
        );
    }
}
