//! The workspace itself must lint clean: `cargo test` gates the same
//! property CI's `detlint` job checks, so a determinism hazard cannot
//! land through either door.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    // crates/detlint -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").is_file(), "bad root {}", root.display());
    let report = bluedbm_detlint::lint_tree(&root).expect("walk workspace");
    assert!(
        report.files_scanned > 20,
        "walk looks truncated: {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean; findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
