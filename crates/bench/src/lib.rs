//! # bluedbm-bench
//!
//! Two kinds of benchmark live here:
//!
//! * **Table/figure binaries** (`src/bin/table1.rs` … `src/bin/fig21.rs`,
//!   `src/bin/ablations.rs`): each regenerates one exhibit of the paper's
//!   evaluation by calling the corresponding driver in
//!   [`bluedbm_workloads::experiments`] and printing the table. Run e.g.
//!   `cargo run -p bluedbm-bench --bin fig13 --release`.
//! * **Criterion microbenchmarks** (`benches/`): wall-clock performance
//!   of the functional cores (ECC, Morris-Pratt, hamming, LSH, FTL,
//!   router) — the simulator's own speed, as opposed to the simulated
//!   device speeds the binaries report.

/// Print a standard experiment banner around a rendered table.
pub fn print_exhibit(title: &str, paper_summary: &str, body: &str) {
    println!("== {title} ==");
    println!("paper: {paper_summary}");
    println!();
    println!("{body}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_prints() {
        super::print_exhibit("Figure 0", "n/a", "body");
    }
}
