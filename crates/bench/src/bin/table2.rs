//! Regenerates Table 2: host Virtex-7 module inventory (software
//! substitute for the FPGA resource-utilization table).

fn main() {
    let t = bluedbm_workloads::experiments::tables::table2();
    bluedbm_bench::print_exhibit(
        "Table 2: host Virtex-7 modules (model inventory substitute)",
        "flash/network/DRAM/host interfaces; 45% LUTs used, room left for accelerators",
        &t.render(),
    );
}
