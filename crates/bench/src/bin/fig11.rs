//! Regenerates Figure 11: integrated network bandwidth/latency vs hops.

fn main() {
    let f = bluedbm_workloads::experiments::fig11::run();
    bluedbm_bench::print_exhibit(
        "Figure 11: BlueDBM integrated network performance",
        "8.2 Gb/s/lane sustained across 1-5 hops; 0.48 us per hop",
        &f.render(),
    );
}
