//! Regenerates Figure 13: storage access bandwidth scenarios.

fn main() {
    let f = bluedbm_workloads::experiments::fig13::run();
    bluedbm_bench::print_exhibit(
        "Figure 13: bandwidth of data access",
        "Host-Local 1.6 (PCIe cap), ISP-Local 2.4, ISP-2Nodes 3.4 (one lane), ISP-3Nodes 6.5 GB/s",
        &f.render(),
    );
}
