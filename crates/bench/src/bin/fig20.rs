//! Regenerates Figure 20: graph traversal across access paths.

fn main() {
    let f = bluedbm_workloads::experiments::fig20::run();
    bluedbm_bench::print_exhibit(
        "Figure 20: graph traversal performance",
        "ISP-F ~3x the generic distributed path; beats 50%-DRAM software comfortably",
        &f.render(),
    );
}
