//! Regenerates Figure 18: off-the-shelf SSD comparison.

fn main() {
    let f = bluedbm_workloads::experiments::fig18::run();
    bluedbm_bench::print_exhibit(
        "Figure 18: nearest neighbor with off-the-shelf SSD",
        "random SSD poor vs throttled BlueDBM; sequential arrangement recovers to parity",
        &f.render(),
    );
}
