//! The SSD cliff: put tail latency and write amplification as overwrite
//! churn crosses device capacity, recorded into the benchmark
//! trajectory.
//!
//! Unlike the wall-clock rows, everything here is *simulated* time and
//! lifecycle accounting, so the rows are deterministic: a change in any
//! `gc_cliff/...` value is a behavior change in the flash lifecycle
//! (placement, victim policy, GC scheduling), never host noise.
//!
//! The sweep loads a live set at ~65% logical occupancy and then
//! overwrite-churns it at several offered volumes (fractions of total
//! logical capacity). Below the GC watermark the put tail is flat;
//! past it, foreground puts absorb migration reads/programs and block
//! erases on the shared buses — the p999 row pins how hard.
//!
//! Rows per churn point `F` (e.g. `2x`):
//! * `gc_cliff/churn_{F}_p999_ns` — put p999, simulated ns
//! * `gc_cliff/churn_{F}_p50_ns`  — put median, simulated ns
//! * `gc_cliff/churn_{F}_wa`      — write amplification so far
//!
//! plus `gc_cliff/p999_degradation_x` (deepest vs calmest point) and
//! the deepest point's `gc_cliff/erases` / `gc_cliff/relocated`.
//!
//! Exit code gates correctness only: the calm point must never
//! collect, the deep point must collect with WA > 1, and every run
//! must complete error-free. Under `BLUEDBM_BENCH_SMOKE` the sweep
//! shrinks to two points on a 2-node ring.

use std::io::Write;

use bluedbm_core::{Cluster, ExecMode, KvStore, NodeId, SystemConfig};
use bluedbm_flash::FlashGeometry;
use bluedbm_workloads::kvgen::{KvRequest, KvWorkloadSpec};

fn smoke() -> bool {
    std::env::var("BLUEDBM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn config() -> SystemConfig {
    let mut config = SystemConfig::scaled_down();
    // Tiny geometry so churn reaches the watermark in bench time.
    config.flash.geometry = FlashGeometry::tiny();
    config.sim.shards = 1;
    config.sim.exec = ExecMode::Auto;
    config
}

/// Overwrite-only zipfian churn over a live set at ~65% occupancy (one
/// tiny-geometry page per value): hot keys turn over, cold keys sit
/// valid in old blocks, so victims carry live pages.
fn spec(nodes: usize, churn_ops: u64) -> KvWorkloadSpec {
    KvWorkloadSpec {
        tenants: 4,
        keys_per_tenant: 125 * nodes as u64,
        churn_ops,
        read_fraction: 0.0,
        delete_fraction: 0.0,
        zipf_exponent: 0.99,
        value_bytes: 400,
        nodes,
        seed: 0x5EED,
    }
}

/// Submit puts and collect per-op simulated latency
/// (`finished - submitted`, ns). A put that trips the watermark waits
/// out its own collection, so the stall lands exactly where a tenant
/// would see it.
fn put_latencies(store: &mut KvStore, requests: impl Iterator<Item = KvRequest>) -> Vec<u64> {
    let mut latencies = Vec::new();
    let mut pending = 0usize;
    let drain = |store: &mut KvStore, latencies: &mut Vec<u64>| {
        for c in store.drive() {
            assert!(c.error.is_none(), "cliff workload must not fail: {c:?}");
            latencies.push((c.finished - c.submitted).as_ns());
        }
    };
    for request in requests {
        match request {
            KvRequest::Put { tenant, key, value } => {
                store.submit_put(tenant, &key, &value);
            }
            other => panic!("cliff driver only takes puts: {other:?}"),
        }
        pending += 1;
        if pending >= 32 {
            drain(store, &mut latencies);
            pending = 0;
        }
    }
    drain(store, &mut latencies);
    latencies
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn main() {
    let (nodes, factors): (usize, &[(u64, u64, &str)]) = if smoke() {
        // (numerator, denominator, label) of the churn / capacity ratio.
        (2, &[(1, 4, "0.25x"), (2, 1, "2x")])
    } else {
        (4, &[(1, 4, "0.25x"), (1, 1, "1x"), (2, 1, "2x"), (3, 1, "3x")])
    };

    let capacity: u64 = {
        let probe = Cluster::ring(nodes, &config()).expect("cluster");
        (0..nodes).map(|n| probe.node_capacity_pages(NodeId::from(n))).sum()
    };

    let mut lines = String::new();
    let mut tails = Vec::new();
    let mut calm = None;
    let mut deepest = None;
    for &(num, den, label) in factors {
        let churn = capacity * num / den;
        let workload = spec(nodes, churn);
        let mut store = KvStore::new(Cluster::ring(nodes, &config()).expect("cluster"));
        let mut lat = put_latencies(
            &mut store,
            workload.load().chain(workload.churn()),
        );
        lat.sort_unstable();
        let (p50, p999) = (percentile(&lat, 0.5), percentile(&lat, 0.999));
        let gc = store.cluster().gc_stats();
        store.cluster().assert_quiescent();
        store.assert_no_stranded_pages();

        println!(
            "gc_cliff/churn_{label}: p50 {p50} ns, p999 {p999} ns, WA {:.3}, \
             {} erases, {} relocated",
            gc.wa(),
            gc.erases,
            gc.relocated
        );
        lines.push_str(&format!(
            "{{\"id\":\"gc_cliff/churn_{label}_p999_ns\",\"value\":{p999}}}\n\
             {{\"id\":\"gc_cliff/churn_{label}_p50_ns\",\"value\":{p50}}}\n\
             {{\"id\":\"gc_cliff/churn_{label}_wa\",\"value\":{:.4}}}\n",
            gc.wa()
        ));
        tails.push(p999);
        calm.get_or_insert(gc);
        deepest = Some(gc);
    }

    // Correctness gates: the calmest point must stay below the
    // watermark, the deepest must genuinely collect.
    let calm = calm.expect("at least one churn point");
    assert_eq!(calm.erases, 0, "calm point must not collect: {calm:?}");
    let deepest = deepest.expect("at least one churn point");
    assert!(
        deepest.erases > 0 && deepest.relocated > 0 && deepest.wa() > 1.0,
        "deepest churn point must collect: {deepest:?}"
    );
    let degradation = tails[tails.len() - 1] as f64 / tails[0] as f64;
    println!("gc_cliff/p999_degradation_x: {degradation:.2}");
    lines.push_str(&format!(
        "{{\"id\":\"gc_cliff/p999_degradation_x\",\"value\":{degradation:.4}}}\n\
         {{\"id\":\"gc_cliff/erases\",\"value\":{}}}\n\
         {{\"id\":\"gc_cliff/relocated\",\"value\":{}}}\n",
        deepest.erases, deepest.relocated
    ));
    assert!(
        degradation >= 2.0,
        "the cliff must widen the put tail at least 2x (got {degradation:.2}x)"
    );

    if let Ok(path) = std::env::var("BLUEDBM_BENCH_JSON") {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(lines.as_bytes()))
            .unwrap_or_else(|e| panic!("appending gc cliff rows to {path}: {e}"));
    }
}
