//! Record the hot-path layout sizes into the benchmark trajectory and
//! gate the fast-path budget.
//!
//! Emits one JSON line per metric (appended to `$BLUEDBM_BENCH_JSON`
//! when set, mirroring the criterion shim's format) and exits non-zero
//! if `size_of::<Msg>()` exceeds the 64-byte budget — the CI bench-smoke
//! job runs this through `scripts/bench.sh`, so a payload regression
//! fails the pipeline even before the compile-time assertion in
//! `bluedbm_core::msg` is rebuilt.

use std::io::Write;

use bluedbm_core::Msg;
use bluedbm_sim::Simulator;

/// The fast-path budget also asserted at compile time in
/// `bluedbm_core::msg`.
const MSG_BUDGET_BYTES: usize = 64;

fn main() {
    let records = [
        ("sizeof/Msg", std::mem::size_of::<Msg>()),
        (
            "sizeof/fast_queue_entry",
            Simulator::<Msg>::fast_queue_entry_bytes(),
        ),
        ("sizeof/heap_entry", Simulator::<Msg>::heap_entry_bytes()),
        (
            "sizeof/page_ref",
            std::mem::size_of::<bluedbm_sim::PageRef>(),
        ),
    ];

    let mut lines = String::new();
    for (id, bytes) in records {
        println!("{id}: {bytes} bytes");
        lines.push_str(&format!("{{\"id\":\"{id}\",\"bytes\":{bytes}}}\n"));
    }
    if let Ok(path) = std::env::var("BLUEDBM_BENCH_JSON") {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(lines.as_bytes()))
            .unwrap_or_else(|e| panic!("appending size records to {path}: {e}"));
    }

    let msg = std::mem::size_of::<Msg>();
    if msg > MSG_BUDGET_BYTES {
        eprintln!("FAIL: size_of::<Msg>() = {msg} exceeds the {MSG_BUDGET_BYTES}-byte budget");
        std::process::exit(1);
    }
}
