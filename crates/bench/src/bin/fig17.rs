//! Regenerates Figure 17: the RAM-cloud cliff.

fn main() {
    let f = bluedbm_workloads::experiments::fig17::run();
    bluedbm_bench::print_exhibit(
        "Figure 17: nearest neighbor with mostly DRAM",
        "at 8 threads: DRAM 350K; +10% flash <80K; +5% disk <10K cmp/s",
        &f.render(),
    );
}
