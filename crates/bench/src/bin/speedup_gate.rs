//! CI gate for the sharded engine's parallel speedup.
//!
//! Reads a `BENCH_engine.json` trajectory (JSON lines, as written by
//! `scripts/bench.sh`) and — when the recorded host had at least as
//! many cores as the widest sharded row — asserts two bars on the
//! `mesh8x8_scatter` workload:
//!
//! * 4-shard conservative execution beats the sequential engine by
//!   [`MIN_SPEEDUP`];
//! * 4-shard **optimistic** execution beats 4-shard conservative by
//!   [`MIN_OPTIMISTIC_SPEEDUP`] — the mesh's one-hop lookahead makes
//!   conservative windows narrow, which is exactly where bounded-window
//!   speculation is meant to win.
//!
//! On oversubscribed hosts (fewer cores than shards) the sharded rows
//! measure the sync protocol's overhead floor, not parallelism, so the
//! gate prints a visible skip notice instead of a verdict.
//!
//! Usage: `speedup_gate [BENCH_engine.json]` — exits non-zero on a
//! missed bar or a malformed/incomplete trajectory file.

use std::process::ExitCode;

/// Minimum events/sec ratio of `sharded4` over `sharded1` on hosts
/// with at least 4 cores (identical event counts per run, so wall-time
/// ratios are inverted events/sec ratios).
const MIN_SPEEDUP: f64 = 1.3;

/// Minimum events/sec ratio of `optimistic4` over `sharded4` on hosts
/// with at least 4 cores: speculation must buy back at least this much
/// of the conservative protocol's low-lookahead sync cost.
const MIN_OPTIMISTIC_SPEEDUP: f64 = 1.2;

const SEQ_ROW: &str = "sim_throughput/mesh8x8_scatter_sharded1";
const PAR_ROW: &str = "sim_throughput/mesh8x8_scatter_sharded4";
const OPT_ROW: &str = "sim_throughput/mesh8x8_scatter_optimistic4";

/// Pull a string field out of a single flat JSON object line. The bench
/// trajectory is machine-written with no nesting or escapes, so a
/// hand-rolled scan keeps the gate dependency-free.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Pull a numeric field out of a single flat JSON object line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("speedup_gate: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut host_cpus: Option<f64> = None;
    let mut seq_ns: Option<f64> = None;
    let mut par_ns: Option<f64> = None;
    let mut opt_ns: Option<f64> = None;
    for line in text.lines() {
        match field_str(line, "id") {
            Some("meta/host_cpus") => host_cpus = field_num(line, "value"),
            Some(id) if id == SEQ_ROW => seq_ns = field_num(line, "ns_per_iter"),
            Some(id) if id == PAR_ROW => par_ns = field_num(line, "ns_per_iter"),
            Some(id) if id == OPT_ROW => opt_ns = field_num(line, "ns_per_iter"),
            _ => {}
        }
    }

    let Some(cpus) = host_cpus else {
        eprintln!("speedup_gate: {path} has no meta/host_cpus row");
        return ExitCode::FAILURE;
    };
    if cpus < 4.0 {
        println!(
            "speedup_gate: SKIPPED — host has {cpus} CPU(s) < 4 shards; \
             sharded rows are an overhead floor, not a speedup curve"
        );
        return ExitCode::SUCCESS;
    }

    let (Some(seq), Some(par)) = (seq_ns, par_ns) else {
        eprintln!("speedup_gate: {path} is missing {SEQ_ROW} and/or {PAR_ROW}");
        return ExitCode::FAILURE;
    };
    let speedup = seq / par;
    if speedup < MIN_SPEEDUP {
        eprintln!(
            "speedup_gate: FAIL — sharded4 is only {speedup:.2}x sharded1 \
             (bar {MIN_SPEEDUP}x on a {cpus}-CPU host; seq {seq:.0}ns, sharded4 {par:.0}ns)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "speedup_gate: PASS — sharded4 is {speedup:.2}x sharded1 \
         (bar {MIN_SPEEDUP}x, {cpus} CPUs)"
    );

    // Older trajectory files predate the optimistic rows; only gate the
    // speculation bar when the row is present.
    let Some(opt) = opt_ns else {
        println!("speedup_gate: NOTE — no {OPT_ROW} row; optimistic bar not checked");
        return ExitCode::SUCCESS;
    };
    let opt_speedup = par / opt;
    if opt_speedup >= MIN_OPTIMISTIC_SPEEDUP {
        println!(
            "speedup_gate: PASS — optimistic4 is {opt_speedup:.2}x sharded4 \
             (bar {MIN_OPTIMISTIC_SPEEDUP}x, {cpus} CPUs)"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "speedup_gate: FAIL — optimistic4 is only {opt_speedup:.2}x sharded4 \
             (bar {MIN_OPTIMISTIC_SPEEDUP}x on a {cpus}-CPU host; \
             sharded4 {par:.0}ns, optimistic4 {opt:.0}ns)"
        );
        ExitCode::FAILURE
    }
}
