//! Regenerates Figure 19: in-store vs host software.

fn main() {
    let f = bluedbm_workloads::experiments::fig19::run();
    bluedbm_bench::print_exhibit(
        "Figure 19: nearest neighbor with in-store processing",
        ">=20% in-store advantage throttled; >=30% unthrottled (PCIe caps software)",
        &f.render(),
    );
}
