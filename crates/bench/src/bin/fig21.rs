//! Regenerates Figure 21: string search bandwidth and CPU utilization.

fn main() {
    let f = bluedbm_workloads::experiments::fig21::run();
    bluedbm_bench::print_exhibit(
        "Figure 21: string search bandwidth and CPU utilization",
        "Flash/ISP ~1.1 GB/s at ~0% CPU; SW grep 600 MB/s at 65% (SSD), 7.5x slower at 13% (HDD)",
        &f.render(),
    );
}
