//! Regenerates Figure 12: remote access latency breakdown.

fn main() {
    let f = bluedbm_workloads::experiments::fig12::run();
    bluedbm_bench::print_exhibit(
        "Figure 12: latency of remote data access",
        "network insignificant everywhere; ISP-F avoids PCIe+software; H-RH-F pays software twice",
        &f.render(),
    );
}
