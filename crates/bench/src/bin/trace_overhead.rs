//! Measure the trace layer's overhead on the million-key KV workload
//! and record it into the benchmark trajectory.
//!
//! Two wall-clock measurements of the same sequential-engine run:
//!
//! * `trace/kv_trace_disabled` — `TraceConfig::off()` (the default):
//!   every instrumentation site compiles down to an enabled-flag check,
//!   so this row is directly comparable to the pre-trace
//!   `sim_throughput/kv_million_seq` baseline;
//! * `trace/kv_trace_enabled` — full capture across all categories,
//!   bounding what a diagnostic run costs.
//!
//! When handed a baseline trajectory file (first argument — bench.sh
//! passes the previous `BENCH_engine.json` before truncating it), the
//! disabled row is compared against the recorded `kv_million_seq`
//! ns/iter and the overhead percentage lands in the trajectory as
//! `trace/disabled_overhead_vs_baseline_pct` — the ≤2% acceptance bar.
//! Timing verdicts are advisory (wall clock on shared hosts is noisy);
//! the exit code only gates correctness: the traced and untraced runs
//! must produce the identical result digest, and the enabled run must
//! actually capture records.
//!
//! Under `BLUEDBM_BENCH_SMOKE` the workload shrinks to 20k keys and the
//! baseline comparison is skipped (a scaled run is not comparable to
//! the full-size baseline row).

use std::io::Write;
use std::time::Instant;

use bluedbm_core::{Cluster, ExecMode, KvStore, SystemConfig};
use bluedbm_sim::TraceConfig;
use bluedbm_workloads::kvgen::{kv_flash_geometry, run_requests, KvWorkloadSpec};

const NODES: usize = 4;
const BATCH: usize = 8192;

fn smoke() -> bool {
    std::env::var("BLUEDBM_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One timed run; returns (wall ns, result digest, trace records captured).
fn run_once(spec: &KvWorkloadSpec, trace: TraceConfig) -> (u128, u64, usize) {
    let mut config = SystemConfig::scaled_down();
    config.flash.geometry = kv_flash_geometry();
    config.sim.shards = 1;
    config.sim.exec = ExecMode::Auto;
    config.sim.trace = trace;
    let mut store = KvStore::new(Cluster::ring(NODES, &config).unwrap());
    // detlint::allow(no-wallclock): overhead measurement reports wall
    // time only; nothing here feeds back into simulated time.
    let start = Instant::now();
    let summary = run_requests(&mut store, spec.load().chain(spec.churn()), BATCH);
    let elapsed = start.elapsed().as_nanos();
    assert_eq!(summary.errors, 0, "a sized workload must not fail");
    store.assert_no_stranded_pages();
    store.cluster().assert_quiescent();
    let doc = bluedbm_trace::TraceDoc::merge(store.take_trace());
    (elapsed, summary.digest, doc.len())
}

/// Median-of-iters wall time plus min/max, in ns.
fn measure(spec: &KvWorkloadSpec, trace: TraceConfig, iters: usize) -> (f64, f64, f64, u64, usize) {
    let mut times = Vec::with_capacity(iters);
    let mut digest = 0;
    let mut records = 0;
    for _ in 0..iters {
        let (ns, d, n) = run_once(spec, trace);
        times.push(ns as f64);
        digest = d;
        records = n;
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    (median, times[0], times[times.len() - 1], digest, records)
}

/// Pull a numeric field out of a flat machine-written JSON line
/// (same scan as `speedup_gate`; the trajectory has no nesting).
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The baseline `sim_throughput/kv_million_seq` ns/iter, if the file
/// has one.
fn baseline_ns(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .find(|l| l.contains("\"id\":\"sim_throughput/kv_million_seq\""))
        .and_then(|l| field_num(l, "ns_per_iter"))
}

fn main() {
    let spec = if smoke() {
        KvWorkloadSpec::million(NODES).scaled_to(20_000)
    } else {
        KvWorkloadSpec::million(NODES)
    };
    let iters = if smoke() { 2 } else { 3 };

    let (off_ns, off_min, off_max, off_digest, off_records) =
        measure(&spec, TraceConfig::off(), iters);
    let (on_ns, on_min, on_max, on_digest, on_records) =
        measure(&spec, TraceConfig::on().with_capacity(1 << 21), iters);

    assert_eq!(
        off_digest, on_digest,
        "trace capture perturbed the result digest"
    );
    assert_eq!(off_records, 0, "disabled sink must stay empty");
    assert!(on_records > 0, "enabled sink captured nothing");

    let enabled_pct = (on_ns / off_ns - 1.0) * 100.0;
    println!("trace/kv_trace_disabled: {:.0} ns/iter", off_ns);
    println!(
        "trace/kv_trace_enabled:  {:.0} ns/iter ({} records, {enabled_pct:+.2}% vs disabled)",
        on_ns, on_records
    );

    let mut lines = String::new();
    for (id, med, min, max) in [
        ("trace/kv_trace_disabled", off_ns, off_min, off_max),
        ("trace/kv_trace_enabled", on_ns, on_min, on_max),
    ] {
        lines.push_str(&format!(
            "{{\"id\":\"{id}\",\"ns_per_iter\":{med:.3},\"ns_min\":{min:.3},\"ns_max\":{max:.3}}}\n"
        ));
    }
    lines.push_str(&format!(
        "{{\"id\":\"trace/enabled_overhead_pct\",\"value\":{enabled_pct:.3}}}\n"
    ));

    let baseline = std::env::args().nth(1);
    match baseline.as_deref().and_then(baseline_ns) {
        Some(base) if !smoke() => {
            let pct = (off_ns / base - 1.0) * 100.0;
            let verdict = if pct <= 2.0 { "OK" } else { "WARN" };
            println!(
                "trace/disabled_overhead_vs_baseline_pct: {pct:+.2}% \
                 (baseline {base:.0} ns/iter) — {verdict} (bar: ≤2%)"
            );
            lines.push_str(&format!(
                "{{\"id\":\"trace/disabled_overhead_vs_baseline_pct\",\"value\":{pct:.3}}}\n"
            ));
        }
        Some(_) => println!("smoke run: baseline comparison skipped (scaled workload)"),
        None => println!("no kv_million_seq baseline row; overhead-vs-baseline row skipped"),
    }

    if let Ok(path) = std::env::var("BLUEDBM_BENCH_JSON") {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(lines.as_bytes()))
            .unwrap_or_else(|e| panic!("appending trace overhead rows to {path}: {e}"));
    }
}
