//! Regenerates Table 3: estimated power consumption.

fn main() {
    let t = bluedbm_workloads::experiments::tables::table3();
    bluedbm_bench::print_exhibit(
        "Table 3: BlueDBM estimated power consumption",
        "VC707 30W + 2 flash boards 10W + Xeon 200W = 240W/node; <20% overhead",
        &t.render(),
    );
}
