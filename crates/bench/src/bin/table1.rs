//! Regenerates Table 1: flash controller module inventory (software
//! substitute for the Artix-7 resource-utilization table).

fn main() {
    let t = bluedbm_workloads::experiments::tables::table1();
    bluedbm_bench::print_exhibit(
        "Table 1: flash controller on Artix-7 (model inventory substitute)",
        "bus controller 7131 LUTs x8, ECC dec/enc, scoreboard, PHY, SerDes; 56% of the chip",
        &t.render(),
    );
}
