//! Regenerates every table and figure in one run (the EXPERIMENTS.md
//! record is produced from this binary's output).

use bluedbm_workloads::experiments as ex;

fn main() {
    bluedbm_bench::print_exhibit("Table 1", "Artix-7 controller inventory", &ex::tables::table1().render());
    bluedbm_bench::print_exhibit("Table 2", "Virtex-7 node inventory", &ex::tables::table2().render());
    bluedbm_bench::print_exhibit("Table 3", "power", &ex::tables::table3().render());
    bluedbm_bench::print_exhibit("Figure 11", "network bw/latency vs hops", &ex::fig11::run().render());
    bluedbm_bench::print_exhibit("Figure 12", "remote access latency breakdown", &ex::fig12::run().render());
    bluedbm_bench::print_exhibit("Figure 13", "storage access bandwidth", &ex::fig13::run().render());
    bluedbm_bench::print_exhibit("Figure 16", "NN: BlueDBM vs DRAM", &ex::fig16::run().render());
    bluedbm_bench::print_exhibit("Figure 17", "NN: the RAM-cloud cliff", &ex::fig17::run().render());
    bluedbm_bench::print_exhibit("Figure 18", "NN: off-the-shelf SSD", &ex::fig18::run().render());
    bluedbm_bench::print_exhibit("Figure 19", "NN: in-store vs software", &ex::fig19::run().render());
    bluedbm_bench::print_exhibit("Figure 20", "graph traversal", &ex::fig20::run().render());
    bluedbm_bench::print_exhibit("Figure 21", "string search", &ex::fig21::run().render());
}
