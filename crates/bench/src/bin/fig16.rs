//! Regenerates Figure 16: nearest neighbor, BlueDBM vs DRAM vs throttled.

fn main() {
    let f = bluedbm_workloads::experiments::fig16::run();
    bluedbm_bench::print_exhibit(
        "Figure 16: nearest neighbor with BlueDBM up to two nodes",
        "in-store baseline ~320K cmp/s flat; DRAM scales with threads and crosses mid-chart",
        &f.render(),
    );
}
