//! Ablation sweeps for the design choices DESIGN.md calls out: tag
//! parallelism, credit depth, FTL over-provisioning, and the integrated
//! network's advantage over host-mediated access as distance grows.

use bluedbm_workloads::experiments::ablations;

fn main() {
    bluedbm_bench::print_exhibit(
        "Ablation: controller tag parallelism",
        "multiple commands must be in flight to saturate flash (Section 3.1.1)",
        &ablations::tag_parallelism().render(),
    );
    bluedbm_bench::print_exhibit(
        "Ablation: link-layer credit depth",
        "token flow control (Section 3.2.2)",
        &ablations::credit_depth().render(),
    );
    bluedbm_bench::print_exhibit(
        "Ablation: Flash Server queue depth",
        "in-order convenience interface with adjustable command queue (Section 3.1.2)",
        &ablations::flash_server_depth().render(),
    );
    bluedbm_bench::print_exhibit(
        "Ablation: FTL over-provisioning vs write amplification",
        "driver-side FTL (Section 4)",
        &ablations::over_provisioning().render(),
    );
    bluedbm_bench::print_exhibit(
        "Ablation: integrated network advantage vs hop count",
        "ISP-F overlaps storage and network access (Section 6.4)",
        &ablations::network_integration().render(),
    );
}
