//! Criterion microbenchmarks of the DES under network and cluster load:
//! how many simulated packets/reads per second the router network and
//! full cluster sustain (the raw kernel head-to-head against the boxed
//! baseline lives in `sim_throughput.rs`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bluedbm_core::node::Consume;
use bluedbm_core::{Cluster, NodeId, SystemConfig};
use bluedbm_net::msg::NetMsg;
use bluedbm_net::packet::NetParams;
use bluedbm_net::router::{build_network, NetSend};
use bluedbm_net::topology::Topology;
use bluedbm_sim::engine::Simulator;
use bluedbm_sim::time::SimTime;

fn bench_router_mesh(c: &mut Criterion) {
    const PACKETS: usize = 500;
    let mut g = c.benchmark_group("network_sim");
    g.throughput(Throughput::Elements(PACKETS as u64));
    g.bench_function("mesh3x3_500_packets", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::<NetMsg<()>>::new();
                let topo = Topology::mesh2d(3, 3);
                let routers = build_network(&mut sim, &topo, NetParams::paper());
                for i in 0..PACKETS {
                    sim.schedule(
                        SimTime::ZERO,
                        routers[0],
                        NetSend::new(bluedbm_net::NodeId(8), (i % 4) as u16, 4096, ()),
                    );
                }
                sim
            },
            |mut sim| {
                sim.run();
                black_box(sim.events_delivered())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cluster_reads(c: &mut Criterion) {
    const READS: usize = 200;
    let mut g = c.benchmark_group("cluster_sim");
    g.throughput(Throughput::Elements(READS as u64));
    g.bench_function("remote_read_stream_200", |b| {
        b.iter_batched(
            || {
                let config = SystemConfig::scaled_down();
                let mut cluster = Cluster::line(2, 1, &config).unwrap();
                let page = vec![0u8; config.flash.geometry.page_bytes];
                let addrs: Vec<_> = (0..READS)
                    .map(|_| cluster.preload_page(NodeId(1), &page).unwrap())
                    .collect();
                (cluster, addrs)
            },
            |(mut cluster, addrs)| {
                let done = cluster.stream_reads(NodeId(0), &addrs, Consume::Isp);
                black_box(done.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!{
    name = benches;
    // Short sampling: these are smoke-level performance numbers, and the
    // full suite must run in CI time.
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_router_mesh, bench_cluster_reads
}
criterion_main!(benches);
