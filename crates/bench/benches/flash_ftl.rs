//! Criterion microbenchmarks of the storage substrate: SECDED codec
//! throughput, functional flash array operations, FTL write path and the
//! log-structured file system.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bluedbm_flash::array::FlashArray;
use bluedbm_flash::ecc;
use bluedbm_flash::geometry::{FlashGeometry, Ppa};
use bluedbm_ftl::ftl::{Ftl, FtlConfig};
use bluedbm_ftl::rfs::{Rfs, RfsConfig};
use bluedbm_sim::rng::Rng;

fn bench_ecc(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let mut page = vec![0u8; 8192];
    rng.fill_bytes(&mut page);
    let oob = ecc::encode_page(&page);
    let mut g = c.benchmark_group("ecc");
    g.throughput(Throughput::Bytes(page.len() as u64));
    g.bench_function("encode_8KiB", |b| {
        b.iter(|| black_box(ecc::encode_page(black_box(&page))))
    });
    g.bench_function("decode_8KiB_clean", |b| {
        b.iter(|| black_box(ecc::decode_page(black_box(&page), black_box(&oob))))
    });
    let mut corrupted = page.clone();
    corrupted[17] ^= 0x10;
    g.bench_function("decode_8KiB_one_flip", |b| {
        b.iter(|| black_box(ecc::decode_page(black_box(&corrupted), black_box(&oob))))
    });
    g.finish();
}

fn bench_array(c: &mut Criterion) {
    let geom = FlashGeometry::small();
    let data = vec![0xA5u8; geom.page_bytes];
    let mut g = c.benchmark_group("flash_array");
    g.throughput(Throughput::Bytes(geom.page_bytes as u64));
    g.bench_function("program_read_erase_cycle", |b| {
        b.iter_batched(
            || FlashArray::new(geom, 1),
            |mut a| {
                let ppa = Ppa::new(0, 0, 0, 0);
                a.program(ppa, &data).unwrap();
                black_box(a.read(ppa).unwrap());
                a.erase(ppa).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ftl(c: &mut Criterion) {
    let geom = FlashGeometry::small();
    c.bench_function("ftl_random_overwrite_churn", |b| {
        b.iter_batched(
            || {
                let ftl = Ftl::new(FlashArray::new(geom, 3), FtlConfig::default()).unwrap();
                (ftl, Rng::new(9))
            },
            |(mut ftl, mut rng)| {
                let cap = ftl.capacity_pages();
                let data = vec![0u8; ftl.page_bytes()];
                for lba in 0..cap {
                    ftl.write(lba, &data).unwrap();
                }
                for _ in 0..cap {
                    ftl.write(rng.below(cap), &data).unwrap();
                }
                black_box(ftl.stats().waf())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rfs(c: &mut Criterion) {
    let geom = FlashGeometry::small();
    let blob = vec![0x11u8; 64 * 1024];
    let mut g = c.benchmark_group("rfs");
    g.throughput(Throughput::Bytes(blob.len() as u64));
    g.bench_function("write_read_64KiB_file", |b| {
        b.iter_batched(
            || Rfs::format(FlashArray::new(geom, 5), RfsConfig::default()).unwrap(),
            |mut fs| {
                fs.create("bench").unwrap();
                fs.write("bench", &blob).unwrap();
                black_box(fs.read("bench").unwrap().len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!{
    name = benches;
    // Short sampling: these are smoke-level performance numbers, and the
    // full suite must run in CI time.
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ecc, bench_array, bench_ftl, bench_rfs
}
criterion_main!(benches);
