//! Real multithreaded host-software baseline: the wall-clock analogue of
//! Figure 16's "DRAM" arm, measured on this machine instead of modelled.
//!
//! A dataset of 8 KiB items sits in (real) DRAM; 1..8 threads
//! hamming-compare a query against disjoint slices via `crossbeam::scope`.
//! Criterion reports the per-thread-count throughput — on real hardware
//! the curve scales with cores until memory bandwidth binds, which is
//! exactly the behaviour the paper's host model captures with its
//! per-thread compare rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use bluedbm_isp::hamming::hamming_distance;
use bluedbm_sim::rng::Rng;

const ITEM: usize = 8192;
const ITEMS: usize = 512;

fn bench_parallel_scan(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let dataset: Vec<Vec<u8>> = (0..ITEMS)
        .map(|_| {
            let mut v = vec![0u8; ITEM];
            rng.fill_bytes(&mut v);
            v
        })
        .collect();
    let mut query = vec![0u8; ITEM];
    rng.fill_bytes(&mut query);

    let mut g = c.benchmark_group("host_parallel_nn");
    g.throughput(Throughput::Bytes((ITEMS * ITEM) as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let best = AtomicU64::new(u64::MAX);
                crossbeam::scope(|scope| {
                    for slice in dataset.chunks(ITEMS.div_ceil(t)) {
                        let query = &query;
                        let best = &best;
                        scope.spawn(move |_| {
                            let mut local = u32::MAX;
                            for item in slice {
                                local = local.min(hamming_distance(query, item));
                            }
                            best.fetch_min(u64::from(local), Ordering::Relaxed);
                        });
                    }
                })
                .expect("threads join");
                black_box(best.load(Ordering::Relaxed))
            })
        });
    }
    g.finish();
}

criterion_group!{
    name = benches;
    // Short sampling: these are smoke-level performance numbers, and the
    // full suite must run in CI time.
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_parallel_scan
}
criterion_main!(benches);
