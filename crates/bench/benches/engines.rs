//! Criterion microbenchmarks of the in-store processor functional cores:
//! the real Rust throughput of Morris-Pratt search, hamming comparison,
//! LSH indexing/querying and the range filter.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bluedbm_isp::filter::FilterEngine;
use bluedbm_isp::hamming::{hamming_distance, HammingEngine};
use bluedbm_isp::lsh::{LshIndex, LshParams};
use bluedbm_isp::mp::MpMatcher;
use bluedbm_isp::Accelerator;
use bluedbm_sim::rng::Rng;

const PAGE: usize = 8192;

fn bench_mp(c: &mut Criterion) {
    let corpus = bluedbm_workloads::datagen::corpus_with_needles(1 << 20, b"BlueDBM-needle", 16, 1);
    let mut g = c.benchmark_group("mp_search");
    g.throughput(Throughput::Bytes(corpus.text.len() as u64));
    g.bench_function("stream_1MiB", |b| {
        b.iter_batched(
            || MpMatcher::new(&corpus.needle).unwrap(),
            |mut m| {
                for (i, page) in corpus.text.chunks(PAGE).enumerate() {
                    m.consume(i as u64, page);
                }
                black_box(m.matches().len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_hamming(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let mut a = vec![0u8; PAGE];
    let mut bb = vec![0u8; PAGE];
    rng.fill_bytes(&mut a);
    rng.fill_bytes(&mut bb);
    let mut g = c.benchmark_group("hamming");
    g.throughput(Throughput::Bytes(PAGE as u64));
    g.bench_function("distance_8KiB", |b| {
        b.iter(|| black_box(hamming_distance(black_box(&a), black_box(&bb))))
    });
    g.bench_function("engine_consume_8KiB", |b| {
        let mut e = HammingEngine::new(a.clone());
        let mut seq = 0;
        b.iter(|| {
            e.consume(seq, &bb);
            seq += 1;
        })
    });
    g.finish();
}

fn bench_lsh(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let items: Vec<Vec<u8>> = (0..512)
        .map(|_| {
            let mut v = vec![0u8; 256];
            rng.fill_bytes(&mut v);
            v
        })
        .collect();
    c.bench_function("lsh_insert_512x256B", |b| {
        b.iter_batched(
            || LshIndex::new(256, LshParams::default()),
            |mut idx| {
                for (i, item) in items.iter().enumerate() {
                    idx.insert(i as u64, item);
                }
                black_box(idx.len())
            },
            BatchSize::SmallInput,
        )
    });
    let mut idx = LshIndex::new(256, LshParams::default());
    for (i, item) in items.iter().enumerate() {
        idx.insert(i as u64, item);
    }
    c.bench_function("lsh_query", |b| {
        b.iter(|| black_box(idx.candidates(&items[7]).len()))
    });
}

fn bench_filter(c: &mut Criterion) {
    let mut rng = Rng::new(4);
    let mut page = vec![0u8; PAGE];
    rng.fill_bytes(&mut page);
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Bytes(PAGE as u64));
    g.bench_function("scan_8KiB_page", |b| {
        let mut f = FilterEngine::new(32, 0, 0..(u64::MAX / 2));
        let mut seq = 0;
        b.iter(|| {
            f.consume(seq, &page);
            seq += 1;
        })
    });
    g.finish();
}

criterion_group!{
    name = benches;
    // Short sampling: these are smoke-level performance numbers, and the
    // full suite must run in CI time.
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_mp, bench_hamming, bench_lsh, bench_filter
}
criterion_main!(benches);
