//! End-to-end event-kernel throughput: simulated events per second of
//! wall-clock, for the typed slab/index-heap kernel that now powers every
//! exhibit — measured head-to-head against the seed's `Box<dyn Any>` +
//! `BinaryHeap` kernel (kept below as an in-tree baseline) on identical
//! workloads, plus a fig13-sized cluster read stream through the full
//! node/network/flash stack.
//!
//! The acceptance bar for the typed-kernel refactor is >=2x events/sec
//! over the boxed baseline on the same-instant fast-path chains (the
//! dominant pattern in the command-forwarding hot path); heap-bound and
//! scatter workloads win by smaller margins.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bluedbm_core::node::Consume;
use bluedbm_core::{Cluster, NodeId, SystemConfig};
use bluedbm_net::topology::Topology as NetTopology;
use bluedbm_sim::engine::{Batch, Component, ComponentId, Ctx, Simulator};
use bluedbm_sim::pagestore::{PageRef, PageStore};
use bluedbm_sim::time::SimTime;

const CHAIN_EVENTS: u64 = 100_000;
const SCATTER_EVENTS: u64 = 20_000;
/// Same-component event-train shape: every round fires one burst of
/// same-instant commands at a single sink — the command-forwarding train
/// the batched dispatcher drains in one component borrow.
const TRAIN_ROUNDS: u64 = 400;
const TRAIN_LEN: u64 = 256;
const TRAIN_EVENTS: u64 = TRAIN_ROUNDS * (TRAIN_LEN + 1);
/// Page size of the page-carrying train shape (the paper's 8 KiB page).
const PAGE_BYTES: usize = 8192;

// ---------------------------------------------------------------------------
// The pre-refactor kernel, preserved verbatim in miniature: one heap-boxed
// `dyn Any` message per event, downcast on delivery, `BinaryHeap` ordered
// by an inverted (time, seq) key. This is what the seed's `engine.rs` did.
// ---------------------------------------------------------------------------
mod boxed {
    use bluedbm_sim::time::SimTime;
    use std::any::Any;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Clone, Copy)]
    pub struct ComponentId(pub usize);

    pub trait Component: Any {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Box<dyn Any>);
    }

    struct Scheduled {
        at: SimTime,
        seq: u64,
        to: ComponentId,
        msg: Box<dyn Any>,
    }

    impl PartialEq for Scheduled {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Scheduled {}
    impl PartialOrd for Scheduled {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Scheduled {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    pub struct Ctx<'a> {
        now: SimTime,
        self_id: ComponentId,
        outbox: &'a mut Vec<(SimTime, ComponentId, Box<dyn Any>)>,
    }

    impl Ctx<'_> {
        pub fn send_self<M: Any>(&mut self, delay: SimTime, msg: M) {
            self.outbox
                .push((self.now + delay, self.self_id, Box::new(msg)));
        }

        pub fn send<M: Any>(&mut self, to: ComponentId, delay: SimTime, msg: M) {
            self.outbox.push((self.now + delay, to, Box::new(msg)));
        }
    }

    pub struct Simulator {
        now: SimTime,
        seq: u64,
        delivered: u64,
        heap: BinaryHeap<Scheduled>,
        components: Vec<Option<Box<dyn Component>>>,
        outbox: Vec<(SimTime, ComponentId, Box<dyn Any>)>,
    }

    impl Simulator {
        pub fn new() -> Self {
            Simulator {
                now: SimTime::ZERO,
                seq: 0,
                delivered: 0,
                heap: BinaryHeap::new(),
                components: Vec::new(),
                outbox: Vec::new(),
            }
        }

        pub fn events_delivered(&self) -> u64 {
            self.delivered
        }

        pub fn add_component<C: Component>(&mut self, component: C) -> ComponentId {
            let id = ComponentId(self.components.len());
            self.components.push(Some(Box::new(component)));
            id
        }

        pub fn schedule<M: Any>(&mut self, delay: SimTime, to: ComponentId, msg: M) {
            self.heap.push(Scheduled {
                at: self.now + delay,
                seq: self.seq,
                to,
                msg: Box::new(msg),
            });
            self.seq += 1;
        }

        pub fn run(&mut self) {
            while let Some(ev) = self.heap.pop() {
                self.now = ev.at;
                self.delivered += 1;
                let mut component = self.components[ev.to.0].take().expect("installed");
                {
                    let mut ctx = Ctx {
                        now: self.now,
                        self_id: ev.to,
                        outbox: &mut self.outbox,
                    };
                    component.handle(&mut ctx, ev.msg);
                }
                self.components[ev.to.0] = Some(component);
                for (at, to, msg) in self.outbox.drain(..) {
                    self.heap.push(Scheduled {
                        at,
                        seq: self.seq,
                        to,
                        msg,
                    });
                    self.seq += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Identical workloads on both kernels.
// ---------------------------------------------------------------------------

/// Zero-payload message: isolates pure event-delivery overhead (queue
/// mechanics, dispatch, clock) with no payload-transport cost on either
/// kernel.
struct Tick;

/// Payload in the size class of the real protocol messages (a `CtrlCmd`
/// or `CtrlResp` is several machine words, and every hot-path event in
/// the full system carries one): the boxed kernel pays one allocation +
/// pointer chase per event for it, the typed kernel moves it inline.
struct Cmd([u64; 8]);

struct TypedTickBouncer {
    remaining: u64,
    delay: SimTime,
}

impl Component<Tick> for TypedTickBouncer {
    fn handle(&mut self, ctx: &mut Ctx<'_, Tick>, _msg: Tick) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(self.delay, Tick);
        }
    }
}

struct BoxedTickBouncer {
    remaining: u64,
    delay: SimTime,
}

impl boxed::Component for BoxedTickBouncer {
    fn handle(&mut self, ctx: &mut boxed::Ctx<'_>, _msg: Box<dyn std::any::Any>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(self.delay, Tick);
        }
    }
}

struct TypedBouncer {
    remaining: u64,
    delay: SimTime,
}

impl Component<Cmd> for TypedBouncer {
    fn handle(&mut self, ctx: &mut Ctx<'_, Cmd>, msg: Cmd) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(self.delay, Cmd([msg.0[0] + 1; 8]));
        }
    }
}

struct BoxedBouncer {
    remaining: u64,
    delay: SimTime,
}

impl boxed::Component for BoxedBouncer {
    fn handle(&mut self, ctx: &mut boxed::Ctx<'_>, msg: Box<dyn std::any::Any>) {
        let cmd = msg.downcast::<Cmd>().expect("Cmd");
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(self.delay, Cmd([cmd.0[0] + 1; 8]));
        }
    }
}

/// Sink that consumes scattered commands (heap scaling under load).
struct TypedSink {
    seen: u64,
}

impl Component<Cmd> for TypedSink {
    fn handle(&mut self, _ctx: &mut Ctx<'_, Cmd>, msg: Cmd) {
        self.seen += msg.0[0];
    }
}

struct BoxedSink {
    seen: u64,
}

impl boxed::Component for BoxedSink {
    fn handle(&mut self, _ctx: &mut boxed::Ctx<'_>, msg: Box<dyn std::any::Any>) {
        let cmd = msg.downcast::<Cmd>().expect("Cmd");
        self.seen += cmd.0[0];
    }
}

/// Message shape of a train bench: `Tick` (zero-sized) isolates pure
/// dispatch overhead, `Cmd` adds the realistic control-payload cost,
/// `BoxedPage` is the seed's inline page payload (a fresh 8 KiB heap
/// `Vec` per message). Static methods so handler bodies fully inline in
/// both kernels.
trait TrainShape: Sized + 'static {
    fn make(i: u64) -> Self;
    fn weigh(&self) -> u64;
}

impl TrainShape for Tick {
    fn make(_: u64) -> Tick {
        Tick
    }
    fn weigh(&self) -> u64 {
        1
    }
}

impl TrainShape for Cmd {
    fn make(i: u64) -> Cmd {
        Cmd([i; 8])
    }
    fn weigh(&self) -> u64 {
        self.0[0]
    }
}

/// What a page message was before the handle refactor: the page bytes
/// inline in the message, freshly heap-allocated per event. Boxed-kernel
/// baseline of the `page` train shape.
struct BoxedPage(Vec<u8>);

impl TrainShape for BoxedPage {
    fn make(i: u64) -> BoxedPage {
        let mut page = vec![0u8; PAGE_BYTES];
        page[0] = i as u8;
        BoxedPage(page)
    }
    fn weigh(&self) -> u64 {
        self.0.len() as u64 + u64::from(self.0[0])
    }
}

/// Train shape for the typed kernel, which owns a [`PageStore`]: message
/// construction and consumption go through the store, so the `page`
/// shape can model handle-based payloads (alloc at the producer, free at
/// the consumer, 16-byte message on the wire). Store-free shapes get a
/// blanket impl.
trait StoreShape: Sized + 'static {
    fn make(i: u64, pages: &mut PageStore) -> Self;
    /// Consume the message at the sink (freeing any carried page).
    fn consume(self, pages: &mut PageStore) -> u64;
}

impl<T: TrainShape> StoreShape for T {
    fn make(i: u64, _pages: &mut PageStore) -> T {
        T::make(i)
    }
    fn consume(self, _pages: &mut PageStore) -> u64 {
        self.weigh()
    }
}

/// The post-refactor page message: a token plus an 8-byte handle into
/// the simulator's page store — what `CtrlCmd::Write` / `NetBody::Resp`
/// / `PcieXfer` now carry instead of an inline `Vec`.
struct PageCmd {
    token: u64,
    page: PageRef,
}

impl StoreShape for PageCmd {
    fn make(i: u64, pages: &mut PageStore) -> PageCmd {
        // `alloc` (not `alloc_zeroed`): steady-state slots recycle their
        // buffers, so the producer's fill cost — the actual data, paid
        // once in real flows — stays out of the transport measurement.
        PageCmd {
            token: i,
            page: pages.alloc(PAGE_BYTES),
        }
    }
    fn consume(self, pages: &mut PageStore) -> u64 {
        let weight = pages.len(self.page) as u64 + self.token;
        pages.free(self.page);
        weight
    }
}

/// Emits one train of `TRAIN_LEN` same-instant messages at the sink per
/// round, re-arming itself 10ns later — the command-forwarding pattern
/// (splitter fan-out, credit bursts) the batched dispatcher targets.
struct TypedTrainSource<T> {
    sink: ComponentId,
    rounds_left: u64,
    _shape: std::marker::PhantomData<fn() -> T>,
}

impl<T: StoreShape> Component<T> for TypedTrainSource<T> {
    fn handle(&mut self, ctx: &mut Ctx<'_, T>, msg: T) {
        msg.consume(ctx.pages());
        for i in 0..TRAIN_LEN {
            let m = T::make(i, ctx.pages());
            ctx.send(self.sink, SimTime::ZERO, m);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            let m = T::make(0, ctx.pages());
            ctx.send_self(SimTime::ns(10), m);
        }
    }
}

/// Sink opting into [`Component::handle_batch`]: a whole train is
/// consumed with one component fetch and one virtual call.
struct TypedBatchSink<T> {
    seen: u64,
    _shape: std::marker::PhantomData<fn() -> T>,
}

impl<T: StoreShape> Component<T> for TypedBatchSink<T> {
    fn handle(&mut self, ctx: &mut Ctx<'_, T>, msg: T) {
        self.seen += msg.consume(ctx.pages());
    }

    fn handle_batch(&mut self, ctx: &mut Ctx<'_, T>, batch: &mut Batch<T>) {
        while let Some(msg) = batch.next(ctx) {
            self.seen += msg.consume(ctx.pages());
        }
    }
}

struct BoxedTrainSink<T> {
    seen: u64,
    _shape: std::marker::PhantomData<T>,
}

impl<T: TrainShape> boxed::Component for BoxedTrainSink<T> {
    fn handle(&mut self, _ctx: &mut boxed::Ctx<'_>, msg: Box<dyn std::any::Any>) {
        let m = msg.downcast::<T>().expect("train message");
        self.seen += m.weigh();
    }
}

struct BoxedTrainSource<T> {
    sink: boxed::ComponentId,
    rounds_left: u64,
    _shape: std::marker::PhantomData<T>,
}

impl<T: TrainShape> boxed::Component for BoxedTrainSource<T> {
    fn handle(&mut self, ctx: &mut boxed::Ctx<'_>, _msg: Box<dyn std::any::Any>) {
        for i in 0..TRAIN_LEN {
            ctx.send(self.sink, SimTime::ZERO, T::make(i));
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            ctx.send_self(SimTime::ns(10), T::make(0));
        }
    }
}

fn typed_train_setup<T: StoreShape>() -> Simulator<T> {
    let mut sim = Simulator::with_capacity(TRAIN_LEN as usize + 8);
    let sink = sim.reserve();
    let source = sim.add_component(TypedTrainSource::<T> {
        sink,
        rounds_left: TRAIN_ROUNDS - 1,
        _shape: std::marker::PhantomData,
    });
    sim.install(
        sink,
        TypedBatchSink::<T> {
            seen: 0,
            _shape: std::marker::PhantomData,
        },
    );
    let kick = T::make(0, sim.page_store_mut());
    sim.schedule(SimTime::ZERO, source, kick);
    sim
}

fn pseudo_delays(n: u64) -> impl Iterator<Item = SimTime> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..n).map(move |_| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        SimTime::ns(x % 100_000)
    })
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_kernel");
    g.throughput(Throughput::Elements(CHAIN_EVENTS));

    // Pure delivery overhead: zero-sized messages.
    for (name, delay) in [
        ("tick_chain_10ns", SimTime::ns(10)),
        ("tick_chain_zero_delay", SimTime::ZERO),
    ] {
        g.bench_function(&format!("typed/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new();
                    let id = sim.add_component(TypedTickBouncer {
                        remaining: CHAIN_EVENTS,
                        delay,
                    });
                    sim.schedule(SimTime::ZERO, id, Tick);
                    sim
                },
                |mut sim| {
                    sim.run();
                    black_box(sim.events_delivered())
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(&format!("boxed/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = boxed::Simulator::new();
                    let id = sim.add_component(BoxedTickBouncer {
                        remaining: CHAIN_EVENTS,
                        delay,
                    });
                    sim.schedule(SimTime::ZERO, id, Tick);
                    sim
                },
                |mut sim| {
                    sim.run();
                    black_box(sim.events_delivered())
                },
                BatchSize::SmallInput,
            )
        });
    }

    // Payload transport: command-sized messages.
    for (name, delay) in [
        ("cmd_chain_10ns", SimTime::ns(10)),
        ("cmd_chain_zero_delay", SimTime::ZERO),
    ] {
        g.bench_function(&format!("typed/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new();
                    let id = sim.add_component(TypedBouncer {
                        remaining: CHAIN_EVENTS,
                        delay,
                    });
                    sim.schedule(SimTime::ZERO, id, Cmd([0; 8]));
                    sim
                },
                |mut sim| {
                    sim.run();
                    black_box(sim.events_delivered())
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(&format!("boxed/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = boxed::Simulator::new();
                    let id = sim.add_component(BoxedBouncer {
                        remaining: CHAIN_EVENTS,
                        delay,
                    });
                    sim.schedule(SimTime::ZERO, id, Cmd([0; 8]));
                    sim
                },
                |mut sim| {
                    sim.run();
                    black_box(sim.events_delivered())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();

    let mut g = c.benchmark_group("des_kernel_scatter");
    g.throughput(Throughput::Elements(SCATTER_EVENTS));
    g.bench_function("typed/scatter_20k", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::with_capacity(SCATTER_EVENTS as usize);
                let id = sim.add_component(TypedSink { seen: 0 });
                for (i, d) in pseudo_delays(SCATTER_EVENTS).enumerate() {
                    sim.schedule(d, id, Cmd([i as u64; 8]));
                }
                sim
            },
            |mut sim| {
                sim.run();
                black_box(sim.events_delivered())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("boxed/scatter_20k", |b| {
        b.iter_batched(
            || {
                let mut sim = boxed::Simulator::new();
                let id = sim.add_component(BoxedSink { seen: 0 });
                for (i, d) in pseudo_delays(SCATTER_EVENTS).enumerate() {
                    sim.schedule(d, id, Cmd([i as u64; 8]));
                }
                sim
            },
            |mut sim| {
                sim.run();
                black_box(sim.events_delivered())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Same-component event trains: the batched dispatcher (`run()`) vs the
/// per-event dispatcher (`step()`, the PR-1 typed kernel's only mode) vs
/// the boxed seed kernel, on one identical burst workload per message
/// shape.
///
/// `typed_per_event` is the baseline the batched path must beat by the
/// acceptance bar (>=1.2x events/sec on the dispatch-bound tick shape):
/// same queues, same arena — the only difference is one component fetch +
/// virtual call per train instead of per event. The cmd shape shows the
/// payload-transport-bound margin alongside.
fn bench_trains(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_kernel_train");
    g.throughput(Throughput::Elements(TRAIN_EVENTS));
    bench_typed_trains::<Tick>(&mut g, "tick");
    bench_boxed_trains::<Tick>(&mut g, "tick");
    bench_typed_trains::<Cmd>(&mut g, "cmd");
    bench_boxed_trains::<Cmd>(&mut g, "cmd");
    // The page shape pairs the typed kernel's handle-based payloads
    // (16-byte message + slab bookkeeping) against the seed's inline
    // `Vec` pages (a fresh 8 KiB heap allocation per event).
    bench_typed_trains::<PageCmd>(&mut g, "page");
    bench_boxed_trains::<BoxedPage>(&mut g, "page");
    g.finish();
}

fn bench_typed_trains<T: StoreShape>(g: &mut criterion::BenchmarkGroup<'_>, shape: &str) {
    let name = format!("{shape}_burst_{TRAIN_LEN}x{TRAIN_ROUNDS}");
    g.bench_function(&format!("typed_batched/{name}"), |b| {
        b.iter_batched(
            typed_train_setup::<T>,
            |mut sim| {
                sim.run();
                black_box(sim.events_delivered())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function(&format!("typed_per_event/{name}"), |b| {
        b.iter_batched(
            typed_train_setup::<T>,
            |mut sim| {
                while sim.step() {}
                black_box(sim.events_delivered())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_boxed_trains<T: TrainShape>(g: &mut criterion::BenchmarkGroup<'_>, shape: &str) {
    let name = format!("{shape}_burst_{TRAIN_LEN}x{TRAIN_ROUNDS}");
    g.bench_function(&format!("boxed/{name}"), |b| {
        b.iter_batched(
            || {
                let mut sim = boxed::Simulator::new();
                let sink = sim.add_component(BoxedTrainSink::<T> {
                    seen: 0,
                    _shape: std::marker::PhantomData,
                });
                let source = sim.add_component(BoxedTrainSource::<T> {
                    sink,
                    rounds_left: TRAIN_ROUNDS - 1,
                    _shape: std::marker::PhantomData,
                });
                sim.schedule(SimTime::ZERO, source, T::make(0));
                sim
            },
            |mut sim| {
                sim.run();
                black_box(sim.events_delivered())
            },
            BatchSize::SmallInput,
        )
    });
}

/// The fig13 shape: a stream of remote ISP reads between two paper-config
/// nodes over one lane — the whole flash + splitter + agent + router +
/// PCIe message plumbing, reported as simulated events per second.
fn bench_cluster_events(c: &mut Criterion) {
    const READS: usize = 300;
    // Count the events one run generates so throughput is in events, not
    // reads.
    let events_per_run = {
        let (mut cluster, addrs) = fig13_setup(READS);
        let before = cluster.events_delivered();
        cluster.stream_reads(NodeId(0), &addrs, Consume::Isp);
        cluster.events_delivered() - before
    };
    let mut g = c.benchmark_group("sim_throughput");
    g.throughput(Throughput::Elements(events_per_run));
    g.bench_function("fig13_remote_stream_events", |b| {
        b.iter_batched(
            || fig13_setup(READS),
            |(mut cluster, addrs)| {
                let done = cluster.stream_reads(NodeId(0), &addrs, Consume::Isp);
                black_box(done.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn fig13_setup(reads: usize) -> (Cluster, Vec<bluedbm_core::GlobalPageAddr>) {
    let config = SystemConfig::paper();
    let mut cluster = Cluster::line(2, 1, &config).unwrap();
    let page = vec![0u8; config.flash.geometry.page_bytes];
    let addrs: Vec<_> = (0..reads)
        .map(|_| cluster.preload_page(NodeId(1), &page).unwrap())
        .collect();
    (cluster, addrs)
}

/// Bigger-than-paper scale: an 8x8 mesh — 64 nodes against the paper's
/// 20-node rack — with node 0 streaming remote reads scattered across
/// every other node, so traffic crosses the whole fabric. Run twice:
/// ISP-consumed (network-bound) and host-consumed (every page
/// additionally claims a read buffer and crosses node 0's PCIe link —
/// the full handle-based payload path end to end).
fn bench_mesh_scale(c: &mut Criterion) {
    for (name, consume) in [
        ("mesh8x8_scatter_stream_events", Consume::Isp),
        ("mesh8x8_scatter_stream_host_events", Consume::Host),
    ] {
        let events_per_run = {
            let (mut cluster, addrs) = mesh8x8_setup();
            let before = cluster.events_delivered();
            cluster.stream_reads(NodeId(0), &addrs, consume);
            cluster.events_delivered() - before
        };
        let mut g = c.benchmark_group("sim_throughput");
        g.throughput(Throughput::Elements(events_per_run));
        g.bench_function(name, |b| {
            b.iter_batched(
                mesh8x8_setup,
                |(mut cluster, addrs)| {
                    let done = cluster.stream_reads(NodeId(0), &addrs, consume);
                    black_box(done.len())
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

fn mesh8x8_setup() -> (Cluster, Vec<bluedbm_core::GlobalPageAddr>) {
    const READS_PER_NODE: usize = 3;
    let config = SystemConfig::scaled_down();
    let mut cluster = Cluster::new(NetTopology::mesh2d(8, 8), &config).unwrap();
    let page = vec![0u8; config.flash.geometry.page_bytes];
    let mut addrs = Vec::new();
    for node in 1..cluster.node_count() {
        for _ in 0..READS_PER_NODE {
            addrs.push(cluster.preload_page(NodeId::from(node), &page).unwrap());
        }
    }
    (cluster, addrs)
}

/// The sharded-engine scaling scenarios: an **all-to-all** scatter
/// (every node streams remote reads at one instant, so the whole fabric
/// — not just one reader — is busy) on the same topology across 1, 2
/// and 4 worker shards, plus the upper rungs of the topology ladder — a
/// 256-node `mesh16x16` and a 1024-node `mesh32x32`, 12.8× and 51.2×
/// the paper's rack. The `sharded1` row is the sequential engine on the
/// identical workload: the scaling curve in `BENCH_engine.json` is the
/// events/sec ratio against it. Shard counts beyond the host's
/// available cores measure protocol overhead, not parallelism — read
/// the curve next to the recorded `meta/host_cpus` row.
fn bench_sharded_scale(c: &mut Criterion) {
    use bluedbm_core::ExecMode;
    let scenarios: [(&str, usize, usize, usize, usize, ExecMode); 7] = [
        ("mesh8x8_scatter_sharded1", 8, 8, 1, 10, ExecMode::Auto),
        ("mesh8x8_scatter_sharded2", 8, 8, 2, 10, ExecMode::Auto),
        ("mesh8x8_scatter_sharded4", 8, 8, 4, 10, ExecMode::Auto),
        ("mesh8x8_scatter_optimistic2", 8, 8, 2, 10, ExecMode::Optimistic),
        ("mesh8x8_scatter_optimistic4", 8, 8, 4, 10, ExecMode::Optimistic),
        ("mesh16x16_scatter_stream", 16, 16, 4, 4, ExecMode::Auto),
        ("mesh32x32_scatter_stream", 32, 32, 4, 1, ExecMode::Auto),
    ];
    for (name, rows, cols, shards, reads_per_node, exec) in scenarios {
        let setup = || scatter_setup(rows, cols, shards, reads_per_node, exec);
        let run = |(mut cluster, reads): (Cluster, Vec<(NodeId, bluedbm_core::GlobalPageAddr)>)| {
            for &(reader, addr) in &reads {
                cluster.inject_read(reader, addr, Consume::Isp);
            }
            cluster.run_to_quiescence();
            black_box(cluster.events_delivered())
        };
        let events_per_run = {
            let (cluster, reads) = setup();
            let before = cluster.events_delivered();
            run((cluster, reads)) - before
        };
        let mut g = c.benchmark_group("sim_throughput");
        g.throughput(Throughput::Elements(events_per_run));
        g.bench_function(name, |b| {
            b.iter_batched(setup, run, BatchSize::SmallInput)
        });
        g.finish();
    }
}

/// Build a `rows x cols` mesh on `shards` worker shards with every node
/// holding preloaded pages, and the all-to-all read list (each node
/// reads `reads_per_node` pages scattered over the other nodes).
fn scatter_setup(
    rows: usize,
    cols: usize,
    shards: usize,
    reads_per_node: usize,
    exec: bluedbm_core::ExecMode,
) -> (Cluster, Vec<(NodeId, bluedbm_core::GlobalPageAddr)>) {
    const PAGES_PER_NODE: usize = 4;
    let mut config = SystemConfig::scaled_down();
    config.sim.shards = shards;
    config.sim.exec = exec;
    let mut cluster = Cluster::new(NetTopology::mesh2d(rows, cols), &config).unwrap();
    let n = cluster.node_count();
    let page = vec![0u8; config.flash.geometry.page_bytes];
    let mut addrs = Vec::with_capacity(n);
    for node in 0..n {
        let node_addrs: Vec<_> = (0..PAGES_PER_NODE)
            .map(|_| cluster.preload_page(NodeId::from(node), &page).unwrap())
            .collect();
        addrs.push(node_addrs);
    }
    let mut reads = Vec::with_capacity(n * reads_per_node);
    for reader in 0..n {
        for r in 0..reads_per_node {
            let mut target = (reader + 1 + r * 5) % n;
            if target == reader {
                target = (target + 1) % n;
            }
            reads.push((NodeId::from(reader), addrs[target][r % PAGES_PER_NODE]));
        }
    }
    (cluster, reads)
}

/// The ROADMAP's million-key scale point: a 10⁶-key, 8-tenant KV
/// workload (load phase + zipfian 70/20/10 get/overwrite/delete churn)
/// through the async `KvStore` engine — every put/get through the full
/// flash/network/accelerator-scheduler stack — on a 4-node ring, run on
/// the sequential engine and on 2 and 4 worker shards. Small-page
/// `kv_flash_geometry` keeps host RAM modest; events/sec is the metric,
/// with the `sharded*` rows against `seq` forming the scaling curve
/// (read next to `meta/host_cpus`, as for `mesh8x8_scatter_sharded*`).
fn bench_kv_million(c: &mut Criterion) {
    use bluedbm_core::KvStore;
    use bluedbm_workloads::kvgen::{kv_flash_geometry, run_requests, KvWorkloadSpec};

    const NODES: usize = 4;
    const BATCH: usize = 8192;
    let spec = KvWorkloadSpec::million(NODES);
    let setup = |shards: usize, exec: bluedbm_core::ExecMode| {
        let mut config = SystemConfig::scaled_down();
        config.flash.geometry = kv_flash_geometry();
        config.sim.shards = shards;
        config.sim.exec = exec;
        KvStore::new(Cluster::ring(NODES, &config).unwrap())
    };
    let run = |spec: &KvWorkloadSpec, mut store: KvStore| {
        let summary = run_requests(&mut store, spec.load().chain(spec.churn()), BATCH);
        assert_eq!(summary.ops, spec.total_keys() + spec.churn_ops);
        assert_eq!(summary.errors, 0, "a sized workload must not fail");
        store.assert_no_stranded_pages();
        store.cluster().assert_quiescent();
        (summary.digest, store.cluster().events_delivered())
    };
    // Event counts (and the result digest) are engine-independent per
    // the PR 4 determinism contract, so one counting run serves every
    // scenario's throughput denominator.
    let (digest, events_per_run) = run(&spec, setup(1, bluedbm_core::ExecMode::Auto));
    for (name, shards, exec) in [
        ("kv_million_seq", 1, bluedbm_core::ExecMode::Auto),
        ("kv_million_sharded2", 2, bluedbm_core::ExecMode::Auto),
        ("kv_million_sharded4", 4, bluedbm_core::ExecMode::Auto),
        ("kv_million_optimistic2", 2, bluedbm_core::ExecMode::Optimistic),
        ("kv_million_optimistic4", 4, bluedbm_core::ExecMode::Optimistic),
    ] {
        let mut g = c.benchmark_group("sim_throughput");
        g.throughput(Throughput::Elements(events_per_run));
        g.bench_function(name, |b| {
            b.iter_batched(
                || setup(shards, exec),
                |store| {
                    let (d, events) = run(&spec, store);
                    assert_eq!(d, digest, "cross-engine digest diverged");
                    assert_eq!(events, events_per_run, "event count diverged");
                    black_box(d)
                },
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    // Short sampling: these are smoke-level performance numbers, and the
    // full suite must run in CI time.
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels, bench_trains, bench_cluster_events, bench_mesh_scale, bench_sharded_scale, bench_kv_million
}
criterion_main!(benches);
