//! End-to-end event-kernel throughput: simulated events per second of
//! wall-clock, for the typed slab/index-heap kernel that now powers every
//! exhibit — measured head-to-head against the seed's `Box<dyn Any>` +
//! `BinaryHeap` kernel (kept below as an in-tree baseline) on identical
//! workloads, plus a fig13-sized cluster read stream through the full
//! node/network/flash stack.
//!
//! The acceptance bar for the typed-kernel refactor is >=2x events/sec
//! over the boxed baseline on the same-instant fast-path chains (the
//! dominant pattern in the command-forwarding hot path); heap-bound and
//! scatter workloads win by smaller margins.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bluedbm_core::node::Consume;
use bluedbm_core::{Cluster, NodeId, SystemConfig};
use bluedbm_sim::engine::{Component, Ctx, Simulator};
use bluedbm_sim::time::SimTime;

const CHAIN_EVENTS: u64 = 100_000;
const SCATTER_EVENTS: u64 = 20_000;

// ---------------------------------------------------------------------------
// The pre-refactor kernel, preserved verbatim in miniature: one heap-boxed
// `dyn Any` message per event, downcast on delivery, `BinaryHeap` ordered
// by an inverted (time, seq) key. This is what the seed's `engine.rs` did.
// ---------------------------------------------------------------------------
mod boxed {
    use bluedbm_sim::time::SimTime;
    use std::any::Any;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(Clone, Copy)]
    pub struct ComponentId(pub usize);

    pub trait Component: Any {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Box<dyn Any>);
    }

    struct Scheduled {
        at: SimTime,
        seq: u64,
        to: ComponentId,
        msg: Box<dyn Any>,
    }

    impl PartialEq for Scheduled {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Scheduled {}
    impl PartialOrd for Scheduled {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Scheduled {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    pub struct Ctx<'a> {
        now: SimTime,
        self_id: ComponentId,
        outbox: &'a mut Vec<(SimTime, ComponentId, Box<dyn Any>)>,
    }

    impl Ctx<'_> {
        pub fn send_self<M: Any>(&mut self, delay: SimTime, msg: M) {
            self.outbox
                .push((self.now + delay, self.self_id, Box::new(msg)));
        }
    }

    pub struct Simulator {
        now: SimTime,
        seq: u64,
        delivered: u64,
        heap: BinaryHeap<Scheduled>,
        components: Vec<Option<Box<dyn Component>>>,
        outbox: Vec<(SimTime, ComponentId, Box<dyn Any>)>,
    }

    impl Simulator {
        pub fn new() -> Self {
            Simulator {
                now: SimTime::ZERO,
                seq: 0,
                delivered: 0,
                heap: BinaryHeap::new(),
                components: Vec::new(),
                outbox: Vec::new(),
            }
        }

        pub fn events_delivered(&self) -> u64 {
            self.delivered
        }

        pub fn add_component<C: Component>(&mut self, component: C) -> ComponentId {
            let id = ComponentId(self.components.len());
            self.components.push(Some(Box::new(component)));
            id
        }

        pub fn schedule<M: Any>(&mut self, delay: SimTime, to: ComponentId, msg: M) {
            self.heap.push(Scheduled {
                at: self.now + delay,
                seq: self.seq,
                to,
                msg: Box::new(msg),
            });
            self.seq += 1;
        }

        pub fn run(&mut self) {
            while let Some(ev) = self.heap.pop() {
                self.now = ev.at;
                self.delivered += 1;
                let mut component = self.components[ev.to.0].take().expect("installed");
                {
                    let mut ctx = Ctx {
                        now: self.now,
                        self_id: ev.to,
                        outbox: &mut self.outbox,
                    };
                    component.handle(&mut ctx, ev.msg);
                }
                self.components[ev.to.0] = Some(component);
                for (at, to, msg) in self.outbox.drain(..) {
                    self.heap.push(Scheduled {
                        at,
                        seq: self.seq,
                        to,
                        msg,
                    });
                    self.seq += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Identical workloads on both kernels.
// ---------------------------------------------------------------------------

/// Zero-payload message: isolates pure event-delivery overhead (queue
/// mechanics, dispatch, clock) with no payload-transport cost on either
/// kernel.
struct Tick;

/// Payload in the size class of the real protocol messages (a `CtrlCmd`
/// or `CtrlResp` is several machine words, and every hot-path event in
/// the full system carries one): the boxed kernel pays one allocation +
/// pointer chase per event for it, the typed kernel moves it inline.
struct Cmd([u64; 8]);

struct TypedTickBouncer {
    remaining: u64,
    delay: SimTime,
}

impl Component<Tick> for TypedTickBouncer {
    fn handle(&mut self, ctx: &mut Ctx<'_, Tick>, _msg: Tick) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(self.delay, Tick);
        }
    }
}

struct BoxedTickBouncer {
    remaining: u64,
    delay: SimTime,
}

impl boxed::Component for BoxedTickBouncer {
    fn handle(&mut self, ctx: &mut boxed::Ctx<'_>, _msg: Box<dyn std::any::Any>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(self.delay, Tick);
        }
    }
}

struct TypedBouncer {
    remaining: u64,
    delay: SimTime,
}

impl Component<Cmd> for TypedBouncer {
    fn handle(&mut self, ctx: &mut Ctx<'_, Cmd>, msg: Cmd) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(self.delay, Cmd([msg.0[0] + 1; 8]));
        }
    }
}

struct BoxedBouncer {
    remaining: u64,
    delay: SimTime,
}

impl boxed::Component for BoxedBouncer {
    fn handle(&mut self, ctx: &mut boxed::Ctx<'_>, msg: Box<dyn std::any::Any>) {
        let cmd = msg.downcast::<Cmd>().expect("Cmd");
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(self.delay, Cmd([cmd.0[0] + 1; 8]));
        }
    }
}

/// Sink that consumes scattered commands (heap scaling under load).
struct TypedSink {
    seen: u64,
}

impl Component<Cmd> for TypedSink {
    fn handle(&mut self, _ctx: &mut Ctx<'_, Cmd>, msg: Cmd) {
        self.seen += msg.0[0];
    }
}

struct BoxedSink {
    seen: u64,
}

impl boxed::Component for BoxedSink {
    fn handle(&mut self, _ctx: &mut boxed::Ctx<'_>, msg: Box<dyn std::any::Any>) {
        let cmd = msg.downcast::<Cmd>().expect("Cmd");
        self.seen += cmd.0[0];
    }
}

fn pseudo_delays(n: u64) -> impl Iterator<Item = SimTime> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..n).map(move |_| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        SimTime::ns(x % 100_000)
    })
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_kernel");
    g.throughput(Throughput::Elements(CHAIN_EVENTS));

    // Pure delivery overhead: zero-sized messages.
    for (name, delay) in [
        ("tick_chain_10ns", SimTime::ns(10)),
        ("tick_chain_zero_delay", SimTime::ZERO),
    ] {
        g.bench_function(&format!("typed/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new();
                    let id = sim.add_component(TypedTickBouncer {
                        remaining: CHAIN_EVENTS,
                        delay,
                    });
                    sim.schedule(SimTime::ZERO, id, Tick);
                    sim
                },
                |mut sim| {
                    sim.run();
                    black_box(sim.events_delivered())
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(&format!("boxed/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = boxed::Simulator::new();
                    let id = sim.add_component(BoxedTickBouncer {
                        remaining: CHAIN_EVENTS,
                        delay,
                    });
                    sim.schedule(SimTime::ZERO, id, Tick);
                    sim
                },
                |mut sim| {
                    sim.run();
                    black_box(sim.events_delivered())
                },
                BatchSize::SmallInput,
            )
        });
    }

    // Payload transport: command-sized messages.
    for (name, delay) in [
        ("cmd_chain_10ns", SimTime::ns(10)),
        ("cmd_chain_zero_delay", SimTime::ZERO),
    ] {
        g.bench_function(&format!("typed/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new();
                    let id = sim.add_component(TypedBouncer {
                        remaining: CHAIN_EVENTS,
                        delay,
                    });
                    sim.schedule(SimTime::ZERO, id, Cmd([0; 8]));
                    sim
                },
                |mut sim| {
                    sim.run();
                    black_box(sim.events_delivered())
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(&format!("boxed/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut sim = boxed::Simulator::new();
                    let id = sim.add_component(BoxedBouncer {
                        remaining: CHAIN_EVENTS,
                        delay,
                    });
                    sim.schedule(SimTime::ZERO, id, Cmd([0; 8]));
                    sim
                },
                |mut sim| {
                    sim.run();
                    black_box(sim.events_delivered())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();

    let mut g = c.benchmark_group("des_kernel_scatter");
    g.throughput(Throughput::Elements(SCATTER_EVENTS));
    g.bench_function("typed/scatter_20k", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::with_capacity(SCATTER_EVENTS as usize);
                let id = sim.add_component(TypedSink { seen: 0 });
                for (i, d) in pseudo_delays(SCATTER_EVENTS).enumerate() {
                    sim.schedule(d, id, Cmd([i as u64; 8]));
                }
                sim
            },
            |mut sim| {
                sim.run();
                black_box(sim.events_delivered())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("boxed/scatter_20k", |b| {
        b.iter_batched(
            || {
                let mut sim = boxed::Simulator::new();
                let id = sim.add_component(BoxedSink { seen: 0 });
                for (i, d) in pseudo_delays(SCATTER_EVENTS).enumerate() {
                    sim.schedule(d, id, Cmd([i as u64; 8]));
                }
                sim
            },
            |mut sim| {
                sim.run();
                black_box(sim.events_delivered())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The fig13 shape: a stream of remote ISP reads between two paper-config
/// nodes over one lane — the whole flash + splitter + agent + router +
/// PCIe message plumbing, reported as simulated events per second.
fn bench_cluster_events(c: &mut Criterion) {
    const READS: usize = 300;
    // Count the events one run generates so throughput is in events, not
    // reads.
    let events_per_run = {
        let (mut cluster, addrs) = fig13_setup(READS);
        let before = cluster.sim_mut().events_delivered();
        cluster.stream_reads(NodeId(0), &addrs, Consume::Isp);
        cluster.sim_mut().events_delivered() - before
    };
    let mut g = c.benchmark_group("sim_throughput");
    g.throughput(Throughput::Elements(events_per_run));
    g.bench_function("fig13_remote_stream_events", |b| {
        b.iter_batched(
            || fig13_setup(READS),
            |(mut cluster, addrs)| {
                let done = cluster.stream_reads(NodeId(0), &addrs, Consume::Isp);
                black_box(done.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn fig13_setup(reads: usize) -> (Cluster, Vec<bluedbm_core::GlobalPageAddr>) {
    let config = SystemConfig::paper();
    let mut cluster = Cluster::line(2, 1, &config).unwrap();
    let page = vec![0u8; config.flash.geometry.page_bytes];
    let addrs: Vec<_> = (0..reads)
        .map(|_| cluster.preload_page(NodeId(1), &page).unwrap())
        .collect();
    (cluster, addrs)
}

criterion_group! {
    name = benches;
    // Short sampling: these are smoke-level performance numbers, and the
    // full suite must run in CI time.
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels, bench_cluster_events
}
criterion_main!(benches);
