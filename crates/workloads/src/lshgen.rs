//! LSH nearest-neighbor workload builder (Figure 15's access pattern).
//!
//! Builds a dataset of fixed-size items with planted near-duplicates,
//! indexes it with [`bluedbm_isp::lsh`], and produces the *bucket
//! scatter* address stream: the randomly-distributed reads that make the
//! nearest-neighbor workload flash-unfriendly for naive devices.

use bluedbm_isp::lsh::{LshIndex, LshParams};
use bluedbm_sim::rng::Rng;

/// A generated LSH workload.
#[derive(Debug)]
pub struct LshWorkload {
    /// All items (page-sized payloads).
    pub items: Vec<Vec<u8>>,
    /// The LSH index over those items.
    pub index: LshIndex,
    /// Queries: `(query payload, id of the planted true neighbor)`.
    pub queries: Vec<(Vec<u8>, u64)>,
}

/// Build a dataset of `items` random items of `item_bytes`, with one
/// planted near-duplicate per query.
///
/// # Panics
///
/// Panics if `queries > items`.
pub fn build(items: usize, item_bytes: usize, queries: usize, seed: u64) -> LshWorkload {
    assert!(queries <= items, "more queries than items");
    let mut rng = Rng::new(seed);
    let mut data: Vec<Vec<u8>> = (0..items)
        .map(|_| {
            let mut v = vec![0u8; item_bytes];
            rng.fill_bytes(&mut v);
            v
        })
        .collect();
    // Queries are light perturbations (0.5% of bits) of distinct items.
    let mut qs = Vec::with_capacity(queries);
    for qi in 0..queries {
        let target = qi * items / queries.max(1);
        let mut q = data[target].clone();
        for _ in 0..(item_bytes * 8 / 200).max(1) {
            let bit = rng.below((item_bytes * 8) as u64) as usize;
            q[bit / 8] ^= 1 << (bit % 8);
        }
        qs.push((q, target as u64));
    }
    let mut index = LshIndex::new(item_bytes, LshParams::default());
    for (i, item) in data.iter().enumerate() {
        index.insert(i as u64, item);
    }
    // Keep items addressable by id.
    data.shrink_to_fit();
    LshWorkload {
        items: data,
        index,
        queries: qs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluedbm_isp::hamming::HammingEngine;
    use bluedbm_isp::Accelerator;

    #[test]
    fn queries_find_their_planted_neighbor_through_the_full_pipeline() {
        let w = build(300, 256, 10, 42);
        let mut recalled = 0;
        for (query, want) in &w.queries {
            // Step 1: LSH candidates (the bucket walk).
            let candidates = w.index.candidates(query);
            // Step 2: in-store hamming comparison over candidate pages.
            let mut engine = HammingEngine::new(query.clone());
            for &c in &candidates {
                engine.consume(c, &w.items[c as usize]);
            }
            if let Some((best, _)) = engine.best() {
                if best == *want {
                    recalled += 1;
                }
            }
        }
        assert!(recalled >= 9, "recall {recalled}/10");
    }

    #[test]
    fn candidate_sets_are_much_smaller_than_the_dataset() {
        let w = build(500, 128, 5, 7);
        for (query, _) in &w.queries {
            let c = w.index.candidates(query);
            assert!(
                c.len() < 200,
                "LSH should prune the dataset: {} candidates",
                c.len()
            );
        }
    }

    #[test]
    fn bucket_scatter_addresses_are_spread() {
        // The candidate lists of different queries should address very
        // different item sets — the paper's random-access pattern.
        let w = build(400, 128, 4, 9);
        let sets: Vec<bluedbm_sim::fxhash::FxHashSet<u64>> = w
            .queries
            .iter()
            .map(|(q, _)| w.index.candidates(q).into_iter().collect())
            .collect();
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                let inter = sets[i].intersection(&sets[j]).count();
                let min = sets[i].len().min(sets[j].len()).max(1);
                assert!(
                    inter * 2 < min.max(2),
                    "queries {i} and {j} overlap too much"
                );
            }
        }
    }
}
